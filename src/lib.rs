//! Umbrella crate for the PARP reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. Library users should depend on the individual crates
//! (`parp-core`, `parp-chain`, …) directly.

pub use parp_chain as chain;
pub use parp_contracts as contracts;
pub use parp_core as core;
pub use parp_crypto as crypto;
pub use parp_gateway as gateway;
pub use parp_jsonrpc as jsonrpc;
pub use parp_net as net;
pub use parp_primitives as primitives;
pub use parp_rlp as rlp;
pub use parp_runtime as runtime;
pub use parp_telemetry as telemetry;
pub use parp_trie as trie;
