//! Property tests pinning the optimized crypto hot path to its
//! pre-optimization semantics.
//!
//! The fixed-base comb, the GLV-split interleaved-wNAF double
//! multiplication, the binary-GCD inversions and the Montgomery batch
//! inversion are all pure speedups: every one of them must be
//! **bit-identical** to the generic (retained) implementations. These
//! tests check that equivalence on random inputs, plus the edge cases
//! the batch paths must survive (zero elements, points at infinity).

use parp_suite::crypto::{
    batch_to_affine, double_scalar_mul, keccak256, mul_generator, recover_address,
    recover_addresses_parallel, sign, AffinePoint, FieldElement, Scalar, SecretKey,
};
use proptest::prelude::*;

fn scalar_from(seed: &[u8]) -> Scalar {
    Scalar::from_be_bytes_reduced(&keccak256(seed).into_inner())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fixed-base comb multiplication ≡ the generic double-and-add
    /// ladder, for random scalars.
    #[test]
    fn fixed_base_table_matches_generic_mul(seed in any::<u64>()) {
        let k = scalar_from(&seed.to_be_bytes());
        let comb = mul_generator(&k).to_affine();
        let generic = AffinePoint::generator().mul(&k);
        prop_assert_eq!(comb, generic);
    }

    /// The GLV + interleaved-wNAF `a·G + b·Q` ≡ computing the two halves
    /// with the generic ladder and adding them.
    #[test]
    fn wnaf_double_mul_matches_generic(sa in any::<u64>(), sb in any::<u64>(), sq in any::<u64>()) {
        let a = scalar_from(&sa.to_be_bytes());
        let b = scalar_from(&sb.to_be_bytes());
        let q = AffinePoint::generator().mul(&scalar_from(&sq.to_be_bytes()));
        let fast = double_scalar_mul(&a, &b, &q);
        let reference = AffinePoint::generator()
            .mul(&a)
            .to_jacobian()
            .add(&q.mul(&b).to_jacobian())
            .to_affine();
        prop_assert_eq!(fast, reference);
    }

    /// Optimized sign/recover ≡ the retained pre-optimization loop:
    /// byte-identical signatures, identical recovered addresses.
    #[test]
    fn sign_and_recovery_match_retained_baseline(key_seed in any::<u64>(), msg in any::<u64>()) {
        let key = SecretKey::from_seed(&key_seed.to_be_bytes());
        let digest = keccak256(&msg.to_be_bytes());
        let fast_sig = sign(&key, &digest);
        let slow_sig = parp_suite::crypto::baseline::sign_reference(&key, &digest);
        prop_assert_eq!(fast_sig, slow_sig, "signatures must be byte-identical");
        let fast_addr = recover_address(&digest, &fast_sig).ok();
        let slow_addr =
            parp_suite::crypto::baseline::recover_address_reference(&digest, &fast_sig);
        prop_assert_eq!(fast_addr, slow_addr, "recovered addresses must agree");
        prop_assert_eq!(fast_addr, Some(key.address()));
    }

    /// Montgomery batch inversion ≡ per-element `invert`, with zero
    /// elements passing through untouched.
    #[test]
    fn batch_inversion_matches_per_element(seeds in proptest::collection::vec(any::<u64>(), 0..12), zero_at in any::<u8>()) {
        let mut elems: Vec<FieldElement> = seeds
            .iter()
            .map(|s| FieldElement::from_be_bytes_reduced(&keccak256(&s.to_be_bytes()).into_inner()))
            .collect();
        if !elems.is_empty() {
            // Plant a zero somewhere: it must survive as zero.
            let at = zero_at as usize % elems.len();
            elems[at] = FieldElement::ZERO;
        }
        let expected: Vec<FieldElement> = elems
            .iter()
            .map(|e| if e.is_zero() { *e } else { e.invert() })
            .collect();
        let mut batched = elems;
        FieldElement::batch_invert(&mut batched);
        prop_assert_eq!(batched, expected);
    }

    /// Multi-point batch normalization ≡ per-point `to_affine`,
    /// including points at infinity in the middle of the batch.
    #[test]
    fn batch_to_affine_matches_per_point(seeds in proptest::collection::vec(any::<u64>(), 0..10)) {
        let mut points: Vec<_> = seeds
            .iter()
            .map(|s| mul_generator(&scalar_from(&s.to_be_bytes())))
            .collect();
        points.push(parp_suite::crypto::JacobianPoint::INFINITY);
        let expected: Vec<AffinePoint> = points.iter().map(|p| p.to_affine()).collect();
        prop_assert_eq!(batch_to_affine(&points), expected);
    }

    /// The parallel batch-recovery helper ≡ a sequential loop.
    #[test]
    fn parallel_recovery_matches_sequential(n in 1usize..12, seed in any::<u32>()) {
        let pairs: Vec<_> = (0..n)
            .map(|i| {
                let key = SecretKey::from_seed(&(seed as u64 + i as u64).to_be_bytes());
                let digest = keccak256(&[i as u8, 0xcc]);
                (digest, sign(&key, &digest))
            })
            .collect();
        let parallel = recover_addresses_parallel(&pairs);
        let sequential: Vec<_> = pairs
            .iter()
            .map(|(digest, sig)| recover_address(digest, sig))
            .collect();
        prop_assert_eq!(parallel, sequential);
    }
}

/// Known-degenerate inputs the table paths must not mishandle.
#[test]
fn degenerate_scalars_and_points() {
    // Zero scalars.
    assert!(mul_generator(&Scalar::ZERO).to_affine().is_infinity());
    let g = AffinePoint::generator();
    assert_eq!(
        double_scalar_mul(&Scalar::ZERO, &Scalar::ONE, &g),
        g,
        "0·G + 1·G"
    );
    assert_eq!(
        double_scalar_mul(&Scalar::ONE, &Scalar::ZERO, &g),
        g,
        "1·G + 0·G"
    );
    assert!(double_scalar_mul(&Scalar::ZERO, &Scalar::ZERO, &g).is_infinity());
    // Q at infinity: only the G half contributes.
    assert_eq!(
        double_scalar_mul(
            &Scalar::from_u64(7),
            &Scalar::from_u64(9),
            &AffinePoint::Infinity
        ),
        g.mul(&Scalar::from_u64(7))
    );
    // a + b spanning the order: (n−1)·G + 1·G = O.
    let n_minus_one = -Scalar::ONE;
    assert!(double_scalar_mul(&n_minus_one, &Scalar::ONE, &g).is_infinity());
    // Batch inversion of an all-zero and an empty slice.
    let mut zeros = vec![FieldElement::ZERO; 3];
    FieldElement::batch_invert(&mut zeros);
    assert!(zeros.iter().all(|e| e.is_zero()));
    let mut empty: Vec<FieldElement> = Vec::new();
    FieldElement::batch_invert(&mut empty);
    assert!(empty.is_empty());
    assert!(batch_to_affine(&[]).is_empty());
}
