//! Integration: every misbehavior from §V-D, end to end.
//!
//! The protocol's core safety claims, exercised across all crates:
//!
//! * **completeness** — every slashable deviation is detected by the
//!   client AND accepted by the on-chain Fraud Detection Module, costing
//!   the node its whole collateral;
//! * **soundness** — no honest response can be used to slash, and
//!   non-provable deviations (invalid responses) never slash either.

use parp_suite::contracts::{min_deposit, ChannelStatus, RpcCall};
use parp_suite::core::{Misbehavior, ProcessOutcome};
use parp_suite::net::Network;
use parp_suite::primitives::U256;

/// Builds a network with a serving node, a witness node, and a bonded
/// client; returns the channel id.
fn fraud_fixture(
    seed: &str,
) -> (
    Network,
    parp_suite::net::NodeId,
    parp_suite::net::NodeId,
    parp_suite::core::LightClient,
    u64,
) {
    let mut net = Network::new();
    let node = net.spawn_node(format!("{seed}-node").as_bytes(), U256::from(10u64));
    let witness = net.spawn_node(format!("{seed}-witness").as_bytes(), U256::from(10u64));
    let mut client = net.spawn_client(format!("{seed}-client").as_bytes(), U256::from(10u64));
    let channel = net
        .connect(&mut client, node, U256::from(100_000u64))
        .unwrap();
    (net, node, witness, client, channel)
}

#[test]
fn every_slashable_misbehavior_ends_in_a_slash() {
    for misbehavior in Misbehavior::all()
        .into_iter()
        .filter(Misbehavior::slashable)
    {
        let seed = format!("slash-{misbehavior:?}");
        let (mut net, node, witness, mut client, channel) = fraud_fixture(&seed);
        net.node_mut(node).set_misbehavior(misbehavior);

        // A proof-bearing read makes all three fraud conditions reachable.
        let me = client.address();
        let (outcome, _) = net
            .parp_call(&mut client, node, RpcCall::GetBalance { address: me })
            .unwrap_or_else(|e| panic!("{misbehavior:?}: serve failed: {e}"));
        let ProcessOutcome::Fraud(evidence) = outcome else {
            panic!("{misbehavior:?}: expected fraud, got {outcome:?}");
        };

        // The witness relays the proof on-chain (§IV-F).
        let stake_before = net.executor().fndm().deposit_of(&net.node(node).address());
        assert_eq!(stake_before, min_deposit());
        let accepted = net.report_fraud(&evidence, witness).unwrap();
        assert!(accepted, "{misbehavior:?}: fraud proof must be accepted");

        // Slash: collateral gone, channel force-settled, witness paid.
        assert_eq!(
            net.executor().fndm().deposit_of(&net.node(node).address()),
            U256::ZERO,
            "{misbehavior:?}: offender keeps stake"
        );
        assert_eq!(
            net.executor().cmm().channel(channel).unwrap().status,
            ChannelStatus::Closed,
            "{misbehavior:?}: channel not settled"
        );
        let record = net
            .executor()
            .fdm()
            .record(&evidence.request.request_hash)
            .unwrap_or_else(|| panic!("{misbehavior:?}: no fraud record"));
        assert_eq!(record.offender, net.node(node).address());
        assert!(
            net.chain().balance(&net.node(witness).address()) > U256::ZERO,
            "{misbehavior:?}: witness not rewarded"
        );
        // The node can no longer accept connections.
        assert!(!net.registry().contains(&net.node(node).address()));
    }
}

#[test]
fn invalid_misbehaviors_are_rejected_but_not_slashable() {
    for misbehavior in Misbehavior::all().into_iter().filter(|m| !m.slashable()) {
        let seed = format!("invalid-{misbehavior:?}");
        let (mut net, node, _witness, mut client, _) = fraud_fixture(&seed);
        net.node_mut(node).set_misbehavior(misbehavior);
        let me = client.address();
        let (outcome, _) = net
            .parp_call(&mut client, node, RpcCall::GetBalance { address: me })
            .unwrap();
        assert!(
            matches!(outcome, ProcessOutcome::Invalid(_)),
            "{misbehavior:?}: expected invalid, got {outcome:?}"
        );
        // No fraud record, stake untouched.
        assert_eq!(
            net.executor().fndm().deposit_of(&net.node(node).address()),
            min_deposit(),
            "{misbehavior:?}"
        );
        // Client walks away and can reconnect elsewhere.
        client.abandon_connection();
        assert_eq!(client.state(), parp_suite::core::ClientState::Idle);
    }
}

#[test]
fn honest_node_cannot_be_framed_with_valid_response() {
    let (mut net, node, witness, mut client, _) = fraud_fixture("frame");
    let me = client.address();
    let request = client.request(RpcCall::GetBalance { address: me }).unwrap();
    let response = net.serve(node, &request).unwrap();
    net.sync_client(&mut client);
    let outcome = client.process_response(&response).unwrap();
    let ProcessOutcome::Valid { .. } = outcome else {
        panic!("honest response should be valid");
    };
    // Frame attempt: fabricate evidence from the honest exchange.
    let header = net
        .chain()
        .block(response.block_number)
        .unwrap()
        .header
        .clone();
    let evidence = parp_suite::core::FraudEvidence {
        request,
        response,
        header,
        verdict: parp_suite::contracts::FraudVerdict::InvalidProof,
    };
    let accepted = net.report_fraud(&evidence, witness).unwrap();
    assert!(!accepted, "framing must revert on-chain");
    assert_eq!(
        net.executor().fndm().deposit_of(&net.node(node).address()),
        min_deposit()
    );
}

#[test]
fn client_cannot_forge_responses_to_slash() {
    // A malicious *client* invents a response the node never signed.
    let (mut net, node, witness, mut client, _) = fraud_fixture("forge");
    let me = client.address();
    let request = client.request(RpcCall::GetBalance { address: me }).unwrap();
    let honest = net.serve(node, &request).unwrap();
    net.sync_client(&mut client);
    // Tamper the result but keep the node's (now wrong) signature.
    let mut forged = honest.clone();
    forged.amount = U256::ZERO;
    let header = net
        .chain()
        .block(forged.block_number)
        .unwrap()
        .header
        .clone();
    let evidence = parp_suite::core::FraudEvidence {
        request,
        response: forged,
        header,
        verdict: parp_suite::contracts::FraudVerdict::AmountMismatch,
    };
    let accepted = net.report_fraud(&evidence, witness).unwrap();
    assert!(
        !accepted,
        "a response with a broken signature must not slash"
    );
}

#[test]
fn fraud_on_write_workload_is_slashable() {
    let (mut net, node, witness, mut client, _) = fraud_fixture("write-fraud");
    net.node_mut(node)
        .set_misbehavior(Misbehavior::CorruptProof);
    let sender = parp_suite::crypto::SecretKey::from_seed(b"wf-sender");
    net.fund(sender.address());
    net.sync_client(&mut client);
    let tx = parp_suite::chain::Transaction {
        nonce: 0,
        gas_price: U256::ZERO,
        gas_limit: 21_000,
        to: Some(parp_suite::primitives::Address::from_low_u64_be(1)),
        value: U256::ONE,
        data: Vec::new(),
    }
    .sign(&sender);
    let (outcome, _) = net
        .parp_call(
            &mut client,
            node,
            RpcCall::SendRawTransaction { raw: tx.encode() },
        )
        .unwrap();
    let ProcessOutcome::Fraud(evidence) = outcome else {
        panic!("expected fraud, got {outcome:?}");
    };
    assert!(net.report_fraud(&evidence, witness).unwrap());
    assert_eq!(
        net.executor().fndm().deposit_of(&net.node(node).address()),
        U256::ZERO
    );
}

#[test]
fn double_reporting_the_same_fraud_fails() {
    let (mut net, node, witness, mut client, _) = fraud_fixture("double");
    net.node_mut(node).set_misbehavior(Misbehavior::WrongAmount);
    let (outcome, _) = net
        .parp_call(&mut client, node, RpcCall::BlockNumber)
        .unwrap();
    let ProcessOutcome::Fraud(evidence) = outcome else {
        panic!("expected fraud");
    };
    assert!(net.report_fraud(&evidence, witness).unwrap());
    // Same evidence again: the case is already processed (and the channel
    // closed), so the module reverts.
    assert!(!net.report_fraud(&evidence, witness).unwrap());
}

#[test]
fn reporter_reward_flows_to_the_defrauded_client() {
    let (mut net, node, witness, mut client, _) = fraud_fixture("reward");
    net.node_mut(node).set_misbehavior(Misbehavior::WrongAmount);
    let before = net.chain().balance(&client.address());
    let (outcome, _) = net
        .parp_call(&mut client, node, RpcCall::BlockNumber)
        .unwrap();
    let ProcessOutcome::Fraud(evidence) = outcome else {
        panic!("expected fraud");
    };
    net.report_fraud(&evidence, witness).unwrap();
    let after = net.chain().balance(&client.address());
    let client_share =
        min_deposit() * U256::from(parp_suite::contracts::SLASH_CLIENT_SHARE) / U256::from(100u64);
    // Client share plus the refunded channel budget (cs = 0 on-chain:
    // the node never redeemed).
    assert_eq!(after - before, client_share + U256::from(100_000u64));
}
