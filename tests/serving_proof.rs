//! Integration: the §VIII "Proof of Serving" extension — aggregating
//! payment receipts into verifiable serving claims, including the Sybil
//! caveat the paper raises.

use parp_suite::contracts::RpcCall;
use parp_suite::core::{
    collect_serving_proof, verify_serving_proof, ProcessOutcome, ServingProofError,
};
use parp_suite::net::Network;
use parp_suite::primitives::U256;

#[test]
fn serving_proof_totals_served_payments() {
    let mut net = Network::new();
    let node = net.spawn_node(b"sp-node", U256::from(10u64));
    let mut clients: Vec<_> = (0..3)
        .map(|i| {
            let seed = format!("sp-client-{i}");
            let mut c = net.spawn_client(seed.as_bytes(), U256::from(10u64));
            net.connect(&mut c, node, U256::from(1_000u64)).unwrap();
            c
        })
        .collect();
    // Client i makes i+1 calls.
    for (i, client) in clients.iter_mut().enumerate() {
        for _ in 0..=i {
            let (outcome, _) = net.parp_call(client, node, RpcCall::BlockNumber).unwrap();
            assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
        }
    }
    let proof = collect_serving_proof(net.node(node));
    assert_eq!(proof.receipts.len(), 3);
    let total = verify_serving_proof(&proof, net.executor().cmm()).unwrap();
    // (1 + 2 + 3) * 10 wei.
    assert_eq!(total, U256::from(60u64));
    assert_eq!(proof.claimed_total(), total);
}

#[test]
fn receipts_from_other_nodes_channels_rejected() {
    let mut net = Network::new();
    let node_a = net.spawn_node(b"spx-a", U256::from(10u64));
    let node_b = net.spawn_node(b"spx-b", U256::from(10u64));
    let mut client = net.spawn_client(b"spx-client", U256::from(10u64));
    net.connect(&mut client, node_a, U256::from(1_000u64))
        .unwrap();
    let (outcome, _) = net
        .parp_call(&mut client, node_a, RpcCall::BlockNumber)
        .unwrap();
    assert!(matches!(outcome, ProcessOutcome::Valid { .. }));

    // Node B steals node A's receipts and claims them as its own.
    let mut stolen = collect_serving_proof(net.node(node_a));
    stolen.node = net.node(node_b).address();
    assert_eq!(
        verify_serving_proof(&stolen, net.executor().cmm()),
        Err(ServingProofError::WrongNode(0))
    );
}

#[test]
fn duplicate_and_forged_receipts_rejected() {
    let mut net = Network::new();
    let node = net.spawn_node(b"spd-node", U256::from(10u64));
    let mut client = net.spawn_client(b"spd-client", U256::from(10u64));
    net.connect(&mut client, node, U256::from(1_000u64))
        .unwrap();
    let (outcome, _) = net
        .parp_call(&mut client, node, RpcCall::BlockNumber)
        .unwrap();
    assert!(matches!(outcome, ProcessOutcome::Valid { .. }));

    let mut proof = collect_serving_proof(net.node(node));
    // Duplicate the only receipt: double counting must fail.
    proof.receipts.push(proof.receipts[0].clone());
    assert_eq!(
        verify_serving_proof(&proof, net.executor().cmm()),
        Err(ServingProofError::DuplicateChannel(0))
    );
    // Inflate the amount beyond what the client signed.
    let mut inflated = collect_serving_proof(net.node(node));
    inflated.receipts[0].amount = U256::from(999u64);
    assert_eq!(
        verify_serving_proof(&inflated, net.executor().cmm()),
        Err(ServingProofError::BadReceipt(0))
    );
    // Claim more than the channel budget.
    let mut overbudget = collect_serving_proof(net.node(node));
    overbudget.receipts[0].amount = U256::from(10_000u64);
    assert_eq!(
        verify_serving_proof(&overbudget, net.executor().cmm()),
        Err(ServingProofError::OverBudget(0))
    );
}

#[test]
fn sybil_receipts_cost_real_collateral() {
    // The paper's §VIII caveat: a node CAN create fake light clients and
    // serve itself. The mitigation it suggests (and we demonstrate) is
    // that every sybil channel still requires a real on-chain budget
    // deposit, so self-serving is capital-intensive, not free.
    let mut net = Network::new();
    let node = net.spawn_node(b"sy-node", U256::from(10u64));
    let mut sybil = net.spawn_client(b"sy-sybil", U256::from(10u64));
    let sybil_budget = U256::from(500u64);
    let before = net.chain().balance(&sybil.address());
    net.connect(&mut sybil, node, sybil_budget).unwrap();
    let after = net.chain().balance(&sybil.address());
    // The budget is genuinely locked on-chain for the channel's lifetime.
    assert_eq!(before - after, sybil_budget);
    let (outcome, _) = net
        .parp_call(&mut sybil, node, RpcCall::BlockNumber)
        .unwrap();
    assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
    let proof = collect_serving_proof(net.node(node));
    let total = verify_serving_proof(&proof, net.executor().cmm()).unwrap();
    // The claim verifies, but is bounded by the locked budget.
    assert!(total <= sybil_budget);
}
