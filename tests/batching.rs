//! End-to-end tests for the batched request pipeline: one signature, many
//! calls, one deduplicated multiproof — with per-item fraud attribution
//! and cumulative-payment monotonicity across mixed single/batch traffic.

use parp_suite::contracts::{FraudVerdict, ParpBatchRequest, RpcCall};
use parp_suite::core::{
    Classification, Misbehavior, ProcessBatchOutcome, ProcessOutcome, ServeError,
};
use parp_suite::crypto::keccak256;
use parp_suite::net::Network;
use parp_suite::primitives::{Address, H256, U256};
use parp_suite::trie::{verify_many, verify_proof};

const PRICE: u64 = 10;

fn connected() -> (
    Network,
    parp_suite::net::NodeId,
    parp_suite::core::LightClient,
) {
    let mut net = Network::new();
    let node = net.spawn_node(b"batch-node", U256::from(PRICE));
    let mut client = net.spawn_client(b"batch-client", U256::from(PRICE));
    net.connect(&mut client, node, U256::from(1_000_000u64))
        .expect("connect");
    (net, node, client)
}

fn funded_addresses(net: &mut Network, n: u64) -> Vec<Address> {
    let addresses: Vec<Address> = (0..n)
        .map(|i| Address::from_low_u64_be(0xB000 + i))
        .collect();
    for address in &addresses {
        net.fund(*address);
    }
    addresses
}

#[test]
fn batch_of_reads_verifies_end_to_end() {
    let (mut net, node, mut client) = connected();
    let addresses = funded_addresses(&mut net, 8);
    net.sync_client(&mut client);
    let calls: Vec<RpcCall> = addresses
        .iter()
        .map(|a| RpcCall::GetBalance { address: *a })
        .chain([RpcCall::BlockNumber])
        .collect();
    let n = calls.len() as u64;
    let (outcome, stats) = net
        .parp_batch_call(&mut client, node, calls)
        .expect("batch call");
    let ProcessBatchOutcome::Valid { results, proven } = outcome else {
        panic!("expected valid batch, got {outcome:?}");
    };
    assert_eq!(results.len(), n as usize);
    // Balance reads are multiproof-backed; the chain-tip query is not.
    assert_eq!(proven[..8], [true; 8]);
    assert!(!proven[8]);
    assert!(stats.proof_bytes > 0);
    // One batch advanced the ledger by N × price.
    assert_eq!(client.channel().unwrap().spent, U256::from(n * PRICE));
    assert_eq!(client.valid_responses(), n);
    assert_eq!(net.node(node).requests_served(), n);
}

#[test]
fn empty_batch_rejected_by_client_and_server() {
    let (mut net, node, mut client) = connected();
    // Client refuses to build one.
    assert_eq!(
        client.request_batch(Vec::new()),
        Err(parp_suite::core::ClientError::EmptyBatch)
    );
    // A hand-built empty batch is refused by the server.
    let request = ParpBatchRequest::build(
        client.secret(),
        client.channel().unwrap().id,
        client.tip().unwrap().hash(),
        U256::from(PRICE),
        Vec::new(),
    );
    assert!(matches!(
        net.serve_batch(node, &request),
        Err(parp_suite::net::SimError::Serve(ServeError::EmptyBatch))
    ));
}

#[test]
fn unbatchable_calls_rejected() {
    // With the multi-header envelope, every *read* batches — including
    // historical inclusion lookups. Only writes travel alone.
    let (mut net, node, mut client) = connected();
    let write = RpcCall::SendRawTransaction { raw: vec![1, 2, 3] };
    assert!(RpcCall::GetTransactionByHash {
        hash: keccak256(b"tx"),
    }
    .batchable());
    assert!(RpcCall::GetTransactionReceipt {
        hash: keccak256(b"tx"),
    }
    .batchable());
    assert!(!write.batchable());
    assert_eq!(
        client.request_batch(vec![RpcCall::BlockNumber, write.clone()]),
        Err(parp_suite::core::ClientError::UnbatchableCall)
    );
    // The server refuses them too, independently of the client.
    let request = ParpBatchRequest::build(
        client.secret(),
        client.channel().unwrap().id,
        client.tip().unwrap().hash(),
        U256::from(2 * PRICE),
        vec![RpcCall::BlockNumber, write],
    );
    assert!(matches!(
        net.serve_batch(node, &request),
        Err(parp_suite::net::SimError::Serve(
            ServeError::UnbatchableCall
        ))
    ));
}

#[test]
fn unknown_block_hash_rejected_not_served_at_genesis() {
    // A request pinned to a block hash the node has never seen must be
    // refused outright — the old behaviour silently mapped it to height
    // 0, which would have judged the timestamp check against a
    // fabricated genesis-height view.
    let (mut net, node, client) = connected();
    let ghost_hash = keccak256(b"no-such-block");
    let channel_id = client.channel().unwrap().id;
    let batch = ParpBatchRequest::build(
        client.secret(),
        channel_id,
        ghost_hash,
        U256::from(PRICE),
        vec![RpcCall::BlockNumber],
    );
    assert!(matches!(
        net.serve_batch(node, &batch),
        Err(parp_suite::net::SimError::Serve(
            ServeError::UnknownBlockHash(h)
        )) if h == ghost_hash
    ));
    let single = parp_suite::contracts::ParpRequest::build(
        client.secret(),
        channel_id,
        ghost_hash,
        U256::from(PRICE),
        RpcCall::BlockNumber,
    );
    assert!(matches!(
        net.serve(node, &single),
        Err(parp_suite::net::SimError::Serve(
            ServeError::UnknownBlockHash(h)
        )) if h == ghost_hash
    ));
    // Nothing was served or charged.
    assert_eq!(net.node(node).requests_served(), 0);
}

#[test]
fn batches_mix_balance_and_nonce_reads_over_one_multiproof() {
    let (mut net, node, mut client) = connected();
    let addresses = funded_addresses(&mut net, 3);
    net.sync_client(&mut client);
    // Interleave balance and nonce reads of the same and different
    // accounts; both are proven by the same account multiproof.
    let calls = vec![
        RpcCall::GetBalance {
            address: addresses[0],
        },
        RpcCall::GetTransactionCount {
            address: addresses[0],
        },
        RpcCall::GetTransactionCount {
            address: addresses[1],
        },
        RpcCall::GetBalance {
            address: addresses[2],
        },
        RpcCall::GetTransactionCount {
            address: client.address(),
        },
    ];
    let n = calls.len() as u64;
    let (outcome, stats) = net
        .parp_batch_call(&mut client, node, calls)
        .expect("batch call");
    let ProcessBatchOutcome::Valid { results, proven } = outcome else {
        panic!("expected valid batch, got {outcome:?}");
    };
    assert!(proven.iter().all(|p| *p), "all five items are state-proven");
    assert!(stats.proof_bytes > 0);
    // Balance and nonce reads of the same account return the same
    // proven account record; the client decodes the field it wants.
    assert_eq!(results[0], results[1]);
    let account = parp_suite::chain::Account::decode(&results[1]).expect("account record");
    assert!(account.balance > U256::ZERO);
    assert_eq!(account.nonce, 0, "freshly funded account has nonce 0");
    // The client's own account opened the channel: nonce advanced.
    let own = parp_suite::chain::Account::decode(&results[4]).expect("account record");
    assert!(own.nonce > 0, "channel-open transaction bumped the nonce");
    assert_eq!(client.channel().unwrap().spent, U256::from(n * PRICE));

    // A *forged* nonce answer inside a batch is provable fraud, exactly
    // like a forged balance.
    net.node_mut(node)
        .set_misbehavior(Misbehavior::ForgedResult);
    let calls = vec![
        RpcCall::GetTransactionCount {
            address: addresses[0],
        },
        RpcCall::GetTransactionCount {
            address: addresses[1],
        },
    ];
    let (outcome, _) = net
        .parp_batch_call(&mut client, node, calls)
        .expect("batch call");
    let ProcessBatchOutcome::Fraud { items, evidence } = outcome else {
        panic!("expected fraud, got {outcome:?}");
    };
    assert_eq!(items[0], Classification::Valid);
    assert_eq!(
        items[1],
        Classification::Fraudulent(FraudVerdict::InvalidProof)
    );
    assert_eq!(evidence.item, Some(1));
}

#[test]
fn duplicate_keys_deduplicated_in_multiproof() {
    let (mut net, node, mut client) = connected();
    let addresses = funded_addresses(&mut net, 2);
    net.sync_client(&mut client);
    let target = addresses[0];
    // Five reads of the same account: the multiproof must carry that
    // account's path once, not five times.
    let repeated = client
        .request_batch(vec![RpcCall::GetBalance { address: target }; 5])
        .expect("batch request");
    let repeated_response = net.serve_batch(node, &repeated).expect("serve");
    net.sync_client(&mut client);
    // The deduplicated proof verifies all five items.
    let outcome = client
        .process_batch_response(&repeated_response)
        .expect("process");
    let ProcessBatchOutcome::Valid { results, .. } = outcome else {
        panic!("expected valid, got {outcome:?}");
    };
    assert_eq!(results.len(), 5);
    assert!(results.iter().all(|r| r == &results[0]));
    // A single read of the same account needs the identical node set:
    // duplicate keys contributed nothing extra.
    let distinct = client
        .request_batch(vec![RpcCall::GetBalance { address: target }])
        .expect("batch request");
    let distinct_response = net.serve_batch(node, &distinct).expect("serve");
    assert_eq!(
        repeated_response.multiproof, distinct_response.multiproof,
        "duplicate keys must not enlarge the multiproof"
    );
}

#[test]
fn one_forged_item_classified_per_item_and_yields_evidence() {
    let (mut net, node, mut client) = connected();
    let addresses = funded_addresses(&mut net, 4);
    net.sync_client(&mut client);
    // Forge only the last item's result; the other three stay honest.
    net.node_mut(node)
        .set_misbehavior(Misbehavior::ForgedResult);
    let calls: Vec<RpcCall> = addresses
        .iter()
        .map(|a| RpcCall::GetBalance { address: *a })
        .collect();
    let (outcome, _) = net
        .parp_batch_call(&mut client, node, calls)
        .expect("batch call");
    let ProcessBatchOutcome::Fraud { items, evidence } = outcome else {
        panic!("expected fraud, got {outcome:?}");
    };
    assert_eq!(items.len(), 4);
    assert_eq!(items[0], Classification::Valid);
    assert_eq!(items[1], Classification::Valid);
    assert_eq!(items[2], Classification::Valid);
    assert_eq!(
        items[3],
        Classification::Fraudulent(FraudVerdict::InvalidProof)
    );
    assert_eq!(evidence.item, Some(3));
    assert_eq!(evidence.verdict, FraudVerdict::InvalidProof);
    // The evidence binds the node's own signature to the forged item.
    assert_eq!(evidence.response.signer(), Some(net.node(node).address()));
}

#[test]
fn batch_level_fraud_condemns_every_item() {
    for (misbehavior, verdict) in [
        (Misbehavior::WrongAmount, FraudVerdict::AmountMismatch),
        (Misbehavior::StaleHeight, FraudVerdict::StaleBlockHeight),
        (Misbehavior::CorruptProof, FraudVerdict::InvalidProof),
        (Misbehavior::OmitProof, FraudVerdict::InvalidProof),
    ] {
        let (mut net, node, mut client) = connected();
        let addresses = funded_addresses(&mut net, 3);
        net.sync_client(&mut client);
        net.node_mut(node).set_misbehavior(misbehavior);
        let calls: Vec<RpcCall> = addresses
            .iter()
            .map(|a| RpcCall::GetBalance { address: *a })
            .collect();
        let (outcome, _) = net
            .parp_batch_call(&mut client, node, calls)
            .expect("batch call");
        let ProcessBatchOutcome::Fraud { items, evidence } = outcome else {
            panic!("{misbehavior:?}: expected fraud, got {outcome:?}");
        };
        assert_eq!(evidence.item, None, "{misbehavior:?} is batch-level");
        assert_eq!(evidence.verdict, verdict, "{misbehavior:?}");
        assert!(
            items
                .iter()
                .all(|c| *c == Classification::Fraudulent(verdict)),
            "{misbehavior:?}: every item condemned"
        );
    }
}

#[test]
fn unprovable_batch_misbehavior_is_invalid_not_fraud() {
    for misbehavior in [
        Misbehavior::WrongChannelId,
        Misbehavior::WrongResponseKey,
        Misbehavior::WrongRequestHash,
    ] {
        let (mut net, node, mut client) = connected();
        let addresses = funded_addresses(&mut net, 2);
        net.sync_client(&mut client);
        net.node_mut(node).set_misbehavior(misbehavior);
        let calls: Vec<RpcCall> = addresses
            .iter()
            .map(|a| RpcCall::GetBalance { address: *a })
            .collect();
        let (outcome, _) = net
            .parp_batch_call(&mut client, node, calls)
            .expect("batch call");
        assert!(
            matches!(outcome, ProcessBatchOutcome::Invalid(_)),
            "{misbehavior:?}: expected invalid, got {outcome:?}"
        );
    }
}

#[test]
fn cumulative_payment_monotonic_across_mixed_traffic() {
    let (mut net, node, mut client) = connected();
    let addresses = funded_addresses(&mut net, 4);
    net.sync_client(&mut client);
    let me = client.address();

    // Single call: spent 0 → 10.
    let (outcome, _) = net
        .parp_call(&mut client, node, RpcCall::GetBalance { address: me })
        .expect("single");
    assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
    assert_eq!(client.channel().unwrap().spent, U256::from(PRICE));

    // Batch of 4: spent 10 → 50.
    let calls: Vec<RpcCall> = addresses
        .iter()
        .map(|a| RpcCall::GetBalance { address: *a })
        .collect();
    let (outcome, _) = net
        .parp_batch_call(&mut client, node, calls)
        .expect("batch");
    assert!(matches!(outcome, ProcessBatchOutcome::Valid { .. }));
    assert_eq!(client.channel().unwrap().spent, U256::from(5 * PRICE));

    // Another single: spent 50 → 60.
    let (outcome, _) = net
        .parp_call(&mut client, node, RpcCall::BlockNumber)
        .expect("single");
    assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
    assert_eq!(client.channel().unwrap().spent, U256::from(6 * PRICE));

    // The node's receivable tracks the same cumulative amount, and its
    // per-channel call count includes the batched items.
    let channel_id = client.channel().unwrap().id;
    let served = net.node(node).served_channel(channel_id).expect("served");
    assert_eq!(served.latest_amount, U256::from(6 * PRICE));
    assert_eq!(served.calls_served, 6);

    // Replaying the committed amount (no increase) is refused: a batch
    // paying only the current total offers nothing for its items.
    let replay = ParpBatchRequest::build(
        client.secret(),
        channel_id,
        client.tip().unwrap().hash(),
        U256::from(6 * PRICE),
        vec![RpcCall::BlockNumber],
    );
    assert!(matches!(
        net.serve_batch(node, &replay),
        Err(parp_suite::net::SimError::Serve(
            ServeError::InsufficientPayment { .. }
        ))
    ));

    // An underpaying batch (N items, fewer than N × price on top) too.
    let underpay = ParpBatchRequest::build(
        client.secret(),
        channel_id,
        client.tip().unwrap().hash(),
        U256::from(6 * PRICE + PRICE), // one price for a two-item batch
        vec![RpcCall::BlockNumber, RpcCall::BlockNumber],
    );
    assert!(matches!(
        net.serve_batch(node, &underpay),
        Err(parp_suite::net::SimError::Serve(
            ServeError::InsufficientPayment { .. }
        ))
    ));
}

#[test]
fn batch_beats_singles_on_proof_bytes_and_server_time() {
    // The acceptance check: a 64-call GetBalance batch uses fewer total
    // proof bytes and lower per-call server time than 64 single calls.
    let (mut net, node, mut client) = connected();
    let addresses = funded_addresses(&mut net, 64);
    net.sync_client(&mut client);

    let mut singles_proof_bytes = 0usize;
    let mut singles_server_us = 0u64;
    for address in &addresses {
        let (outcome, stats) = net
            .parp_call(&mut client, node, RpcCall::GetBalance { address: *address })
            .expect("single");
        assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
        singles_proof_bytes += stats.proof_bytes;
        singles_server_us += stats.server_us;
    }

    let calls: Vec<RpcCall> = addresses
        .iter()
        .map(|a| RpcCall::GetBalance { address: *a })
        .collect();
    let (outcome, stats) = net
        .parp_batch_call(&mut client, node, calls)
        .expect("batch");
    assert!(matches!(outcome, ProcessBatchOutcome::Valid { .. }));

    assert!(
        stats.proof_bytes < singles_proof_bytes,
        "batch multiproof ({} B) must undercut 64 single proofs ({} B)",
        stats.proof_bytes,
        singles_proof_bytes
    );
    // Per-call server time: the batch's one signature check and one trie
    // build amortize over all 64 items.
    assert!(
        stats.server_us < singles_server_us,
        "batch server time ({} µs for 64 calls) must undercut 64 singles ({} µs)",
        stats.server_us,
        singles_server_us
    );
}

#[test]
fn batch_multiproof_verifies_against_header_root() {
    // The served multiproof is a real trie multiproof: verify it directly
    // against the header's state root with verify_many.
    let (mut net, node, mut client) = connected();
    let addresses = funded_addresses(&mut net, 6);
    net.sync_client(&mut client);
    let calls: Vec<RpcCall> = addresses
        .iter()
        .map(|a| RpcCall::GetBalance { address: *a })
        .collect();
    let request = client.request_batch(calls).expect("request");
    let response = net.serve_batch(node, &request).expect("serve");
    net.sync_client(&mut client);
    let header = client.header(response.block_number).expect("header");
    let keys: Vec<Vec<u8>> = addresses
        .iter()
        .map(|a| keccak256(a.as_bytes()).as_bytes().to_vec())
        .collect();
    let proven = verify_many(header.state_root, &keys, &response.multiproof).expect("verifies");
    for (value, result) in proven.iter().zip(&response.results) {
        assert_eq!(value.as_ref().expect("funded account"), result);
    }
}

#[test]
fn batch_fraud_evidence_slashes_on_chain() {
    // The full accountability loop for batches: a forged item inside a
    // signed batch → client evidence → witness relays the proof → the
    // FDM condemns the node, slashes its deposit and rewards the client.
    let mut net = Network::new();
    let rogue = net.spawn_node(b"batch-rogue", U256::from(PRICE));
    let witness = net.spawn_node(b"batch-witness", U256::from(PRICE));
    let mut client = net.spawn_client(b"batch-victim", U256::from(PRICE));
    net.connect(&mut client, rogue, U256::from(100_000u64))
        .expect("connect");
    let addresses = funded_addresses(&mut net, 4);
    net.sync_client(&mut client);
    net.node_mut(rogue)
        .set_misbehavior(Misbehavior::ForgedResult);
    let calls: Vec<RpcCall> = addresses
        .iter()
        .map(|a| RpcCall::GetBalance { address: *a })
        .collect();
    let (outcome, _) = net
        .parp_batch_call(&mut client, rogue, calls)
        .expect("batch call");
    let ProcessBatchOutcome::Fraud { evidence, .. } = outcome else {
        panic!("expected fraud, got {outcome:?}");
    };
    let offender = net.node(rogue).address();
    let deposit_before = net.executor().fndm().deposit_of(&offender);
    assert!(deposit_before > U256::ZERO);
    assert!(
        net.report_batch_fraud(&evidence, witness).expect("relay"),
        "batch fraud proof must be accepted on-chain"
    );
    assert_eq!(net.executor().fndm().deposit_of(&offender), U256::ZERO);
    let record = net
        .executor()
        .fdm()
        .record(&evidence.request.request_hash)
        .expect("fraud record");
    assert_eq!(record.offender, offender);
    assert_eq!(record.verdict, FraudVerdict::InvalidProof);
    assert_eq!(record.slashed, deposit_before);
    // Double reporting the same batch is refused.
    assert!(!net.report_batch_fraud(&evidence, witness).expect("relay"));
}

#[test]
fn honest_batch_cannot_be_framed() {
    // Submitting a "fraud proof" against an honestly served batch must
    // revert: the FDM finds no condition and the node keeps its deposit.
    let mut net = Network::new();
    let node = net.spawn_node(b"frame-node", U256::from(PRICE));
    let witness = net.spawn_node(b"frame-witness", U256::from(PRICE));
    let mut client = net.spawn_client(b"frame-client", U256::from(PRICE));
    net.connect(&mut client, node, U256::from(100_000u64))
        .expect("connect");
    let addresses = funded_addresses(&mut net, 3);
    net.sync_client(&mut client);
    let calls: Vec<RpcCall> = addresses
        .iter()
        .map(|a| RpcCall::GetBalance { address: *a })
        .collect();
    let request = client.request_batch(calls).expect("request");
    let response = net.serve_batch(node, &request).expect("serve");
    net.sync_client(&mut client);
    let header = client
        .header(response.block_number)
        .expect("header")
        .clone();
    let evidence = parp_suite::core::BatchFraudEvidence {
        request,
        response,
        headers: vec![header],
        verdict: FraudVerdict::InvalidProof,
        item: Some(0),
    };
    let offender = net.node(node).address();
    let deposit_before = net.executor().fndm().deposit_of(&offender);
    assert!(
        !net.report_batch_fraud(&evidence, witness).expect("relay"),
        "framing an honest batch must revert"
    );
    assert_eq!(net.executor().fndm().deposit_of(&offender), deposit_before);
}

#[test]
fn probe_batches_served_while_channel_is_closing() {
    // The §V-C Closing-channel allowance applies to batches made purely
    // of liveness probes, matching the single-call path; anything else
    // in the batch requires an Open channel.
    let (mut net, node, mut client) = connected();
    let channel_id = client.channel().unwrap().id;
    // The node secretly starts closing the channel with the zero state.
    let node_key = *net.node(node).secret();
    let close = parp_suite::contracts::ModuleCall::CloseChannel {
        channel_id,
        amount: U256::ZERO,
        payment_sig: parp_suite::crypto::sign(
            client.secret(),
            &parp_suite::contracts::payment_digest(channel_id, &U256::ZERO),
        ),
    };
    assert!(net
        .submit_module_call(&node_key, close, U256::ZERO)
        .unwrap());
    net.sync_client(&mut client);
    // A pure probe batch is still served...
    let probes = vec![RpcCall::GetChannelStatus { channel_id }; 2];
    let request = client.request_batch(probes).expect("probe batch");
    let response = net
        .serve_batch(node, &request)
        .expect("served while closing");
    assert!(response
        .results
        .iter()
        .all(|r| !parp_suite::core::LightClient::channel_reported_open(r)));
    // ...but a batch with any other call is refused.
    let mixed = ParpBatchRequest::build(
        client.secret(),
        channel_id,
        client.tip().unwrap().hash(),
        U256::from(4 * PRICE),
        vec![
            RpcCall::GetChannelStatus { channel_id },
            RpcCall::BlockNumber,
        ],
    );
    assert!(matches!(
        net.serve_batch(node, &mixed),
        Err(parp_suite::net::SimError::Serve(
            ServeError::ChannelNotOpen(_)
        ))
    ));
}

#[test]
fn multi_block_mixed_batch_round_trips() {
    // The acceptance scenario: one signed batch mixing GetBalance,
    // GetTransactionByHash and GetTransactionReceipt across ≥ 3 distinct
    // blocks, every item verified through the multi-header envelope.
    let (mut net, node, mut client) = connected();
    let addresses = funded_addresses(&mut net, 3);
    net.sync_client(&mut client);
    // The last three mined blocks each hold one faucet transfer.
    let transactions = net.transaction_locations();
    let lookups: Vec<(H256, u64)> = transactions[transactions.len() - 3..].to_vec();
    let inclusion_blocks: std::collections::BTreeSet<u64> =
        lookups.iter().map(|(_, block)| *block).collect();
    assert_eq!(
        inclusion_blocks.len(),
        3,
        "three distinct containing blocks"
    );

    let calls = vec![
        RpcCall::GetBalance {
            address: addresses[0],
        },
        RpcCall::GetTransactionByHash { hash: lookups[0].0 },
        RpcCall::GetTransactionCount {
            address: addresses[1],
        },
        RpcCall::GetTransactionReceipt { hash: lookups[1].0 },
        RpcCall::GetTransactionByHash { hash: lookups[2].0 },
        RpcCall::BlockNumber,
        // Unknown hash: served as an unproven "not found".
        RpcCall::GetTransactionByHash {
            hash: keccak256(b"no-such-tx"),
        },
    ];
    let n = calls.len() as u64;
    let (outcome, stats) = net
        .parp_batch_call(&mut client, node, calls)
        .expect("batch call");
    let ProcessBatchOutcome::Valid { results, proven } = outcome else {
        panic!("expected valid batch, got {outcome:?}");
    };
    assert_eq!(results.len(), n as usize);
    assert_eq!(
        proven,
        vec![true, true, true, true, true, false, false],
        "state + found-inclusion items proven, chain query and not-found unproven"
    );
    assert!(results[6].is_empty(), "unknown lookup answers empty");
    assert!(stats.proof_bytes > 0);
    assert_eq!(client.channel().unwrap().spent, U256::from(n * PRICE));
    assert_eq!(client.valid_responses(), n);
}

#[test]
fn multi_block_batch_headers_and_proofs_bind_per_block() {
    // The served envelope itself: deduplicated headers cover exactly the
    // referenced blocks, and each inclusion proof verifies against its
    // own block's transaction/receipt root — not the snapshot's.
    let (mut net, node, mut client) = connected();
    funded_addresses(&mut net, 3);
    // One empty block on top: the snapshot head is distinct from every
    // lookup's containing block, so the envelope carries 4 headers.
    net.advance_blocks(1).expect("empty block");
    net.sync_client(&mut client);
    let transactions = net.transaction_locations();
    let lookups: Vec<(H256, u64)> = transactions[transactions.len() - 3..].to_vec();
    let calls = vec![
        RpcCall::GetTransactionByHash { hash: lookups[0].0 },
        RpcCall::GetTransactionReceipt { hash: lookups[1].0 },
        RpcCall::GetTransactionByHash { hash: lookups[2].0 },
    ];
    let request = client.request_batch(calls).expect("request");
    let response = net.serve_batch(node, &request).expect("serve");
    net.sync_client(&mut client);

    // Items bind to their containing blocks, not the snapshot.
    assert_eq!(response.block_number, net.chain().height());
    assert_eq!(
        response.item_blocks,
        vec![lookups[0].1, lookups[1].1, lookups[2].1]
    );
    // One carried header per referenced block (3 inclusion + snapshot),
    // ascending, each matching the client's own trusted header.
    let referenced = response.referenced_blocks();
    assert_eq!(referenced.len(), 4);
    assert_eq!(response.headers.len(), referenced.len());
    for (bytes, number) in response.headers.iter().zip(&referenced) {
        let carried = parp_suite::chain::Header::decode(bytes).expect("carried header");
        assert_eq!(carried.number, *number);
        assert_eq!(
            carried.hash(),
            client.header(*number).expect("synced").hash()
        );
    }

    // Each inclusion proof verifies against its own block's root.
    let tx_header = client.header(lookups[0].1).expect("synced");
    let index = parp_suite::rlp::decode(&response.results[0])
        .unwrap()
        .as_u64()
        .unwrap();
    let proven_tx = verify_proof(
        tx_header.transactions_root,
        &parp_suite::rlp::encode_u64(index),
        &response.item_proofs[0],
    )
    .expect("walks")
    .expect("included");
    assert_eq!(keccak256(&proven_tx), lookups[0].0);

    let receipt_header = client.header(lookups[1].1).expect("synced");
    let fields = parp_suite::rlp::decode_list_of(&response.results[1], 2).expect("receipt result");
    let receipt_index = fields[0].as_u64().unwrap();
    let claimed_receipt = fields[1].as_bytes().unwrap();
    let proven_receipt = verify_proof(
        receipt_header.receipts_root,
        &parp_suite::rlp::encode_u64(receipt_index),
        &response.item_proofs[1],
    )
    .expect("walks")
    .expect("included");
    assert_eq!(proven_receipt, claimed_receipt);

    // And the client classifies the whole thing Valid.
    let outcome = client.process_batch_response(&response).expect("process");
    assert!(matches!(outcome, ProcessBatchOutcome::Valid { .. }));
}

#[test]
fn forged_inclusion_item_in_multi_block_batch_slashed() {
    // The acceptance fraud case: a forged receipt inside a multi-block
    // batch is caught per item, and the evidence (with its multi-header
    // set) slashes the node through submitBatchFraudProof.
    let mut net = Network::new();
    let rogue = net.spawn_node(b"mh-rogue", U256::from(PRICE));
    let witness = net.spawn_node(b"mh-witness", U256::from(PRICE));
    let mut client = net.spawn_client(b"mh-victim", U256::from(PRICE));
    net.connect(&mut client, rogue, U256::from(100_000u64))
        .expect("connect");
    let addresses = funded_addresses(&mut net, 2);
    // The lookup target must live strictly below the serving snapshot.
    net.advance_blocks(1).expect("empty block");
    net.sync_client(&mut client);
    let transactions = net.transaction_locations();
    let (target_hash, target_block) = *transactions.last().expect("mined");
    assert!(target_block < net.chain().height(), "historical block");

    net.node_mut(rogue)
        .set_misbehavior(Misbehavior::ForgedResult);
    // Last item is the receipt lookup: the forgery doctors its contents
    // while keeping the [index, receipt] envelope well-formed.
    let calls = vec![
        RpcCall::GetBalance {
            address: addresses[0],
        },
        RpcCall::GetTransactionByHash { hash: target_hash },
        RpcCall::GetTransactionReceipt { hash: target_hash },
    ];
    let (outcome, _) = net
        .parp_batch_call(&mut client, rogue, calls)
        .expect("batch call");
    let ProcessBatchOutcome::Fraud { items, evidence } = outcome else {
        panic!("expected fraud, got {outcome:?}");
    };
    assert_eq!(items[0], Classification::Valid);
    assert_eq!(items[1], Classification::Valid);
    assert_eq!(
        items[2],
        Classification::Fraudulent(FraudVerdict::InvalidProof)
    );
    assert_eq!(evidence.item, Some(2));
    // The evidence carries the full multi-header set: snapshot block +
    // the lookup's containing block.
    assert!(evidence.headers.iter().any(|h| h.number == target_block));
    assert!(evidence
        .headers
        .iter()
        .any(|h| h.number == evidence.response.block_number));

    let offender = net.node(rogue).address();
    let deposit_before = net.executor().fndm().deposit_of(&offender);
    assert!(deposit_before > U256::ZERO);
    assert!(
        net.report_batch_fraud(&evidence, witness).expect("relay"),
        "multi-header batch fraud proof must be accepted on-chain"
    );
    assert_eq!(net.executor().fndm().deposit_of(&offender), U256::ZERO);
    let record = net
        .executor()
        .fdm()
        .record(&evidence.request.request_hash)
        .expect("fraud record");
    assert_eq!(record.offender, offender);
    assert_eq!(record.verdict, FraudVerdict::InvalidProof);
    // Double reporting the same batch is refused.
    assert!(!net.report_batch_fraud(&evidence, witness).expect("relay"));
}

#[test]
fn unknown_get_header_rejected_not_served_empty() {
    // Regression for the silent-empty-header bug: GetHeader for a block
    // this node does not have used to answer an empty unproven payload
    // indistinguishable from a real header. It must now refuse, on the
    // single and the batched path, without charging.
    let (mut net, node, mut client) = connected();
    net.sync_client(&mut client);
    let beyond = net.chain().height() + 100;
    let channel_id = client.channel().unwrap().id;

    let single = parp_suite::contracts::ParpRequest::build(
        client.secret(),
        channel_id,
        client.tip().unwrap().hash(),
        U256::from(PRICE),
        RpcCall::GetHeader { number: beyond },
    );
    assert!(matches!(
        net.serve(node, &single),
        Err(parp_suite::net::SimError::Serve(ServeError::UnknownBlock(n))) if n == beyond
    ));

    let batch = ParpBatchRequest::build(
        client.secret(),
        channel_id,
        client.tip().unwrap().hash(),
        U256::from(2 * PRICE),
        vec![RpcCall::BlockNumber, RpcCall::GetHeader { number: beyond }],
    );
    assert!(matches!(
        net.serve_batch(node, &batch),
        Err(parp_suite::net::SimError::Serve(ServeError::UnknownBlock(n))) if n == beyond
    ));
    assert_eq!(net.node(node).requests_served(), 0, "nothing charged");

    // A known header is still served, and its payload is the real one.
    let (outcome, _) = net
        .parp_call(&mut client, node, RpcCall::GetHeader { number: 0 })
        .expect("known header");
    let ProcessOutcome::Valid { result, .. } = outcome else {
        panic!("expected valid, got {outcome:?}");
    };
    assert_eq!(
        result,
        net.chain().block(0).unwrap().header.encode(),
        "served header payload is the genesis header"
    );
}

#[test]
fn fresh_item_fraud_slashable_despite_out_of_window_lookup() {
    // An honest historical lookup whose containing block fell out of
    // the 256-block BLOCKHASH window must not shield fraud in the fresh
    // items next to it: the FDM skips the unvalidatable header and
    // still condemns the forged state item against the snapshot root.
    let mut net = Network::new();
    let rogue = net.spawn_node(b"window-rogue", U256::from(PRICE));
    let witness = net.spawn_node(b"window-witness", U256::from(PRICE));
    let mut client = net.spawn_client(b"window-victim", U256::from(PRICE));
    net.connect(&mut client, rogue, U256::from(100_000u64))
        .expect("connect");
    let addresses = funded_addresses(&mut net, 1);
    let (old_hash, old_block) = *net.transaction_locations().last().expect("mined");
    // Push the lookup's block far outside the BLOCKHASH window.
    net.advance_blocks(parp_suite::chain::BLOCK_HASH_WINDOW + 5)
        .expect("advance");
    net.sync_client(&mut client);
    assert!(net.chain().height() - old_block > parp_suite::chain::BLOCK_HASH_WINDOW);

    // Last item is the state read: ForgedResult forges it; the old
    // lookup stays honest.
    net.node_mut(rogue)
        .set_misbehavior(Misbehavior::ForgedResult);
    let calls = vec![
        RpcCall::GetTransactionByHash { hash: old_hash },
        RpcCall::GetBalance {
            address: addresses[0],
        },
    ];
    let (outcome, _) = net
        .parp_batch_call(&mut client, rogue, calls)
        .expect("batch call");
    let ProcessBatchOutcome::Fraud { items, evidence } = outcome else {
        panic!("expected fraud, got {outcome:?}");
    };
    // The client (which holds every header) judges both items.
    assert_eq!(items[0], Classification::Valid);
    assert_eq!(
        items[1],
        Classification::Fraudulent(FraudVerdict::InvalidProof)
    );
    // The evidence carries the old header too; the FDM skips it (it
    // cannot validate it) and slashes on the fresh item regardless.
    let offender = net.node(rogue).address();
    assert!(net.executor().fndm().deposit_of(&offender) > U256::ZERO);
    assert!(
        net.report_batch_fraud(&evidence, witness).expect("relay"),
        "out-of-window honest lookup must not block the slash"
    );
    assert_eq!(net.executor().fndm().deposit_of(&offender), U256::ZERO);
}

#[test]
fn forged_transaction_lookup_in_batch_is_provable_fraud() {
    // A doctored transaction-index answer keeps its rlp(index) shape,
    // so the per-item check proves it wrong (fraud) rather than merely
    // failing to parse it (invalid).
    let (mut net, node, mut client) = connected();
    funded_addresses(&mut net, 2);
    net.advance_blocks(1).expect("empty block");
    net.sync_client(&mut client);
    let (tx_hash, _) = *net.transaction_locations().last().expect("mined");
    net.node_mut(node)
        .set_misbehavior(Misbehavior::ForgedResult);
    let calls = vec![
        RpcCall::BlockNumber,
        RpcCall::GetTransactionByHash { hash: tx_hash },
    ];
    let (outcome, _) = net
        .parp_batch_call(&mut client, node, calls)
        .expect("batch call");
    let ProcessBatchOutcome::Fraud { items, evidence } = outcome else {
        panic!("expected fraud, got {outcome:?}");
    };
    assert_eq!(items[0], Classification::Valid);
    assert_eq!(
        items[1],
        Classification::Fraudulent(FraudVerdict::InvalidProof)
    );
    assert_eq!(evidence.item, Some(1));
}
