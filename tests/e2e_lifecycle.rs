//! End-to-end integration: the full PARP connection lifecycle of §IV-E —
//! bootstrap, connection setup, active phase, closure and settlement —
//! across every crate in the workspace.

use parp_suite::contracts::{ChannelStatus, RpcCall};
use parp_suite::core::{ClientState, ProcessOutcome};
use parp_suite::net::Network;
use parp_suite::primitives::{Address, U256};

#[test]
fn full_lifecycle_with_cooperative_close() {
    let mut net = Network::new();
    let node = net.spawn_node(b"e2e-node", U256::from(10u64));
    let mut client = net.spawn_client(b"e2e-client", U256::from(10u64));

    // Discovery via the on-chain registry (§IV-A).
    let registry = net.registry();
    assert!(registry.contains(&net.node(node).address()));

    // Bootstrap + connection setup.
    let budget = U256::from(10_000u64);
    let channel_id = net.connect(&mut client, node, budget).unwrap();
    assert_eq!(client.state(), ClientState::Bonded);
    assert_eq!(
        net.executor().cmm().channel(channel_id).unwrap().status,
        ChannelStatus::Open
    );
    let balance_before_close = net.chain().balance(&client.address());

    // Active phase: a mix of verified reads and writes.
    let me = client.address();
    for i in 0..5 {
        let (outcome, stats) = net
            .parp_call(&mut client, node, RpcCall::GetBalance { address: me })
            .unwrap();
        let ProcessOutcome::Valid { proven, .. } = outcome else {
            panic!("read {i} not valid");
        };
        assert!(proven, "balance reads carry Merkle proofs");
        assert!(stats.request_bytes > 200);
    }
    let (outcome, _) = net
        .parp_call(&mut client, node, RpcCall::BlockNumber)
        .unwrap();
    assert!(matches!(outcome, ProcessOutcome::Valid { .. }));

    // The client committed 6 calls x 10 wei.
    assert_eq!(client.channel().unwrap().spent, U256::from(60u64));
    assert_eq!(net.node(node).requests_served(), 6);

    // Cooperative closure: client closes, window passes, settlement.
    let node_balance_before = net.chain().balance(&net.node(node).address());
    net.close_cooperatively(&mut client, node).unwrap();
    assert_eq!(client.state(), ClientState::Idle);
    assert_eq!(
        net.executor().cmm().channel(channel_id).unwrap().status,
        ChannelStatus::Closed
    );
    // The node earned exactly the cumulative amount...
    let node_balance_after = net.chain().balance(&net.node(node).address());
    assert_eq!(node_balance_after - node_balance_before, U256::from(60u64));
    // ...and the client got the unspent budget back (10_000 - 60).
    let balance_after_close = net.chain().balance(&client.address());
    assert_eq!(
        balance_after_close - balance_before_close,
        budget - U256::from(60u64)
    );
}

#[test]
fn node_redeems_with_clients_latest_signature() {
    let mut net = Network::new();
    let node = net.spawn_node(b"redeem-node", U256::from(10u64));
    let mut client = net.spawn_client(b"redeem-client", U256::from(10u64));
    net.connect(&mut client, node, U256::from(1_000u64))
        .unwrap();

    for _ in 0..3 {
        let (outcome, _) = net
            .parp_call(&mut client, node, RpcCall::BlockNumber)
            .unwrap();
        assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
    }
    // The *node* initiates closure using the client's σ_a.
    let close_call = net.node(node).close_channel_call(0).unwrap();
    let node_key = *net.node(node).secret();
    assert!(net
        .submit_module_call(&node_key, close_call, U256::ZERO)
        .unwrap());
    net.advance_blocks(parp_suite::contracts::DISPUTE_WINDOW_BLOCKS)
        .unwrap();
    let before = net.chain().balance(&net.node(node).address());
    assert!(net
        .submit_module_call(
            &node_key,
            parp_suite::contracts::ModuleCall::ConfirmClosure { channel_id: 0 },
            U256::ZERO,
        )
        .unwrap());
    let after = net.chain().balance(&net.node(node).address());
    assert_eq!(after - before, U256::from(30u64));
}

#[test]
fn client_cannot_overdraw_budget() {
    let mut net = Network::new();
    let node = net.spawn_node(b"budget-node", U256::from(40u64));
    let mut client = net.spawn_client(b"budget-client", U256::from(40u64));
    net.connect(&mut client, node, U256::from(100u64)).unwrap();
    // Two calls fit (40, 80); the third (120) exceeds the 100 budget.
    for _ in 0..2 {
        let (outcome, _) = net
            .parp_call(&mut client, node, RpcCall::BlockNumber)
            .unwrap();
        assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
    }
    let err = net
        .parp_call(&mut client, node, RpcCall::BlockNumber)
        .unwrap_err();
    assert!(err.to_string().contains("budget"), "got: {err}");
}

#[test]
fn write_workload_lands_on_chain_with_proof() {
    let mut net = Network::new();
    let node = net.spawn_node(b"write-node", U256::from(10u64));
    let mut client = net.spawn_client(b"write-client", U256::from(10u64));
    net.connect(&mut client, node, U256::from(10_000u64))
        .unwrap();

    let sender = parp_suite::crypto::SecretKey::from_seed(b"write-sender");
    net.fund(sender.address());
    net.sync_client(&mut client);
    let recipient = Address::from_low_u64_be(0xabcdef);
    let tx = parp_suite::chain::Transaction {
        nonce: 0,
        gas_price: U256::ZERO,
        gas_limit: 21_000,
        to: Some(recipient),
        value: U256::from(777u64),
        data: Vec::new(),
    }
    .sign(&sender);
    let (outcome, stats) = net
        .parp_call(
            &mut client,
            node,
            RpcCall::SendRawTransaction { raw: tx.encode() },
        )
        .unwrap();
    let ProcessOutcome::Valid { proven, .. } = outcome else {
        panic!("write must be valid");
    };
    assert!(proven, "inclusion proof expected");
    assert!(stats.proof_bytes > 0);
    assert_eq!(net.chain().balance(&recipient), U256::from(777u64));
}

#[test]
fn receipt_queries_are_proven_against_the_receipt_trie() {
    let mut net = Network::new();
    let node = net.spawn_node(b"rcpt-node", U256::from(10u64));
    let mut client = net.spawn_client(b"rcpt-client", U256::from(10u64));
    net.connect(&mut client, node, U256::from(10_000u64))
        .unwrap();

    // Include a transfer through the node, then query its receipt.
    let sender = parp_suite::crypto::SecretKey::from_seed(b"rcpt-sender");
    net.fund(sender.address());
    net.sync_client(&mut client);
    let tx = parp_suite::chain::Transaction {
        nonce: 0,
        gas_price: U256::ZERO,
        gas_limit: 21_000,
        to: Some(Address::from_low_u64_be(0x22)),
        value: U256::from(9u64),
        data: Vec::new(),
    }
    .sign(&sender);
    let tx_hash = tx.hash();
    let (outcome, _) = net
        .parp_call(
            &mut client,
            node,
            RpcCall::SendRawTransaction { raw: tx.encode() },
        )
        .unwrap();
    assert!(matches!(outcome, ProcessOutcome::Valid { .. }));

    let (outcome, stats) = net
        .parp_call(
            &mut client,
            node,
            RpcCall::GetTransactionReceipt { hash: tx_hash },
        )
        .unwrap();
    let ProcessOutcome::Valid { result, proven } = outcome else {
        panic!("receipt query must verify, got {outcome:?}");
    };
    assert!(proven, "receipt comes with a receipt-trie proof");
    assert!(stats.proof_bytes > 0);
    // The payload decodes to (index, receipt) and the receipt succeeded.
    let fields = parp_suite::rlp::decode_list_of(&result, 2).unwrap();
    let receipt = parp_suite::chain::Receipt::decode(fields[1].as_bytes().unwrap()).unwrap();
    assert!(receipt.is_success());
}

#[test]
fn forged_receipt_is_slashable() {
    let mut net = Network::new();
    let node = net.spawn_node(b"rcptf-node", U256::from(10u64));
    let witness = net.spawn_node(b"rcptf-witness", U256::from(10u64));
    let mut client = net.spawn_client(b"rcptf-client", U256::from(10u64));
    net.connect(&mut client, node, U256::from(10_000u64))
        .unwrap();
    let sender = parp_suite::crypto::SecretKey::from_seed(b"rcptf-sender");
    net.fund(sender.address());
    net.sync_client(&mut client);
    let tx = parp_suite::chain::Transaction {
        nonce: 0,
        gas_price: U256::ZERO,
        gas_limit: 21_000,
        to: Some(Address::from_low_u64_be(0x23)),
        value: U256::ONE,
        data: Vec::new(),
    }
    .sign(&sender);
    let tx_hash = tx.hash();
    let (outcome, _) = net
        .parp_call(
            &mut client,
            node,
            RpcCall::SendRawTransaction { raw: tx.encode() },
        )
        .unwrap();
    assert!(matches!(outcome, ProcessOutcome::Valid { .. }));

    // The node forges the receipt (status flipped to failure) but keeps
    // the honest proof — the contradiction is slashable.
    net.node_mut(node)
        .set_misbehavior(parp_suite::core::Misbehavior::ForgedResult);
    let (outcome, _) = net
        .parp_call(
            &mut client,
            node,
            RpcCall::GetTransactionReceipt { hash: tx_hash },
        )
        .unwrap();
    let ProcessOutcome::Fraud(evidence) = outcome else {
        panic!("forged receipt must be fraud, got {outcome:?}");
    };
    assert!(net.report_fraud(&evidence, witness).unwrap());
    assert_eq!(
        net.executor().fndm().deposit_of(&net.node(node).address()),
        U256::ZERO
    );
}

#[test]
fn historical_tx_lookup_is_valid_not_fraud() {
    // Soundness guard: proofs for old inclusions are bound to old blocks;
    // an honest node answering them must never be slashable.
    let mut net = Network::new();
    let node = net.spawn_node(b"hist-node", U256::from(10u64));
    let witness = net.spawn_node(b"hist-witness", U256::from(10u64));
    let mut client = net.spawn_client(b"hist-client", U256::from(10u64));
    net.connect(&mut client, node, U256::from(10_000u64))
        .unwrap();

    // Include a transfer, then let the chain grow well past it.
    let sender = parp_suite::crypto::SecretKey::from_seed(b"hist-sender");
    net.fund(sender.address());
    net.sync_client(&mut client);
    let tx = parp_suite::chain::Transaction {
        nonce: 0,
        gas_price: U256::ZERO,
        gas_limit: 21_000,
        to: Some(Address::from_low_u64_be(0x31)),
        value: U256::ONE,
        data: Vec::new(),
    }
    .sign(&sender);
    let tx_hash = tx.hash();
    let (outcome, _) = net
        .parp_call(
            &mut client,
            node,
            RpcCall::SendRawTransaction { raw: tx.encode() },
        )
        .unwrap();
    assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
    net.advance_blocks(10).unwrap();
    net.sync_client(&mut client);

    // The lookup answers with the *old* containing block — Valid.
    let (outcome, _) = net
        .parp_call(
            &mut client,
            node,
            RpcCall::GetTransactionByHash { hash: tx_hash },
        )
        .unwrap();
    let ProcessOutcome::Valid { proven, .. } = outcome else {
        panic!("historical lookup must be valid, got {outcome:?}");
    };
    assert!(proven);

    // A malicious client trying to frame the honest response as "stale"
    // fails on-chain.
    let request = client
        .request(RpcCall::GetTransactionByHash { hash: tx_hash })
        .unwrap();
    let response = net.serve(node, &request).unwrap();
    net.sync_client(&mut client);
    let header = net
        .chain()
        .block(response.block_number)
        .unwrap()
        .header
        .clone();
    let evidence = parp_suite::core::FraudEvidence {
        request: request.clone(),
        response: response.clone(),
        header,
        verdict: parp_suite::contracts::FraudVerdict::StaleBlockHeight,
    };
    // Commit the exchange client-side so the payment ledger stays in sync.
    let outcome = client.process_response(&response).unwrap();
    assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
    assert!(
        !net.report_fraud(&evidence, witness).unwrap(),
        "framing an honest historical lookup must revert"
    );

    // "Not found" answers are unverified but not fraudulent either.
    let missing = parp_suite::crypto::keccak256(b"no-such-tx");
    let (outcome, _) = net
        .parp_call(
            &mut client,
            node,
            RpcCall::GetTransactionByHash { hash: missing },
        )
        .unwrap();
    let ProcessOutcome::Valid { result, proven } = outcome else {
        panic!("not-found must be valid-unverified, got {outcome:?}");
    };
    assert!(result.is_empty());
    assert!(!proven);
}

#[test]
fn multiple_clients_share_one_node() {
    let mut net = Network::new();
    let node = net.spawn_node(b"shared-node", U256::from(10u64));
    let mut clients: Vec<_> = (0..4)
        .map(|i| {
            let seed = format!("shared-client-{i}");
            let mut c = net.spawn_client(seed.as_bytes(), U256::from(10u64));
            net.connect(&mut c, node, U256::from(1_000u64)).unwrap();
            c
        })
        .collect();
    // Interleaved requests: every client gets valid responses and the
    // node tracks each channel independently.
    for round in 0..3 {
        for client in clients.iter_mut() {
            let (outcome, _) = net.parp_call(client, node, RpcCall::BlockNumber).unwrap();
            assert!(
                matches!(outcome, ProcessOutcome::Valid { .. }),
                "round {round}"
            );
        }
    }
    assert_eq!(net.node(node).requests_served(), 12);
    for (id, channel) in net.node(node).served_channels() {
        assert_eq!(channel.calls_served, 3, "channel {id}");
        assert_eq!(channel.latest_amount, U256::from(30u64));
    }
}

#[test]
fn pseudonymity_no_identity_beyond_keys() {
    // The protocol's only identity material is the address; two clients
    // with different keys are unlinkable at the protocol level.
    let mut net = Network::new();
    let node = net.spawn_node(b"pseudo-node", U256::from(10u64));
    let mut a = net.spawn_client(b"pseudo-a", U256::from(10u64));
    let mut b = net.spawn_client(b"pseudo-b", U256::from(10u64));
    assert_ne!(a.address(), b.address());
    let ch_a = net.connect(&mut a, node, U256::from(100u64)).unwrap();
    let ch_b = net.connect(&mut b, node, U256::from(100u64)).unwrap();
    assert_ne!(ch_a, ch_b);
    let chan_a = net.executor().cmm().channel(ch_a).unwrap();
    assert_eq!(chan_a.light_client, a.address());
}
