//! Integration: value conservation across the entire protocol.
//!
//! Whatever happens — channels opening, payments flowing, disputes,
//! fraud, slashing — the total wei supply of the simulated chain must
//! stay constant (our simulated network uses zero gas prices, so no
//! value is burned or minted).

use parp_suite::contracts::RpcCall;
use parp_suite::core::{Misbehavior, ProcessOutcome};
use parp_suite::net::Network;
use parp_suite::primitives::{Address, U256};

/// Sums every account balance in the current state.
fn total_supply(net: &Network) -> U256 {
    net.chain()
        .state()
        .iter()
        .fold(U256::ZERO, |acc, (_, account)| acc + account.balance)
}

#[test]
fn supply_constant_through_happy_path() {
    let mut net = Network::new();
    let supply_genesis = total_supply(&net);
    let node = net.spawn_node(b"cons-node", U256::from(10u64));
    let mut client = net.spawn_client(b"cons-client", U256::from(10u64));
    assert_eq!(
        total_supply(&net),
        supply_genesis,
        "funding moves, not mints"
    );

    net.connect(&mut client, node, U256::from(10_000u64))
        .unwrap();
    assert_eq!(
        total_supply(&net),
        supply_genesis,
        "channel open escrows, not burns"
    );

    let me = client.address();
    for _ in 0..4 {
        let (outcome, _) = net
            .parp_call(&mut client, node, RpcCall::GetBalance { address: me })
            .unwrap();
        assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
    }
    net.close_cooperatively(&mut client, node).unwrap();
    assert_eq!(
        total_supply(&net),
        supply_genesis,
        "settlement redistributes only"
    );
}

#[test]
fn supply_constant_through_fraud_and_slash() {
    let mut net = Network::new();
    let supply_genesis = total_supply(&net);
    let rogue = net.spawn_node(b"cons-rogue", U256::from(10u64));
    let witness = net.spawn_node(b"cons-witness", U256::from(10u64));
    let mut client = net.spawn_client(b"cons-victim", U256::from(10u64));
    net.connect(&mut client, rogue, U256::from(5_000u64))
        .unwrap();
    net.node_mut(rogue)
        .set_misbehavior(Misbehavior::WrongAmount);

    let (outcome, _) = net
        .parp_call(&mut client, rogue, RpcCall::BlockNumber)
        .unwrap();
    let ProcessOutcome::Fraud(evidence) = outcome else {
        panic!("expected fraud");
    };
    assert!(net.report_fraud(&evidence, witness).unwrap());
    // Slashing redistributes the stake between client, witness and the
    // module's pool; nothing leaves the system.
    assert_eq!(total_supply(&net), supply_genesis);
    // The pool share sits on the FNDM's module account balance.
    let module_balance = net.chain().balance(&parp_suite::contracts::fndm_address());
    assert!(module_balance >= net.executor().fndm().pool());
}

#[test]
fn supply_constant_under_mixed_workload() {
    let mut net = Network::new();
    let supply_genesis = total_supply(&net);
    let node = net.spawn_node(b"cons-mix-node", U256::from(10u64));
    let mut client = net.spawn_client(b"cons-mix-client", U256::from(10u64));
    net.connect(&mut client, node, U256::from(100_000u64))
        .unwrap();

    let sender = parp_suite::crypto::SecretKey::from_seed(b"cons-sender");
    net.fund(sender.address());
    net.sync_client(&mut client);
    for nonce in 0..3 {
        let tx = parp_suite::chain::Transaction {
            nonce,
            gas_price: U256::ZERO,
            gas_limit: 21_000,
            to: Some(Address::from_low_u64_be(0xdede + nonce)),
            value: U256::from(1_000u64),
            data: Vec::new(),
        }
        .sign(&sender);
        let (outcome, _) = net
            .parp_call(
                &mut client,
                node,
                RpcCall::SendRawTransaction { raw: tx.encode() },
            )
            .unwrap();
        assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
        assert_eq!(total_supply(&net), supply_genesis, "after write {nonce}");
    }
}
