//! Cross-crate telemetry properties: histogram quantiles against the
//! exact nearest-rank reference, fixed-memory regression for the
//! accounting that used to retain every sample, and the captured
//! failover trace round-tripping through the Chrome trace-event
//! exporter.

use parp_suite::gateway::{run_marketplace, MarketplaceConfig, Reputation};
use parp_suite::net::{latency_quantile_us, ProviderAggregate};
use parp_suite::telemetry::{Histogram, TracePhase, RELATIVE_ERROR};
use proptest::prelude::*;

/// The tentpole's accuracy contract: for any sample set and any
/// quantile, the histogram answers within its documented one-sided
/// relative error of the exact nearest-rank quantile (never above it).
fn assert_quantile_contract(samples: &[u64], q: f64) {
    let hist = Histogram::new();
    for &v in samples {
        hist.record(v);
    }
    let exact = latency_quantile_us(samples, q);
    let approx = hist.quantile(q);
    assert!(
        approx <= exact,
        "q={q}: histogram {approx} above exact {exact}"
    );
    assert!(
        approx as f64 >= exact as f64 * (1.0 - RELATIVE_ERROR),
        "q={q}: histogram {approx} more than {RELATIVE_ERROR} below exact {exact}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_matches_nearest_rank_on_random_samples(
        samples in proptest::collection::vec(any::<u64>(), 1..200),
        q_mil in 0u64..1001,
    ) {
        assert_quantile_contract(&samples, q_mil as f64 / 1000.0);
    }

    #[test]
    fn histogram_matches_nearest_rank_on_zipf_samples(
        ranks in proptest::collection::vec(1u64..500, 1..200),
        scale in 1u64..10_000_000,
    ) {
        // Zipf-shaped latencies (scale/rank): a heavy head and a long
        // tail, the distribution real exchange latencies resemble.
        let samples: Vec<u64> = ranks.iter().map(|r| scale / r).collect();
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_quantile_contract(&samples, q);
        }
    }
}

#[test]
fn histogram_edge_cases_match_the_reference() {
    // Empty: both conventions answer 0.
    assert_quantile_contract(&[], 0.5);
    // Single sample: every quantile is that sample (within error).
    assert_quantile_contract(&[7_777], 0.0);
    assert_quantile_contract(&[7_777], 0.5);
    assert_quantile_contract(&[7_777], 1.0);
    // Saturating values stay inside the table and the error bound.
    assert_quantile_contract(&[u64::MAX, u64::MAX, 1], 0.99);
    assert_quantile_contract(&[0, u64::MAX], 0.5);
}

/// The satellite fix: per-provider accounting must not grow with the
/// number of exchanges. Before this change `ProviderAggregate` and the
/// gateway's `Reputation` both pushed every latency sample into a
/// `Vec<u64>` — a simulator (or gateway) serving millions of exchanges
/// grew without bound.
#[test]
fn provider_accounting_memory_is_fixed() {
    let aggregate = ProviderAggregate::default();
    let reputation_probe = {
        let mut r = Reputation::default();
        r.record_valid(1); // allocate the bucket array once
        r
    };
    let mut reputation = reputation_probe.clone();
    aggregate.record_latency(1);
    let aggregate_bytes = aggregate.mem_bytes();
    let reputation_bytes = reputation.mem_bytes();
    for i in 0..200_000u64 {
        aggregate.record_call();
        aggregate.record_latency(i % 50_000);
        reputation.record_valid(i % 50_000);
    }
    assert_eq!(
        aggregate.mem_bytes(),
        aggregate_bytes,
        "ProviderAggregate must not grow with sample count"
    );
    assert_eq!(
        reputation.mem_bytes(),
        reputation_bytes,
        "Reputation must not grow with sample count"
    );
    assert_eq!(aggregate.samples(), 200_001);
    assert_eq!(reputation.latency_samples(), 200_001);
    // And the figures still work at that scale.
    assert!(aggregate.latency_p99_us() > 0);
    assert!(reputation.latency_p99_us() > 0);
}

/// The acceptance scenario: a marketplace run with a fraudulent
/// provider, captured through the tracer, exported as Chrome
/// trace-event JSON, parsed back, and checked for the failover
/// lifecycle (fraud → slash → re-select → replay) with every event on
/// the simulated clock in order.
#[test]
fn failover_trace_round_trips_through_chrome_export() {
    let report = run_marketplace(&MarketplaceConfig::default());
    assert!(report.fraud_detected >= 1);

    // Instants are emitted at their sim time, so recorded order is
    // sim-clock order (the network clock only advances). Spans may be
    // recorded after they open (`failover_recovery` opens at the
    // detection instant but is emitted at recovery), so for those we
    // assert timeline containment instead of recording order.
    let events = report.telemetry.tracer.events();
    let instants: Vec<_> = events
        .iter()
        .filter(|e| e.ph == TracePhase::Instant)
        .collect();
    for pair in instants.windows(2) {
        assert!(
            pair[0].ts_us <= pair[1].ts_us,
            "instants must be recorded in sim-clock order: {} ({}) then {} ({})",
            pair[0].name,
            pair[0].ts_us,
            pair[1].name,
            pair[1].ts_us
        );
    }
    let horizon = events
        .iter()
        .map(|e| e.ts_us + e.dur_us)
        .max()
        .expect("trace is non-empty");
    let spans: Vec<_> = events
        .iter()
        .filter(|e| e.ph == TracePhase::Complete)
        .collect();
    assert!(!spans.is_empty());
    for span in &spans {
        assert!(
            span.ts_us + span.dur_us <= horizon,
            "span {} leaks past the sim-clock horizon",
            span.name
        );
    }

    // Round-trip: export, then parse with the workspace's own JSON
    // parser and re-find the lifecycle in the parsed document.
    let json = report.telemetry.tracer.export_chrome_json();
    let doc = parp_suite::jsonrpc::parse(&json).expect("exporter emits valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let trace_events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert_eq!(trace_events.len(), events.len());

    let ts_of = |wanted: &str| -> f64 {
        trace_events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some(wanted))
            .unwrap_or_else(|| panic!("parsed trace must contain {wanted:?}"))
            .get("ts")
            .and_then(|t| t.as_f64())
            .expect("ts is a number")
    };
    let fraud = ts_of("fraud_detected");
    let slash = ts_of("slash");
    let reselect = ts_of("reselect");
    let replay = ts_of("replay");
    assert!(fraud <= slash && slash <= reselect && reselect <= replay);

    // The recovery span opens at detection and closes at the next
    // verified response — its parsed duration matches the report's
    // time-to-recover figure.
    let recovery = trace_events
        .iter()
        .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("failover_recovery"))
        .expect("failover_recovery span");
    assert_eq!(recovery.get("ph").and_then(|p| p.as_str()), Some("X"));
    assert_eq!(
        recovery.get("ts").and_then(|t| t.as_f64()),
        Some(fraud),
        "recovery span opens at the fraud detection instant"
    );
    let dur = recovery
        .get("dur")
        .and_then(|d| d.as_f64())
        .expect("complete span has dur");
    assert!(report.recoveries_us.iter().any(|&us| us as f64 == dur));

    // Both metric exporters cover every registered series.
    let snapshot = &report.metrics;
    let json_export = snapshot.to_json();
    let prometheus = snapshot.to_prometheus();
    for entry in &snapshot.entries {
        assert!(json_export.contains(&entry.name));
        assert!(prometheus.contains(&entry.name));
    }
}
