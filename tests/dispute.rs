//! Integration: the dispute path of §IV-E / §V-B at the network level —
//! a party settles with a stale channel state, the counterparty answers
//! with a newer signed state inside the window, and the chain honors the
//! highest valid amount.

use parp_suite::contracts::{
    payment_digest, ChannelStatus, ModuleCall, RpcCall, DISPUTE_WINDOW_BLOCKS,
};
use parp_suite::core::ProcessOutcome;
use parp_suite::net::Network;
use parp_suite::primitives::U256;

#[test]
fn node_disputes_a_stale_client_close() {
    let mut net = Network::new();
    let node = net.spawn_node(b"disp-node", U256::from(100u64));
    let mut client = net.spawn_client(b"disp-client", U256::from(100u64));
    net.connect(&mut client, node, U256::from(10_000u64))
        .unwrap();

    // Five paid calls: the node holds σ_a for a=500.
    for _ in 0..5 {
        let (outcome, _) = net
            .parp_call(&mut client, node, RpcCall::BlockNumber)
            .unwrap();
        assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
    }
    assert_eq!(
        net.node(node).served_channel(0).unwrap().latest_amount,
        U256::from(500u64)
    );

    // The client tries to settle with a stale state: a = 100 (signing a
    // *lower* cumulative amount than it already authorized).
    let stale = U256::from(100u64);
    let stale_sig = parp_suite::crypto::sign(client.secret(), &payment_digest(0, &stale));
    let client_key = *client.secret();
    assert!(net
        .submit_module_call(
            &client_key,
            ModuleCall::CloseChannel {
                channel_id: 0,
                amount: stale,
                payment_sig: stale_sig,
            },
            U256::ZERO,
        )
        .unwrap());

    // The node notices (it watches the chain) and submits its newest
    // state within the dispute window.
    let counter = net.node(node).close_channel_call(0).unwrap();
    let ModuleCall::CloseChannel {
        channel_id,
        amount,
        payment_sig,
    } = counter
    else {
        panic!("expected close call");
    };
    let node_key = *net.node(node).secret();
    assert!(net
        .submit_module_call(
            &node_key,
            ModuleCall::SubmitState {
                channel_id,
                amount,
                payment_sig,
            },
            U256::ZERO,
        )
        .unwrap());
    assert_eq!(
        net.executor().cmm().channel(0).unwrap().latest_amount,
        U256::from(500u64),
        "the higher signed state supersedes the stale one"
    );

    // Settlement after the (reset) window pays the node in full.
    net.advance_blocks(DISPUTE_WINDOW_BLOCKS).unwrap();
    let node_before = net.chain().balance(&net.node(node).address());
    let client_before = net.chain().balance(&client.address());
    assert!(net
        .submit_module_call(
            &node_key,
            ModuleCall::ConfirmClosure { channel_id: 0 },
            U256::ZERO,
        )
        .unwrap());
    assert_eq!(
        net.chain().balance(&net.node(node).address()) - node_before,
        U256::from(500u64)
    );
    assert_eq!(
        net.chain().balance(&client.address()) - client_before,
        U256::from(9_500u64)
    );
    assert_eq!(
        net.executor().cmm().channel(0).unwrap().status,
        ChannelStatus::Closed
    );
}

#[test]
fn dispute_window_resets_on_each_newer_state() {
    let mut net = Network::new();
    let node = net.spawn_node(b"dw-node", U256::from(10u64));
    let mut client = net.spawn_client(b"dw-client", U256::from(10u64));
    net.connect(&mut client, node, U256::from(1_000u64))
        .unwrap();
    for _ in 0..3 {
        net.parp_call(&mut client, node, RpcCall::BlockNumber)
            .unwrap();
    }

    // Client closes with a=10 (its first signed state).
    let a1 = U256::from(10u64);
    let sig1 = parp_suite::crypto::sign(client.secret(), &payment_digest(0, &a1));
    let client_key = *client.secret();
    assert!(net
        .submit_module_call(
            &client_key,
            ModuleCall::CloseChannel {
                channel_id: 0,
                amount: a1,
                payment_sig: sig1,
            },
            U256::ZERO,
        )
        .unwrap());
    let ChannelStatus::Closing { deadline: d1 } = net.executor().cmm().channel(0).unwrap().status
    else {
        panic!("closing expected");
    };

    // A few blocks later the node disputes; the deadline must move out.
    net.advance_blocks(5).unwrap();
    let counter = net.node(node).close_channel_call(0).unwrap();
    let ModuleCall::CloseChannel {
        amount,
        payment_sig,
        ..
    } = counter
    else {
        panic!("close call expected");
    };
    let node_key = *net.node(node).secret();
    assert!(net
        .submit_module_call(
            &node_key,
            ModuleCall::SubmitState {
                channel_id: 0,
                amount,
                payment_sig,
            },
            U256::ZERO,
        )
        .unwrap());
    let ChannelStatus::Closing { deadline: d2 } = net.executor().cmm().channel(0).unwrap().status
    else {
        panic!("still closing");
    };
    assert!(d2 > d1, "window must reset: {d1} -> {d2}");

    // Early confirmation still fails after the reset.
    net.advance_blocks(d1.saturating_sub(net.chain().height()))
        .unwrap();
    assert!(!net
        .submit_module_call(
            &node_key,
            ModuleCall::ConfirmClosure { channel_id: 0 },
            U256::ZERO,
        )
        .unwrap());
}
