//! Randomized end-to-end property tests: arbitrary interleavings of
//! reads, writes and misbehavior, checking the protocol's global
//! invariants after every step.
//!
//! Invariants checked:
//! 1. Honest service is always classified Valid.
//! 2. The client's committed spend never exceeds the channel budget and
//!    never decreases.
//! 3. Slashable misbehavior always produces acceptable fraud evidence;
//!    after slashing, the offender's deposit is zero.
//! 4. Total supply is conserved throughout.

use parp_suite::contracts::RpcCall;
use parp_suite::core::{Misbehavior, ProcessOutcome};
use parp_suite::net::Network;
use parp_suite::primitives::{Address, U256};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Step {
    Read(u64),
    Write(u64),
    Probe,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u64>().prop_map(Step::Read),
            (1u64..1000).prop_map(Step::Write),
            Just(Step::Probe),
        ],
        1..10,
    )
}

fn total_supply(net: &Network) -> U256 {
    net.chain()
        .state()
        .iter()
        .fold(U256::ZERO, |acc, (_, account)| acc + account.balance)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn honest_runs_preserve_all_invariants(steps in arb_steps(), seed in any::<u16>()) {
        let mut net = Network::new();
        let node = net.spawn_node(format!("pe2e-node-{seed}").as_bytes(), U256::from(10u64));
        let mut client =
            net.spawn_client(format!("pe2e-client-{seed}").as_bytes(), U256::from(10u64));
        let supply = total_supply(&net);
        let budget = U256::from(1_000_000u64);
        net.connect(&mut client, node, budget).unwrap();
        let sender = parp_suite::crypto::SecretKey::from_seed(
            format!("pe2e-sender-{seed}").as_bytes(),
        );
        net.fund(sender.address());
        net.sync_client(&mut client);
        let mut nonce = 0u64;
        let mut last_spent = U256::ZERO;
        for step in steps {
            let call = match step {
                Step::Read(addr) => RpcCall::GetBalance {
                    address: Address::from_low_u64_be(addr),
                },
                Step::Write(value) => {
                    let tx = parp_suite::chain::Transaction {
                        nonce,
                        gas_price: U256::ZERO,
                        gas_limit: 21_000,
                        to: Some(Address::from_low_u64_be(0x9999)),
                        value: U256::from(value),
                        data: Vec::new(),
                    }
                    .sign(&sender);
                    nonce += 1;
                    RpcCall::SendRawTransaction { raw: tx.encode() }
                }
                Step::Probe => {
                    let id = client.channel().unwrap().id;
                    RpcCall::GetChannelStatus { channel_id: id }
                }
            };
            let (outcome, _) = net.parp_call(&mut client, node, call).unwrap();
            // Invariant 1: honest service verifies.
            let is_valid = matches!(outcome, ProcessOutcome::Valid { .. });
            prop_assert!(is_valid, "expected valid outcome, got {:?}", outcome);
            // Invariant 2: spend is monotone and bounded.
            let spent = client.channel().unwrap().spent;
            prop_assert!(spent >= last_spent);
            prop_assert!(spent <= budget);
            last_spent = spent;
            // Invariant 4: conservation.
            prop_assert_eq!(total_supply(&net), supply);
        }
        // Settlement also conserves.
        net.close_cooperatively(&mut client, node).unwrap();
        prop_assert_eq!(total_supply(&net), supply);
    }

    #[test]
    fn random_slashable_misbehavior_is_always_punished(
        honest_prefix in 0usize..4,
        which in 0usize..5,
        seed in any::<u16>(),
    ) {
        let slashable: Vec<Misbehavior> = Misbehavior::all()
            .into_iter()
            .filter(Misbehavior::slashable)
            .collect();
        let misbehavior = slashable[which % slashable.len()];
        let mut net = Network::new();
        let node = net.spawn_node(format!("pm-node-{seed}").as_bytes(), U256::from(10u64));
        let witness = net.spawn_node(format!("pm-witness-{seed}").as_bytes(), U256::from(10u64));
        let mut client =
            net.spawn_client(format!("pm-client-{seed}").as_bytes(), U256::from(10u64));
        net.connect(&mut client, node, U256::from(100_000u64)).unwrap();
        let supply = total_supply(&net);
        let me = client.address();
        for _ in 0..honest_prefix {
            let (outcome, _) = net
                .parp_call(&mut client, node, RpcCall::GetBalance { address: me })
                .unwrap();
            let is_valid = matches!(outcome, ProcessOutcome::Valid { .. });
            prop_assert!(is_valid, "expected valid outcome, got {:?}", outcome);
        }
        net.node_mut(node).set_misbehavior(misbehavior);
        let (outcome, _) = net
            .parp_call(&mut client, node, RpcCall::GetBalance { address: me })
            .unwrap();
        // Invariant 3: provable, accepted, punished.
        let ProcessOutcome::Fraud(evidence) = outcome else {
            return Err(TestCaseError::fail(format!(
                "{misbehavior:?} after {honest_prefix} honest calls: expected fraud, got {outcome:?}"
            )));
        };
        prop_assert!(net.report_fraud(&evidence, witness).unwrap());
        prop_assert_eq!(
            net.executor().fndm().deposit_of(&net.node(node).address()),
            U256::ZERO
        );
        prop_assert_eq!(total_supply(&net), supply);
    }
}
