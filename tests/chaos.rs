//! Chaos-plane integration + property tests: any random fault schedule
//! must yield zero accepted wrong payloads and zero unclassified call
//! outcomes; same-seed runs must replay byte-identically (telemetry
//! snapshots and payment trajectories); `ReputationWeighted` selection
//! must learn to avoid a flaky-but-honest provider; and each injected
//! fault class must surface as its own `FailoverCause`.

use parp_suite::contracts::RpcCall;
use parp_suite::gateway::{
    run_chaos, ChaosConfig, FailoverCause, Gateway, GatewayConfig, ResilienceConfig,
    SelectionPolicy,
};
use parp_suite::net::{FaultConfig, Network, ProviderFaultRates};
use parp_suite::primitives::{Address, U256};
use proptest::prelude::*;

/// A small chaos network: `n` honest providers on a price ladder, 8
/// funded read targets with their expected payloads, a tight per-call
/// deadline, and a gateway under the given policy.
fn chaos_fixture(
    n: usize,
    seed_tag: &str,
    policy: SelectionPolicy,
) -> (Network, Gateway, Vec<Address>, Vec<Vec<u8>>) {
    let mut net = Network::new();
    net.set_call_deadline_us(25_000);
    for i in 0..n {
        net.spawn_node(
            format!("chaos-{seed_tag}-node-{i}").as_bytes(),
            U256::from(10 * (i as u64 + 1)),
        );
    }
    let targets: Vec<Address> = (0..8)
        .map(|i| Address::from_low_u64_be(0xCA05_0000 + i))
        .collect();
    net.fund_many(&targets);
    let expected: Vec<Vec<u8>> = targets
        .iter()
        .map(|t| {
            net.chain()
                .state()
                .account(t)
                .map(parp_suite::chain::Account::encode)
                .unwrap_or_default()
        })
        .collect();
    let client = net.spawn_client(
        format!("chaos-{seed_tag}-client").as_bytes(),
        U256::from(10u64),
    );
    let gateway = Gateway::new(
        client,
        GatewayConfig {
            policy,
            resilience: ResilienceConfig {
                call_budget_us: 400_000,
                breaker_cooldown_us: 100_000,
                ..ResilienceConfig::default()
            },
            ..GatewayConfig::default()
        },
    );
    (net, gateway, targets, expected)
}

#[test]
fn reputation_weighted_learns_to_avoid_a_flaky_but_honest_provider() {
    // Provider 0 is the cheapest, so the initial score tie sends the
    // gateway straight into it — and it drops 90% of everything.
    let (mut net, mut gateway, targets, expected) =
        chaos_fixture(3, "flaky", SelectionPolicy::ReputationWeighted);
    let flaky = net.registry()[0];
    net.install_fault_plane(ChaosConfig::flaky_override(0));

    let calls = 20usize;
    let mut served = 0usize;
    for i in 0..calls {
        let index = i % targets.len();
        let call = RpcCall::GetBalance {
            address: targets[index],
        };
        if let Ok(bytes) = gateway.call(&mut net, call) {
            served += 1;
            assert_eq!(bytes, expected[index], "verified payloads only");
        }
    }
    assert_eq!(served, calls, "reliable providers carry the workload");

    // The flaky provider was tried, timed out, and scored down — the
    // policy stopped feeding it long before the workload ended.
    let flaky_rep = gateway.reputation().get(&flaky);
    assert!(flaky_rep.timeouts >= 1, "the trap was actually sprung");
    assert!(
        flaky_rep.timeouts <= 4,
        "selection must learn, not keep retrying the flake ({} timeouts)",
        flaky_rep.timeouts
    );
    let reliable = net.registry()[1];
    assert!(
        gateway.reputation().score(&flaky) < gateway.reputation().score(&reliable),
        "flaky {} vs reliable {}",
        gateway.reputation().score(&flaky),
        gateway.reputation().score(&reliable)
    );
    // Flaky-but-honest is not fraud: the provider stays trustworthy
    // (and un-banned), it just loses the scoring contest.
    assert!(flaky_rep.trustworthy());
    assert_eq!(flaky_rep.fraud, 0);
}

#[test]
fn each_fault_class_surfaces_as_its_own_failover_cause() {
    // Crash window → FailoverCause::Crash.
    let (mut net, mut gateway, targets, _) = chaos_fixture(2, "crash", SelectionPolicy::Cheapest);
    let mut fault = FaultConfig::default();
    fault.crashes.push(parp_suite::net::CrashWindow {
        provider_index: 0,
        from_step: 0,
        until_step: 10_000,
    });
    net.install_fault_plane(fault);
    gateway
        .call(
            &mut net,
            RpcCall::GetBalance {
                address: targets[0],
            },
        )
        .expect("provider 1 serves");
    assert!(
        gateway
            .failovers()
            .iter()
            .any(|f| matches!(f.cause, FailoverCause::Crash)),
        "crash must be recorded as a Crash failover: {:?}",
        gateway.failovers_by_cause()
    );

    // 100% corruption on provider 0 → FailoverCause::Corruption.
    let (mut net, mut gateway, targets, _) = chaos_fixture(2, "corrupt", SelectionPolicy::Cheapest);
    net.install_fault_plane(FaultConfig {
        overrides: vec![ProviderFaultRates {
            provider_index: 0,
            drop_ppm: 0,
            corrupt_ppm: 1_000_000,
            delay_ppm: 0,
        }],
        ..FaultConfig::default()
    });
    gateway
        .call(
            &mut net,
            RpcCall::GetBalance {
                address: targets[0],
            },
        )
        .expect("provider 1 serves");
    assert!(
        gateway
            .failovers()
            .iter()
            .any(|f| matches!(f.cause, FailoverCause::Corruption)),
        "corruption must be recorded as a Corruption failover: {:?}",
        gateway.failovers_by_cause()
    );

    // 100% drop on provider 0 → retries burn, then FailoverCause::Timeout.
    let (mut net, mut gateway, targets, _) = chaos_fixture(2, "drop", SelectionPolicy::Cheapest);
    net.install_fault_plane(FaultConfig {
        overrides: vec![ProviderFaultRates {
            provider_index: 0,
            drop_ppm: 1_000_000,
            corrupt_ppm: 0,
            delay_ppm: 0,
        }],
        ..FaultConfig::default()
    });
    gateway
        .call(
            &mut net,
            RpcCall::GetBalance {
                address: targets[0],
            },
        )
        .expect("provider 1 serves");
    assert!(
        gateway
            .failovers()
            .iter()
            .any(|f| matches!(f.cause, FailoverCause::Timeout)),
        "drops must be recorded as a Timeout failover: {:?}",
        gateway.failovers_by_cause()
    );
    assert!(gateway.retries() >= 1, "in-place retries fired first");
}

#[test]
fn transient_failures_do_not_ban_and_payments_stay_monotone_across_reconnects() {
    // Single provider that drops everything for a step window, then
    // heals: the gateway must time out, reconnect later, and the
    // provider's payment trail must stay cumulative (no regression when
    // the fresh channel restarts at spent = 0).
    let (mut net, mut gateway, targets, expected) =
        chaos_fixture(1, "heal", SelectionPolicy::Cheapest);
    let call = |t: usize| RpcCall::GetBalance {
        address: targets[t],
    };
    // Clean serve first, payment committed on the original channel.
    assert_eq!(
        gateway.call(&mut net, call(0)).expect("clean serve"),
        expected[0]
    );
    // Now wall the sole provider off (the step counter starts at the
    // plane's install). The window must outlast what one call budget
    // can burn through in retries, or the call simply rides it out.
    let mut fault = FaultConfig::default();
    fault.partitions.push(parp_suite::net::PartitionWindow {
        provider_indices: vec![0],
        from_step: 0,
        until_step: 24,
    });
    net.install_fault_plane(fault);
    // Inside the partition the sole provider times out; with nobody
    // else to fail over to, the call errs (classified, not hung).
    let during = gateway.call(&mut net, call(1));
    assert!(during.is_err(), "partitioned sole provider cannot serve");
    // Past the window the provider is *not* banned — once the breaker
    // cooldown elapses, service resumes over a fresh channel.
    let mut healed = None;
    for _ in 0..16 {
        net.advance_clock(200_000);
        if let Ok(bytes) = gateway.call(&mut net, call(2)) {
            healed = Some(bytes);
            break;
        }
    }
    let after = healed.expect("healed provider serves after the window");
    assert_eq!(after, expected[2]);
    assert!(
        gateway.payments_monotone(),
        "cumulative payments must survive the channel switch"
    );
    let provider = net.registry()[0];
    let trail = &gateway.payment_trajectories()[&provider];
    assert!(trail.len() >= 2);
    assert!(
        trail.windows(2).all(|w| w[0] <= w[1]),
        "trail must be non-decreasing: {trail:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any random fault schedule: no accepted wrong payloads, no
    /// unclassified outcomes, and same-seed replay is byte-identical
    /// (metrics snapshot JSON + payment trajectories + final clock).
    #[test]
    fn any_fault_schedule_is_safe_and_replayable(
        seed in any::<u64>(),
        drop_ppm in 0u32..300_000,
        corrupt_ppm in 0u32..150_000,
        delay_ppm in 0u32..300_000,
        crash in any::<bool>(),
        partition in any::<bool>(),
        bursts in any::<bool>(),
    ) {
        let config = ChaosConfig {
            seed,
            providers: 4,
            calls: 12,
            quorum_every: 4,
            drop_ppm,
            corrupt_ppm,
            delay_ppm,
            crash,
            partition,
            corruption_bursts: bursts,
            ..ChaosConfig::default()
        };
        let a = run_chaos(&config);
        prop_assert_eq!(a.wrong_payloads, 0, "no wrong payload under any schedule");
        prop_assert_eq!(a.unclassified, 0, "every outcome classified");
        prop_assert_eq!(
            a.served + a.degraded + a.errored,
            a.issued,
            "no call may hang or vanish"
        );
        let b = run_chaos(&config);
        prop_assert_eq!(a.metrics.to_json(), b.metrics.to_json());
        prop_assert_eq!(a.payment_digest, b.payment_digest);
        prop_assert_eq!(a.clock_us, b.clock_us);
        prop_assert_eq!(a.steps, b.steps);
    }
}
