//! Integration + property tests for the gateway subsystem: quorum-read
//! consistency across honest providers for every state and inclusion
//! call kind, failover after a slashed provider with zero accepted
//! invalid responses and monotone payment counters, and the full
//! marketplace acceptance scenario.

use parp_suite::contracts::RpcCall;
use parp_suite::gateway::{
    FailoverCause, Gateway, GatewayConfig, MarketplaceConfig, SelectionPolicy,
};
use parp_suite::net::Network;
use parp_suite::primitives::{Address, H256, U256};
use proptest::prelude::*;

/// A network with `n` honest providers, funded read targets, and a
/// supply of mined transactions for inclusion lookups.
fn marketplace_net(n: usize, seed_tag: &str) -> (Network, Vec<Address>, Vec<(H256, u64)>) {
    let mut net = Network::new();
    for i in 0..n {
        net.spawn_node(
            format!("gwt-{seed_tag}-node-{i}").as_bytes(),
            U256::from(10 * (i as u64 + 1)),
        );
    }
    let targets: Vec<Address> = (0..8)
        .map(|i| Address::from_low_u64_be(0xAB00 + i))
        .collect();
    // One faucet transfer per call: every target leaves a transaction in
    // its own block — inclusion-lookup material at distinct heights.
    for target in &targets {
        net.fund(*target);
    }
    let lookups = net.transaction_locations();
    (net, targets, lookups)
}

fn gateway_for(net: &mut Network, seed: &[u8], policy: SelectionPolicy) -> Gateway {
    let client = net.spawn_client(seed, U256::from(10u64));
    Gateway::new(
        client,
        GatewayConfig {
            policy,
            ..GatewayConfig::default()
        },
    )
}

/// Every state and inclusion call kind, parameterized over the fixture.
fn call_of_kind(kind: usize, target: Address, lookup: H256) -> RpcCall {
    match kind {
        0 => RpcCall::GetBalance { address: target },
        1 => RpcCall::GetTransactionCount { address: target },
        2 => RpcCall::GetTransactionByHash { hash: lookup },
        _ => RpcCall::GetTransactionReceipt { hash: lookup },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// §Satellite: a `QuorumRead` over k honest providers at the same
    /// height yields byte-identical verified results for every state
    /// and inclusion call kind.
    #[test]
    fn quorum_reads_are_byte_identical_across_honest_providers(
        kind in 0usize..4,
        target_index in 0usize..8,
        lookup_index in 0usize..8,
        seed in any::<u16>(),
    ) {
        let (mut net, targets, lookups) = marketplace_net(3, &format!("prop-{seed}"));
        let mut gateway = gateway_for(
            &mut net,
            format!("gwt-prop-client-{seed}").as_bytes(),
            SelectionPolicy::RoundRobin,
        );
        let call = call_of_kind(
            kind,
            targets[target_index],
            lookups[lookup_index % lookups.len()].0,
        );
        let outcome = gateway.quorum_call(&mut net, call, 3).expect("quorum");
        prop_assert!(outcome.agreed, "honest same-height votes must agree");
        prop_assert_eq!(outcome.votes.len(), 3);
        let reference = &outcome.votes[0].result;
        for vote in &outcome.votes {
            prop_assert_eq!(&vote.result, reference);
        }
        // Three distinct providers answered.
        let mut providers: Vec<Address> =
            outcome.votes.iter().map(|v| v.provider).collect();
        providers.sort();
        providers.dedup();
        prop_assert_eq!(providers.len(), 3);
        prop_assert_eq!(gateway.failovers().len(), 0);
    }
}

/// §Satellite: failover after a slashed provider loses zero
/// accepted-invalid responses and keeps the payment counter monotone
/// across the channel switch.
#[test]
fn failover_after_slash_accepts_nothing_invalid_and_keeps_payments_monotone() {
    let (mut net, targets, _) = marketplace_net(3, "slash");
    let mut gateway = gateway_for(&mut net, b"gwt-slash-client", SelectionPolicy::Cheapest);

    // The cheapest provider forges results.
    let cheapest = gateway_probe_cheapest(&mut gateway, &net);
    let cheapest_id = net.node_id_by_address(&cheapest).unwrap();
    net.node_mut(cheapest_id)
        .set_misbehavior(parp_suite::core::Misbehavior::ForgedResult);

    // Ground truth for every target, read straight off the chain.
    let expected: Vec<Vec<u8>> = targets
        .iter()
        .map(|t| {
            net.chain()
                .state()
                .account(t)
                .map(parp_suite::chain::Account::encode)
                .unwrap_or_default()
        })
        .collect();

    // Run the workload across the fraud + failover.
    for (i, target) in targets.iter().cycle().take(12).enumerate() {
        let result = gateway
            .call(&mut net, RpcCall::GetBalance { address: *target })
            .expect("workload must survive the failover");
        assert_eq!(
            result,
            expected[i % targets.len()],
            "returned payloads match ground truth (zero accepted-invalid)"
        );
    }

    // The fraud was detected, proven, and slashed on-chain.
    let fraud_events: Vec<_> = gateway
        .failovers()
        .iter()
        .filter(|f| matches!(f.cause, FailoverCause::Fraud(_)))
        .collect();
    assert_eq!(fraud_events.len(), 1);
    assert_eq!(fraud_events[0].failed_provider, cheapest);
    assert!(fraud_events[0].slashed);
    assert!(fraud_events[0].time_to_recover_us().unwrap() > 0);
    let record = net.executor().fndm().record(&cheapest).unwrap();
    assert_eq!(record.slash_count, 1);
    assert!(record.deposit.is_zero());
    assert!(
        !net.registry().contains(&cheapest),
        "slashed ⇒ out of registry"
    );

    // Payment counters stayed monotone across the channel switch, and
    // every call was eventually served (12 verified results).
    assert!(gateway.payments_monotone());
    assert_eq!(gateway.calls_served(), 12);
    // Both channels' trajectories exist: the abandoned one and its
    // replacement, each individually non-decreasing.
    assert!(gateway.payment_trajectories().len() >= 2);
    for trail in gateway.payment_trajectories().values() {
        assert!(trail.windows(2).all(|w| w[0] <= w[1]));
    }
}

/// Reads the cheapest provider the gateway would select, without
/// issuing a call.
fn gateway_probe_cheapest(gateway: &mut Gateway, net: &Network) -> Address {
    gateway.refresh(net);
    gateway
        .directory()
        .providers()
        .iter()
        .min_by_key(|p| (p.price_per_call, p.address))
        .map(|p| p.address)
        .expect("providers registered")
}

/// The ISSUE acceptance scenario: ≥4 providers, the cheapest forges, the
/// gateway classifies under §V-D, submits the fraud proof (slashed
/// on-chain), fails over, and finishes the workload with zero invalid
/// results accepted and monotone payment counters.
#[test]
fn marketplace_acceptance_scenario() {
    let config = MarketplaceConfig::default();
    assert!(config.providers >= 4);
    let report = parp_suite::gateway::run_marketplace(&config);
    assert_eq!(report.errors, 0, "workload finished");
    assert_eq!(report.wrong_payloads, 0, "zero invalid results accepted");
    assert!(report.fraud_detected >= 1, "§V-D classification fired");
    assert!(report.fraud_proofs_accepted >= 1, "fraud proof accepted");
    assert!(report.cheapest_slashed, "provider slashed on-chain");
    assert!(report.failovers >= 1, "gateway failed over");
    assert!(report.payments_monotone, "payment counters monotone");
    assert!(!report.recoveries_us.is_empty(), "time-to-recover measured");
    // The per-provider aggregates drove the run and are reportable.
    assert!(!report.provider_stats.is_empty());
    let total_calls: u64 = report.provider_stats.iter().map(|(_, s)| s.calls()).sum();
    assert!(total_calls as usize >= config.calls);
}

/// §Satellite bugfix: an unreachable quorum reports how many providers
/// were actually drafted, not a hard-coded zero. With 2 providers and
/// k = 3, both drafts succeed and the error must say `collected: 2`.
#[test]
fn unreachable_quorum_reports_drafted_count() {
    let (mut net, targets, _) = marketplace_net(2, "short");
    let mut gateway = gateway_for(&mut net, b"gwt-short-client", SelectionPolicy::RoundRobin);
    let err = gateway
        .quorum_call(
            &mut net,
            RpcCall::GetBalance {
                address: targets[0],
            },
            3,
        )
        .expect_err("2 providers cannot fill a quorum of 3");
    match err {
        parp_suite::gateway::GatewayError::QuorumUnreachable { needed, collected } => {
            assert_eq!(needed, 3);
            assert_eq!(collected, 2, "both drafted providers must be reported");
        }
        other => panic!("expected QuorumUnreachable, got {other:?}"),
    }
}

/// Quorum reads also cover unproven chain queries (`BlockNumber` has no
/// Merkle proof — cross-provider agreement is its only check).
#[test]
fn quorum_read_covers_unproven_calls() {
    let (mut net, _, _) = marketplace_net(3, "unproven");
    let mut gateway = gateway_for(&mut net, b"gwt-unproven-client", SelectionPolicy::Fastest);
    let outcome = gateway
        .quorum_call(&mut net, RpcCall::BlockNumber, 3)
        .expect("quorum");
    assert!(outcome.agreed);
    assert_eq!(
        outcome.result,
        parp_suite::rlp::encode_u64(net.chain().height())
    );
}
