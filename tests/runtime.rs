//! End-to-end tests for the `parp-runtime` serving engine: sharded
//! serving determinism, snapshot-cache behaviour across blocks, LRU
//! bounds, and fairness under a flooding client.

use parp_suite::contracts::RpcCall;
use parp_suite::net::{run_contention, ContentionConfig, Network};
use parp_suite::primitives::{Address, U256};
use parp_suite::runtime::{Runtime, RuntimeConfig, SnapshotCache};

const PRICE: u64 = 10;

/// A connected network with `accounts` bulk-funded addresses and a
/// runtime configured with `shards` shards.
fn connected_with_shards(
    shards: usize,
    accounts: u64,
) -> (
    Network,
    parp_suite::net::NodeId,
    parp_suite::core::LightClient,
    Vec<Address>,
) {
    let mut net = Network::new();
    net.set_runtime(Runtime::new(RuntimeConfig {
        shards,
        ..RuntimeConfig::default()
    }));
    let node = net.spawn_node(b"runtime-node", U256::from(PRICE));
    let mut client = net.spawn_client(b"runtime-client", U256::from(PRICE));
    net.connect(&mut client, node, U256::from(1_000_000u64))
        .expect("connect");
    let addresses: Vec<Address> = (0..accounts)
        .map(|i| Address::from_low_u64_be(0xD000 + i))
        .collect();
    net.fund_many(&addresses);
    net.sync_client(&mut client);
    (net, node, client, addresses)
}

#[test]
fn sharded_batch_responses_are_byte_identical() {
    // The same seeded network at shard counts 1, 2 and 8 must sign the
    // exact same bytes for the same batch: sharding decides who walks
    // which key, never what goes on the wire.
    let mut encodings = Vec::new();
    for shards in [1usize, 2, 8] {
        let (mut net, node, mut client, addresses) = connected_with_shards(shards, 24);
        let calls: Vec<RpcCall> = addresses
            .iter()
            .map(|a| RpcCall::GetBalance { address: *a })
            .chain(
                addresses
                    .iter()
                    .map(|a| RpcCall::GetTransactionCount { address: *a }),
            )
            .chain([RpcCall::BlockNumber])
            .collect();
        let request = client.request_batch(calls).expect("batch request");
        let response = net.serve_batch(node, &request).expect("serve");
        assert_eq!(net.runtime().shards(), shards);
        encodings.push((shards, request.encode(), response.encode()));
    }
    let (_, ref request_reference, ref response_reference) = encodings[0];
    for (shards, request, response) in &encodings {
        assert_eq!(
            request, request_reference,
            "fixture drift at {shards} shards"
        );
        assert_eq!(
            response, response_reference,
            "response bytes diverged at {shards} shards"
        );
    }
}

#[test]
fn snapshot_cache_warms_and_invalidates_across_mine() {
    let (mut net, node, mut client, addresses) = connected_with_shards(2, 8);
    let calls: Vec<RpcCall> = addresses
        .iter()
        .map(|a| RpcCall::GetBalance { address: *a })
        .collect();
    // First serve at this head: the trie was already warmed by the mine
    // hook, so serving hits the cache.
    let head_root = net.chain().head().header.state_root;
    assert!(net.runtime().cache().contains(&head_root));
    let hits_before = net.runtime().cache().hits();
    let request = client.request_batch(calls.clone()).expect("request");
    let response = net.serve_batch(node, &request).expect("serve");
    assert!(net.runtime().cache().hits() > hits_before);
    assert_eq!(response.block_number, net.chain().height());
    // Accept the response so the next request's payment advances.
    net.sync_client(&mut client);
    client.process_batch_response(&response).expect("process");

    // Mining moves the head: the cache must pick up the new root and
    // the next batch must be served (and proven) at the new height, not
    // from a stale cached trie.
    net.fund(Address::from_low_u64_be(0xFEED));
    net.sync_client(&mut client);
    let new_root = net.chain().head().header.state_root;
    assert_ne!(new_root, head_root);
    assert!(
        net.runtime().cache().contains(&new_root),
        "mine() must warm the new head"
    );
    let request = client.request_batch(calls).expect("request");
    let response = net.serve_batch(node, &request).expect("serve");
    assert_eq!(response.block_number, net.chain().height());
    let header = net
        .chain()
        .block(response.block_number)
        .expect("head block")
        .header
        .clone();
    let keys: Vec<Vec<u8>> = addresses
        .iter()
        .map(|a| {
            parp_suite::crypto::keccak256(a.as_bytes())
                .as_bytes()
                .to_vec()
        })
        .collect();
    let proven = parp_suite::trie::verify_many(header.state_root, &keys, &response.multiproof)
        .expect("multiproof verifies against the NEW root");
    assert!(proven.iter().all(Option::is_some));
}

#[test]
fn snapshot_cache_lru_stays_bounded() {
    let mut cache = SnapshotCache::new(2);
    let (net, _, _, _) = connected_with_shards(1, 4);
    let heights: Vec<u64> = (0..=net.chain().height()).collect();
    assert!(heights.len() > 2, "need more snapshots than capacity");
    for height in &heights {
        cache.get_or_build(net.chain().state_at(*height).expect("snapshot"));
        assert!(cache.len() <= 2, "cache exceeded its bound");
    }
    assert_eq!(cache.len(), 2);
    // Only the two most recent snapshot roots survive.
    let last = net.chain().head().header.state_root;
    assert!(cache.contains(&last));
    let first = net.chain().block(0).expect("genesis").header.state_root;
    assert!(!cache.contains(&first), "oldest snapshot evicted");
}

#[test]
fn flooding_client_is_bounded_and_honest_share_preserved() {
    let config = ContentionConfig::default();
    let contended = run_contention(&config);
    let baseline = run_contention(&ContentionConfig {
        flood_rate_per_sec: 0,
        ..config
    });

    // The flooder attempted far beyond its entitlement and was bounded
    // to its token bucket: burst + rate × duration.
    let bound = config.admission_burst + config.admission_rate_per_sec * config.duration_ms / 1_000;
    assert!(
        contended.flooder.attempted_calls > 4 * bound,
        "flooder must actually flood (attempted {})",
        contended.flooder.attempted_calls
    );
    assert!(
        contended.flooder.admitted_calls <= bound,
        "flooder admitted {} calls, bucket allows at most {bound}",
        contended.flooder.admitted_calls
    );
    assert!(contended.flooder.throttled_calls > 0);

    // Honest clients keep their full fair share: nothing throttled,
    // every admitted batch served, same served volume as the
    // uncontended baseline.
    for outcome in &contended.honest {
        assert_eq!(outcome.throttled_calls, 0, "honest client throttled");
        assert_eq!(
            outcome.served_batches * config.batch_size as u64,
            outcome.admitted_calls,
            "admitted but unserved honest calls"
        );
    }
    assert_eq!(
        contended.honest_served_calls(config.batch_size),
        baseline.honest_served_calls(config.batch_size),
        "flooding reduced honest throughput"
    );

    // And their latency stays within 2x of the uncontended case.
    let contended_latency = contended.honest_mean_latency_us().max(1);
    let baseline_latency = baseline.honest_mean_latency_us().max(1);
    assert!(
        contended_latency <= 2 * baseline_latency,
        "honest latency {contended_latency} µs exceeds 2x uncontended {baseline_latency} µs"
    );
}

#[test]
fn admission_is_per_client_not_global() {
    // Two clients exhausting one bucket each: the second client's calls
    // are admitted even when the first is throttled.
    let mut runtime = Runtime::new(RuntimeConfig {
        burst_capacity: 4,
        rate_per_sec: 1,
        ..RuntimeConfig::default()
    });
    let first = Address::from_low_u64_be(1);
    let second = Address::from_low_u64_be(2);
    assert!(runtime.admit(first, 4, 0).is_ok());
    assert!(runtime.admit(first, 1, 0).is_err());
    assert!(runtime.admit(second, 4, 0).is_ok());
    assert_eq!(runtime.admission_stats(&first).throttled, 1);
    assert_eq!(runtime.admission_stats(&second).throttled, 0);
}
