//! End-to-end tests for the `parp-runtime` serving engine: sharded
//! serving determinism, snapshot-cache behaviour across blocks, LRU
//! bounds, and fairness under a flooding client.

use parp_suite::contracts::RpcCall;
use parp_suite::net::{run_contention, ContentionConfig, Network};
use parp_suite::primitives::{Address, U256};
use parp_suite::runtime::{Runtime, RuntimeConfig, SnapshotCache};

const PRICE: u64 = 10;

/// A connected network with `accounts` bulk-funded addresses and a
/// runtime configured with `shards` shards.
fn connected_with_shards(
    shards: usize,
    accounts: u64,
) -> (
    Network,
    parp_suite::net::NodeId,
    parp_suite::core::LightClient,
    Vec<Address>,
) {
    let mut net = Network::new();
    net.set_runtime(Runtime::new(RuntimeConfig {
        shards,
        ..RuntimeConfig::default()
    }));
    let node = net.spawn_node(b"runtime-node", U256::from(PRICE));
    let mut client = net.spawn_client(b"runtime-client", U256::from(PRICE));
    net.connect(&mut client, node, U256::from(1_000_000u64))
        .expect("connect");
    let addresses: Vec<Address> = (0..accounts)
        .map(|i| Address::from_low_u64_be(0xD000 + i))
        .collect();
    net.fund_many(&addresses);
    net.sync_client(&mut client);
    (net, node, client, addresses)
}

#[test]
fn sharded_batch_responses_are_byte_identical() {
    // The same seeded network at shard counts 1, 2 and 8 must sign the
    // exact same bytes for the same batch: sharding decides who walks
    // which key, never what goes on the wire.
    let mut encodings = Vec::new();
    for shards in [1usize, 2, 8] {
        let (mut net, node, mut client, addresses) = connected_with_shards(shards, 24);
        let calls: Vec<RpcCall> = addresses
            .iter()
            .map(|a| RpcCall::GetBalance { address: *a })
            .chain(
                addresses
                    .iter()
                    .map(|a| RpcCall::GetTransactionCount { address: *a }),
            )
            .chain([RpcCall::BlockNumber])
            .collect();
        let request = client.request_batch(calls).expect("batch request");
        let response = net.serve_batch(node, &request).expect("serve");
        assert_eq!(net.runtime().shards(), shards);
        encodings.push((shards, request.encode(), response.encode()));
    }
    let (_, ref request_reference, ref response_reference) = encodings[0];
    for (shards, request, response) in &encodings {
        assert_eq!(
            request, request_reference,
            "fixture drift at {shards} shards"
        );
        assert_eq!(
            response, response_reference,
            "response bytes diverged at {shards} shards"
        );
    }
}

#[test]
fn skewed_batch_byte_identical_and_passes_fraud_conditions() {
    // A Zipf-flavoured batch — most calls hammer a few hot accounts —
    // served off the arena-frozen trie at shard counts 1, 2 and 8 must
    // sign the same bytes. And the honest arena-served response must
    // pass the on-chain fraud conditions: a framing attempt against it
    // reverts, so the zero-copy serving path interoperates with the
    // accountability machinery unchanged.
    let mut encodings = Vec::new();
    for shards in [1usize, 2, 8] {
        let (mut net, node, mut client, addresses) = connected_with_shards(shards, 16);
        let witness = net.spawn_node(b"runtime-witness", U256::from(PRICE));
        let calls: Vec<RpcCall> = (0..96usize)
            .map(|i| {
                // ~70% of calls hit 3 hot accounts; the rest spread out.
                let address = if i % 10 < 7 {
                    addresses[i % 3]
                } else {
                    addresses[(i * 7) % addresses.len()]
                };
                RpcCall::GetBalance { address }
            })
            .collect();
        let request = client.request_batch(calls).expect("batch request");
        let response = net.serve_batch(node, &request).expect("serve");
        net.sync_client(&mut client);
        let outcome = client.process_batch_response(&response).expect("process");
        assert!(
            matches!(outcome, parp_suite::core::ProcessBatchOutcome::Valid { .. }),
            "arena-served skewed batch must classify Valid at {shards} shards"
        );
        // Framing the honest batch must find no fraud condition.
        let header = client
            .header(response.block_number)
            .expect("header")
            .clone();
        let evidence = parp_suite::core::BatchFraudEvidence {
            request: request.clone(),
            response: response.clone(),
            headers: vec![header],
            verdict: parp_suite::contracts::FraudVerdict::InvalidProof,
            item: Some(0),
        };
        let offender = net.node(node).address();
        let deposit_before = net.executor().fndm().deposit_of(&offender);
        assert!(
            !net.report_batch_fraud(&evidence, witness).expect("relay"),
            "framing an arena-served honest batch must revert at {shards} shards"
        );
        assert_eq!(net.executor().fndm().deposit_of(&offender), deposit_before);
        encodings.push((shards, request.encode(), response.encode()));
    }
    let (_, ref request_reference, ref response_reference) = encodings[0];
    for (shards, request, response) in &encodings {
        assert_eq!(
            request, request_reference,
            "fixture drift at {shards} shards"
        );
        assert_eq!(
            response, response_reference,
            "skewed-batch response bytes diverged at {shards} shards"
        );
    }
}

#[test]
fn snapshot_cache_warms_and_invalidates_across_mine() {
    let (mut net, node, mut client, addresses) = connected_with_shards(2, 8);
    let calls: Vec<RpcCall> = addresses
        .iter()
        .map(|a| RpcCall::GetBalance { address: *a })
        .collect();
    // First serve at this head: the trie was already warmed by the mine
    // hook, so serving hits the cache.
    let head_root = net.chain().head().header.state_root;
    assert!(net.runtime().cache().contains(&head_root));
    let hits_before = net.runtime().cache().hits();
    let request = client.request_batch(calls.clone()).expect("request");
    let response = net.serve_batch(node, &request).expect("serve");
    assert!(net.runtime().cache().hits() > hits_before);
    assert_eq!(response.block_number, net.chain().height());
    // Accept the response so the next request's payment advances.
    net.sync_client(&mut client);
    client.process_batch_response(&response).expect("process");

    // Mining moves the head: the cache must pick up the new root and
    // the next batch must be served (and proven) at the new height, not
    // from a stale cached trie.
    net.fund(Address::from_low_u64_be(0xFEED));
    net.sync_client(&mut client);
    let new_root = net.chain().head().header.state_root;
    assert_ne!(new_root, head_root);
    assert!(
        net.runtime().cache().contains(&new_root),
        "mine() must warm the new head"
    );
    let request = client.request_batch(calls).expect("request");
    let response = net.serve_batch(node, &request).expect("serve");
    assert_eq!(response.block_number, net.chain().height());
    let header = net
        .chain()
        .block(response.block_number)
        .expect("head block")
        .header
        .clone();
    let keys: Vec<Vec<u8>> = addresses
        .iter()
        .map(|a| {
            parp_suite::crypto::keccak256(a.as_bytes())
                .as_bytes()
                .to_vec()
        })
        .collect();
    let proven = parp_suite::trie::verify_many(header.state_root, &keys, &response.multiproof)
        .expect("multiproof verifies against the NEW root");
    assert!(proven.iter().all(Option::is_some));
}

#[test]
fn snapshot_cache_lru_stays_bounded() {
    let mut cache = SnapshotCache::new(2);
    let (net, _, _, _) = connected_with_shards(1, 4);
    let heights: Vec<u64> = (0..=net.chain().height()).collect();
    assert!(heights.len() > 2, "need more snapshots than capacity");
    for height in &heights {
        cache.get_or_build(net.chain().state_at(*height).expect("snapshot"));
        assert!(cache.len() <= 2, "cache exceeded its bound");
    }
    assert_eq!(cache.len(), 2);
    // Only the two most recent snapshot roots survive.
    let last = net.chain().head().header.state_root;
    assert!(cache.contains(&last));
    let first = net.chain().block(0).expect("genesis").header.state_root;
    assert!(!cache.contains(&first), "oldest snapshot evicted");
}

#[test]
fn flooding_client_is_bounded_and_honest_share_preserved() {
    let config = ContentionConfig::default();
    let contended = run_contention(&config);
    let baseline = run_contention(&ContentionConfig {
        flood_rate_per_sec: 0,
        ..config
    });

    // The flooder attempted far beyond its entitlement and was bounded
    // to its token bucket: burst + rate × duration.
    let bound = config.admission_burst + config.admission_rate_per_sec * config.duration_ms / 1_000;
    assert!(
        contended.flooder.attempted_calls > 4 * bound,
        "flooder must actually flood (attempted {})",
        contended.flooder.attempted_calls
    );
    assert!(
        contended.flooder.admitted_calls <= bound,
        "flooder admitted {} calls, bucket allows at most {bound}",
        contended.flooder.admitted_calls
    );
    assert!(contended.flooder.throttled_calls > 0);

    // Honest clients keep their full fair share: nothing throttled,
    // every admitted batch served, same served volume as the
    // uncontended baseline.
    for outcome in &contended.honest {
        assert_eq!(outcome.throttled_calls, 0, "honest client throttled");
        assert_eq!(
            outcome.served_batches * config.batch_size as u64,
            outcome.admitted_calls,
            "admitted but unserved honest calls"
        );
    }
    assert_eq!(
        contended.honest_served_calls(config.batch_size),
        baseline.honest_served_calls(config.batch_size),
        "flooding reduced honest throughput"
    );

    // And their latency stays within 2x of the uncontended case.
    let contended_latency = contended.honest_mean_latency_us().max(1);
    let baseline_latency = baseline.honest_mean_latency_us().max(1);
    assert!(
        contended_latency <= 2 * baseline_latency,
        "honest latency {contended_latency} µs exceeds 2x uncontended {baseline_latency} µs"
    );
}

#[test]
fn admission_is_per_client_not_global() {
    // Two clients exhausting one bucket each: the second client's calls
    // are admitted even when the first is throttled.
    let mut runtime = Runtime::new(RuntimeConfig {
        burst_capacity: 4,
        rate_per_sec: 1,
        ..RuntimeConfig::default()
    });
    let first = Address::from_low_u64_be(1);
    let second = Address::from_low_u64_be(2);
    assert!(runtime.admit(first, 4, 0).is_ok());
    assert!(runtime.admit(first, 1, 0).is_err());
    assert!(runtime.admit(second, 4, 0).is_ok());
    assert_eq!(runtime.admission_stats(&first).throttled, 1);
    assert_eq!(runtime.admission_stats(&second).throttled, 0);
}

#[test]
fn inclusion_trie_cache_reuses_per_block_tries() {
    // Batched historical lookups against the same block must build its
    // transaction/receipt tries once and serve every later proof from
    // the cache — with bytes identical to the uncached chain path.
    let (mut net, node, mut client, _) = connected_with_shards(1, 4);
    net.advance_blocks(1).expect("empty block");
    net.sync_client(&mut client);
    // Pick a historical faucet transfer.
    let (tx_hash, tx_block) = *net
        .transaction_locations()
        .last()
        .expect("mined transactions");
    assert!(tx_block < net.chain().height());

    assert!(net.runtime().inclusion_cache().is_empty());
    let calls = vec![
        RpcCall::GetTransactionByHash { hash: tx_hash },
        RpcCall::GetTransactionReceipt { hash: tx_hash },
    ];
    let request = client.request_batch(calls.clone()).expect("request");
    let response = net.serve_batch(node, &request).expect("serve");
    // Two tries built (tx + receipt), both now cached.
    assert_eq!(net.runtime().inclusion_cache().misses(), 2);
    assert_eq!(net.runtime().inclusion_cache().len(), 2);

    // The cached proofs are byte-identical to the uncached chain path.
    let (_, tx_index) = net.chain().transaction_location(&tx_hash).expect("located");
    let expected_tx_proof = net
        .chain()
        .transaction_proof(tx_block, tx_index)
        .expect("tx proof");
    assert_eq!(response.item_proofs[0], expected_tx_proof);
    let expected_receipt_proof = net
        .chain()
        .receipt_proof(tx_block, tx_index)
        .expect("receipt proof");
    assert_eq!(response.item_proofs[1], expected_receipt_proof);

    // A second batch over the same block is served from the cache.
    net.sync_client(&mut client);
    client.process_batch_response(&response).expect("process");
    let request = client.request_batch(calls).expect("request");
    let again = net.serve_batch(node, &request).expect("serve");
    assert_eq!(net.runtime().inclusion_cache().misses(), 2, "no rebuild");
    assert!(net.runtime().inclusion_cache().hits() >= 2);
    assert_eq!(again.item_proofs, response.item_proofs);
}

mod fair_queue_churn {
    use parp_suite::primitives::Address;
    use parp_suite::runtime::FairQueue;
    use proptest::prelude::*;
    use std::collections::HashMap;
    use std::collections::VecDeque;

    fn client(n: u64) -> Address {
        Address::from_low_u64_be(n + 1)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn fairness_invariants_under_join_drain_churn(
            ops in proptest::collection::vec((0u64..3, 0u64..6), 1..120)
        ) {
            let mut queue: FairQueue<u64> = FairQueue::new();
            // Reference model: per-client FIFO queues.
            let mut model: HashMap<Address, VecDeque<u64>> = HashMap::new();
            let mut ticket = 0u64;
            for (op, who) in ops {
                match op {
                    // Two pushes for every pop on average keeps backlog.
                    0 | 1 => {
                        queue.push(client(who), ticket);
                        model.entry(client(who)).or_default().push_back(ticket);
                        ticket += 1;
                    }
                    _ => {
                        match queue.pop() {
                            None => prop_assert!(model.values().all(VecDeque::is_empty)),
                            Some((served, item)) => {
                                let backlog = model.get_mut(&served).expect("known client");
                                // Per-client FIFO order.
                                prop_assert_eq!(backlog.pop_front(), Some(item));
                            }
                        }
                    }
                }
                // Invariants after every operation:
                let live = model.values().filter(|q| !q.is_empty()).count();
                // 1. Drained clients do not linger in the rotation —
                //    memory is bounded by clients *with backlog*, not by
                //    clients ever seen (the leak this fixes).
                prop_assert_eq!(queue.active_clients(), live);
                let total: usize = model.values().map(VecDeque::len).sum();
                prop_assert_eq!(queue.len(), total);
                for (address, backlog) in &model {
                    prop_assert_eq!(queue.backlog(address), backlog.len());
                }
            }
            // 2. Round-robin fairness at drain time: with k clients
            //    holding backlog, the next k pops serve k distinct
            //    clients — no client waits more than one full rotation.
            let live = queue.active_clients();
            let mut first_round = Vec::new();
            for _ in 0..live {
                first_round.push(queue.pop().expect("backlog remains").0);
            }
            let distinct: std::collections::HashSet<_> = first_round.iter().collect();
            prop_assert_eq!(distinct.len(), live, "one service per client per round");
            // Drain fully: every queued item comes out.
            while queue.pop().is_some() {}
            prop_assert!(queue.is_empty());
            prop_assert_eq!(queue.active_clients(), 0);
        }
    }

    #[test]
    fn one_shot_client_churn_does_not_accumulate() {
        // Regression for the unbounded-growth bug: 10k one-shot clients
        // pushing one item each and draining immediately must leave no
        // trace in the rotation (the old implementation kept one empty
        // queue per client forever, degrading every pop to an
        // O(total-clients) scan).
        let mut queue: FairQueue<u64> = FairQueue::new();
        for i in 0..10_000u64 {
            queue.push(client(i), i);
            assert_eq!(queue.active_clients(), 1);
            let (served, item) = queue.pop().expect("just pushed");
            assert_eq!(served, client(i));
            assert_eq!(item, i);
            assert_eq!(queue.active_clients(), 0, "drained client lingered");
        }
        assert!(queue.is_empty());
    }

    #[test]
    fn rejoining_client_goes_to_the_rotation_tail() {
        // A client that drains and rejoins must not cut the line: the
        // clients already holding backlog are each served once first.
        let mut queue: FairQueue<u64> = FairQueue::new();
        queue.push(client(0), 0);
        queue.push(client(1), 1);
        queue.push(client(1), 2);
        queue.push(client(2), 3);
        // Serve client 0 fully; it leaves the rotation.
        let (served, _) = queue.pop().expect("backlog");
        assert_eq!(served, client(0));
        // It rejoins behind clients 1 and 2.
        queue.push(client(0), 4);
        let order: Vec<Address> = std::iter::from_fn(|| queue.pop().map(|(c, _)| c)).collect();
        assert_eq!(
            order,
            vec![client(1), client(2), client(0), client(1)],
            "rejoined client served after the standing rotation"
        );
    }
}
