//! Integration: channel liveness monitoring (§V-C) and node fail-over
//! (§IV-A "enhanced availability" / §VIII single-node-dependence risk).

use parp_suite::contracts::{ChannelStatus, ModuleCall, RpcCall};
use parp_suite::core::{ClientState, LightClient, Misbehavior, ProcessOutcome};
use parp_suite::net::{Network, NodeId};
use parp_suite::primitives::U256;

fn connected(seed: &str) -> (Network, NodeId, LightClient) {
    let mut net = Network::new();
    let node = net.spawn_node(format!("{seed}-node").as_bytes(), U256::from(10u64));
    let mut client = net.spawn_client(format!("{seed}-client").as_bytes(), U256::from(10u64));
    net.connect(&mut client, node, U256::from(10_000u64))
        .unwrap();
    (net, node, client)
}

#[test]
fn liveness_probe_reports_open_channel() {
    let (mut net, node, mut client) = connected("live-open");
    let probe = client.liveness_probe().unwrap();
    let response = net.serve(node, &probe).unwrap();
    net.sync_client(&mut client);
    let ProcessOutcome::Valid { result, .. } = client.process_response(&response).unwrap() else {
        panic!("probe must be valid");
    };
    assert!(LightClient::channel_reported_open(&result));
}

#[test]
fn secret_close_is_detected_by_liveness_probe() {
    let (mut net, node, mut client) = connected("live-secret");
    // The node secretly starts closing the channel with the zero state
    // (hoping the client keeps paying off-chain).
    let node_key = *net.node(node).secret();
    let close = ModuleCall::CloseChannel {
        channel_id: 0,
        amount: U256::ZERO,
        payment_sig: parp_suite::crypto::sign(
            client.secret(),
            &parp_suite::contracts::payment_digest(0, &U256::ZERO),
        ),
    };
    assert!(net
        .submit_module_call(&node_key, close, U256::ZERO)
        .unwrap());
    assert!(matches!(
        net.executor().cmm().channel(0).unwrap().status,
        ChannelStatus::Closing { .. }
    ));

    // The client's periodic probe (answered honestly here) reveals it.
    let probe = client.liveness_probe().unwrap();
    let response = net.serve(node, &probe).unwrap();
    net.sync_client(&mut client);
    let ProcessOutcome::Valid { result, .. } = client.process_response(&response).unwrap() else {
        panic!("probe should verify");
    };
    assert!(
        !LightClient::channel_reported_open(&result),
        "client must learn the channel is closing"
    );
}

#[test]
fn lying_about_channel_status_is_caught_via_witness() {
    let (mut net, node, mut client) = connected("live-lie");
    let witness = net.spawn_node(b"live-lie-witness", U256::from(10u64));
    // Node closes on-chain but keeps answering probes with stale data by
    // serving from its (now doctored) local view: simulate by having the
    // client cross-check with the witness node, which it can query for
    // free (header/status service, §IV-D assumption).
    let node_key = *net.node(node).secret();
    let close = ModuleCall::CloseChannel {
        channel_id: 0,
        amount: U256::ZERO,
        payment_sig: parp_suite::crypto::sign(
            client.secret(),
            &parp_suite::contracts::payment_digest(0, &U256::ZERO),
        ),
    };
    assert!(net
        .submit_module_call(&node_key, close, U256::ZERO)
        .unwrap());
    // Cross-check through the witness's chain view instead of the
    // (possibly lying) serving node.
    let status = net.executor().cmm().channel(0).map(|c| c.status).unwrap();
    assert!(matches!(status, ChannelStatus::Closing { .. }));
    // The client reacts: abandon and fail over.
    client.abandon_connection();
    let mut client2 = client.clone();
    net.connect(&mut client2, witness, U256::from(1_000u64))
        .unwrap();
    assert_eq!(client2.state(), ClientState::Bonded);
}

#[test]
fn failover_after_invalid_response() {
    let mut net = Network::new();
    let bad_node = net.spawn_node(b"fo-bad", U256::from(10u64));
    let good_node = net.spawn_node(b"fo-good", U256::from(10u64));
    let mut client = net.spawn_client(b"fo-client", U256::from(10u64));
    net.connect(&mut client, bad_node, U256::from(1_000u64))
        .unwrap();

    // The bad node serves garbage signatures (invalid, not slashable).
    net.node_mut(bad_node)
        .set_misbehavior(Misbehavior::WrongResponseKey);
    let (outcome, _) = net
        .parp_call(&mut client, bad_node, RpcCall::BlockNumber)
        .unwrap();
    assert!(matches!(outcome, ProcessOutcome::Invalid(_)));

    // §V-D: sensible to terminate. No sign-up means switching is trivial.
    client.abandon_connection();
    net.connect(&mut client, good_node, U256::from(1_000u64))
        .unwrap();
    let (outcome, _) = net
        .parp_call(&mut client, good_node, RpcCall::BlockNumber)
        .unwrap();
    assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
}

#[test]
fn failover_after_proven_fraud_keeps_client_whole() {
    let mut net = Network::new();
    let rogue = net.spawn_node(b"fw-rogue", U256::from(10u64));
    let witness = net.spawn_node(b"fw-witness", U256::from(10u64));
    let mut client = net.spawn_client(b"fw-client", U256::from(10u64));
    let budget = U256::from(5_000u64);
    let funds_before = net.chain().balance(&client.address());
    net.connect(&mut client, rogue, budget).unwrap();
    net.node_mut(rogue)
        .set_misbehavior(Misbehavior::WrongAmount);
    let (outcome, _) = net
        .parp_call(&mut client, rogue, RpcCall::BlockNumber)
        .unwrap();
    let ProcessOutcome::Fraud(evidence) = outcome else {
        panic!("expected fraud");
    };
    assert!(net.report_fraud(&evidence, witness).unwrap());
    client.abandon_connection();

    // Budget refunded + slash reward: the client ends richer than it
    // started, then re-connects to the witness and resumes service.
    let funds_after = net.chain().balance(&client.address());
    assert!(funds_after > funds_before - budget);
    net.connect(&mut client, witness, budget).unwrap();
    let (outcome, _) = net
        .parp_call(&mut client, witness, RpcCall::BlockNumber)
        .unwrap();
    assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
}

#[test]
fn header_sync_from_any_source() {
    // §IV-D: headers come from any node, paid connections not required.
    let (net, _, _) = connected("hdr");
    let mut fresh = LightClient::new(
        parp_suite::crypto::SecretKey::from_seed(b"hdr-fresh"),
        U256::from(10u64),
    );
    for n in 0..=net.chain().height() {
        assert!(fresh.sync_header(net.chain().block(n).unwrap().header.clone()));
    }
    assert_eq!(fresh.tip().unwrap().number, net.chain().height());
    // Headers chain correctly: parent hashes link.
    for n in 1..=net.chain().height() {
        let child = fresh.header(n).unwrap();
        let parent = fresh.header(n - 1).unwrap();
        assert_eq!(child.parent_hash, parent.hash());
    }
}
