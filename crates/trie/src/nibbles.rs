//! Nibble paths and the hex-prefix (HP) encoding from the Ethereum yellow
//! paper, appendix C.

/// Expands a byte key into its nibble path (two nibbles per byte, high
/// nibble first).
pub fn bytes_to_nibbles(key: &[u8]) -> Vec<u8> {
    let mut nibbles = Vec::with_capacity(key.len() * 2);
    for &b in key {
        nibbles.push(b >> 4);
        nibbles.push(b & 0x0f);
    }
    nibbles
}

/// Hex-prefix encodes a nibble path.
///
/// The first nibble of the output carries two flags: bit 1 marks a leaf
/// node (vs. extension), bit 0 marks an odd-length path.
pub fn hp_encode(nibbles: &[u8], is_leaf: bool) -> Vec<u8> {
    let odd = nibbles.len() % 2 == 1;
    let mut flag = if is_leaf { 0x20u8 } else { 0x00u8 };
    let mut out = Vec::with_capacity(nibbles.len() / 2 + 1);
    let mut rest = nibbles;
    if odd {
        flag |= 0x10;
        out.push(flag | nibbles[0]);
        rest = &nibbles[1..];
    } else {
        out.push(flag);
    }
    for pair in rest.chunks_exact(2) {
        out.push((pair[0] << 4) | pair[1]);
    }
    out
}

/// Decodes a hex-prefix encoded path into `(nibbles, is_leaf)`.
///
/// Returns `None` on an empty input or invalid flag nibble.
pub fn hp_decode(encoded: &[u8]) -> Option<(Vec<u8>, bool)> {
    let first = *encoded.first()?;
    let flag = first >> 4;
    if flag > 3 {
        return None;
    }
    let is_leaf = flag & 0x2 != 0;
    let odd = flag & 0x1 != 0;
    let mut nibbles = Vec::with_capacity(encoded.len() * 2);
    if odd {
        nibbles.push(first & 0x0f);
    } else if first & 0x0f != 0 {
        return None; // padding nibble must be zero for even paths
    }
    for &b in &encoded[1..] {
        nibbles.push(b >> 4);
        nibbles.push(b & 0x0f);
    }
    Some((nibbles, is_leaf))
}

/// Length of the longest common prefix of two nibble slices.
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_expand_high_nibble_first() {
        assert_eq!(bytes_to_nibbles(&[0xab, 0x10]), vec![0xa, 0xb, 0x1, 0x0]);
        assert_eq!(bytes_to_nibbles(&[]), Vec::<u8>::new());
    }

    // Yellow-paper appendix C examples.
    #[test]
    fn hp_yellow_paper_vectors() {
        // [1, 2, 3, 4, 5] extension (odd) -> 0x11 0x23 0x45
        assert_eq!(hp_encode(&[1, 2, 3, 4, 5], false), vec![0x11, 0x23, 0x45]);
        // [0, 1, 2, 3, 4, 5] extension (even) -> 0x00 0x01 0x23 0x45
        assert_eq!(
            hp_encode(&[0, 1, 2, 3, 4, 5], false),
            vec![0x00, 0x01, 0x23, 0x45]
        );
        // [0, f, 1, c, b, 8] leaf? No: [f, 1, c, b, 8, 10] in the paper uses
        // the terminator; here: odd leaf [f, 1, c, b, 8] -> 0x3f 0x1c 0xb8
        assert_eq!(
            hp_encode(&[0xf, 1, 0xc, 0xb, 8], true),
            vec![0x3f, 0x1c, 0xb8]
        );
        // even leaf [0, f, 1, c, b, 8] -> 0x20 0x0f 0x1c 0xb8
        assert_eq!(
            hp_encode(&[0, 0xf, 1, 0xc, 0xb, 8], true),
            vec![0x20, 0x0f, 0x1c, 0xb8]
        );
    }

    #[test]
    fn hp_roundtrip() {
        for len in 0..8 {
            for leaf in [false, true] {
                let nibbles: Vec<u8> = (0..len).map(|i| (i * 3 % 16) as u8).collect();
                let encoded = hp_encode(&nibbles, leaf);
                assert_eq!(hp_decode(&encoded), Some((nibbles.clone(), leaf)));
            }
        }
    }

    #[test]
    fn hp_decode_rejects_bad_flags() {
        assert_eq!(hp_decode(&[]), None);
        assert_eq!(hp_decode(&[0x40]), None); // flag nibble 4 is invalid
        assert_eq!(hp_decode(&[0x01]), None); // even path with nonzero pad
    }

    #[test]
    fn common_prefix() {
        assert_eq!(common_prefix_len(&[1, 2, 3], &[1, 2, 4]), 2);
        assert_eq!(common_prefix_len(&[1, 2], &[1, 2]), 2);
        assert_eq!(common_prefix_len(&[], &[1]), 0);
        assert_eq!(common_prefix_len(&[5], &[6]), 0);
    }
}
