//! A from-scratch Merkle Patricia Trie (MPT), byte-compatible with
//! Ethereum's state, transaction and receipt tries.
//!
//! PARP's integrity story rests on this structure: full nodes commit to
//! chain data through trie roots in block headers, serve Merkle proofs
//! alongside RPC responses, and light clients (plus the on-chain Fraud
//! Detection Module) verify those proofs statelessly with
//! [`verify_proof`].
//!
//! # Examples
//!
//! ```
//! use parp_trie::{Trie, verify_proof};
//!
//! let mut trie = Trie::new();
//! trie.insert(b"account-1".to_vec(), b"balance: 100".to_vec());
//! trie.insert(b"account-2".to_vec(), b"balance: 250".to_vec());
//!
//! let root = trie.root_hash();
//! let proof = trie.prove(b"account-2");
//! let verified = verify_proof(root, b"account-2", &proof)?;
//! assert_eq!(verified, Some(b"balance: 250".to_vec()));
//! # Ok::<(), parp_trie::ProofError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
mod frozen;
mod multiproof;
pub mod nibbles;
mod node;
mod proof;
mod proofbuf;
mod trie;

pub use frozen::FrozenTrie;
pub use multiproof::verify_many;
pub use node::{empty_root, Node};
pub use proof::{verify_proof, ProofError};
pub use proofbuf::ProofBuf;
pub use trie::{Iter, Trie};

/// Builds a transaction-trie-style trie from ordered values: key `i` is
/// `rlp(i)` as in Ethereum's transaction and receipt tries.
///
/// # Examples
///
/// ```
/// let txs: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8; 10]).collect();
/// let trie = parp_trie::ordered_trie(txs.iter().map(|t| t.as_slice()));
/// assert_eq!(trie.len(), 3);
/// ```
pub fn ordered_trie<'a, I>(values: I) -> Trie
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut trie = Trie::new();
    for (index, value) in values.into_iter().enumerate() {
        trie.insert(parp_rlp::encode_u64(index as u64), value.to_vec());
    }
    trie
}
