//! In-memory Merkle-Patricia-Trie nodes and their canonical RLP encoding.

use crate::nibbles::hp_encode;
use parp_crypto::keccak256;
use parp_primitives::H256;
use parp_rlp::{encode_bytes, encode_list};

/// A trie node. `Empty` is the absent node (RLP `0x80`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Node {
    /// No node.
    #[default]
    Empty,
    /// Terminal node holding the remaining key path and a value.
    Leaf {
        /// Remaining nibble path.
        path: Vec<u8>,
        /// Stored value (non-empty).
        value: Vec<u8>,
    },
    /// Interior node compressing a shared nibble path.
    Extension {
        /// Shared nibble path (non-empty).
        path: Vec<u8>,
        /// The single child (never `Empty`).
        child: Box<Node>,
    },
    /// 16-way fan-out node with an optional value for keys ending here.
    Branch {
        /// One child per next nibble.
        children: Box<[Node; 16]>,
        /// Value when a key terminates at this node.
        value: Option<Vec<u8>>,
    },
}

impl Node {
    /// Creates an empty branch node.
    pub fn empty_branch() -> Node {
        Node::Branch {
            children: Box::new(std::array::from_fn(|_| Node::Empty)),
            value: None,
        }
    }

    /// Returns `true` for [`Node::Empty`].
    pub fn is_empty(&self) -> bool {
        matches!(self, Node::Empty)
    }

    /// Canonical RLP encoding of this node.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Node::Empty => encode_bytes(&[]),
            Node::Leaf { path, value } => {
                encode_list(&[encode_bytes(&hp_encode(path, true)), encode_bytes(value)])
            }
            Node::Extension { path, child } => {
                encode_list(&[encode_bytes(&hp_encode(path, false)), child.reference()])
            }
            Node::Branch { children, value } => {
                let mut items: Vec<Vec<u8>> = Vec::with_capacity(17);
                for child in children.iter() {
                    items.push(child.reference());
                }
                items.push(match value {
                    Some(v) => encode_bytes(v),
                    None => encode_bytes(&[]),
                });
                encode_list(&items)
            }
        }
    }

    /// The reference to this node as embedded in a parent: the raw encoding
    /// when shorter than 32 bytes, otherwise the RLP-wrapped Keccak hash.
    pub fn reference(&self) -> Vec<u8> {
        if self.is_empty() {
            return encode_bytes(&[]);
        }
        let encoded = self.encode();
        if encoded.len() < 32 {
            encoded
        } else {
            encode_bytes(keccak256(&encoded).as_bytes())
        }
    }

    /// The Keccak-256 hash of the node encoding (the "node hash").
    pub fn hash(&self) -> H256 {
        keccak256(&self.encode())
    }
}

/// Root hash of the empty trie: `keccak256(rlp(""))`.
pub fn empty_root() -> H256 {
    keccak256(&encode_bytes(&[]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_root_constant() {
        // The famous Ethereum empty-trie root.
        assert_eq!(
            empty_root().to_string(),
            "0x56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421"
        );
    }

    #[test]
    fn small_nodes_inline() {
        let leaf = Node::Leaf {
            path: vec![1, 2],
            value: b"v".to_vec(),
        };
        let encoded = leaf.encode();
        assert!(encoded.len() < 32);
        assert_eq!(leaf.reference(), encoded);
    }

    #[test]
    fn large_nodes_hash() {
        let leaf = Node::Leaf {
            path: vec![1, 2, 3, 4],
            value: vec![0xaa; 64],
        };
        let reference = leaf.reference();
        assert_eq!(reference.len(), 33); // 0xa0 prefix + 32-byte hash
        assert_eq!(reference[0], 0xa0);
        assert_eq!(&reference[1..], leaf.hash().as_bytes());
    }

    #[test]
    fn branch_encoding_has_17_items() {
        let branch = Node::empty_branch();
        let decoded = parp_rlp::decode(&branch.encode()).unwrap();
        assert_eq!(decoded.as_list().unwrap().len(), 17);
    }

    #[test]
    fn empty_node_is_empty_string() {
        assert_eq!(Node::Empty.encode(), vec![0x80]);
    }
}
