//! The in-memory Merkle Patricia Trie with proof generation.

use crate::nibbles::{bytes_to_nibbles, common_prefix_len};
use crate::node::{empty_root, Node};
use parp_primitives::H256;

/// A Merkle Patricia Trie mapping byte keys to byte values.
///
/// Semantically equivalent to Ethereum's state/transaction/receipt tries:
/// identical key/value contents produce identical root hashes, so Merkle
/// proofs generated here verify against headers exactly like proofs served
/// by a real node.
///
/// # Examples
///
/// ```
/// use parp_trie::Trie;
///
/// let mut trie = Trie::new();
/// trie.insert(b"dog".to_vec(), b"puppy".to_vec());
/// assert_eq!(trie.get(b"dog"), Some(&b"puppy"[..]));
///
/// let proof = trie.prove(b"dog");
/// let value = parp_trie::verify_proof(trie.root_hash(), b"dog", &proof).unwrap();
/// assert_eq!(value, Some(b"puppy".to_vec()));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trie {
    root: Node,
    len: usize,
}

impl Trie {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Trie {
            root: Node::Empty,
            len: 0,
        }
    }

    /// Number of key/value pairs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The Merkle root hash of the current contents.
    pub fn root_hash(&self) -> H256 {
        match &self.root {
            Node::Empty => empty_root(),
            node => node.hash(),
        }
    }

    /// Inserts or updates a key. Empty values are not allowed (they encode
    /// ambiguously in proofs); use [`Trie::remove`] instead.
    ///
    /// Returns the previous value if the key was present.
    ///
    /// # Panics
    ///
    /// Panics when `value` is empty.
    pub fn insert(&mut self, key: Vec<u8>, value: Vec<u8>) -> Option<Vec<u8>> {
        assert!(!value.is_empty(), "empty values are not representable");
        let nibbles = bytes_to_nibbles(&key);
        let root = std::mem::take(&mut self.root);
        let (new_root, old) = Self::insert_node(root, &nibbles, value);
        self.root = new_root;
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Looks up a key.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        let nibbles = bytes_to_nibbles(key);
        Self::get_node(&self.root, &nibbles)
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let nibbles = bytes_to_nibbles(key);
        let root = std::mem::take(&mut self.root);
        let (new_root, removed) = Self::remove_node(root, &nibbles);
        self.root = new_root;
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Generates a Merkle proof for `key`: the ordered list of RLP node
    /// encodings on the path from the root towards the key.
    ///
    /// The proof doubles as an *exclusion* proof when the key is absent;
    /// [`crate::verify_proof`] returns `None` in that case.
    pub fn prove(&self, key: &[u8]) -> Vec<Vec<u8>> {
        let nibbles = bytes_to_nibbles(key);
        let mut proof = Vec::new();
        let mut node = &self.root;
        let mut remaining: &[u8] = &nibbles;
        loop {
            if node.is_empty() {
                break;
            }
            // Record every node that lives behind a hash reference (plus the
            // root, which verifiers resolve by hash as well).
            let encoded = node.encode();
            if encoded.len() >= 32 || std::ptr::eq(node, &self.root) {
                proof.push(encoded);
            }
            match node {
                Node::Empty => break,
                Node::Leaf { .. } => break,
                Node::Extension { path, child } => {
                    if remaining.len() < path.len() || &remaining[..path.len()] != path.as_slice() {
                        break;
                    }
                    remaining = &remaining[path.len()..];
                    node = child;
                }
                Node::Branch { children, .. } => {
                    if remaining.is_empty() {
                        break;
                    }
                    let idx = remaining[0] as usize;
                    remaining = &remaining[1..];
                    node = &children[idx];
                }
            }
        }
        proof
    }

    /// Iterates over all key/value pairs in lexicographic key order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            stack: vec![(&self.root, Vec::new())],
        }
    }

    /// The root node (for the freezing pass in [`crate::FrozenTrie`]).
    pub(crate) fn root_node(&self) -> &Node {
        &self.root
    }

    fn insert_node(node: Node, path: &[u8], value: Vec<u8>) -> (Node, Option<Vec<u8>>) {
        match node {
            Node::Empty => (
                Node::Leaf {
                    path: path.to_vec(),
                    value,
                },
                None,
            ),
            Node::Leaf {
                path: leaf_path,
                value: leaf_value,
            } => {
                let shared = common_prefix_len(&leaf_path, path);
                if shared == leaf_path.len() && shared == path.len() {
                    // Same key: replace.
                    return (
                        Node::Leaf {
                            path: leaf_path,
                            value,
                        },
                        Some(leaf_value),
                    );
                }
                // Split into a branch (optionally under an extension).
                let mut branch_children: [Node; 16] = std::array::from_fn(|_| Node::Empty);
                let mut branch_value = None;
                if shared == leaf_path.len() {
                    branch_value = Some(leaf_value);
                } else {
                    let idx = leaf_path[shared] as usize;
                    branch_children[idx] = Node::Leaf {
                        path: leaf_path[shared + 1..].to_vec(),
                        value: leaf_value,
                    };
                }
                if shared == path.len() {
                    branch_value = Some(value);
                } else {
                    let idx = path[shared] as usize;
                    branch_children[idx] = Node::Leaf {
                        path: path[shared + 1..].to_vec(),
                        value,
                    };
                }
                let branch = Node::Branch {
                    children: Box::new(branch_children),
                    value: branch_value,
                };
                let result = if shared == 0 {
                    branch
                } else {
                    Node::Extension {
                        path: path[..shared].to_vec(),
                        child: Box::new(branch),
                    }
                };
                (result, None)
            }
            Node::Extension {
                path: ext_path,
                child,
            } => {
                let shared = common_prefix_len(&ext_path, path);
                if shared == ext_path.len() {
                    let (new_child, old) = Self::insert_node(*child, &path[shared..], value);
                    return (
                        Node::Extension {
                            path: ext_path,
                            child: Box::new(new_child),
                        },
                        old,
                    );
                }
                // Split the extension.
                let mut branch_children: [Node; 16] = std::array::from_fn(|_| Node::Empty);
                let mut branch_value = None;
                // Remainder of the old extension.
                let ext_idx = ext_path[shared] as usize;
                let ext_rest = &ext_path[shared + 1..];
                branch_children[ext_idx] = if ext_rest.is_empty() {
                    *child
                } else {
                    Node::Extension {
                        path: ext_rest.to_vec(),
                        child,
                    }
                };
                // The new key.
                if shared == path.len() {
                    branch_value = Some(value);
                } else {
                    let idx = path[shared] as usize;
                    branch_children[idx] = Node::Leaf {
                        path: path[shared + 1..].to_vec(),
                        value,
                    };
                }
                let branch = Node::Branch {
                    children: Box::new(branch_children),
                    value: branch_value,
                };
                let result = if shared == 0 {
                    branch
                } else {
                    Node::Extension {
                        path: path[..shared].to_vec(),
                        child: Box::new(branch),
                    }
                };
                (result, None)
            }
            Node::Branch {
                mut children,
                value: branch_value,
            } => {
                if path.is_empty() {
                    return (
                        Node::Branch {
                            children,
                            value: Some(value),
                        },
                        branch_value,
                    );
                }
                let idx = path[0] as usize;
                let child = std::mem::take(&mut children[idx]);
                let (new_child, old) = Self::insert_node(child, &path[1..], value);
                children[idx] = new_child;
                (
                    Node::Branch {
                        children,
                        value: branch_value,
                    },
                    old,
                )
            }
        }
    }

    fn get_node<'a>(node: &'a Node, path: &[u8]) -> Option<&'a [u8]> {
        match node {
            Node::Empty => None,
            Node::Leaf {
                path: leaf_path,
                value,
            } => (leaf_path.as_slice() == path).then_some(value.as_slice()),
            Node::Extension {
                path: ext_path,
                child,
            } => {
                if path.len() < ext_path.len() || &path[..ext_path.len()] != ext_path.as_slice() {
                    None
                } else {
                    Self::get_node(child, &path[ext_path.len()..])
                }
            }
            Node::Branch { children, value } => {
                if path.is_empty() {
                    value.as_deref()
                } else {
                    Self::get_node(&children[path[0] as usize], &path[1..])
                }
            }
        }
    }

    fn remove_node(node: Node, path: &[u8]) -> (Node, Option<Vec<u8>>) {
        match node {
            Node::Empty => (Node::Empty, None),
            Node::Leaf {
                path: leaf_path,
                value,
            } => {
                if leaf_path.as_slice() == path {
                    (Node::Empty, Some(value))
                } else {
                    (
                        Node::Leaf {
                            path: leaf_path,
                            value,
                        },
                        None,
                    )
                }
            }
            Node::Extension {
                path: ext_path,
                child,
            } => {
                if path.len() < ext_path.len() || &path[..ext_path.len()] != ext_path.as_slice() {
                    return (
                        Node::Extension {
                            path: ext_path,
                            child,
                        },
                        None,
                    );
                }
                let (new_child, removed) = Self::remove_node(*child, &path[ext_path.len()..]);
                if removed.is_none() {
                    return (
                        Node::Extension {
                            path: ext_path,
                            child: Box::new(new_child),
                        },
                        None,
                    );
                }
                (Self::merge_extension(ext_path, new_child), removed)
            }
            Node::Branch {
                mut children,
                value,
            } => {
                if path.is_empty() {
                    if value.is_none() {
                        return (Node::Branch { children, value }, None);
                    }
                    let node = Self::normalize_branch(children, None);
                    return (node, value);
                }
                let idx = path[0] as usize;
                let child = std::mem::take(&mut children[idx]);
                let (new_child, removed) = Self::remove_node(child, &path[1..]);
                children[idx] = new_child;
                if removed.is_none() {
                    return (Node::Branch { children, value }, None);
                }
                (Self::normalize_branch(children, value), removed)
            }
        }
    }

    /// Re-attaches an extension path to whatever its child collapsed into.
    fn merge_extension(ext_path: Vec<u8>, child: Node) -> Node {
        match child {
            Node::Empty => Node::Empty,
            Node::Leaf { path, value } => {
                let mut full = ext_path;
                full.extend_from_slice(&path);
                Node::Leaf { path: full, value }
            }
            Node::Extension { path, child } => {
                let mut full = ext_path;
                full.extend_from_slice(&path);
                Node::Extension { path: full, child }
            }
            branch @ Node::Branch { .. } => Node::Extension {
                path: ext_path,
                child: Box::new(branch),
            },
        }
    }

    /// Collapses a branch that may have become degenerate after a removal.
    fn normalize_branch(children: Box<[Node; 16]>, value: Option<Vec<u8>>) -> Node {
        let occupied: Vec<usize> = children
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(i, _)| i)
            .collect();
        match (occupied.len(), &value) {
            (0, None) => Node::Empty,
            (0, Some(_)) => Node::Leaf {
                path: Vec::new(),
                value: value.expect("matched Some"),
            },
            (1, None) => {
                let idx = occupied[0];
                let mut children = children;
                let child = std::mem::take(&mut children[idx]);
                Self::merge_extension(vec![idx as u8], child)
            }
            _ => Node::Branch { children, value },
        }
    }
}

impl FromIterator<(Vec<u8>, Vec<u8>)> for Trie {
    fn from_iter<I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>>(iter: I) -> Self {
        let mut trie = Trie::new();
        for (k, v) in iter {
            trie.insert(k, v);
        }
        trie
    }
}

impl Extend<(Vec<u8>, Vec<u8>)> for Trie {
    fn extend<I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

/// Iterator over `(key, value)` pairs; see [`Trie::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    /// Nodes still to visit, with the nibble path leading to them.
    stack: Vec<(&'a Node, Vec<u8>)>,
}

impl<'a> Iterator for Iter<'a> {
    type Item = (Vec<u8>, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, prefix)) = self.stack.pop() {
            match node {
                Node::Empty => {}
                Node::Leaf { path, value } => {
                    let mut nibbles = prefix;
                    nibbles.extend_from_slice(path);
                    return Some((nibbles_to_bytes(&nibbles), value));
                }
                Node::Extension { path, child } => {
                    let mut nibbles = prefix;
                    nibbles.extend_from_slice(path);
                    self.stack.push((child, nibbles));
                }
                Node::Branch { children, value } => {
                    // Push children in reverse so nibble 0 pops first.
                    for (i, child) in children.iter().enumerate().rev() {
                        if !child.is_empty() {
                            let mut nibbles = prefix.clone();
                            nibbles.push(i as u8);
                            self.stack.push((child, nibbles));
                        }
                    }
                    if let Some(v) = value {
                        return Some((nibbles_to_bytes(&prefix), v));
                    }
                }
            }
        }
        None
    }
}

fn nibbles_to_bytes(nibbles: &[u8]) -> Vec<u8> {
    debug_assert!(nibbles.len().is_multiple_of(2), "keys are whole bytes");
    nibbles
        .chunks_exact(2)
        .map(|pair| (pair[0] << 4) | pair[1])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_trie_root() {
        assert_eq!(
            Trie::new().root_hash().to_string(),
            "0x56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421"
        );
    }

    #[test]
    fn single_entry_known_root() {
        // Computed with the canonical MPT rules: root = keccak(rlp([hp, v])).
        let mut trie = Trie::new();
        trie.insert(b"dog".to_vec(), b"puppy".to_vec());
        let leaf = Node::Leaf {
            path: bytes_to_nibbles(b"dog"),
            value: b"puppy".to_vec(),
        };
        assert_eq!(trie.root_hash(), leaf.hash());
    }

    #[test]
    fn insert_get_update() {
        let mut trie = Trie::new();
        assert_eq!(trie.insert(b"a".to_vec(), b"1".to_vec()), None);
        assert_eq!(
            trie.insert(b"a".to_vec(), b"2".to_vec()),
            Some(b"1".to_vec())
        );
        assert_eq!(trie.get(b"a"), Some(&b"2"[..]));
        assert_eq!(trie.len(), 1);
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (b"do".to_vec(), b"verb".to_vec()),
            (b"dog".to_vec(), b"puppy".to_vec()),
            (b"doge".to_vec(), b"coin".to_vec()),
            (b"horse".to_vec(), b"stallion".to_vec()),
        ];
        let forward: Trie = pairs.clone().into_iter().collect();
        let backward: Trie = pairs.into_iter().rev().collect();
        assert_eq!(forward.root_hash(), backward.root_hash());
    }

    #[test]
    fn matches_reference_root_for_eth_example() {
        // The {do, dog, doge, horse} example appears in many MPT writeups;
        // its structure exercises extension splits and branch values.
        let mut trie = Trie::new();
        trie.insert(b"do".to_vec(), b"verb".to_vec());
        trie.insert(b"dog".to_vec(), b"puppy".to_vec());
        trie.insert(b"doge".to_vec(), b"coin".to_vec());
        trie.insert(b"horse".to_vec(), b"stallion".to_vec());
        assert_eq!(
            trie.root_hash().to_string(),
            "0x5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe457715e9ac84"
        );
    }

    #[test]
    fn remove_restores_previous_root() {
        let mut trie = Trie::new();
        trie.insert(b"do".to_vec(), b"verb".to_vec());
        trie.insert(b"dog".to_vec(), b"puppy".to_vec());
        let snapshot = trie.root_hash();
        trie.insert(b"doge".to_vec(), b"coin".to_vec());
        assert_ne!(trie.root_hash(), snapshot);
        assert_eq!(trie.remove(b"doge"), Some(b"coin".to_vec()));
        assert_eq!(trie.root_hash(), snapshot);
        assert_eq!(trie.remove(b"missing"), None);
    }

    #[test]
    fn remove_everything_returns_empty_root() {
        let keys: Vec<Vec<u8>> = (0u32..50).map(|i| i.to_be_bytes().to_vec()).collect();
        let mut trie = Trie::new();
        for key in &keys {
            trie.insert(key.clone(), b"value".to_vec());
        }
        for key in &keys {
            assert!(trie.remove(key).is_some());
        }
        assert!(trie.is_empty());
        assert_eq!(trie.root_hash(), empty_root());
    }

    #[test]
    fn model_check_against_btreemap() {
        // Deterministic pseudo-random workload compared against a model.
        let mut model = BTreeMap::new();
        let mut trie = Trie::new();
        let mut seed = 0x12345678u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed
        };
        for _ in 0..500 {
            let r = next();
            let key = (r % 64).to_be_bytes().to_vec();
            match r % 3 {
                0 | 1 => {
                    let value = r.to_be_bytes().to_vec();
                    assert_eq!(
                        trie.insert(key.clone(), value.clone()),
                        model.insert(key, value)
                    );
                }
                _ => {
                    assert_eq!(trie.remove(&key), model.remove(&key));
                }
            }
            assert_eq!(trie.len(), model.len());
        }
        for (k, v) in &model {
            assert_eq!(trie.get(k), Some(v.as_slice()));
        }
    }

    #[test]
    fn iter_yields_sorted_pairs() {
        let mut trie = Trie::new();
        let mut keys: Vec<Vec<u8>> = (0u16..40)
            .map(|i| (i * 37).to_be_bytes().to_vec())
            .collect();
        for key in &keys {
            trie.insert(key.clone(), key.clone());
        }
        keys.sort();
        let collected: Vec<Vec<u8>> = trie.iter().map(|(k, _)| k).collect();
        assert_eq!(collected, keys);
    }

    #[test]
    #[should_panic(expected = "empty values")]
    fn empty_value_panics() {
        Trie::new().insert(b"k".to_vec(), Vec::new());
    }
}
