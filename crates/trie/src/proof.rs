//! Stateless Merkle proof verification.
//!
//! This is the code path a PARP light client (and the on-chain Fraud
//! Detection Module) runs: given only a trusted root hash from a block
//! header and a list of RLP-encoded trie nodes, confirm what value — if
//! any — the trie binds to a key.

use crate::nibbles::{bytes_to_nibbles, hp_decode};
use crate::node::empty_root;
use parp_crypto::keccak256;
use parp_primitives::H256;
use parp_rlp::{decode, Item};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// Errors surfaced by [`verify_proof`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// A referenced node was not supplied in the proof.
    MissingNode(H256),
    /// A proof node was not valid RLP or not a valid trie node.
    MalformedNode,
    /// The proof contained nodes that the walk never referenced.
    UnusedNodes,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::MissingNode(hash) => write!(f, "proof is missing node {hash}"),
            ProofError::MalformedNode => write!(f, "proof contains a malformed trie node"),
            ProofError::UnusedNodes => write!(f, "proof contains unrelated nodes"),
        }
    }
}

impl Error for ProofError {}

/// Verifies a Merkle proof against a trusted `root`.
///
/// Returns `Ok(Some(value))` when the proof shows `key` is bound to
/// `value`, and `Ok(None)` when the proof shows `key` is absent
/// (exclusion proof).
///
/// # Errors
///
/// Returns [`ProofError`] when the proof is incomplete, malformed, or
/// contains nodes the walk never touches (which would let a malicious
/// prover pad proofs arbitrarily).
///
/// # Examples
///
/// ```
/// use parp_trie::{Trie, verify_proof};
///
/// let mut trie = Trie::new();
/// trie.insert(b"key".to_vec(), b"value".to_vec());
/// let proof = trie.prove(b"key");
/// assert_eq!(
///     verify_proof(trie.root_hash(), b"key", &proof).unwrap(),
///     Some(b"value".to_vec()),
/// );
/// // The same trie proves absence of other keys:
/// let absent = trie.prove(b"other");
/// assert_eq!(verify_proof(trie.root_hash(), b"other", &absent).unwrap(), None);
/// ```
pub fn verify_proof<P: AsRef<[u8]>>(
    root: H256,
    key: &[u8],
    proof: &[P],
) -> Result<Option<Vec<u8>>, ProofError> {
    if root == empty_root() {
        return if proof.is_empty() {
            Ok(None)
        } else {
            Err(ProofError::UnusedNodes)
        };
    }
    let nodes = index_nodes(proof);
    let mut used = HashSet::with_capacity(proof.len());
    let result = walk(root, key, &nodes, &mut used)?;
    // A path walk never revisits a node, so the used set counts exactly
    // the touched proof entries.
    if used.len() != proof.len() {
        return Err(ProofError::UnusedNodes);
    }
    Ok(result)
}

/// Indexes RLP node encodings by their keccak hash.
pub(crate) fn index_nodes<P: AsRef<[u8]>>(proof: &[P]) -> HashMap<H256, &[u8]> {
    let mut nodes: HashMap<H256, &[u8]> = HashMap::with_capacity(proof.len());
    for encoded in proof {
        nodes.insert(keccak256(encoded.as_ref()), encoded.as_ref());
    }
    nodes
}

/// Walks one key down the trie through `nodes`, recording every
/// hash-referenced node the walk resolves into `used`.
pub(crate) fn walk(
    root: H256,
    key: &[u8],
    nodes: &HashMap<H256, &[u8]>,
    used: &mut HashSet<H256>,
) -> Result<Option<Vec<u8>>, ProofError> {
    let nibbles = bytes_to_nibbles(key);
    let mut remaining: &[u8] = &nibbles;
    let mut current_hash = root;
    // Resolve the root, then walk down, swapping between hash-referenced
    // nodes (from the proof map) and inline nodes (embedded items).
    let result = 'walk: loop {
        let encoded = nodes
            .get(&current_hash)
            .ok_or(ProofError::MissingNode(current_hash))?;
        used.insert(current_hash);
        let mut item = decode(encoded).map_err(|_| ProofError::MalformedNode)?;
        // Inner loop: follow inline children without a map lookup.
        loop {
            let list = match &item {
                Item::List(children) => children.as_slice(),
                Item::Bytes(_) => return Err(ProofError::MalformedNode),
            };
            match list.len() {
                2 => {
                    let encoded_path = list[0].as_bytes().map_err(|_| ProofError::MalformedNode)?;
                    let (path, is_leaf) =
                        hp_decode(encoded_path).ok_or(ProofError::MalformedNode)?;
                    if is_leaf {
                        if path.as_slice() == remaining {
                            let value = list[1]
                                .as_bytes()
                                .map_err(|_| ProofError::MalformedNode)?
                                .to_vec();
                            break 'walk Some(value);
                        }
                        break 'walk None; // diverged: key absent
                    }
                    // Extension node.
                    if remaining.len() < path.len() || remaining[..path.len()] != path[..] {
                        break 'walk None;
                    }
                    remaining = &remaining[path.len()..];
                    match follow_child(&list[1])? {
                        ChildRef::Hash(hash) => {
                            current_hash = hash;
                            continue 'walk;
                        }
                        ChildRef::Inline(child) => {
                            item = child;
                            continue;
                        }
                        ChildRef::Empty => return Err(ProofError::MalformedNode),
                    }
                }
                17 => {
                    if remaining.is_empty() {
                        let value = list[16].as_bytes().map_err(|_| ProofError::MalformedNode)?;
                        break 'walk if value.is_empty() {
                            None
                        } else {
                            Some(value.to_vec())
                        };
                    }
                    let idx = remaining[0] as usize;
                    remaining = &remaining[1..];
                    match follow_child(&list[idx])? {
                        ChildRef::Hash(hash) => {
                            current_hash = hash;
                            continue 'walk;
                        }
                        ChildRef::Inline(child) => {
                            item = child;
                            continue;
                        }
                        ChildRef::Empty => break 'walk None,
                    }
                }
                _ => return Err(ProofError::MalformedNode),
            }
        }
    };
    Ok(result)
}

enum ChildRef {
    Empty,
    Hash(H256),
    Inline(Item),
}

fn follow_child(item: &Item) -> Result<ChildRef, ProofError> {
    match item {
        Item::Bytes(bytes) if bytes.is_empty() => Ok(ChildRef::Empty),
        Item::Bytes(bytes) => {
            let hash = H256::from_slice(bytes).ok_or(ProofError::MalformedNode)?;
            Ok(ChildRef::Hash(hash))
        }
        Item::List(_) => Ok(ChildRef::Inline(item.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::Trie;

    fn sample_trie(n: u32) -> Trie {
        let mut trie = Trie::new();
        for i in 0..n {
            let key = keccak256(&i.to_be_bytes());
            trie.insert(key.as_bytes().to_vec(), format!("value-{i}").into_bytes());
        }
        trie
    }

    #[test]
    fn inclusion_proofs_verify() {
        let trie = sample_trie(100);
        let root = trie.root_hash();
        for i in 0..100u32 {
            let key = keccak256(&i.to_be_bytes());
            let proof = trie.prove(key.as_bytes());
            let value = verify_proof(root, key.as_bytes(), &proof).unwrap();
            assert_eq!(value, Some(format!("value-{i}").into_bytes()));
        }
    }

    #[test]
    fn exclusion_proofs_verify() {
        let trie = sample_trie(50);
        let root = trie.root_hash();
        for i in 1000..1020u32 {
            let key = keccak256(&i.to_be_bytes());
            let proof = trie.prove(key.as_bytes());
            assert_eq!(verify_proof(root, key.as_bytes(), &proof).unwrap(), None);
        }
    }

    #[test]
    fn empty_trie_proves_absence() {
        let trie = Trie::new();
        assert_eq!(
            verify_proof::<Vec<u8>>(trie.root_hash(), b"any", &[]).unwrap(),
            None
        );
        // ...but padding nodes onto an empty-trie proof is rejected.
        assert_eq!(
            verify_proof(trie.root_hash(), b"any", &[vec![0x80]]),
            Err(ProofError::UnusedNodes)
        );
    }

    #[test]
    fn wrong_root_fails() {
        let trie = sample_trie(10);
        let key = keccak256(&0u32.to_be_bytes());
        let proof = trie.prove(key.as_bytes());
        let bogus_root = keccak256(b"bogus");
        assert!(matches!(
            verify_proof(bogus_root, key.as_bytes(), &proof),
            Err(ProofError::MissingNode(_))
        ));
    }

    #[test]
    fn truncated_proof_fails() {
        let trie = sample_trie(100);
        let key = keccak256(&7u32.to_be_bytes());
        let mut proof = trie.prove(key.as_bytes());
        assert!(proof.len() > 1, "need a multi-node proof");
        proof.pop();
        assert!(matches!(
            verify_proof(trie.root_hash(), key.as_bytes(), &proof),
            Err(ProofError::MissingNode(_))
        ));
    }

    #[test]
    fn tampered_value_fails() {
        let trie = sample_trie(100);
        let key = keccak256(&7u32.to_be_bytes());
        let mut proof = trie.prove(key.as_bytes());
        // Flip a byte in the terminal node: its hash no longer matches the
        // parent reference, so the node appears missing.
        let last = proof.len() - 1;
        let byte = proof[last].len() - 1;
        proof[last][byte] ^= 0x01;
        assert!(verify_proof(trie.root_hash(), key.as_bytes(), &proof).is_err());
    }

    #[test]
    fn padded_proof_rejected() {
        let trie = sample_trie(100);
        let key = keccak256(&3u32.to_be_bytes());
        let mut proof = trie.prove(key.as_bytes());
        // Append a legitimate node for a different key.
        let other = keccak256(&99u32.to_be_bytes());
        let mut other_proof = trie.prove(other.as_bytes());
        let extra = other_proof.pop().unwrap();
        if !proof.contains(&extra) {
            proof.push(extra);
            assert_eq!(
                verify_proof(trie.root_hash(), key.as_bytes(), &proof),
                Err(ProofError::UnusedNodes)
            );
        }
    }

    #[test]
    fn proof_for_wrong_key_is_exclusion_not_value() {
        let trie = sample_trie(100);
        let key_a = keccak256(&1u32.to_be_bytes());
        let key_b = keccak256(&2u32.to_be_bytes());
        let proof_a = trie.prove(key_a.as_bytes());
        // Verifying key B against key A's proof either fails (missing
        // nodes) or proves nothing about B's value; it must never return
        // B's actual value bound to A's proof path.
        if let Ok(Some(value)) = verify_proof(trie.root_hash(), key_b.as_bytes(), &proof_a) {
            assert_ne!(value, b"value-2".to_vec());
        }
    }

    #[test]
    fn short_key_proofs() {
        // Keys shorter than a hash exercise inline nodes (< 32 byte
        // encodings embedded directly in parents).
        let mut trie = Trie::new();
        for i in 0..30u8 {
            trie.insert(vec![i], vec![i, i]);
        }
        let root = trie.root_hash();
        for i in 0..30u8 {
            let proof = trie.prove(&[i]);
            assert_eq!(
                verify_proof(root, &[i], &proof).unwrap(),
                Some(vec![i, i]),
                "key {i}"
            );
        }
        let absent_proof = trie.prove(&[200]);
        assert_eq!(verify_proof(root, &[200], &absent_proof).unwrap(), None);
    }
}
