//! An arena-flattened trie frozen for serving: node encodings laid out
//! contiguously, proofs in O(depth) with zero hashing.
//!
//! [`crate::Trie::prove`] re-encodes every node it records, and encoding
//! an interior node recursively encodes (and hashes) its whole subtree —
//! a proof walk from the root therefore costs O(total trie bytes). The
//! previous frozen layout fixed that with a `HashMap` of encodings keyed
//! by cloned nibble-prefix vectors (retained verbatim as
//! [`crate::baseline::FrozenTrie`]), but every walk step still paid a
//! `Vec` key clone plus a hash-map probe, every recorded node was cloned
//! per key, and multiproof dedup re-keccaked every recorded node.
//!
//! A [`FrozenTrie`] flattens the trie into an arena instead:
//!
//! * one contiguous node table ([`ArenaNode`] is a few words; children
//!   are `u32` arena ids, not boxes), so a proof walk is index chasing
//!   through one allocation;
//! * one contiguous encoding buffer, with each node holding an
//!   `(offset, len)` range — recorded proof nodes are slices, copied at
//!   most once into the caller's [`ProofBuf`];
//! * a freeze pass that encodes bottom-up level by level and hashes
//!   each level's encodings through [`parp_crypto::keccak256_batch`],
//!   then precomputes every node's **witness id** — the canonical arena
//!   id among nodes with byte-identical encodings — so
//!   [`FrozenTrie::prove_many`]'s cross-key dedup is a bitset probe
//!   instead of a keccak per recorded node per key.
//!
//! The proof bytes are **identical** to [`crate::Trie::prove`] and to
//! the retained baseline — the freeze changes where encodings come
//! from, never what they are — so frozen proofs verify (and
//! fraud-check) interchangeably with unfrozen ones. This is the shape
//! the serving runtime's snapshot cache shares across batches and shard
//! workers: workers walk arena ids and only the final merge touches
//! bytes.

use crate::node::{empty_root, Node};
use crate::proofbuf::ProofBuf;
use crate::trie::Trie;
use parp_crypto::keccak256_batch;
use parp_primitives::H256;
use parp_rlp::{encode_bytes, encode_list};
use std::collections::HashMap;

/// Sentinel arena id marking an absent branch child.
const NO_NODE: u32 = u32::MAX;

/// Magic prefix of a serialized arena page ([`FrozenTrie::to_bytes`]).
const PAGE_MAGIC: &[u8] = b"PFT1";

/// Cursor over a serialized page; every read is bounds-checked.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(slice)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
}

/// What a flattened node is; the walk only needs the shape, never the
/// boxed tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Leaf,
    Extension,
    Branch,
}

/// One flattened trie node: encoding range, children ids and walk
/// metadata, all as indices into the arena's shared pools.
#[derive(Debug, Clone, Copy)]
struct ArenaNode {
    kind: Kind,
    /// Range of this node's canonical RLP encoding in the shared
    /// encoding buffer.
    enc_off: u32,
    enc_len: u32,
    /// Extension: one slot in the children pool; branch: 16 slots
    /// (absent children hold [`NO_NODE`]); leaf: unused.
    child_off: u32,
    /// Extension: nibble-path range in the path pool; leaf/branch:
    /// unused (a proof walk never compares a leaf's path).
    path_off: u32,
    path_len: u32,
    /// Witness id: the smallest arena id whose encoding is
    /// byte-identical to this node's. Structurally repeated subtrees
    /// collapse to one witness, exactly like the baseline's
    /// hash-keyed dedup — but precomputed at freeze time.
    dedup: u32,
}

/// A [`Trie`] flattened into a contiguous arena for O(depth),
/// allocation-light proof serving.
///
/// # Examples
///
/// ```
/// use parp_trie::{FrozenTrie, Trie};
///
/// let mut trie = Trie::new();
/// for i in 0..100u32 {
///     trie.insert(i.to_be_bytes().to_vec(), format!("v{i}").into_bytes());
/// }
/// let frozen = FrozenTrie::new(trie);
/// let key = 42u32.to_be_bytes();
/// // Same bytes as Trie::prove, at O(depth) instead of O(trie) cost.
/// assert_eq!(frozen.prove(&key), frozen.trie().prove(&key));
/// assert_eq!(frozen.root_hash(), frozen.trie().root_hash());
/// ```
#[derive(Debug, Clone)]
pub struct FrozenTrie {
    trie: Trie,
    root: H256,
    /// Key/value pair count, stored explicitly so a trie rehydrated
    /// from [`FrozenTrie::to_bytes`] (whose boxed source tree is not
    /// serialized) still reports its size.
    len: usize,
    nodes: Vec<ArenaNode>,
    /// Child-id pool: 16 slots per branch, 1 per extension.
    children: Vec<u32>,
    /// Nibble-path pool for extension nodes.
    paths: Vec<u8>,
    /// Every node's canonical RLP encoding, back to back.
    buf: Vec<u8>,
}

impl FrozenTrie {
    /// Freezes `trie`: flattens it into the arena and computes every
    /// node encoding bottom-up, hashing each level's encodings in one
    /// batched keccak pass.
    pub fn new(trie: Trie) -> Self {
        let (root, nodes, children, paths, buf) = match trie.root_node() {
            Node::Empty => (empty_root(), Vec::new(), Vec::new(), Vec::new(), Vec::new()),
            node => {
                let mut arena = Arena::default();
                arena.flatten(node, 0);
                let root = arena.encode_levels();
                // `srcs` (which borrows the trie) stays behind; only the
                // owned pools move into the frozen value.
                (root, arena.nodes, arena.children, arena.paths, arena.buf)
            }
        };
        let len = trie.len();
        FrozenTrie {
            trie,
            root,
            len,
            nodes,
            children,
            paths,
            buf,
        }
    }

    /// The underlying trie.
    ///
    /// For a trie frozen in memory this is the source [`Trie`]; for
    /// one rehydrated from [`FrozenTrie::from_bytes`] the boxed tree
    /// was never serialized, so this returns an empty trie — proofs
    /// come from the arena either way.
    pub fn trie(&self) -> &Trie {
        &self.trie
    }

    /// Number of key/value pairs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The Merkle root, precomputed at freeze time.
    pub fn root_hash(&self) -> H256 {
        self.root
    }

    /// Number of arena nodes. Witness ids from [`FrozenTrie::prove_ids`]
    /// are always below this bound, so a `node_count()`-sized bitset
    /// dedups any set of id paths.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Measured resident size of the arena in bytes: the node table,
    /// the child and nibble-path pools, and the shared encoding
    /// buffer. The boxed source trie (absent on rehydrated instances)
    /// is deliberately *not* counted — this is the serving-resident
    /// footprint a byte-budgeted cache should account, and it is what
    /// [`FrozenTrie::to_bytes`] round-trips.
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.nodes.len() * std::mem::size_of::<ArenaNode>()
            + self.children.len() * std::mem::size_of::<u32>()
            + self.paths.len()
            + self.buf.len()
    }

    /// Serializes the arena (root, key count, node table and pools)
    /// into a flat byte page suitable for spilling to disk. The boxed
    /// source trie is not serialized: the arena alone serves proofs.
    ///
    /// [`FrozenTrie::from_bytes`] inverts this, and the rehydrated
    /// trie's proofs are byte-identical to the original's.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.mem_bytes());
        out.extend_from_slice(PAGE_MAGIC);
        out.extend_from_slice(self.root.as_bytes());
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        out.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.children.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.paths.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u32).to_le_bytes());
        for node in &self.nodes {
            out.push(match node.kind {
                Kind::Leaf => 0,
                Kind::Extension => 1,
                Kind::Branch => 2,
            });
            for word in [
                node.enc_off,
                node.enc_len,
                node.child_off,
                node.path_off,
                node.path_len,
                node.dedup,
            ] {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        for &child in &self.children {
            out.extend_from_slice(&child.to_le_bytes());
        }
        out.extend_from_slice(&self.paths);
        out.extend_from_slice(&self.buf);
        out
    }

    /// Rehydrates a trie from a [`FrozenTrie::to_bytes`] page.
    ///
    /// Returns `None` when the page is malformed: every node's
    /// encoding range, child slots, extension path and witness id are
    /// bounds-checked here so that proof walks over a page read from
    /// disk can never panic or loop, even on corrupt input. The
    /// rehydrated instance carries an empty boxed trie (see
    /// [`FrozenTrie::trie`]); its proofs are byte-identical to the
    /// original's.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut reader = Reader { bytes, pos: 0 };
        if reader.take(PAGE_MAGIC.len())? != PAGE_MAGIC {
            return None;
        }
        let root = H256::from_slice(reader.take(32)?)?;
        let len = u64::from_le_bytes(reader.take(8)?.try_into().ok()?) as usize;
        let node_count = reader.u32()? as usize;
        let children_len = reader.u32()? as usize;
        let paths_len = reader.u32()? as usize;
        let buf_len = reader.u32()? as usize;

        // Reject length prefixes that overrun the page before any
        // allocation happens — a corrupt count must not turn into a
        // multi-gigabyte reservation.
        let required = (node_count as u64) * 25
            + (children_len as u64) * 4
            + paths_len as u64
            + buf_len as u64;
        if required != (bytes.len() - reader.pos) as u64 {
            return None;
        }

        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let kind = match reader.take(1)?[0] {
                0 => Kind::Leaf,
                1 => Kind::Extension,
                2 => Kind::Branch,
                _ => return None,
            };
            let mut words = [0u32; 6];
            for word in &mut words {
                *word = reader.u32()?;
            }
            let node = ArenaNode {
                kind,
                enc_off: words[0],
                enc_len: words[1],
                child_off: words[2],
                path_off: words[3],
                path_len: words[4],
                dedup: words[5],
            };
            // Bounds that make every later arena access infallible.
            let enc_end = node.enc_off as u64 + node.enc_len as u64;
            if enc_end > buf_len as u64 || node.dedup as usize >= node_count {
                return None;
            }
            match node.kind {
                Kind::Leaf => {}
                Kind::Extension => {
                    let path_end = node.path_off as u64 + node.path_len as u64;
                    // A zero-length extension path would let a crafted
                    // page trap a proof walk in a cycle.
                    if node.path_len == 0
                        || path_end > paths_len as u64
                        || node.child_off as usize >= children_len
                    {
                        return None;
                    }
                }
                Kind::Branch => {
                    if node.child_off as u64 + 16 > children_len as u64 {
                        return None;
                    }
                }
            }
            nodes.push(node);
        }
        let mut children = Vec::with_capacity(children_len);
        for _ in 0..children_len {
            let child = reader.u32()?;
            if child != NO_NODE && child as usize >= node_count {
                return None;
            }
            children.push(child);
        }
        let paths = reader.take(paths_len)?.to_vec();
        let buf = reader.take(buf_len)?.to_vec();
        if reader.pos != bytes.len() {
            return None;
        }
        Some(FrozenTrie {
            trie: Trie::new(),
            root,
            len,
            nodes,
            children,
            paths,
            buf,
        })
    }

    /// The canonical encoding of arena node `id`, as a slice into the
    /// shared buffer.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not a valid arena id (ids come from
    /// [`FrozenTrie::prove_ids`] on the same trie).
    pub fn node_bytes(&self, id: u32) -> &[u8] {
        let node = &self.nodes[id as usize];
        &self.buf[node.enc_off as usize..(node.enc_off + node.enc_len) as usize]
    }

    /// Appends the witness ids of the proof nodes [`Trie::prove`] would
    /// record for `key`, in walk order.
    ///
    /// Mapping each id through [`FrozenTrie::node_bytes`] reproduces
    /// [`FrozenTrie::prove`] exactly; first-touch deduplication over the
    /// ids reproduces [`FrozenTrie::prove_many`]. This is the shard
    /// workers' interface: they exchange ids, never bytes.
    pub fn prove_ids(&self, key: &[u8], out: &mut Vec<u32>) {
        if self.nodes.is_empty() {
            return;
        }
        let nib_len = key.len() * 2;
        let mut id = 0u32;
        let mut consumed = 0usize;
        let mut is_root = true;
        loop {
            let node = self.nodes[id as usize];
            if node.enc_len >= 32 || is_root {
                out.push(node.dedup);
            }
            is_root = false;
            match node.kind {
                Kind::Leaf => break,
                Kind::Extension => {
                    let path = &self.paths
                        [node.path_off as usize..(node.path_off + node.path_len) as usize];
                    if nib_len - consumed < path.len()
                        || !path
                            .iter()
                            .enumerate()
                            .all(|(i, &p)| nibble_at(key, consumed + i) == p)
                    {
                        break;
                    }
                    consumed += path.len();
                    id = self.children[node.child_off as usize];
                }
                Kind::Branch => {
                    if consumed == nib_len {
                        break;
                    }
                    let idx = nibble_at(key, consumed) as usize;
                    consumed += 1;
                    let child = self.children[node.child_off as usize + idx];
                    if child == NO_NODE {
                        break;
                    }
                    id = child;
                }
            }
        }
    }

    /// Merkle proof for `key`: byte-identical to [`Trie::prove`], with
    /// every node a slice copy out of the arena's encoding buffer.
    pub fn prove(&self, key: &[u8]) -> Vec<Vec<u8>> {
        let mut ids = Vec::new();
        self.prove_ids(key, &mut ids);
        ids.iter().map(|&id| self.node_bytes(id).to_vec()).collect()
    }

    /// Deduplicated multiproof for `keys`: byte-identical to
    /// [`Trie::prove_many`]. Cross-key dedup is a bitset over
    /// precomputed witness ids — no hashing, no hash map.
    pub fn prove_many<I, K>(&self, keys: I) -> Vec<Vec<u8>>
    where
        I: IntoIterator<Item = K>,
        K: AsRef<[u8]>,
    {
        let mut nodes = Vec::new();
        self.for_each_multiproof_node(keys, |bytes| nodes.push(bytes.to_vec()));
        nodes
    }

    /// [`FrozenTrie::prove_many`] into a reusable [`ProofBuf`]: the
    /// whole multiproof lands in one contiguous allocation, each shared
    /// node materialized exactly once across all keys. Clears `out`
    /// first; capacity is retained across batches.
    pub fn multiproof_into<I, K>(&self, keys: I, out: &mut ProofBuf)
    where
        I: IntoIterator<Item = K>,
        K: AsRef<[u8]>,
    {
        out.clear();
        self.for_each_multiproof_node(keys, |bytes| out.push(bytes));
    }

    /// Walks every key and emits each first-touched witness node once,
    /// in the exact order [`Trie::prove_many`] produces.
    fn for_each_multiproof_node<I, K, F>(&self, keys: I, mut emit: F)
    where
        I: IntoIterator<Item = K>,
        K: AsRef<[u8]>,
        F: FnMut(&[u8]),
    {
        let mut seen = vec![false; self.nodes.len()];
        let mut ids = Vec::new();
        for key in keys {
            ids.clear();
            self.prove_ids(key.as_ref(), &mut ids);
            for &id in &ids {
                if !std::mem::replace(&mut seen[id as usize], true) {
                    emit(self.node_bytes(id));
                }
            }
        }
    }
}

impl From<Trie> for FrozenTrie {
    fn from(trie: Trie) -> Self {
        FrozenTrie::new(trie)
    }
}

/// The nibble at position `i` of `key`'s nibble expansion, without
/// materializing the expansion.
fn nibble_at(key: &[u8], i: usize) -> u8 {
    let byte = key[i / 2];
    if i.is_multiple_of(2) {
        byte >> 4
    } else {
        byte & 0x0f
    }
}

/// Freeze-pass scratch: flattens the boxed tree, then encodes and
/// hashes it level by level.
#[derive(Default)]
struct Arena<'a> {
    nodes: Vec<ArenaNode>,
    children: Vec<u32>,
    paths: Vec<u8>,
    buf: Vec<u8>,
    /// Source nodes, parallel to `nodes` (branch values are read at
    /// encode time instead of being copied into a pool).
    srcs: Vec<&'a Node>,
    depths: Vec<u32>,
}

impl<'a> Arena<'a> {
    /// Pass 1: assigns arena ids in pre-order (the root is id 0),
    /// records structure, and encodes leaves (which have no
    /// dependencies) immediately.
    fn flatten(&mut self, node: &'a Node, depth: u32) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(ArenaNode {
            kind: Kind::Leaf,
            enc_off: 0,
            enc_len: 0,
            child_off: 0,
            path_off: 0,
            path_len: 0,
            dedup: id,
        });
        self.srcs.push(node);
        self.depths.push(depth);
        match node {
            Node::Empty => unreachable!("flatten is never called on an empty node"),
            Node::Leaf { path, value } => {
                let encoded = encode_list(&[
                    encode_bytes(&crate::nibbles::hp_encode(path, true)),
                    encode_bytes(value),
                ]);
                self.set_encoding(id, &encoded);
            }
            Node::Extension { path, child } => {
                let path_off = self.paths.len() as u32;
                self.paths.extend_from_slice(path);
                let child_off = self.children.len() as u32;
                self.children.push(NO_NODE);
                {
                    let slot = &mut self.nodes[id as usize];
                    slot.kind = Kind::Extension;
                    slot.child_off = child_off;
                    slot.path_off = path_off;
                    slot.path_len = path.len() as u32;
                }
                let child_id = self.flatten(child, depth + 1);
                self.children[child_off as usize] = child_id;
            }
            Node::Branch { children, .. } => {
                let child_off = self.children.len() as u32;
                self.children.extend_from_slice(&[NO_NODE; 16]);
                {
                    let slot = &mut self.nodes[id as usize];
                    slot.kind = Kind::Branch;
                    slot.child_off = child_off;
                }
                for (i, child) in children.iter().enumerate() {
                    if !child.is_empty() {
                        let child_id = self.flatten(child, depth + 1);
                        self.children[child_off as usize + i] = child_id;
                    }
                }
            }
        }
        id
    }

    /// Pass 2: deepest level first, encodes interior nodes from their
    /// children's cached references, batch-hashes each level's
    /// recordable encodings, and derives witness ids. Returns the root
    /// hash.
    fn encode_levels(&mut self) -> H256 {
        let count = self.nodes.len();
        let mut hashes: Vec<H256> = vec![H256::default(); count];
        let max_depth = *self.depths.iter().max().expect("non-empty arena") as usize;
        let mut by_depth: Vec<Vec<u32>> = vec![Vec::new(); max_depth + 1];
        for (id, &depth) in self.depths.iter().enumerate() {
            by_depth[depth as usize].push(id as u32);
        }
        for level in by_depth.iter().rev() {
            for &id in level {
                let node = self.nodes[id as usize];
                let encoded = match node.kind {
                    Kind::Leaf => continue, // encoded during flatten
                    Kind::Extension => {
                        let path = &self.paths
                            [node.path_off as usize..(node.path_off + node.path_len) as usize];
                        let child = self.children[node.child_off as usize];
                        encode_list(&[
                            encode_bytes(&crate::nibbles::hp_encode(path, false)),
                            self.reference(child, &hashes),
                        ])
                    }
                    Kind::Branch => {
                        let mut items: Vec<Vec<u8>> = Vec::with_capacity(17);
                        for i in 0..16 {
                            let child = self.children[node.child_off as usize + i];
                            items.push(if child == NO_NODE {
                                encode_bytes(&[])
                            } else {
                                self.reference(child, &hashes)
                            });
                        }
                        items.push(match self.srcs[id as usize] {
                            Node::Branch { value: Some(v), .. } => encode_bytes(v),
                            _ => encode_bytes(&[]),
                        });
                        encode_list(&items)
                    }
                };
                self.set_encoding(id, &encoded);
            }
            // One batched keccak over the level's recordable encodings:
            // nodes referenced by hash, plus the root (hashed even when
            // its encoding is short).
            let to_hash: Vec<u32> = level
                .iter()
                .copied()
                .filter(|&id| self.nodes[id as usize].enc_len >= 32 || id == 0)
                .collect();
            let slices: Vec<&[u8]> = to_hash.iter().map(|&id| self.encoding(id)).collect();
            for (&id, digest) in to_hash.iter().zip(keccak256_batch(&slices)) {
                hashes[id as usize] = digest;
            }
        }
        // Witness ids: among recordable nodes, byte-identical encodings
        // share the first id carrying them, mirroring the baseline's
        // first-touch hash dedup without any hashing at prove time.
        let mut first: HashMap<H256, u32> = HashMap::new();
        for id in 0..count as u32 {
            if self.nodes[id as usize].enc_len >= 32 || id == 0 {
                let canonical = *first.entry(hashes[id as usize]).or_insert(id);
                self.nodes[id as usize].dedup = canonical;
            }
        }
        hashes[0]
    }

    /// Appends `encoded` to the shared buffer and records its range.
    fn set_encoding(&mut self, id: u32, encoded: &[u8]) {
        let slot = &mut self.nodes[id as usize];
        slot.enc_off = self.buf.len() as u32;
        slot.enc_len = encoded.len() as u32;
        self.buf.extend_from_slice(encoded);
    }

    fn encoding(&self, id: u32) -> &[u8] {
        let node = &self.nodes[id as usize];
        &self.buf[node.enc_off as usize..(node.enc_off + node.enc_len) as usize]
    }

    /// The parent-embedded reference of node `id`: the raw encoding
    /// when shorter than 32 bytes, otherwise the RLP-wrapped hash
    /// cached by the level pass.
    fn reference(&self, id: u32, hashes: &[H256]) -> Vec<u8> {
        if self.nodes[id as usize].enc_len < 32 {
            self.encoding(id).to_vec()
        } else {
            encode_bytes(hashes[id as usize].as_bytes())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use crate::proof::verify_proof;
    use parp_crypto::keccak256;

    fn sample_trie(n: u32) -> Trie {
        let mut trie = Trie::new();
        for i in 0..n {
            let key = keccak256(&i.to_be_bytes());
            trie.insert(key.as_bytes().to_vec(), format!("value-{i}").into_bytes());
        }
        trie
    }

    #[test]
    fn frozen_proofs_match_trie_proofs() {
        let trie = sample_trie(500);
        let frozen = FrozenTrie::new(trie);
        assert_eq!(frozen.root_hash(), frozen.trie().root_hash());
        for i in [0u32, 7, 123, 499, 5000, 5001] {
            // 5000/5001 are absent: exclusion proofs must match too.
            let key = keccak256(&i.to_be_bytes());
            assert_eq!(
                frozen.prove(key.as_bytes()),
                frozen.trie().prove(key.as_bytes()),
                "key {i} diverged"
            );
        }
    }

    #[test]
    fn frozen_multiproof_matches_and_verifies() {
        let trie = sample_trie(300);
        let frozen = FrozenTrie::new(trie);
        let keys: Vec<Vec<u8>> = (0..64u32)
            .map(|i| keccak256(&i.to_be_bytes()).as_bytes().to_vec())
            .collect();
        let frozen_proof = frozen.prove_many(&keys);
        assert_eq!(frozen_proof, frozen.trie().prove_many(&keys));
        let results = crate::verify_many(frozen.root_hash(), &keys, &frozen_proof).unwrap();
        assert!(results.iter().all(Option::is_some));
    }

    #[test]
    fn arena_matches_baseline_byte_for_byte() {
        let trie = sample_trie(400);
        let arena = FrozenTrie::new(trie.clone());
        let base = baseline::FrozenTrie::new(trie);
        assert_eq!(arena.root_hash(), base.root_hash());
        let keys: Vec<Vec<u8>> = (0..96u32)
            .map(|i| keccak256(&(i * 7).to_be_bytes()).as_bytes().to_vec())
            .collect();
        for key in &keys {
            assert_eq!(arena.prove(key), base.prove(key));
        }
        assert_eq!(arena.prove_many(&keys), base.prove_many(&keys));
    }

    #[test]
    fn repeated_subtrees_share_one_witness() {
        // Two keys diverging at the first nibble but with identical
        // (≥ 32 byte) tails produce byte-identical leaf encodings at
        // different arena positions. The baseline's hash dedup collapses
        // them in a multiproof; witness ids must do the same.
        let mut trie = Trie::new();
        let tail = [0xabu8; 20];
        let mut key_a = vec![0x10];
        key_a.extend_from_slice(&tail);
        let mut key_b = vec![0x20];
        key_b.extend_from_slice(&tail);
        trie.insert(key_a.clone(), vec![0xcd; 40]);
        trie.insert(key_b.clone(), vec![0xcd; 40]);
        let arena = FrozenTrie::new(trie.clone());
        let base = baseline::FrozenTrie::new(trie);
        let keys = [key_a, key_b];
        let arena_proof = arena.prove_many(&keys);
        assert_eq!(arena_proof, base.prove_many(&keys));
        // Root branch + one shared leaf encoding: the duplicate leaf
        // must not appear twice.
        assert_eq!(arena_proof.len(), 2);
        let results = crate::verify_many(arena.root_hash(), &keys, &arena_proof).unwrap();
        assert!(results.iter().all(Option::is_some));
    }

    #[test]
    fn multiproof_into_reuses_buffer() {
        let trie = sample_trie(200);
        let frozen = FrozenTrie::new(trie);
        let keys: Vec<Vec<u8>> = (0..48u32)
            .map(|i| keccak256(&i.to_be_bytes()).as_bytes().to_vec())
            .collect();
        let mut buf = ProofBuf::new();
        frozen.multiproof_into(&keys, &mut buf);
        assert_eq!(buf.to_vecs(), frozen.prove_many(&keys));
        // Reuse with a different key set: cleared, then refilled.
        let other: Vec<Vec<u8>> = (100..120u32)
            .map(|i| keccak256(&i.to_be_bytes()).as_bytes().to_vec())
            .collect();
        frozen.multiproof_into(&other, &mut buf);
        assert_eq!(buf.to_vecs(), frozen.prove_many(&other));
    }

    #[test]
    fn small_and_empty_tries() {
        let empty = FrozenTrie::new(Trie::new());
        assert!(empty.is_empty());
        assert_eq!(empty.root_hash(), empty_root());
        assert!(empty.prove(b"anything").is_empty());
        assert_eq!(empty.node_count(), 0);

        let mut one = Trie::new();
        one.insert(b"dog".to_vec(), b"puppy".to_vec());
        let frozen = FrozenTrie::new(one);
        assert_eq!(frozen.len(), 1);
        assert_eq!(frozen.prove(b"dog"), frozen.trie().prove(b"dog"));
        let value = verify_proof(frozen.root_hash(), b"dog", &frozen.prove(b"dog")).unwrap();
        assert_eq!(value, Some(b"puppy".to_vec()));
    }

    #[test]
    fn serialized_page_round_trips_byte_identically() {
        let trie = sample_trie(400);
        let frozen = FrozenTrie::new(trie);
        let page = frozen.to_bytes();
        let rehydrated = FrozenTrie::from_bytes(&page).expect("own page parses");
        assert_eq!(rehydrated.root_hash(), frozen.root_hash());
        assert_eq!(rehydrated.len(), frozen.len());
        assert_eq!(rehydrated.node_count(), frozen.node_count());
        // Proofs from the rehydrated arena are byte-identical to the
        // in-memory path — single, multi, and zero-copy.
        let keys: Vec<Vec<u8>> = (0..96u32)
            .map(|i| keccak256(&(i * 3).to_be_bytes()).as_bytes().to_vec())
            .collect();
        for key in &keys {
            assert_eq!(rehydrated.prove(key), frozen.prove(key));
        }
        assert_eq!(rehydrated.prove_many(&keys), frozen.prove_many(&keys));
        let (mut a, mut b) = (ProofBuf::new(), ProofBuf::new());
        frozen.multiproof_into(&keys, &mut a);
        rehydrated.multiproof_into(&keys, &mut b);
        assert_eq!(a.to_vecs(), b.to_vecs());
        // Serialization is stable: a second round trip is identical.
        assert_eq!(rehydrated.to_bytes(), page);
    }

    #[test]
    fn empty_trie_page_round_trips() {
        let frozen = FrozenTrie::new(Trie::new());
        let page = frozen.to_bytes();
        let rehydrated = FrozenTrie::from_bytes(&page).expect("empty page parses");
        assert!(rehydrated.is_empty());
        assert_eq!(rehydrated.root_hash(), empty_root());
        assert!(rehydrated.prove(b"anything").is_empty());
    }

    #[test]
    fn mem_bytes_tracks_arena_size() {
        let small = FrozenTrie::new(sample_trie(10));
        let large = FrozenTrie::new(sample_trie(1_000));
        assert!(small.mem_bytes() >= std::mem::size_of::<FrozenTrie>());
        assert!(large.mem_bytes() > small.mem_bytes());
        // A rehydrated page reports the same measured size.
        let rehydrated = FrozenTrie::from_bytes(&large.to_bytes()).unwrap();
        assert_eq!(rehydrated.mem_bytes(), large.mem_bytes());
    }

    #[test]
    fn malformed_pages_are_rejected_not_panics() {
        let page = FrozenTrie::new(sample_trie(50)).to_bytes();
        // Truncations at every prefix length parse as None or, at full
        // length, Some — never a panic.
        for cut in 0..page.len() {
            assert!(FrozenTrie::from_bytes(&page[..cut]).is_none(), "cut {cut}");
        }
        // Single-byte corruptions either fail to parse or yield an
        // arena whose walks stay in bounds.
        for pos in (0..page.len()).step_by(7) {
            let mut bad = page.clone();
            bad[pos] ^= 0xFF;
            if let Some(trie) = FrozenTrie::from_bytes(&bad) {
                let key = keccak256(&7u32.to_be_bytes());
                let _ = trie.prove(key.as_bytes());
            }
        }
        assert!(FrozenTrie::from_bytes(b"").is_none());
        assert!(FrozenTrie::from_bytes(b"nope").is_none());
    }

    #[test]
    fn frozen_proof_is_much_cheaper_than_walking() {
        // Structural sanity rather than a timing assertion: the frozen
        // walk performs O(depth) index chases, so proving every key in a
        // large trie stays well under the quadratic re-encoding cost.
        // (The trie_hotpath bench measures the actual speedup.)
        let trie = sample_trie(2_000);
        let frozen = FrozenTrie::new(trie);
        let keys: Vec<Vec<u8>> = (0..2_000u32)
            .map(|i| keccak256(&i.to_be_bytes()).as_bytes().to_vec())
            .collect();
        let proof = frozen.prove_many(&keys);
        assert!(!proof.is_empty());
        assert!(frozen.node_count() >= 2_000);
    }
}
