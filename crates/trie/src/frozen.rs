//! A trie frozen for serving: node encodings precomputed once, proofs in
//! O(depth).
//!
//! [`crate::Trie::prove`] re-encodes every node it records, and encoding
//! an interior node recursively encodes (and hashes) its whole subtree —
//! a proof walk from the root therefore costs O(total trie bytes), and a
//! 64-key multiproof over a 10k-account state spends hundreds of
//! milliseconds redoing identical Keccak work. A [`FrozenTrie`] pays
//! that cost exactly once: a single bottom-up pass computes every node's
//! canonical encoding (each node encoded from its children's *cached*
//! references, so the pass is linear), and stores it keyed by the nibble
//! prefix at which a proof walk reaches the node. Every subsequent
//! [`FrozenTrie::prove`] is a structural walk plus O(depth) lookups.
//!
//! The proof bytes are **identical** to [`crate::Trie::prove`] — the
//! freeze changes where encodings come from, never what they are — so
//! frozen proofs verify (and fraud-check) interchangeably with unfrozen
//! ones. This is the shape the serving runtime's snapshot cache shares
//! across batches and shard workers.

use crate::nibbles::{bytes_to_nibbles, hp_encode};
use crate::node::{empty_root, Node};
use crate::trie::Trie;
use parp_crypto::keccak256;
use parp_primitives::H256;
use parp_rlp::{encode_bytes, encode_list};
use std::collections::HashMap;

/// A [`Trie`] plus a one-pass index of every node's encoding.
///
/// # Examples
///
/// ```
/// use parp_trie::{FrozenTrie, Trie};
///
/// let mut trie = Trie::new();
/// for i in 0..100u32 {
///     trie.insert(i.to_be_bytes().to_vec(), format!("v{i}").into_bytes());
/// }
/// let frozen = FrozenTrie::new(trie);
/// let key = 42u32.to_be_bytes();
/// // Same bytes as Trie::prove, at O(depth) instead of O(trie) cost.
/// assert_eq!(frozen.prove(&key), frozen.trie().prove(&key));
/// assert_eq!(frozen.root_hash(), frozen.trie().root_hash());
/// ```
#[derive(Debug, Clone)]
pub struct FrozenTrie {
    trie: Trie,
    root: H256,
    /// Canonical encoding of each node, keyed by the nibble prefix a
    /// proof walk has consumed when it reaches the node.
    encodings: HashMap<Vec<u8>, Vec<u8>>,
}

impl FrozenTrie {
    /// Freezes `trie`, computing every node encoding bottom-up in one
    /// linear pass.
    pub fn new(trie: Trie) -> Self {
        let mut encodings = HashMap::new();
        let mut prefix = Vec::new();
        let root = match trie.root_node() {
            Node::Empty => empty_root(),
            node => {
                index_node(node, &mut prefix, &mut encodings);
                keccak256(&encodings[&Vec::new()])
            }
        };
        FrozenTrie {
            trie,
            root,
            encodings,
        }
    }

    /// The underlying trie.
    pub fn trie(&self) -> &Trie {
        &self.trie
    }

    /// Number of key/value pairs stored.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// The Merkle root, precomputed at freeze time.
    pub fn root_hash(&self) -> H256 {
        self.root
    }

    /// Merkle proof for `key`: byte-identical to [`Trie::prove`], with
    /// every node encoding looked up instead of recomputed.
    pub fn prove(&self, key: &[u8]) -> Vec<Vec<u8>> {
        let nibbles = bytes_to_nibbles(key);
        let mut proof = Vec::new();
        let mut node = self.trie.root_node();
        let mut consumed = 0usize;
        let mut is_root = true;
        loop {
            if node.is_empty() {
                break;
            }
            let encoded = &self.encodings[&nibbles[..consumed]];
            if encoded.len() >= 32 || is_root {
                proof.push(encoded.clone());
            }
            is_root = false;
            match node {
                Node::Empty | Node::Leaf { .. } => break,
                Node::Extension { path, child } => {
                    let remaining = &nibbles[consumed..];
                    if remaining.len() < path.len() || &remaining[..path.len()] != path.as_slice() {
                        break;
                    }
                    consumed += path.len();
                    node = child;
                }
                Node::Branch { children, .. } => {
                    if consumed == nibbles.len() {
                        break;
                    }
                    let idx = nibbles[consumed] as usize;
                    consumed += 1;
                    node = &children[idx];
                }
            }
        }
        proof
    }

    /// Deduplicated multiproof for `keys`: byte-identical to
    /// [`Trie::prove_many`].
    pub fn prove_many<I, K>(&self, keys: I) -> Vec<Vec<u8>>
    where
        I: IntoIterator<Item = K>,
        K: AsRef<[u8]>,
    {
        let mut seen: std::collections::HashSet<H256> = std::collections::HashSet::new();
        let mut nodes = Vec::new();
        for key in keys {
            for node in self.prove(key.as_ref()) {
                if seen.insert(keccak256(&node)) {
                    nodes.push(node);
                }
            }
        }
        nodes
    }
}

impl From<Trie> for FrozenTrie {
    fn from(trie: Trie) -> Self {
        FrozenTrie::new(trie)
    }
}

/// Encodes `node` (reached after consuming `prefix` nibbles) from its
/// children's cached references, records it, and returns the node's
/// parent-embedded reference. Mirrors [`Node::encode`]/[`Node::reference`]
/// byte for byte, but linear over the whole trie instead of quadratic.
fn index_node(
    node: &Node,
    prefix: &mut Vec<u8>,
    encodings: &mut HashMap<Vec<u8>, Vec<u8>>,
) -> Vec<u8> {
    let encoded = match node {
        Node::Empty => return encode_bytes(&[]),
        Node::Leaf { path, value } => {
            encode_list(&[encode_bytes(&hp_encode(path, true)), encode_bytes(value)])
        }
        Node::Extension { path, child } => {
            let base = prefix.len();
            prefix.extend_from_slice(path);
            let child_ref = index_node(child, prefix, encodings);
            prefix.truncate(base);
            encode_list(&[encode_bytes(&hp_encode(path, false)), child_ref])
        }
        Node::Branch { children, value } => {
            let mut items: Vec<Vec<u8>> = Vec::with_capacity(17);
            for (i, child) in children.iter().enumerate() {
                prefix.push(i as u8);
                let child_ref = index_node(child, prefix, encodings);
                prefix.pop();
                items.push(child_ref);
            }
            items.push(match value {
                Some(v) => encode_bytes(v),
                None => encode_bytes(&[]),
            });
            encode_list(&items)
        }
    };
    let reference = if encoded.len() < 32 {
        encoded.clone()
    } else {
        encode_bytes(keccak256(&encoded).as_bytes())
    };
    encodings.insert(prefix.clone(), encoded);
    reference
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::verify_proof;

    fn sample_trie(n: u32) -> Trie {
        let mut trie = Trie::new();
        for i in 0..n {
            let key = keccak256(&i.to_be_bytes());
            trie.insert(key.as_bytes().to_vec(), format!("value-{i}").into_bytes());
        }
        trie
    }

    #[test]
    fn frozen_proofs_match_trie_proofs() {
        let trie = sample_trie(500);
        let frozen = FrozenTrie::new(trie);
        assert_eq!(frozen.root_hash(), frozen.trie().root_hash());
        for i in [0u32, 7, 123, 499, 5000, 5001] {
            // 5000/5001 are absent: exclusion proofs must match too.
            let key = keccak256(&i.to_be_bytes());
            assert_eq!(
                frozen.prove(key.as_bytes()),
                frozen.trie().prove(key.as_bytes()),
                "key {i} diverged"
            );
        }
    }

    #[test]
    fn frozen_multiproof_matches_and_verifies() {
        let trie = sample_trie(300);
        let frozen = FrozenTrie::new(trie);
        let keys: Vec<Vec<u8>> = (0..64u32)
            .map(|i| keccak256(&i.to_be_bytes()).as_bytes().to_vec())
            .collect();
        let frozen_proof = frozen.prove_many(&keys);
        assert_eq!(frozen_proof, frozen.trie().prove_many(&keys));
        let results = crate::verify_many(frozen.root_hash(), &keys, &frozen_proof).unwrap();
        assert!(results.iter().all(Option::is_some));
    }

    #[test]
    fn small_and_empty_tries() {
        let empty = FrozenTrie::new(Trie::new());
        assert!(empty.is_empty());
        assert_eq!(empty.root_hash(), empty_root());
        assert!(empty.prove(b"anything").is_empty());

        let mut one = Trie::new();
        one.insert(b"dog".to_vec(), b"puppy".to_vec());
        let frozen = FrozenTrie::new(one);
        assert_eq!(frozen.len(), 1);
        assert_eq!(frozen.prove(b"dog"), frozen.trie().prove(b"dog"));
        let value = verify_proof(frozen.root_hash(), b"dog", &frozen.prove(b"dog")).unwrap();
        assert_eq!(value, Some(b"puppy".to_vec()));
    }

    #[test]
    fn frozen_proof_is_much_cheaper_than_walking() {
        // Structural sanity rather than a timing assertion: the frozen
        // walk performs O(depth) map lookups, so proving every key in a
        // large trie stays well under the quadratic re-encoding cost.
        // (The runtime_throughput bench measures the actual speedup.)
        let trie = sample_trie(2_000);
        let frozen = FrozenTrie::new(trie);
        let keys: Vec<Vec<u8>> = (0..2_000u32)
            .map(|i| keccak256(&i.to_be_bytes()).as_bytes().to_vec())
            .collect();
        let proof = frozen.prove_many(&keys);
        assert!(!proof.is_empty());
    }
}
