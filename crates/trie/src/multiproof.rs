//! Deduplicated Merkle multiproofs: one node set authenticating many keys.
//!
//! A batched PARP exchange proves N values against the same trusted root.
//! Serving N independent proofs repeats every shared branch node near the
//! root N times; a multiproof ships the *union* of the per-key proof
//! paths, so each shared node crosses the wire once. Verification walks
//! every key through the shared node set and — exactly like
//! [`crate::verify_proof`] — rejects node sets containing entries no walk
//! touches, so a malicious prover cannot pad proofs.

use crate::node::empty_root;
use crate::proof::{index_nodes, walk, ProofError};
use crate::trie::Trie;
use parp_crypto::keccak256;
use parp_primitives::H256;
use std::collections::{HashMap, HashSet};

impl Trie {
    /// Generates a deduplicated multiproof for `keys`: the union of every
    /// key's [`Trie::prove`] path, each distinct node appearing once, in
    /// first-touch order.
    ///
    /// Duplicate keys contribute their path once. The proof doubles as an
    /// exclusion proof for absent keys, as with single proofs.
    ///
    /// # Examples
    ///
    /// ```
    /// use parp_trie::{verify_many, Trie};
    ///
    /// let mut trie = Trie::new();
    /// for i in 0..50u32 {
    ///     trie.insert(i.to_be_bytes().to_vec(), format!("v{i}").into_bytes());
    /// }
    /// let keys = [1u32.to_be_bytes(), 2u32.to_be_bytes()];
    /// let proof = trie.prove_many(&keys);
    /// let values = verify_many(trie.root_hash(), &keys, &proof).unwrap();
    /// assert_eq!(values[0], Some(b"v1".to_vec()));
    /// assert_eq!(values[1], Some(b"v2".to_vec()));
    /// // The union is smaller than the concatenation of single proofs.
    /// let singles: usize = keys.iter().map(|k| trie.prove(k).len()).sum();
    /// assert!(proof.len() < singles);
    /// ```
    pub fn prove_many<I, K>(&self, keys: I) -> Vec<Vec<u8>>
    where
        I: IntoIterator<Item = K>,
        K: AsRef<[u8]>,
    {
        let mut seen: HashSet<H256> = HashSet::new();
        let mut nodes = Vec::new();
        for key in keys {
            for node in self.prove(key.as_ref()) {
                if seen.insert(keccak256(&node)) {
                    nodes.push(node);
                }
            }
        }
        nodes
    }
}

/// Verifies a deduplicated multiproof against a trusted `root`, returning
/// one result per input key (in order): `Some(value)` for proven
/// inclusions, `None` for proven exclusions.
///
/// Accepts exactly the key/value sets whose per-key single proofs verify
/// against the same root: for every key, the returned result equals what
/// [`crate::verify_proof`] would return for that key's own proof.
///
/// # Errors
///
/// Returns [`ProofError`] when any key's walk hits a missing or malformed
/// node, when the proof repeats a node, or when it contains nodes no
/// key's walk touches (anti-padding, as with single proofs).
///
/// The proof parameter accepts any node representation (`Vec<u8>` from
/// the wire, `&[u8]` slices out of a [`crate::ProofBuf`]): verification
/// only ever reads the bytes.
pub fn verify_many<K: AsRef<[u8]>, P: AsRef<[u8]>>(
    root: H256,
    keys: &[K],
    proof: &[P],
) -> Result<Vec<Option<Vec<u8>>>, ProofError> {
    if root == empty_root() || keys.is_empty() {
        // Nothing can be proven: the whole node set would be unused.
        return if proof.is_empty() {
            Ok(keys.iter().map(|_| None).collect())
        } else {
            Err(ProofError::UnusedNodes)
        };
    }
    let nodes = index_nodes(proof);
    if nodes.len() != proof.len() {
        // A repeated node is padding by duplication.
        return Err(ProofError::UnusedNodes);
    }
    let mut used = HashSet::with_capacity(nodes.len());
    // Walk each distinct key once; duplicates reuse the first walk's result.
    let mut walked: HashMap<&[u8], Option<Vec<u8>>> = HashMap::new();
    let mut results = Vec::with_capacity(keys.len());
    for key in keys {
        let key = key.as_ref();
        let result = match walked.get(key) {
            Some(result) => result.clone(),
            None => {
                let result = walk(root, key, &nodes, &mut used)?;
                walked.insert(key, result.clone());
                result
            }
        };
        results.push(result);
    }
    if used.len() != nodes.len() {
        return Err(ProofError::UnusedNodes);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::verify_proof;

    fn sample_trie(n: u32) -> Trie {
        let mut trie = Trie::new();
        for i in 0..n {
            let key = keccak256(&i.to_be_bytes());
            trie.insert(key.as_bytes().to_vec(), format!("value-{i}").into_bytes());
        }
        trie
    }

    fn sample_keys(indices: &[u32]) -> Vec<Vec<u8>> {
        indices
            .iter()
            .map(|i| keccak256(&i.to_be_bytes()).as_bytes().to_vec())
            .collect()
    }

    #[test]
    fn multiproof_matches_single_proofs() {
        let trie = sample_trie(200);
        let root = trie.root_hash();
        let keys = sample_keys(&[0, 7, 63, 120, 1000, 1001]); // last two absent
        let proof = trie.prove_many(&keys);
        let results = verify_many(root, &keys, &proof).unwrap();
        for (key, result) in keys.iter().zip(&results) {
            let single = trie.prove(key);
            assert_eq!(result, &verify_proof(root, key, &single).unwrap());
        }
        assert_eq!(results[4], None);
        assert_eq!(results[5], None);
    }

    #[test]
    fn multiproof_is_smaller_than_concatenated_singles() {
        let trie = sample_trie(500);
        let keys = sample_keys(&(0..64).collect::<Vec<_>>());
        let proof = trie.prove_many(&keys);
        let multi_bytes: usize = proof.iter().map(Vec::len).sum();
        let single_bytes: usize = keys
            .iter()
            .map(|k| trie.prove(k).iter().map(Vec::len).sum::<usize>())
            .sum();
        assert!(
            multi_bytes < single_bytes,
            "multiproof {multi_bytes} B not smaller than singles {single_bytes} B"
        );
        // At minimum, the root node is shared by all 64 walks.
        assert!(proof.len() < keys.len() * trie.prove(&keys[0]).len());
    }

    #[test]
    fn duplicate_keys_share_one_path() {
        let trie = sample_trie(100);
        let root = trie.root_hash();
        let mut keys = sample_keys(&[5, 5, 5, 9]);
        let proof = trie.prove_many(&keys);
        // Same node set as the distinct-key multiproof.
        let distinct = trie.prove_many(sample_keys(&[5, 9]));
        assert_eq!(proof, distinct);
        let results = verify_many(root, &keys, &proof).unwrap();
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        assert_eq!(results[0], Some(b"value-5".to_vec()));
        // Re-ordering duplicates still verifies.
        keys.swap(0, 3);
        assert!(verify_many(root, &keys, &proof).is_ok());
    }

    #[test]
    fn padded_multiproof_rejected() {
        let trie = sample_trie(100);
        let root = trie.root_hash();
        let keys = sample_keys(&[1, 2]);
        let mut proof = trie.prove_many(&keys);
        // Graft a node only key 50's path touches.
        let foreign = trie
            .prove(&sample_keys(&[50])[0])
            .pop()
            .expect("non-empty proof");
        if !proof.contains(&foreign) {
            proof.push(foreign);
            assert_eq!(
                verify_many(root, &keys, &proof),
                Err(ProofError::UnusedNodes)
            );
        }
    }

    #[test]
    fn duplicated_node_rejected() {
        let trie = sample_trie(100);
        let root = trie.root_hash();
        let keys = sample_keys(&[1, 2]);
        let mut proof = trie.prove_many(&keys);
        proof.push(proof[0].clone());
        assert_eq!(
            verify_many(root, &keys, &proof),
            Err(ProofError::UnusedNodes)
        );
    }

    #[test]
    fn truncated_multiproof_rejected() {
        let trie = sample_trie(100);
        let root = trie.root_hash();
        let keys = sample_keys(&[1, 2, 3]);
        let mut proof = trie.prove_many(&keys);
        proof.pop();
        assert!(matches!(
            verify_many(root, &keys, &proof),
            Err(ProofError::MissingNode(_))
        ));
    }

    #[test]
    fn empty_cases() {
        let trie = sample_trie(10);
        // No keys: only the empty proof verifies.
        assert_eq!(
            verify_many::<Vec<u8>, Vec<u8>>(trie.root_hash(), &[], &[]).unwrap(),
            Vec::<Option<Vec<u8>>>::new()
        );
        assert_eq!(
            verify_many::<Vec<u8>, Vec<u8>>(trie.root_hash(), &[], &[vec![0x80]]),
            Err(ProofError::UnusedNodes)
        );
        // Empty trie: every key is absent, the proof must be empty.
        let empty = Trie::new();
        let keys = sample_keys(&[1, 2]);
        assert_eq!(empty.prove_many(&keys), Vec::<Vec<u8>>::new());
        assert_eq!(
            verify_many::<_, Vec<u8>>(empty.root_hash(), &keys, &[]).unwrap(),
            vec![None, None]
        );
    }

    #[test]
    fn tampered_node_rejected() {
        let trie = sample_trie(100);
        let root = trie.root_hash();
        let keys = sample_keys(&[1, 2]);
        let mut proof = trie.prove_many(&keys);
        let last = proof.len() - 1;
        let byte = proof[last].len() - 1;
        proof[last][byte] ^= 0x01;
        assert!(verify_many(root, &keys, &proof).is_err());
    }
}
