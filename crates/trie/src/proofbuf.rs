//! A flat, reusable proof container: many node encodings in one
//! contiguous allocation.
//!
//! The serving path materializes a multiproof per batch; shipping it as
//! `Vec<Vec<u8>>` costs one heap allocation per node, every batch. A
//! [`ProofBuf`] instead appends every node into a single byte buffer and
//! records the node boundaries, so a warm serving loop reuses the same
//! two allocations across batches ([`ProofBuf::clear`] keeps capacity).
//! Conversion to the wire's `Vec<Vec<u8>>` shape happens exactly once,
//! at the envelope boundary, via [`ProofBuf::to_vecs`].

/// An ordered sequence of proof-node encodings stored back to back in
/// one buffer.
///
/// # Examples
///
/// ```
/// use parp_trie::ProofBuf;
///
/// let mut buf = ProofBuf::new();
/// buf.push(b"node-1");
/// buf.push(b"node-2");
/// assert_eq!(buf.len(), 2);
/// assert_eq!(buf.get(1), Some(b"node-2".as_slice()));
/// assert_eq!(buf.to_vecs(), vec![b"node-1".to_vec(), b"node-2".to_vec()]);
/// buf.clear(); // keeps capacity for the next batch
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProofBuf {
    bytes: Vec<u8>,
    /// End offset of each node in `bytes`; node `i` spans
    /// `ends[i-1]..ends[i]` (with `ends[-1]` read as 0).
    ends: Vec<usize>,
}

impl ProofBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one node encoding.
    pub fn push(&mut self, node: &[u8]) {
        self.bytes.extend_from_slice(node);
        self.ends.push(self.bytes.len());
    }

    /// Removes every node, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.ends.clear();
    }

    /// Number of nodes held.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether no nodes are held.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Total encoded bytes across all nodes.
    pub fn total_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The `index`-th node encoding, if present.
    pub fn get(&self, index: usize) -> Option<&[u8]> {
        let end = *self.ends.get(index)?;
        let start = if index == 0 { 0 } else { self.ends[index - 1] };
        Some(&self.bytes[start..end])
    }

    /// Iterates the node encodings in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.len()).map(|i| self.get(i).expect("index in range"))
    }

    /// Borrowed view of every node, e.g. for [`crate::verify_many`].
    pub fn as_slices(&self) -> Vec<&[u8]> {
        self.iter().collect()
    }

    /// Materializes the wire shape (one `Vec<u8>` per node).
    pub fn to_vecs(&self) -> Vec<Vec<u8>> {
        self.iter().map(<[u8]>::to_vec).collect()
    }
}

impl<'a> IntoIterator for &'a ProofBuf {
    type Item = &'a [u8];
    type IntoIter = Box<dyn Iterator<Item = &'a [u8]> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_iter_roundtrip() {
        let mut buf = ProofBuf::new();
        assert!(buf.is_empty());
        assert_eq!(buf.get(0), None);
        buf.push(b"");
        buf.push(b"abc");
        buf.push(&[0xa0; 33]);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.total_bytes(), 36);
        assert_eq!(buf.get(0), Some(b"".as_slice()));
        assert_eq!(buf.get(1), Some(b"abc".as_slice()));
        assert_eq!(buf.get(3), None);
        let collected: Vec<Vec<u8>> = buf.iter().map(<[u8]>::to_vec).collect();
        assert_eq!(collected, buf.to_vecs());
        assert_eq!(buf.as_slices().len(), 3);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut buf = ProofBuf::new();
        for _ in 0..8 {
            buf.push(&[7u8; 64]);
        }
        let byte_cap = buf.bytes.capacity();
        let end_cap = buf.ends.capacity();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.total_bytes(), 0);
        assert_eq!(buf.bytes.capacity(), byte_cap);
        assert_eq!(buf.ends.capacity(), end_cap);
    }
}
