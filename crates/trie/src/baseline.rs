//! The **retained pre-arena frozen-trie path**, frozen as a reference.
//!
//! This module is a byte-faithful copy of [`crate::FrozenTrie`] as it
//! stood *before* the arena flattening landed: a `HashMap` of node
//! encodings keyed by cloned nibble-prefix vectors, proof walks that
//! chase the boxed [`Node`] tree, per-node `clone()`s into every proof,
//! and multiproof deduplication that pays a fresh `keccak256` per
//! recorded node per key.
//!
//! It exists for two jobs and must not be used for anything else:
//!
//! * the `trie_hotpath` bench measures the arena path **against it**
//!   (the "pre-PR walk" denominator in `BENCH_trie.json`);
//! * the property tests assert the arena path is **byte-identical** to
//!   it on `prove`, `prove_many` and `root_hash`.
//!
//! Node encoding (`Node::encode` semantics) is shared with the live
//! path — the optimization changed where encodings live and how walks
//! find them, never what they are — which is what makes proof equality
//! exact.

use crate::nibbles::{bytes_to_nibbles, hp_encode};
use crate::node::{empty_root, Node};
use crate::trie::Trie;
use parp_crypto::keccak256;
use parp_primitives::H256;
use parp_rlp::{encode_bytes, encode_list};
use std::collections::HashMap;

/// The pre-arena [`crate::FrozenTrie`]: a [`Trie`] plus a `HashMap`
/// index of every node's encoding, keyed by consumed nibble prefix.
#[derive(Debug, Clone)]
pub struct FrozenTrie {
    trie: Trie,
    root: H256,
    /// Canonical encoding of each node, keyed by the nibble prefix a
    /// proof walk has consumed when it reaches the node.
    encodings: HashMap<Vec<u8>, Vec<u8>>,
}

impl FrozenTrie {
    /// Freezes `trie`, computing every node encoding bottom-up in one
    /// linear pass.
    pub fn new(trie: Trie) -> Self {
        let mut encodings = HashMap::new();
        let mut prefix = Vec::new();
        let root = match trie.root_node() {
            Node::Empty => empty_root(),
            node => {
                index_node(node, &mut prefix, &mut encodings);
                keccak256(&encodings[&Vec::new()])
            }
        };
        FrozenTrie {
            trie,
            root,
            encodings,
        }
    }

    /// The underlying trie.
    pub fn trie(&self) -> &Trie {
        &self.trie
    }

    /// Number of key/value pairs stored.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// The Merkle root, precomputed at freeze time.
    pub fn root_hash(&self) -> H256 {
        self.root
    }

    /// Merkle proof for `key`: byte-identical to [`Trie::prove`], with
    /// every node encoding looked up instead of recomputed.
    pub fn prove(&self, key: &[u8]) -> Vec<Vec<u8>> {
        let nibbles = bytes_to_nibbles(key);
        let mut proof = Vec::new();
        let mut node = self.trie.root_node();
        let mut consumed = 0usize;
        let mut is_root = true;
        loop {
            if node.is_empty() {
                break;
            }
            let encoded = &self.encodings[&nibbles[..consumed]];
            if encoded.len() >= 32 || is_root {
                proof.push(encoded.clone());
            }
            is_root = false;
            match node {
                Node::Empty | Node::Leaf { .. } => break,
                Node::Extension { path, child } => {
                    let remaining = &nibbles[consumed..];
                    if remaining.len() < path.len() || &remaining[..path.len()] != path.as_slice() {
                        break;
                    }
                    consumed += path.len();
                    node = child;
                }
                Node::Branch { children, .. } => {
                    if consumed == nibbles.len() {
                        break;
                    }
                    let idx = nibbles[consumed] as usize;
                    consumed += 1;
                    node = &children[idx];
                }
            }
        }
        proof
    }

    /// Deduplicated multiproof for `keys`: byte-identical to
    /// [`Trie::prove_many`]. Deduplication re-hashes every recorded
    /// node — the cost the arena path's precomputed witness ids remove.
    pub fn prove_many<I, K>(&self, keys: I) -> Vec<Vec<u8>>
    where
        I: IntoIterator<Item = K>,
        K: AsRef<[u8]>,
    {
        let mut seen: std::collections::HashSet<H256> = std::collections::HashSet::new();
        let mut nodes = Vec::new();
        for key in keys {
            for node in self.prove(key.as_ref()) {
                if seen.insert(keccak256(&node)) {
                    nodes.push(node);
                }
            }
        }
        nodes
    }
}

impl From<Trie> for FrozenTrie {
    fn from(trie: Trie) -> Self {
        FrozenTrie::new(trie)
    }
}

/// Encodes `node` (reached after consuming `prefix` nibbles) from its
/// children's cached references, records it, and returns the node's
/// parent-embedded reference. Mirrors [`Node::encode`]/[`Node::reference`]
/// byte for byte, but linear over the whole trie instead of quadratic.
fn index_node(
    node: &Node,
    prefix: &mut Vec<u8>,
    encodings: &mut HashMap<Vec<u8>, Vec<u8>>,
) -> Vec<u8> {
    let encoded = match node {
        Node::Empty => return encode_bytes(&[]),
        Node::Leaf { path, value } => {
            encode_list(&[encode_bytes(&hp_encode(path, true)), encode_bytes(value)])
        }
        Node::Extension { path, child } => {
            let base = prefix.len();
            prefix.extend_from_slice(path);
            let child_ref = index_node(child, prefix, encodings);
            prefix.truncate(base);
            encode_list(&[encode_bytes(&hp_encode(path, false)), child_ref])
        }
        Node::Branch { children, value } => {
            let mut items: Vec<Vec<u8>> = Vec::with_capacity(17);
            for (i, child) in children.iter().enumerate() {
                prefix.push(i as u8);
                let child_ref = index_node(child, prefix, encodings);
                prefix.pop();
                items.push(child_ref);
            }
            items.push(match value {
                Some(v) => encode_bytes(v),
                None => encode_bytes(&[]),
            });
            encode_list(&items)
        }
    };
    let reference = if encoded.len() < 32 {
        encoded.clone()
    } else {
        encode_bytes(keccak256(&encoded).as_bytes())
    };
    encodings.insert(prefix.clone(), encoded);
    reference
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trie(n: u32) -> Trie {
        let mut trie = Trie::new();
        for i in 0..n {
            let key = keccak256(&i.to_be_bytes());
            trie.insert(key.as_bytes().to_vec(), format!("value-{i}").into_bytes());
        }
        trie
    }

    #[test]
    fn baseline_matches_trie_walk() {
        let trie = sample_trie(300);
        let frozen = FrozenTrie::new(trie);
        assert_eq!(frozen.root_hash(), frozen.trie().root_hash());
        for i in [0u32, 7, 123, 299, 5000] {
            // 5000 is absent: exclusion proofs must match too.
            let key = keccak256(&i.to_be_bytes());
            assert_eq!(
                frozen.prove(key.as_bytes()),
                frozen.trie().prove(key.as_bytes())
            );
        }
        let keys: Vec<Vec<u8>> = (0..64u32)
            .map(|i| keccak256(&i.to_be_bytes()).as_bytes().to_vec())
            .collect();
        assert_eq!(frozen.prove_many(&keys), frozen.trie().prove_many(&keys));
    }

    #[test]
    fn baseline_empty_trie() {
        let empty = FrozenTrie::new(Trie::new());
        assert!(empty.is_empty());
        assert_eq!(empty.root_hash(), empty_root());
        assert!(empty.prove(b"anything").is_empty());
    }
}
