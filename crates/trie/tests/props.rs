//! Property tests: the trie against a BTreeMap model, root determinism,
//! proof soundness/completeness, and the arena-frozen serving path
//! pinned byte-identical to the retained baseline.

use parp_trie::{baseline, verify_many, verify_proof, FrozenTrie, ProofBuf, Trie};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_pairs() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(any::<u8>(), 1..12),
            proptest::collection::vec(any::<u8>(), 1..24),
        ),
        0..40,
    )
}

/// Key sets drawn from a two-byte alphabet behind a shared prefix:
/// long extension chains, dense branch fan-in, and byte-identical
/// repeated subtrees — the shapes that stress witness-id dedup.
fn arb_shared_prefix_pairs() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    (
        proptest::collection::vec(any::<u8>(), 0..5),
        proptest::collection::vec(
            (
                proptest::collection::vec(prop_oneof![Just(0x11u8), Just(0xee)], 1..4),
                proptest::collection::vec(any::<u8>(), 1..40),
            ),
            1..24,
        ),
    )
        .prop_map(|(prefix, tails)| {
            tails
                .into_iter()
                .map(|(suffix, value)| {
                    let mut key = prefix.clone();
                    key.extend_from_slice(&suffix);
                    (key, value)
                })
                .collect()
        })
}

/// Asserts the arena path equals the retained baseline byte for byte on
/// `root_hash`, `prove`, `prove_many` and the zero-copy serialization,
/// and that the arena multiproof still verifies.
fn assert_arena_matches_baseline(
    pairs: &[(Vec<u8>, Vec<u8>)],
    probes: &[Vec<u8>],
) -> Result<(), TestCaseError> {
    let trie: Trie = pairs.iter().cloned().collect();
    let arena = FrozenTrie::new(trie.clone());
    let base = baseline::FrozenTrie::new(trie.clone());
    prop_assert_eq!(arena.root_hash(), base.root_hash());
    prop_assert_eq!(arena.root_hash(), trie.root_hash());
    // Present keys, absent probes, and duplicates all walk identically.
    let mut keys: Vec<Vec<u8>> = pairs.iter().map(|(k, _)| k.clone()).collect();
    keys.extend(probes.iter().cloned());
    keys.extend(pairs.iter().take(3).map(|(k, _)| k.clone()));
    for key in &keys {
        prop_assert_eq!(arena.prove(key), base.prove(key));
    }
    let arena_multi = arena.prove_many(&keys);
    prop_assert_eq!(&arena_multi, &base.prove_many(&keys));
    prop_assert_eq!(&arena_multi, &trie.prove_many(&keys));
    // Zero-copy serialization carries the same bytes...
    let mut buf = ProofBuf::new();
    arena.multiproof_into(&keys, &mut buf);
    prop_assert_eq!(buf.to_vecs(), arena_multi.clone());
    // ...and verifies straight out of the buffer, matching per-key
    // single-proof verdicts.
    let results = verify_many(arena.root_hash(), &keys, &buf.as_slices());
    let results = results.map_err(|e| TestCaseError::fail(e.to_string()))?;
    for (key, result) in keys.iter().zip(&results) {
        let single = verify_proof(arena.root_hash(), key, &arena.prove(key));
        prop_assert_eq!(result, &single.unwrap());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trie_matches_btreemap(pairs in arb_pairs()) {
        let mut trie = Trie::new();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (k, v) in &pairs {
            prop_assert_eq!(
                trie.insert(k.clone(), v.clone()),
                model.insert(k.clone(), v.clone())
            );
        }
        prop_assert_eq!(trie.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(trie.get(k), Some(v.as_slice()));
        }
        let collected: Vec<(Vec<u8>, Vec<u8>)> =
            trie.iter().map(|(k, v)| (k, v.to_vec())).collect();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(collected, expected);
    }

    #[test]
    fn root_is_insertion_order_independent(pairs in arb_pairs()) {
        // Dedupe first: with duplicate keys the last write wins, so only
        // unique-key sets are order independent.
        let unique: BTreeMap<Vec<u8>, Vec<u8>> = pairs.into_iter().collect();
        let forward: Trie = unique.clone().into_iter().collect();
        let reverse: Trie = unique.into_iter().rev().collect();
        prop_assert_eq!(forward.root_hash(), reverse.root_hash());
    }

    #[test]
    fn every_key_proves(pairs in arb_pairs()) {
        let trie: Trie = pairs.clone().into_iter().collect();
        let root = trie.root_hash();
        let model: BTreeMap<Vec<u8>, Vec<u8>> = pairs.into_iter().collect();
        for (k, v) in &model {
            let proof = trie.prove(k);
            prop_assert_eq!(verify_proof(root, k, &proof).unwrap(), Some(v.clone()));
        }
    }

    #[test]
    fn absent_keys_prove_exclusion(pairs in arb_pairs(), probe in proptest::collection::vec(any::<u8>(), 1..12)) {
        let trie: Trie = pairs.clone().into_iter().collect();
        let model: BTreeMap<Vec<u8>, Vec<u8>> = pairs.into_iter().collect();
        prop_assume!(!model.contains_key(&probe));
        let proof = trie.prove(&probe);
        prop_assert_eq!(verify_proof(trie.root_hash(), &probe, &proof).unwrap(), None);
    }

    #[test]
    fn remove_then_reinsert_restores_root(pairs in arb_pairs(), victim_index in any::<prop::sample::Index>()) {
        prop_assume!(!pairs.is_empty());
        let mut trie: Trie = pairs.clone().into_iter().collect();
        let root_before = trie.root_hash();
        let model: BTreeMap<Vec<u8>, Vec<u8>> = pairs.into_iter().collect();
        let keys: Vec<&Vec<u8>> = model.keys().collect();
        let victim = keys[victim_index.index(keys.len())].clone();
        let value = trie.remove(&victim).expect("key present in model");
        prop_assert_eq!(trie.get(&victim), None);
        trie.insert(victim, value);
        prop_assert_eq!(trie.root_hash(), root_before);
    }

    #[test]
    fn removals_match_model(pairs in arb_pairs()) {
        let mut trie: Trie = pairs.clone().into_iter().collect();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = pairs.clone().into_iter().collect();
        for (k, _) in pairs.iter().step_by(2) {
            prop_assert_eq!(trie.remove(k), model.remove(k));
        }
        prop_assert_eq!(trie.len(), model.len());
        let rebuilt: Trie = model.clone().into_iter().collect();
        prop_assert_eq!(trie.root_hash(), rebuilt.root_hash());
    }

    #[test]
    fn proofs_fail_against_tampered_roots(pairs in arb_pairs(), flip in any::<u8>()) {
        prop_assume!(!pairs.is_empty());
        let trie: Trie = pairs.clone().into_iter().collect();
        let (key, value) = &pairs[0];
        let proof = trie.prove(key);
        let mut root_bytes = trie.root_hash().into_inner();
        root_bytes[(flip % 32) as usize] ^= 1 | (flip >> 3);
        let tampered = parp_primitives::H256::new(root_bytes);
        prop_assume!(tampered != trie.root_hash());
        if let Ok(Some(v)) = verify_proof(tampered, key, &proof) { prop_assert_ne!(&v, value) }
    }

    #[test]
    fn multiproof_agrees_with_single_proofs(
        pairs in arb_pairs(),
        probes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..12), 1..12),
    ) {
        // verify_many accepts exactly the key/value sets whose per-key
        // single proofs verify against the same root: for an arbitrary
        // mix of present, absent and duplicate keys, every per-key result
        // must equal the single-proof verdict for that key.
        let trie: Trie = pairs.clone().into_iter().collect();
        let root = trie.root_hash();
        let mut keys: Vec<Vec<u8>> = pairs.iter().map(|(k, _)| k.clone()).collect();
        keys.extend(probes); // arbitrary probes: absent keys and duplicates
        let proof = trie.prove_many(&keys);
        let results = verify_many(root, &keys, &proof).unwrap();
        prop_assert_eq!(results.len(), keys.len());
        for (key, result) in keys.iter().zip(&results) {
            let single = trie.prove(key);
            prop_assert_eq!(result, &verify_proof(root, key, &single).unwrap());
        }
        // And the deduplicated node set never exceeds the concatenation.
        let multi_bytes: usize = proof.iter().map(Vec::len).sum();
        let single_bytes: usize = keys
            .iter()
            .map(|k| trie.prove(k).iter().map(Vec::len).sum::<usize>())
            .sum();
        prop_assert!(multi_bytes <= single_bytes);
    }

    #[test]
    fn arena_frozen_matches_baseline(
        pairs in arb_pairs(),
        probes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..12), 0..8),
    ) {
        assert_arena_matches_baseline(&pairs, &probes)?;
    }

    #[test]
    fn arena_frozen_matches_baseline_on_shared_prefixes(
        pairs in arb_shared_prefix_pairs(),
        probes in proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(0x11u8), Just(0xee)], 1..6),
            0..6,
        ),
    ) {
        assert_arena_matches_baseline(&pairs, &probes)?;
    }

    /// The storage tier's spill format: `to_bytes`/`from_bytes` must
    /// round-trip any trie with byte-identical proofs (what the warm
    /// tier's rehydration path relies on), re-serialize canonically,
    /// and reject every truncated page rather than misparse it.
    #[test]
    fn page_serialization_round_trips(
        pairs in arb_pairs(),
        probes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..12), 0..6),
        cut_frac in 0usize..1000,
    ) {
        let trie: Trie = pairs.clone().into_iter().collect();
        let frozen = FrozenTrie::new(trie);
        let page = frozen.to_bytes();
        let back = FrozenTrie::from_bytes(&page).expect("own page parses");
        prop_assert_eq!(back.root_hash(), frozen.root_hash());
        let mut keys: Vec<Vec<u8>> = pairs.iter().map(|(k, _)| k.clone()).collect();
        keys.extend(probes);
        for key in &keys {
            prop_assert_eq!(back.prove(key), frozen.prove(key));
        }
        prop_assert_eq!(back.prove_many(&keys), frozen.prove_many(&keys));
        // Rehydration is canonical: the page of the page is the page.
        prop_assert_eq!(back.to_bytes(), page.clone());
        // A torn spill write (any strict prefix) is rejected outright.
        let cut = page.len() * cut_frac / 1000;
        if cut < page.len() {
            prop_assert!(FrozenTrie::from_bytes(&page[..cut]).is_none());
        }
    }

    #[test]
    fn multiproof_rejects_forgery(pairs in arb_pairs(), flip in any::<u16>()) {
        // Soundness: corrupting any byte of any node changes that node's
        // hash, so either a walk dead-ends (missing node) or the altered
        // node goes unreferenced (padding) — verification must fail.
        prop_assume!(!pairs.is_empty());
        let trie: Trie = pairs.clone().into_iter().collect();
        let root = trie.root_hash();
        let keys: Vec<Vec<u8>> = pairs.iter().map(|(k, _)| k.clone()).collect();
        let mut proof = trie.prove_many(&keys);
        let node = (flip as usize / 8) % proof.len();
        let byte = (flip as usize) % proof[node].len();
        proof[node][byte] ^= 1 | ((flip >> 8) as u8);
        prop_assert!(verify_many(root, &keys, &proof).is_err());
    }
}

#[test]
fn arena_matches_baseline_on_degenerate_tries() {
    // Empty trie and single-key trie: the edge cases the proptest
    // strategies reach rarely, pinned explicitly.
    assert_arena_matches_baseline(&[], &[b"probe".to_vec()]).unwrap();
    assert_arena_matches_baseline(
        &[(b"solo".to_vec(), vec![0x5a; 40])],
        &[b"solo".to_vec(), b"absent".to_vec()],
    )
    .unwrap();
    // A single short key whose root encoding is < 32 bytes (root is
    // still recorded and hashed).
    assert_arena_matches_baseline(&[(vec![7], vec![1, 2])], &[vec![8]]).unwrap();
}
