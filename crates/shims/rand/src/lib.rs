//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so this shim provides the
//! exact API surface the workspace uses — `StdRng`, `SeedableRng`,
//! `Rng::gen_range` / `Rng::gen_bool` — backed by the SplitMix64 generator.
//! It is deterministic and statistically adequate for workload generation;
//! it is **not** cryptographic (nothing in the workspace needs it to be:
//! protocol keys come from `parp_crypto`).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Modulo bias is ≤ span/2^64: negligible for simulation use.
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<i64> for Range<i64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end as i128 - self.start as i128) as u128;
        let draw = (rng.next_u64() as u128) % span;
        (self.start as i128 + draw as i128) as i64
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli draw with success probability `p` (clamped to \[0,1\]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 bits of mantissa: the same resolution the real crate offers.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush, one
            // add + two xor-shift-multiplies per word.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }
}
