//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this shim provides the
//! API surface the workspace's benches use — `Criterion`, benchmark
//! groups, `iter`/`iter_batched`, `BenchmarkId`, `BatchSize`, plus the
//! `criterion_group!`/`criterion_main!` macros — with a straightforward
//! measure-and-print implementation: a short warm-up, then `sample_size`
//! timed samples, reporting the median per-iteration time. No statistical
//! regression analysis, no HTML reports.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Setup output comparable to the routine cost.
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, like `name/param`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs and times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter`-family call.
    last_estimate: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.record(|| {
            let started = Instant::now();
            black_box(routine());
            started.elapsed()
        });
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.record(|| {
            let input = setup();
            let started = Instant::now();
            black_box(routine(input));
            started.elapsed()
        });
    }

    fn record<F: FnMut() -> Duration>(&mut self, mut one: F) {
        // Warm-up: a few untimed runs so lazy initialisation and caches
        // settle before sampling.
        for _ in 0..2 {
            let _ = one();
        }
        let mut times: Vec<Duration> = (0..self.samples).map(|_| one()).collect();
        times.sort_unstable();
        self.last_estimate = Some(times[times.len() / 2]);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<ID: Into<BenchmarkId>, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_estimate: None,
        };
        f(&mut bencher);
        self.criterion
            .report(&self.name, &id.id, bencher.last_estimate);
        self
    }

    /// Runs a parameterised benchmark in this group.
    pub fn bench_with_input<ID: Into<BenchmarkId>, I, F>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_estimate: None,
        };
        f(&mut bencher, input);
        self.criterion
            .report(&self.name, &id.id, bencher.last_estimate);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 30,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 30,
            last_estimate: None,
        };
        f(&mut bencher);
        self.report("", name, bencher.last_estimate);
        self
    }

    /// Benchmarks executed so far.
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }

    fn report(&mut self, group: &str, id: &str, estimate: Option<Duration>) {
        self.benchmarks_run += 1;
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        match estimate {
            Some(t) => println!("{label:<60} time: {t:>12.3?}"),
            None => println!("{label:<60} time: (no measurement)"),
        }
    }
}

/// Collects benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_function("iter", |b| b.iter(|| runs += 1));
        group.bench_function(BenchmarkId::new("batched", 3), |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        drop(group);
        assert!(runs >= 5, "routine ran {runs} times");
        assert_eq!(c.benchmarks_run(), 2);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("input");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * n)
        });
    }
}
