//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so this shim reimplements
//! the strategy combinators, `Arbitrary` instances and macros the
//! workspace's property tests use. Semantics match real proptest for
//! *generation*: each test runs `ProptestConfig::cases` random cases from a
//! deterministic per-test seed. The one deliberate simplification is that
//! failing inputs are reported without shrinking (the panic message prints
//! the offending values via `Debug` where the assertion macros can).

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

pub mod collection;
pub mod sample;
mod string;

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite quick
        // while still exercising plenty of structure.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test RNG (SplitMix64), seeded from the test name so every
/// property gets an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for byte in name.bytes() {
            state ^= u64::from(byte);
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state }
    }

    /// The next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw below `bound` (which must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Builds recursive structures: `recurse` receives a strategy for the
    /// inner (smaller) values and returns one for the enclosing value.
    /// Expands the recursion `depth` times, mixing in the leaf strategy at
    /// every level so generated sizes vary.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            current = Union {
                options: vec![leaf.clone(), recurse(current).boxed()],
            }
            .boxed();
        }
        current
    }
}

/// A cheaply clonable, type-erased strategy handle.
pub struct BoxedStrategy<V> {
    inner: Rc<dyn DynStrategy<V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<V> Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of a common value type (the engine
/// behind [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Types with a canonical strategy, mirroring `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A`, as returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A> {
    _marker: std::marker::PhantomData<A>,
}

/// Strategy generating any value of `A`, mirroring `proptest::arbitrary::any`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix edge values in: uniform draws almost never produce
                // the boundary cases real proptest biases towards.
                match rng.below(16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => 1,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                match rng.below(16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.below(2) == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
    )*};
}

impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! impl_strategy_tuple {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// A failed or rejected test case, mirroring
/// `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// An explicit test-case failure with a message.
    pub fn fail<M: Into<String>>(message: M) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests over generated inputs, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let strategy = ($($strat,)*);
                for _case in 0..config.cases {
                    let ($($pat,)*) = $crate::Strategy::generate(&strategy, &mut rng);
                    // Result-typed closure, as in real proptest: bodies may
                    // `return Err(TestCaseError::...)`, and prop_assume!
                    // skips a case with an early Ok return.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(error) = outcome {
                        panic!("test case failed: {error}");
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts inside a property, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property, mirroring `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition fails, mirroring
/// `proptest::prop_assume!`. Must run inside the per-case closure the
/// [`proptest!`] macro generates.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_matching(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_and_any_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..200 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
            let _ = any::<[u8; 32]>().generate(&mut rng);
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::from_name("oneof");
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let leaf = any::<u8>().prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(4, 64, 8, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::from_name("recursive");
        for _ in 0..50 {
            let _ = strat.generate(&mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(a in any::<u64>(), b in 1u64..100, v in crate::collection::vec(any::<u8>(), 0..10)) {
            prop_assume!(b != 0);
            prop_assert!(b < 100);
            prop_assert_eq!(a, a);
            prop_assert!(v.len() < 10);
        }
    }
}
