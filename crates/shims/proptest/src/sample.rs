//! Sampling helpers, mirroring `proptest::sample`.

use crate::{Arbitrary, TestRng};

/// An index into a collection whose size is unknown at generation time,
/// mirroring `proptest::sample::Index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Projects the raw draw onto `0..len`.
    ///
    /// # Panics
    ///
    /// Panics when `len` is zero, as the real crate does.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index into an empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_always_in_range() {
        let mut rng = TestRng::from_name("index");
        for len in 1..50usize {
            let idx = Index::arbitrary(&mut rng);
            assert!(idx.index(len) < len);
        }
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_collection_panics() {
        Index(3).index(0);
    }
}
