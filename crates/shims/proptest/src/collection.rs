//! Collection strategies, mirroring `proptest::collection`.

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors of `element` values with lengths in `size`, mirroring
/// `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end.saturating_sub(self.size.start).max(1);
        let len = self.size.start + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
