//! String generation from the tiny regex subset the workspace's property
//! tests use: an optional character class (`[...]` with ranges and
//! backslash escapes, or `\PC` for "any printable"), followed by a
//! `{min,max}` repetition.

use crate::TestRng;

/// Generates a string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset, so an unsupported
/// pattern fails loudly rather than generating garbage.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let (alphabet, rest) = parse_alphabet(pattern);
    let (min, max) = parse_repetition(rest);
    assert!(
        !alphabet.is_empty(),
        "string pattern {pattern:?} has an empty alphabet"
    );
    let len = min + rng.below((max - min + 1) as u64) as usize;
    (0..len)
        .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
        .collect()
}

fn parse_alphabet(pattern: &str) -> (Vec<char>, &str) {
    if let Some(rest) = pattern.strip_prefix("\\PC") {
        // "Not in Unicode category C (control)": generate ASCII printable,
        // a valid subset for test-input purposes.
        return ((' '..='~').collect(), rest);
    }
    let Some(body) = pattern.strip_prefix('[') else {
        panic!("unsupported string pattern {pattern:?}: expected a character class");
    };
    // Find the closing `]`, skipping backslash-escaped characters.
    let mut close = None;
    let mut escaped = false;
    for (idx, c) in body.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' => escaped = true,
            ']' => {
                close = Some(idx);
                break;
            }
            _ => {}
        }
    }
    let close = close.unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"));
    let class: Vec<char> = body[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        match class[i] {
            '\\' => {
                let escaped = class
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                alphabet.push(match escaped {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => *other,
                });
                i += 2;
            }
            lo if i + 2 < class.len() && class[i + 1] == '-' => {
                let hi = class[i + 2];
                assert!(lo <= hi, "inverted range {lo}-{hi} in {pattern:?}");
                alphabet.extend(lo..=hi);
                i += 3;
            }
            single => {
                alphabet.push(single);
                i += 1;
            }
        }
    }
    (alphabet, &body[close + 1..])
}

fn parse_repetition(rest: &str) -> (usize, usize) {
    if rest.is_empty() {
        return (1, 1);
    }
    let body = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition suffix {rest:?}"));
    match body.split_once(',') {
        Some((min, max)) => (
            min.trim().parse().expect("repetition minimum"),
            max.trim().parse().expect("repetition maximum"),
        ),
        None => {
            let n = body.trim().parse().expect("repetition count");
            (n, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_class_with_range() {
        let mut rng = TestRng::from_name("simple");
        for _ in 0..100 {
            let s = generate_matching("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn class_with_escapes() {
        let allowed: Vec<char> = ('a'..='z')
            .chain('A'..='Z')
            .chain('0'..='9')
            .chain([' ', '_', '-', '"', '\\', '/', '\n', '\t'])
            .collect();
        let mut rng = TestRng::from_name("escapes");
        for _ in 0..100 {
            let s = generate_matching("[a-zA-Z0-9 _\\-\"\\\\/\n\t]{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| allowed.contains(&c)), "bad char in {s:?}");
        }
    }

    #[test]
    fn printable_any() {
        let mut rng = TestRng::from_name("printable");
        for _ in 0..100 {
            let s = generate_matching("\\PC{0,100}", &mut rng);
            assert!(s.len() <= 100);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }
}
