//! secp256k1 group arithmetic: affine and Jacobian points, windowed scalar
//! multiplication, and the curve generator.
//!
//! The curve is `y^2 = x^3 + 7` over `F_p`. Jacobian coordinates
//! `(X, Y, Z)` represent the affine point `(X/Z^2, Y/Z^3)`; `Z = 0` is the
//! point at infinity.
//!
//! # The fixed-base hot path
//!
//! Every PARP exchange multiplies the generator several times (one per
//! signature, one per recovery), so `G` gets two precomputed tables, both
//! built once behind `OnceLock` and normalized to affine with a single
//! shared field inversion ([`batch_to_affine`]):
//!
//! * an 8-bit **comb table** (`windows[i][j] = (j+1)·2^(8i)·G`, 32 × 255
//!   entries): [`mul_generator`] is ≤ 32 mixed additions with **zero**
//!   doublings, replacing the 256-doubling generic ladder;
//! * an odd-multiples **wNAF table** (`1G, 3G, …, 255G`), the `a·G` half
//!   of the interleaved [`double_scalar_mul`] used by recovery.
//!
//! Arbitrary points (`Q` in verification/recovery) get a per-call
//! odd-multiples table (`1Q, 3Q, …, 15Q`), batch-normalized so the main
//! loop uses cheap mixed additions.

use crate::field::FieldElement;
use crate::scalar::Scalar;
use std::fmt;
use std::sync::OnceLock;

/// An affine point on secp256k1, or the point at infinity.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum AffinePoint {
    /// The identity element.
    Infinity,
    /// A finite curve point.
    Point {
        /// x-coordinate.
        x: FieldElement,
        /// y-coordinate.
        y: FieldElement,
    },
}

impl fmt::Debug for AffinePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffinePoint::Infinity => write!(f, "AffinePoint::Infinity"),
            AffinePoint::Point { x, y } => f
                .debug_struct("AffinePoint")
                .field("x", x)
                .field("y", y)
                .finish(),
        }
    }
}

/// The secp256k1 generator point coordinates.
const GX: [u8; 32] = [
    0x79, 0xbe, 0x66, 0x7e, 0xf9, 0xdc, 0xbb, 0xac, 0x55, 0xa0, 0x62, 0x95, 0xce, 0x87, 0x0b, 0x07,
    0x02, 0x9b, 0xfc, 0xdb, 0x2d, 0xce, 0x28, 0xd9, 0x59, 0xf2, 0x81, 0x5b, 0x16, 0xf8, 0x17, 0x98,
];
const GY: [u8; 32] = [
    0x48, 0x3a, 0xda, 0x77, 0x26, 0xa3, 0xc4, 0x65, 0x5d, 0xa4, 0xfb, 0xfc, 0x0e, 0x11, 0x08, 0xa8,
    0xfd, 0x17, 0xb4, 0x48, 0xa6, 0x85, 0x54, 0x19, 0x9c, 0x47, 0xd0, 0x8f, 0xfb, 0x10, 0xd4, 0xb8,
];

/// The generator, parsed once (callers used to re-parse and re-validate
/// the coordinates on every `generator()` call — a measurable cost inside
/// the old per-signature loop).
static GENERATOR: OnceLock<AffinePoint> = OnceLock::new();

impl AffinePoint {
    /// The group generator `G` (cached; the byte parse runs once per
    /// process).
    pub fn generator() -> Self {
        *GENERATOR.get_or_init(|| AffinePoint::Point {
            x: FieldElement::from_be_bytes(&GX).expect("generator x below p"),
            y: FieldElement::from_be_bytes(&GY).expect("generator y below p"),
        })
    }

    /// Returns `true` for the point at infinity.
    pub fn is_infinity(&self) -> bool {
        matches!(self, AffinePoint::Infinity)
    }

    /// Checks the curve equation `y^2 = x^3 + 7`. Infinity is on the curve.
    pub fn is_on_curve(&self) -> bool {
        match self {
            AffinePoint::Infinity => true,
            AffinePoint::Point { x, y } => y.square() == x.square() * *x + FieldElement::B,
        }
    }

    /// Reconstructs a point from an x-coordinate and the parity of `y`.
    ///
    /// Returns `None` when `x^3 + 7` is not a quadratic residue.
    pub fn from_x(x: FieldElement, y_is_odd: bool) -> Option<Self> {
        let y2 = x.square() * x + FieldElement::B;
        let mut y = y2.sqrt()?;
        if y.is_odd() != y_is_odd {
            y = -y;
        }
        Some(AffinePoint::Point { x, y })
    }

    /// Serializes as 64 bytes `x || y` (uncompressed, without the 0x04 tag).
    ///
    /// # Panics
    ///
    /// Panics on the point at infinity, which has no affine encoding.
    pub fn to_bytes(&self) -> [u8; 64] {
        match self {
            AffinePoint::Infinity => panic!("cannot serialize the point at infinity"),
            AffinePoint::Point { x, y } => {
                let mut out = [0u8; 64];
                out[..32].copy_from_slice(&x.to_be_bytes());
                out[32..].copy_from_slice(&y.to_be_bytes());
                out
            }
        }
    }

    /// Parses a 64-byte `x || y` encoding, validating the curve equation.
    pub fn from_bytes(bytes: &[u8; 64]) -> Option<Self> {
        let mut xb = [0u8; 32];
        let mut yb = [0u8; 32];
        xb.copy_from_slice(&bytes[..32]);
        yb.copy_from_slice(&bytes[32..]);
        let x = FieldElement::from_be_bytes(&xb)?;
        let y = FieldElement::from_be_bytes(&yb)?;
        let point = AffinePoint::Point { x, y };
        point.is_on_curve().then_some(point)
    }

    /// Negates the point.
    pub fn neg(&self) -> Self {
        match self {
            AffinePoint::Infinity => AffinePoint::Infinity,
            AffinePoint::Point { x, y } => AffinePoint::Point { x: *x, y: -*y },
        }
    }

    /// Converts to Jacobian coordinates.
    pub fn to_jacobian(&self) -> JacobianPoint {
        match self {
            AffinePoint::Infinity => JacobianPoint::INFINITY,
            AffinePoint::Point { x, y } => JacobianPoint {
                x: *x,
                y: *y,
                z: FieldElement::ONE,
            },
        }
    }

    /// Scalar multiplication `k * self` using a 4-bit fixed window.
    pub fn mul(&self, k: &Scalar) -> AffinePoint {
        self.to_jacobian().mul(k).to_affine()
    }
}

/// A point in Jacobian projective coordinates.
#[derive(Clone, Copy, Debug)]
pub struct JacobianPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
}

impl JacobianPoint {
    /// The point at infinity (`Z = 0`).
    pub const INFINITY: JacobianPoint = JacobianPoint {
        x: FieldElement::ONE,
        y: FieldElement::ONE,
        z: FieldElement::ZERO,
    };

    /// Returns `true` for the point at infinity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (specialized for curve parameter `a = 0`).
    pub fn double(&self) -> JacobianPoint {
        if self.is_infinity() || self.y.is_zero() {
            return JacobianPoint::INFINITY;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let mut d = (self.x + b).square() - a - c;
        d = d + d;
        let e = a + a + a;
        let f = e.square();
        let x3 = f - (d + d);
        let c8 = {
            let c2 = c + c;
            let c4 = c2 + c2;
            c4 + c4
        };
        let y3 = e * (d - x3) - c8;
        let z3 = {
            let yz = self.y * self.z;
            yz + yz
        };
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian point addition.
    pub fn add(&self, other: &JacobianPoint) -> JacobianPoint {
        if self.is_infinity() {
            return *other;
        }
        if other.is_infinity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x * z2z2;
        let u2 = other.x * z1z1;
        let s1 = self.y * z2z2 * other.z;
        let s2 = other.y * z1z1 * self.z;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return JacobianPoint::INFINITY;
        }
        let h = u2 - u1;
        let r = s2 - s1;
        let h2 = h.square();
        let h3 = h2 * h;
        let u1h2 = u1 * h2;
        let x3 = r.square() - h3 - (u1h2 + u1h2);
        let y3 = r * (u1h2 - x3) - s1 * h3;
        let z3 = self.z * other.z * h;
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point (slightly cheaper).
    pub fn add_affine(&self, other: &AffinePoint) -> JacobianPoint {
        match other {
            AffinePoint::Infinity => *self,
            AffinePoint::Point { x, y } => {
                if self.is_infinity() {
                    return JacobianPoint {
                        x: *x,
                        y: *y,
                        z: FieldElement::ONE,
                    };
                }
                let z1z1 = self.z.square();
                let u2 = *x * z1z1;
                let s2 = *y * z1z1 * self.z;
                if self.x == u2 {
                    if self.y == s2 {
                        return self.double();
                    }
                    return JacobianPoint::INFINITY;
                }
                let h = u2 - self.x;
                let r = s2 - self.y;
                let h2 = h.square();
                let h3 = h2 * h;
                let u1h2 = self.x * h2;
                let x3 = r.square() - h3 - (u1h2 + u1h2);
                let y3 = r * (u1h2 - x3) - self.y * h3;
                let z3 = self.z * h;
                JacobianPoint {
                    x: x3,
                    y: y3,
                    z: z3,
                }
            }
        }
    }

    /// Windowed (4-bit) scalar multiplication, MSB window first.
    pub fn mul(&self, k: &Scalar) -> JacobianPoint {
        if k.is_zero() || self.is_infinity() {
            return JacobianPoint::INFINITY;
        }
        // Precompute 1..=15 multiples of self.
        let mut table = [JacobianPoint::INFINITY; 16];
        table[1] = *self;
        for i in 2..16 {
            table[i] = if i % 2 == 0 {
                table[i / 2].double()
            } else {
                table[i - 1].add(self)
            };
        }
        let mut acc = JacobianPoint::INFINITY;
        for window in (0..64).rev() {
            if !acc.is_infinity() {
                acc = acc.double().double().double().double();
            }
            let digit = k.nibble(window) as usize;
            if digit != 0 {
                acc = acc.add(&table[digit]);
            }
        }
        acc
    }

    /// Mixed addition with the sign of the affine operand chosen at the
    /// call site — wNAF loops add or subtract table entries, and negating
    /// an affine point is one field negation.
    fn add_affine_signed(&self, other: &AffinePoint, negate: bool) -> JacobianPoint {
        match other {
            AffinePoint::Infinity => *self,
            AffinePoint::Point { x, y } if negate => {
                self.add_affine(&AffinePoint::Point { x: *x, y: -*y })
            }
            point => self.add_affine(point),
        }
    }

    /// Converts back to affine coordinates (one field inversion).
    ///
    /// Converting **many** points should go through [`batch_to_affine`],
    /// which amortizes the inversion across the whole set.
    pub fn to_affine(&self) -> AffinePoint {
        if self.is_infinity() {
            return AffinePoint::Infinity;
        }
        let z_inv = self.z.invert();
        let z_inv2 = z_inv.square();
        let z_inv3 = z_inv2 * z_inv;
        AffinePoint::Point {
            x: self.x * z_inv2,
            y: self.y * z_inv3,
        }
    }
}

/// Converts many Jacobian points to affine with **one** field inversion
/// (Montgomery batch inversion over the `Z` coordinates): `3(N−1)`
/// multiplications plus a single inversion instead of `N` inversions.
/// Points at infinity map to [`AffinePoint::Infinity`].
pub fn batch_to_affine(points: &[JacobianPoint]) -> Vec<AffinePoint> {
    let mut zs: Vec<FieldElement> = points.iter().map(|p| p.z).collect();
    FieldElement::batch_invert(&mut zs);
    points
        .iter()
        .zip(&zs)
        .map(|(p, z_inv)| {
            if p.is_infinity() {
                AffinePoint::Infinity
            } else {
                let z_inv2 = z_inv.square();
                let z_inv3 = z_inv2 * *z_inv;
                AffinePoint::Point {
                    x: p.x * z_inv2,
                    y: p.y * z_inv3,
                }
            }
        })
        .collect()
}

/// Comb window width in bits; the table is indexed by scalar bytes.
const COMB_WINDOW_BITS: usize = 8;
/// Number of byte windows covering a 256-bit scalar.
const COMB_WINDOWS: usize = 256 / COMB_WINDOW_BITS;
/// Entries per comb window (every non-zero byte value).
const COMB_ENTRIES: usize = (1 << COMB_WINDOW_BITS) - 1;

/// wNAF window width for the per-call point `Q` (8 odd multiples — the
/// table is rebuilt for every recovery, so it must stay small).
const WNAF_Q_WIDTH: u32 = 5;

/// The precomputed fixed-base comb: `windows[i][j] = (j+1) · 2^(8i) · G`.
/// ~8k affine points (≈0.5 MB), built once and shared by every signature
/// and recovery in the process.
static G_COMB: OnceLock<Vec<Vec<AffinePoint>>> = OnceLock::new();

fn g_comb() -> &'static Vec<Vec<AffinePoint>> {
    G_COMB.get_or_init(|| {
        let mut jacobians: Vec<JacobianPoint> = Vec::with_capacity(COMB_WINDOWS * COMB_ENTRIES);
        let mut base = AffinePoint::generator().to_jacobian();
        for _ in 0..COMB_WINDOWS {
            let mut multiple = base;
            for _ in 0..COMB_ENTRIES {
                jacobians.push(multiple);
                multiple = multiple.add(&base);
            }
            // After pushing j·base for j = 1..=255, `multiple` is
            // 256·base — exactly the next window's base.
            base = multiple;
        }
        let affine = batch_to_affine(&jacobians);
        affine
            .chunks(COMB_ENTRIES)
            .map(|chunk| chunk.to_vec())
            .collect()
    })
}

/// Fixed-base multiplication `k · G` off the precomputed comb: at most 32
/// mixed additions and **no doublings** (the old path rebuilt a 16-entry
/// window table of `G` and ran 256 doublings per call).
pub fn mul_generator(k: &Scalar) -> JacobianPoint {
    let table = g_comb();
    let mut acc = JacobianPoint::INFINITY;
    for (window, entries) in table.iter().enumerate() {
        let byte = k.byte(window);
        if byte != 0 {
            acc = acc.add_affine(&entries[byte as usize - 1]);
        }
    }
    acc
}

/// Batch-normalized odd multiples `1Q, 3Q, …, (2^(w−1)−1)Q`.
fn odd_multiples(q: &AffinePoint, width: u32) -> Vec<AffinePoint> {
    let qj = q.to_jacobian();
    let q2 = qj.double();
    let mut jacobians = Vec::with_capacity(1 << (width - 2));
    let mut current = qj;
    for _ in 0..(1usize << (width - 2)) {
        jacobians.push(current);
        current = current.add(&q2);
    }
    batch_to_affine(&jacobians)
}

/// `β`: the cube root of unity in the base field realizing the GLV
/// endomorphism `λ·(x, y) = (β·x, y)`.
fn beta() -> FieldElement {
    const BETA_BYTES: [u8; 32] = [
        0x7a, 0xe9, 0x6a, 0x2b, 0x65, 0x7c, 0x07, 0x10, 0x6e, 0x64, 0x47, 0x9e, 0xac, 0x34, 0x34,
        0xe9, 0x9c, 0xf0, 0x49, 0x75, 0x12, 0xf5, 0x89, 0x95, 0xc1, 0x39, 0x6c, 0x28, 0x71, 0x95,
        0x01, 0xee,
    ];
    static BETA: OnceLock<FieldElement> = OnceLock::new();
    *BETA.get_or_init(|| FieldElement::from_be_bytes(&BETA_BYTES).expect("beta below p"))
}

/// Applies the endomorphism to an affine point: `λ·(x, y) = (β·x, y)` —
/// one field multiplication instead of a scalar multiplication.
fn endo_map(p: &AffinePoint) -> AffinePoint {
    match p {
        AffinePoint::Infinity => AffinePoint::Infinity,
        AffinePoint::Point { x, y } => AffinePoint::Point {
            x: beta() * *x,
            y: *y,
        },
    }
}

/// Upper bound on the wNAF digit positions of a sign-normalized GLV half
/// (≤129 bits, plus the window's carry slack).
const GLV_DIGITS: usize = 136;

/// Computes `a * G + b * Q` — the core of ECDSA verification and
/// recovery.
///
/// The `G` half rides the precomputed fixed-base comb (≤32 mixed
/// additions, zero doublings). The `Q` half is GLV-split into two ≤129-bit
/// scalars whose wNAF forms (w = 5) interleave over **one** half-length
/// doubling chain, adding from `Q`'s batch-normalized odd-multiples table
/// and its endomorphism image (`x → β·x`, free per entry). Net cost:
/// ~130 doublings plus ~75 mixed additions — the old path ran a 256-bit
/// 2-bit Shamir loop with only `{G, Q, G+Q}` precomputed, paying 256
/// doublings and ~192 full Jacobian additions.
pub fn double_scalar_mul(a: &Scalar, b: &Scalar, q: &AffinePoint) -> AffinePoint {
    let (b1, neg1, b2, neg2) = b.split_glv();
    let naf1 = b1.wnaf(WNAF_Q_WIDTH);
    let naf2 = b2.wnaf(WNAF_Q_WIDTH);
    debug_assert!(
        naf1[GLV_DIGITS..].iter().all(|&d| d == 0) && naf2[GLV_DIGITS..].iter().all(|&d| d == 0),
        "GLV halves must stay short"
    );
    let q_table = odd_multiples(q, WNAF_Q_WIDTH);
    let endo_table: Vec<AffinePoint> = q_table.iter().map(endo_map).collect();
    let mut acc = JacobianPoint::INFINITY;
    for i in (0..GLV_DIGITS).rev() {
        if !acc.is_infinity() {
            acc = acc.double();
        }
        let d1 = naf1[i];
        if d1 != 0 {
            let entry = &q_table[(d1.unsigned_abs() as usize - 1) / 2];
            acc = acc.add_affine_signed(entry, (d1 < 0) ^ neg1);
        }
        let d2 = naf2[i];
        if d2 != 0 {
            let entry = &endo_table[(d2.unsigned_abs() as usize - 1) / 2];
            acc = acc.add_affine_signed(entry, (d2 < 0) ^ neg2);
        }
    }
    acc.add(&mul_generator(a)).to_affine()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_primitives::to_hex;

    fn g() -> AffinePoint {
        AffinePoint::generator()
    }

    #[test]
    fn generator_is_on_curve() {
        assert!(g().is_on_curve());
    }

    #[test]
    fn two_g_known_answer() {
        // 2G, published test vector.
        let two_g = g().to_jacobian().double().to_affine();
        match two_g {
            AffinePoint::Point { x, y } => {
                assert_eq!(
                    to_hex(&x.to_be_bytes()),
                    "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5"
                );
                assert_eq!(
                    to_hex(&y.to_be_bytes()),
                    "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a"
                );
            }
            AffinePoint::Infinity => panic!("2G must be finite"),
        }
    }

    #[test]
    fn three_g_two_ways() {
        let j = g().to_jacobian();
        let via_add = j.double().add(&j).to_affine();
        let via_mul = g().mul(&Scalar::from_u64(3));
        assert_eq!(via_add, via_mul);
        assert!(via_mul.is_on_curve());
    }

    #[test]
    fn mul_by_zero_is_infinity() {
        assert!(g().mul(&Scalar::ZERO).is_infinity());
    }

    #[test]
    fn mul_by_order_is_infinity() {
        // n * G = O, expressed as (n - 1) * G + G.
        let n_minus_one = -Scalar::ONE;
        let p = g().mul(&n_minus_one);
        let sum = p.to_jacobian().add_affine(&g()).to_affine();
        assert!(sum.is_infinity());
    }

    #[test]
    fn n_minus_one_g_is_neg_g() {
        let p = g().mul(&(-Scalar::ONE));
        assert_eq!(p, g().neg());
    }

    #[test]
    fn addition_commutes() {
        let a = g().mul(&Scalar::from_u64(17));
        let b = g().mul(&Scalar::from_u64(23));
        let ab = a.to_jacobian().add(&b.to_jacobian()).to_affine();
        let ba = b.to_jacobian().add(&a.to_jacobian()).to_affine();
        assert_eq!(ab, ba);
        assert_eq!(ab, g().mul(&Scalar::from_u64(40)));
    }

    #[test]
    fn mixed_addition_matches_full() {
        let a = g().mul(&Scalar::from_u64(99));
        let b = g().mul(&Scalar::from_u64(101));
        let full = a.to_jacobian().add(&b.to_jacobian()).to_affine();
        let mixed = a.to_jacobian().add_affine(&b).to_affine();
        assert_eq!(full, mixed);
    }

    #[test]
    fn point_plus_negation_is_infinity() {
        let p = g().mul(&Scalar::from_u64(5));
        let sum = p.to_jacobian().add_affine(&p.neg()).to_affine();
        assert!(sum.is_infinity());
    }

    #[test]
    fn from_x_recovers_generator() {
        match g() {
            AffinePoint::Point { x, y } => {
                let recovered = AffinePoint::from_x(x, y.is_odd()).unwrap();
                assert_eq!(recovered, g());
                let flipped = AffinePoint::from_x(x, !y.is_odd()).unwrap();
                assert_eq!(flipped, g().neg());
            }
            AffinePoint::Infinity => unreachable!(),
        }
    }

    #[test]
    fn byte_roundtrip_and_validation() {
        let p = g().mul(&Scalar::from_u64(42));
        let bytes = p.to_bytes();
        assert_eq!(AffinePoint::from_bytes(&bytes), Some(p));
        // Corrupt y: almost surely off-curve.
        let mut bad = bytes;
        bad[63] ^= 1;
        assert_eq!(AffinePoint::from_bytes(&bad), None);
    }

    #[test]
    fn double_scalar_mul_matches_separate() {
        let a = Scalar::from_u64(1234567);
        let b = Scalar::from_u64(7654321);
        let q = g().mul(&Scalar::from_u64(31337));
        let combined = double_scalar_mul(&a, &b, &q);
        let separate = g()
            .mul(&a)
            .to_jacobian()
            .add(&q.mul(&b).to_jacobian())
            .to_affine();
        assert_eq!(combined, separate);
    }

    #[test]
    fn scalar_mul_distributes_over_addition() {
        // (a + b) G == aG + bG for random-ish scalars.
        let a = Scalar::from_be_bytes_reduced(&[0xa5; 32]);
        let b = Scalar::from_be_bytes_reduced(&[0x3c; 32]);
        let lhs = g().mul(&(a + b));
        let rhs = g()
            .mul(&a)
            .to_jacobian()
            .add(&g().mul(&b).to_jacobian())
            .to_affine();
        assert_eq!(lhs, rhs);
    }
}
