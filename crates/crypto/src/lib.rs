//! From-scratch cryptography for the PARP reproduction: Keccak-256 and
//! ECDSA over secp256k1 with Ethereum-style public-key recovery.
//!
//! Everything in this crate is implemented from first principles on top of
//! `u64` limb arithmetic — no external cryptography dependencies — so the
//! whole reproduction remains self-contained and auditable.
//!
//! **Not constant-time.** Scalar multiplication and field arithmetic take
//! data-dependent branches. This is a research prototype for protocol
//! evaluation, not a production signer; do not use it to protect real
//! funds.
//!
//! # Examples
//!
//! ```
//! use parp_crypto::{keccak256, recover_address, sign, verify, SecretKey};
//!
//! let sk = SecretKey::from_seed(b"demo");
//! let digest = keccak256(b"hello PARP");
//! let sig = sign(&sk, &digest);
//! assert!(verify(&sk.public_key(), &digest, &sig));
//! assert_eq!(recover_address(&digest, &sig).unwrap(), sk.address());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
mod ecdsa;
mod field;
mod keccak;
mod keys;
mod modarith;
mod parallel;
mod point;
mod scalar;

pub use ecdsa::{recover, recover_address, sign, verify, Signature, SignatureError};
pub use field::FieldElement;
pub use keccak::{hmac_keccak256, keccak256, keccak256_batch, keccak256_concat, Keccak256};
pub use keys::{InvalidSecretKey, KeyPair, PublicKey, SecretKey};
pub use parallel::{par_join, par_map, recover_addresses_parallel};
pub use point::{batch_to_affine, double_scalar_mul, mul_generator, AffinePoint, JacobianPoint};
pub use scalar::Scalar;
