//! The **retained pre-optimization ECDSA path**, frozen as a reference.
//!
//! This module is a byte-faithful copy of the crate's signing and
//! recovery hot path as it stood *before* the fixed-base tables, wNAF +
//! GLV double multiplication, binary-GCD inversion and specialized
//! reductions landed: generic fold-loop reduction, Fermat-ladder
//! inversion, a 16-entry window table of `G` rebuilt per signature, and
//! the 2-bit Shamir loop over `{G, Q, G+Q}` for recovery.
//!
//! It exists for two jobs and must not be used for anything else:
//!
//! * the `crypto_throughput` bench measures the optimized path **against
//!   it** (the "pre-PR loop" denominator in `BENCH_crypto.json`);
//! * the property tests assert the optimized path is **byte-identical**
//!   to it on signatures and recovered addresses.
//!
//! Nonce derivation is shared with the live path (it was untouched by
//! the optimization work), which is what makes signature equality exact.

use crate::ecdsa::{deterministic_nonce, Signature};
use crate::field;
use crate::keccak::keccak256;
use crate::keys::SecretKey;
use crate::modarith::Limbs;
use crate::scalar;
use parp_primitives::{Address, H256};

// --- frozen limb primitives ---------------------------------------------
//
// Private copies of the pre-PR `modarith` routines, *without* the inline
// hints the live path gained, so this module's cost profile stays pinned
// to the pre-optimization code even as the shared layer evolves.

mod frozen {
    use super::Limbs;

    pub(super) fn add(a: &Limbs, b: &Limbs) -> (Limbs, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = a[i].overflowing_add(b[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 | c2;
        }
        (out, carry)
    }

    pub(super) fn sub(a: &Limbs, b: &Limbs) -> (Limbs, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = a[i].overflowing_sub(b[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 | b2;
        }
        (out, borrow)
    }

    pub(super) fn gte(a: &Limbs, b: &Limbs) -> bool {
        for i in (0..4).rev() {
            if a[i] != b[i] {
                return a[i] > b[i];
            }
        }
        true
    }

    pub(super) fn is_zero(a: &Limbs) -> bool {
        a.iter().all(|&l| l == 0)
    }

    pub(super) fn mul_wide(a: &Limbs, b: &Limbs) -> [u64; 8] {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u64;
            for j in 0..4 {
                let wide = a[i] as u128 * b[j] as u128 + out[i + j] as u128 + carry as u128;
                out[i + j] = wide as u64;
                carry = (wide >> 64) as u64;
            }
            out[i + 4] = carry;
        }
        out
    }

    pub(super) fn reduce_wide(mut wide: [u64; 8], d: &Limbs, m: &Limbs) -> Limbs {
        loop {
            let hi = [wide[4], wide[5], wide[6], wide[7]];
            if is_zero(&hi) {
                break;
            }
            let lo = [wide[0], wide[1], wide[2], wide[3]];
            let mut folded = [0u64; 8];
            for i in 0..4 {
                let mut carry = 0u64;
                for j in 0..3 {
                    let wide_prod =
                        hi[i] as u128 * d[j] as u128 + folded[i + j] as u128 + carry as u128;
                    folded[i + j] = wide_prod as u64;
                    carry = (wide_prod >> 64) as u64;
                }
                let mut k = i + 3;
                while carry != 0 {
                    let (sum, c) = folded[k].overflowing_add(carry);
                    folded[k] = sum;
                    carry = c as u64;
                    k += 1;
                }
            }
            let mut carry = 0u64;
            for i in 0..4 {
                let (s1, c1) = folded[i].overflowing_add(lo[i]);
                let (s2, c2) = s1.overflowing_add(carry);
                folded[i] = s2;
                carry = (c1 | c2) as u64;
            }
            let mut k = 4;
            while carry != 0 {
                let (sum, c) = folded[k].overflowing_add(carry);
                folded[k] = sum;
                carry = c as u64;
                k += 1;
            }
            wide = folded;
        }
        let mut out = [wide[0], wide[1], wide[2], wide[3]];
        while gte(&out, m) {
            out = sub(&out, m).0;
        }
        out
    }

    pub(super) fn mul_mod(a: &Limbs, b: &Limbs, d: &Limbs, m: &Limbs) -> Limbs {
        reduce_wide(mul_wide(a, b), d, m)
    }

    pub(super) fn add_mod(a: &Limbs, b: &Limbs, m: &Limbs) -> Limbs {
        let (sum, carry) = add(a, b);
        if carry || gte(&sum, m) {
            sub(&sum, m).0
        } else {
            sum
        }
    }

    pub(super) fn sub_mod(a: &Limbs, b: &Limbs, m: &Limbs) -> Limbs {
        let (diff, borrow) = sub(a, b);
        if borrow {
            add(&diff, m).0
        } else {
            diff
        }
    }

    pub(super) fn pow_mod(base: &Limbs, exp: &Limbs, d: &Limbs, m: &Limbs) -> Limbs {
        let mut result = [1u64, 0, 0, 0];
        let mut started = false;
        for i in (0..256).rev() {
            if started {
                result = mul_mod(&result, &result, d, m);
            }
            if (exp[i / 64] >> (i % 64)) & 1 == 1 {
                if started {
                    result = mul_mod(&result, base, d, m);
                } else {
                    result = *base;
                    started = true;
                }
            }
        }
        if started {
            result
        } else {
            [1, 0, 0, 0]
        }
    }

    pub(super) fn inv_mod(a: &Limbs, d: &Limbs, m: &Limbs) -> Limbs {
        let (exp, _) = sub(m, &[2, 0, 0, 0]);
        pow_mod(a, &exp, d, m)
    }

    pub(super) fn from_be_bytes(bytes: &[u8; 32]) -> Limbs {
        let mut limbs = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            limbs[3 - i] = u64::from_be_bytes(buf);
        }
        limbs
    }

    pub(super) fn to_be_bytes(limbs: &Limbs) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..(i + 1) * 8].copy_from_slice(&limbs[3 - i].to_be_bytes());
        }
        out
    }
}

use frozen as modarith;

/// `2^256 − p`, the field's fold constant.
const FIELD_D: Limbs = [0x1_0000_03d1, 0, 0, 0];
/// `2^256 − n`, the scalar fold constant.
const SCALAR_D: Limbs = [0x402d_a173_2fc9_bebf, 0x4551_2319_50b7_5fc4, 0x1, 0];
/// Half the group order (low-`s` normalization).
const HALF_N: Limbs = [
    0xdfe9_2f46_681b_20a0,
    0x5d57_6e73_57a4_501d,
    0xffff_ffff_ffff_ffff,
    0x7fff_ffff_ffff_ffff,
];

/// The generator coordinates (copied: the live table-building code no
/// longer exposes them the way the old loop consumed them).
const GX: [u8; 32] = [
    0x79, 0xbe, 0x66, 0x7e, 0xf9, 0xdc, 0xbb, 0xac, 0x55, 0xa0, 0x62, 0x95, 0xce, 0x87, 0x0b, 0x07,
    0x02, 0x9b, 0xfc, 0xdb, 0x2d, 0xce, 0x28, 0xd9, 0x59, 0xf2, 0x81, 0x5b, 0x16, 0xf8, 0x17, 0x98,
];
const GY: [u8; 32] = [
    0x48, 0x3a, 0xda, 0x77, 0x26, 0xa3, 0xc4, 0x65, 0x5d, 0xa4, 0xfb, 0xfc, 0x0e, 0x11, 0x08, 0xa8,
    0xfd, 0x17, 0xb4, 0x48, 0xa6, 0x85, 0x54, 0x19, 0x9c, 0x47, 0xd0, 0x8f, 0xfb, 0x10, 0xd4, 0xb8,
];

// --- field arithmetic, generic loops only -------------------------------

fn fmul(a: &Limbs, b: &Limbs) -> Limbs {
    modarith::mul_mod(a, b, &FIELD_D, &field::P)
}

fn fadd(a: &Limbs, b: &Limbs) -> Limbs {
    modarith::add_mod(a, b, &field::P)
}

fn fsub(a: &Limbs, b: &Limbs) -> Limbs {
    modarith::sub_mod(a, b, &field::P)
}

fn finv(a: &Limbs) -> Limbs {
    modarith::inv_mod(a, &FIELD_D, &field::P)
}

fn fsqrt(a: &Limbs) -> Option<Limbs> {
    // (p + 1) / 4, plain square-and-multiply.
    const EXP: Limbs = [
        0xffff_ffff_bfff_ff0c,
        0xffff_ffff_ffff_ffff,
        0xffff_ffff_ffff_ffff,
        0x3fff_ffff_ffff_ffff,
    ];
    let candidate = modarith::pow_mod(a, &EXP, &FIELD_D, &field::P);
    (fmul(&candidate, &candidate) == *a).then_some(candidate)
}

fn smul(a: &Limbs, b: &Limbs) -> Limbs {
    modarith::mul_mod(a, b, &SCALAR_D, &scalar::N)
}

fn sadd(a: &Limbs, b: &Limbs) -> Limbs {
    modarith::add_mod(a, b, &scalar::N)
}

fn sneg(a: &Limbs) -> Limbs {
    modarith::sub_mod(&[0, 0, 0, 0], a, &scalar::N)
}

fn sinv(a: &Limbs) -> Limbs {
    modarith::inv_mod(a, &SCALAR_D, &scalar::N)
}

fn sreduce(bytes: &[u8; 32]) -> Limbs {
    let limbs = modarith::from_be_bytes(bytes);
    let wide = [limbs[0], limbs[1], limbs[2], limbs[3], 0, 0, 0, 0];
    modarith::reduce_wide(wide, &SCALAR_D, &scalar::N)
}

// --- Jacobian point arithmetic, as the old loop ran it ------------------

#[derive(Clone, Copy)]
struct Jac {
    x: Limbs,
    y: Limbs,
    z: Limbs,
}

const INF: Jac = Jac {
    x: [1, 0, 0, 0],
    y: [1, 0, 0, 0],
    z: [0, 0, 0, 0],
};

impl Jac {
    fn is_inf(&self) -> bool {
        modarith::is_zero(&self.z)
    }

    fn double(&self) -> Jac {
        if self.is_inf() || modarith::is_zero(&self.y) {
            return INF;
        }
        let a = fmul(&self.x, &self.x);
        let b = fmul(&self.y, &self.y);
        let c = fmul(&b, &b);
        let xb = fadd(&self.x, &b);
        let mut d = fsub(&fmul(&xb, &xb), &fadd(&a, &c));
        d = fadd(&d, &d);
        let e = fadd(&fadd(&a, &a), &a);
        let f = fmul(&e, &e);
        let x3 = fsub(&f, &fadd(&d, &d));
        let c2 = fadd(&c, &c);
        let c4 = fadd(&c2, &c2);
        let c8 = fadd(&c4, &c4);
        let y3 = fsub(&fmul(&e, &fsub(&d, &x3)), &c8);
        let yz = fmul(&self.y, &self.z);
        let z3 = fadd(&yz, &yz);
        Jac {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    fn add(&self, other: &Jac) -> Jac {
        if self.is_inf() {
            return *other;
        }
        if other.is_inf() {
            return *self;
        }
        let z1z1 = fmul(&self.z, &self.z);
        let z2z2 = fmul(&other.z, &other.z);
        let u1 = fmul(&self.x, &z2z2);
        let u2 = fmul(&other.x, &z1z1);
        let s1 = fmul(&fmul(&self.y, &z2z2), &other.z);
        let s2 = fmul(&fmul(&other.y, &z1z1), &self.z);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return INF;
        }
        let h = fsub(&u2, &u1);
        let r = fsub(&s2, &s1);
        let h2 = fmul(&h, &h);
        let h3 = fmul(&h2, &h);
        let u1h2 = fmul(&u1, &h2);
        let x3 = fsub(&fsub(&fmul(&r, &r), &h3), &fadd(&u1h2, &u1h2));
        let y3 = fsub(&fmul(&r, &fsub(&u1h2, &x3)), &fmul(&s1, &h3));
        let z3 = fmul(&fmul(&self.z, &other.z), &h);
        Jac {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    fn into_affine(self) -> Option<(Limbs, Limbs)> {
        if self.is_inf() {
            return None;
        }
        let z_inv = finv(&self.z);
        let z_inv2 = fmul(&z_inv, &z_inv);
        let z_inv3 = fmul(&z_inv2, &z_inv);
        Some((fmul(&self.x, &z_inv2), fmul(&self.y, &z_inv3)))
    }
}

fn generator() -> Jac {
    Jac {
        x: modarith::from_be_bytes(&GX),
        y: modarith::from_be_bytes(&GY),
        z: [1, 0, 0, 0],
    }
}

fn nibble(k: &Limbs, i: usize) -> usize {
    let bit = i * 4;
    ((k[bit / 64] >> (bit % 64)) & 0xf) as usize
}

fn bit(k: &Limbs, i: usize) -> bool {
    (k[i / 64] >> (i % 64)) & 1 == 1
}

/// Windowed (4-bit) multiplication, rebuilding the 16-entry table per
/// call — exactly what the old `JacobianPoint::mul` did for every
/// signature's `k·G`.
fn mul(p: &Jac, k: &Limbs) -> Jac {
    if modarith::is_zero(k) || p.is_inf() {
        return INF;
    }
    let mut table = [INF; 16];
    table[1] = *p;
    for i in 2..16 {
        table[i] = if i % 2 == 0 {
            table[i / 2].double()
        } else {
            table[i - 1].add(p)
        };
    }
    let mut acc = INF;
    for window in (0..64).rev() {
        if !acc.is_inf() {
            acc = acc.double().double().double().double();
        }
        let digit = nibble(k, window);
        if digit != 0 {
            acc = acc.add(&table[digit]);
        }
    }
    acc
}

/// The old 2-bit Shamir trick over `{G, Q, G+Q}`.
fn double_scalar_mul(a: &Limbs, b: &Limbs, q: &Jac) -> Jac {
    let g = generator();
    let gq = g.add(q);
    let mut acc = INF;
    for i in (0..256).rev() {
        if !acc.is_inf() {
            acc = acc.double();
        }
        match (bit(a, i), bit(b, i)) {
            (true, true) => acc = acc.add(&gq),
            (true, false) => acc = acc.add(&g),
            (false, true) => acc = acc.add(q),
            (false, false) => {}
        }
    }
    acc
}

// --- the frozen sign / recover loops ------------------------------------

/// Pre-optimization [`crate::sign`]: byte-identical output, original
/// cost profile (per-call window table, Fermat inversions, generic
/// reduction).
pub fn sign_reference(secret: &SecretKey, digest: &H256) -> Signature {
    let z = sreduce(&digest.into_inner());
    let d = modarith::from_be_bytes(&secret.to_bytes());
    let mut extra = 0u32;
    loop {
        let k_scalar = deterministic_nonce(secret, digest, extra);
        extra = extra.wrapping_add(1);
        let k = modarith::from_be_bytes(&k_scalar.to_be_bytes());
        let Some((rx, ry)) = mul(&generator(), &k).into_affine() else {
            continue;
        };
        let rx_bytes = modarith::to_be_bytes(&rx);
        let r = sreduce(&rx_bytes);
        if modarith::is_zero(&r) {
            continue;
        }
        let mut s = smul(&sinv(&k), &sadd(&z, &smul(&r, &d)));
        if modarith::is_zero(&s) {
            continue;
        }
        // r >= n would shift the recovery id; the old loop retried.
        if modarith::gte(&modarith::from_be_bytes(&rx_bytes), &scalar::N) {
            continue;
        }
        let mut v = (ry[0] & 1) as u8;
        if modarith::gte(&s, &HALF_N) && s != HALF_N {
            s = sneg(&s);
            v ^= 1;
        }
        let mut bytes = [0u8; 65];
        bytes[..32].copy_from_slice(&modarith::to_be_bytes(&r));
        bytes[32..64].copy_from_slice(&modarith::to_be_bytes(&s));
        bytes[64] = v;
        return Signature::from_bytes(&bytes).expect("reference signature is canonical");
    }
}

/// Pre-optimization [`crate::recover_address`]: the 2-bit Shamir loop
/// plus Fermat inversions, returning `None` where the live path errors.
pub fn recover_address_reference(digest: &H256, signature: &Signature) -> Option<Address> {
    let r = modarith::from_be_bytes(signature.r_bytes());
    let s = modarith::from_be_bytes(signature.s_bytes());
    // R has x = r (r < n < p, so the field parse cannot fail).
    let x = r;
    let y2 = fadd(&fmul(&fmul(&x, &x), &x), &[7, 0, 0, 0]);
    let mut y = fsqrt(&y2)?;
    if (y[0] & 1 == 1) != (signature.v() == 1) {
        y = fsub(&[0, 0, 0, 0], &y);
    }
    let r_point = Jac {
        x,
        y,
        z: [1, 0, 0, 0],
    };
    let z = sreduce(&digest.into_inner());
    let r_inv = sinv(&r);
    let u1 = sneg(&smul(&z, &r_inv));
    let u2 = smul(&s, &r_inv);
    let (qx, qy) = double_scalar_mul(&u1, &u2, &r_point).into_affine()?;
    let mut encoded = [0u8; 64];
    encoded[..32].copy_from_slice(&modarith::to_be_bytes(&qx));
    encoded[32..].copy_from_slice(&modarith::to_be_bytes(&qy));
    let hash = keccak256(&encoded);
    Some(Address::from_slice(&hash.as_bytes()[12..]).expect("20-byte tail of a 32-byte digest"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{recover_address, sign};

    #[test]
    fn reference_matches_live_path() {
        for seed in 0..6u8 {
            let key = SecretKey::from_seed(&[seed, 0xba]);
            let digest = keccak256(&[seed, 0x5e]);
            let live = sign(&key, &digest);
            let frozen = sign_reference(&key, &digest);
            assert_eq!(live, frozen, "signatures must be byte-identical");
            assert_eq!(
                recover_address(&digest, &live).ok(),
                recover_address_reference(&digest, &frozen),
                "recovered addresses must agree"
            );
            assert_eq!(
                recover_address_reference(&digest, &frozen),
                Some(key.address())
            );
        }
    }
}
