//! Key pairs and Ethereum-style address derivation.

use crate::keccak::keccak256;
use crate::point::AffinePoint;
use crate::scalar::Scalar;
use parp_primitives::Address;
use std::error::Error;
use std::fmt;

/// Error returned for out-of-range or zero secret keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidSecretKey;

impl fmt::Display for InvalidSecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "secret key must be in the range [1, n-1]")
    }
}

impl Error for InvalidSecretKey {}

/// A secp256k1 secret key: a non-zero scalar.
///
/// The `Debug` impl redacts the key material.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SecretKey(pub(crate) Scalar);

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SecretKey(<redacted>)")
    }
}

impl SecretKey {
    /// Creates a secret key from 32 big-endian bytes.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSecretKey`] when the value is zero or not below the
    /// group order.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<Self, InvalidSecretKey> {
        let scalar = Scalar::from_be_bytes(bytes).ok_or(InvalidSecretKey)?;
        if scalar.is_zero() {
            return Err(InvalidSecretKey);
        }
        Ok(SecretKey(scalar))
    }

    /// Derives a secret key deterministically from a seed by hashing until
    /// the digest lands in `[1, n-1]` (succeeds on the first try with
    /// overwhelming probability).
    ///
    /// Intended for tests, simulations and examples where reproducible
    /// identities matter more than external entropy.
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut digest = keccak256(seed);
        loop {
            if let Ok(key) = SecretKey::from_bytes(&digest.into_inner()) {
                return key;
            }
            digest = keccak256(digest.as_bytes());
        }
    }

    /// Serializes the key as 32 big-endian bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// Computes the corresponding public key `sk * G` (off the shared
    /// fixed-base table).
    pub fn public_key(&self) -> PublicKey {
        PublicKey(crate::point::mul_generator(&self.0).to_affine())
    }

    /// Shorthand for `self.public_key().address()`.
    pub fn address(&self) -> Address {
        self.public_key().address()
    }
}

/// A secp256k1 public key (a finite curve point).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublicKey(pub(crate) AffinePoint);

impl PublicKey {
    /// Parses a 64-byte uncompressed `x || y` encoding.
    ///
    /// Returns `None` when either coordinate is out of range or the point
    /// is not on the curve.
    pub fn from_bytes(bytes: &[u8; 64]) -> Option<Self> {
        let point = AffinePoint::from_bytes(bytes)?;
        (!point.is_infinity()).then_some(PublicKey(point))
    }

    /// Serializes as 64 bytes `x || y`.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.0.to_bytes()
    }

    /// The underlying curve point.
    pub fn point(&self) -> &AffinePoint {
        &self.0
    }

    /// Derives the Ethereum-style address: the low 20 bytes of
    /// `keccak256(x || y)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use parp_crypto::SecretKey;
    ///
    /// let sk = SecretKey::from_bytes(&{
    ///     let mut b = [0u8; 32];
    ///     b[31] = 1;
    ///     b
    /// }).unwrap();
    /// // The well-known address of private key 0x...01.
    /// assert_eq!(
    ///     sk.public_key().address().to_string(),
    ///     "0x7e5f4552091a69125d5dfcb7b8c2659029395bdf"
    /// );
    /// ```
    pub fn address(&self) -> Address {
        let digest = keccak256(&self.to_bytes());
        Address::from_slice(&digest.as_bytes()[12..]).expect("20-byte tail of a 32-byte digest")
    }
}

/// A convenience bundle of a secret key with its derived public key and
/// address.
#[derive(Clone, Copy, Debug)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
    address: Address,
}

impl KeyPair {
    /// Builds the key pair for a secret key.
    pub fn from_secret(secret: SecretKey) -> Self {
        let public = secret.public_key();
        KeyPair {
            secret,
            public,
            address: public.address(),
        }
    }

    /// Deterministic key pair from a seed; see [`SecretKey::from_seed`].
    pub fn from_seed(seed: &[u8]) -> Self {
        Self::from_secret(SecretKey::from_seed(seed))
    }

    /// The secret key.
    pub fn secret(&self) -> &SecretKey {
        &self.secret
    }

    /// The public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// The derived address.
    pub fn address(&self) -> Address {
        self.address
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sk(byte: u8) -> SecretKey {
        let mut bytes = [0u8; 32];
        bytes[31] = byte;
        SecretKey::from_bytes(&bytes).unwrap()
    }

    #[test]
    fn zero_key_rejected() {
        assert_eq!(SecretKey::from_bytes(&[0u8; 32]), Err(InvalidSecretKey));
    }

    #[test]
    fn order_key_rejected() {
        // n itself is out of range.
        let n_bytes: [u8; 32] = [
            0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
            0xff, 0xfe, 0xba, 0xae, 0xdc, 0xe6, 0xaf, 0x48, 0xa0, 0x3b, 0xbf, 0xd2, 0x5e, 0x8c,
            0xd0, 0x36, 0x41, 0x41,
        ];
        assert_eq!(SecretKey::from_bytes(&n_bytes), Err(InvalidSecretKey));
    }

    #[test]
    fn known_addresses() {
        // Private keys 1 and 2 have widely published addresses.
        assert_eq!(
            sk(1).address().to_string(),
            "0x7e5f4552091a69125d5dfcb7b8c2659029395bdf"
        );
        assert_eq!(
            sk(2).address().to_string(),
            "0x2b5ad5c4795c026514f8317c7a215e218dccd6cf"
        );
    }

    #[test]
    fn pubkey_roundtrip() {
        let pk = sk(7).public_key();
        assert_eq!(PublicKey::from_bytes(&pk.to_bytes()), Some(pk));
    }

    #[test]
    fn seeded_keys_are_deterministic_and_distinct() {
        let a = KeyPair::from_seed(b"client-1");
        let b = KeyPair::from_seed(b"client-1");
        let c = KeyPair::from_seed(b"client-2");
        assert_eq!(a.address(), b.address());
        assert_ne!(a.address(), c.address());
    }

    #[test]
    fn debug_redacts_secret() {
        let rendered = format!("{:?}", sk(5));
        assert!(rendered.contains("redacted"));
        assert!(!rendered.contains("05"));
    }

    #[test]
    fn secret_byte_roundtrip() {
        let key = sk(0xab);
        assert_eq!(SecretKey::from_bytes(&key.to_bytes()), Ok(key));
    }
}
