//! Arithmetic modulo the secp256k1 group order
//! `n = 0xfffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141`.

use crate::modarith::{self, Limbs};
use parp_primitives::U256;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// The group order `n` as little-endian limbs.
pub(crate) const N: Limbs = [
    0xbfd2_5e8c_d036_4141,
    0xbaae_dce6_af48_a03b,
    0xffff_ffff_ffff_fffe,
    0xffff_ffff_ffff_ffff,
];

/// `2^256 - n = 0x14551231950b75fc4402da1732fc9bebf` (129 bits).
const D: Limbs = [0x402d_a173_2fc9_bebf, 0x4551_2319_50b7_5fc4, 0x1, 0];

/// Half the group order, used for low-`s` normalization (EIP-2).
const HALF_N: Limbs = [
    0xdfe9_2f46_681b_20a0,
    0x5d57_6e73_57a4_501d,
    0xffff_ffff_ffff_ffff,
    0x7fff_ffff_ffff_ffff,
];

/// A scalar modulo the secp256k1 group order, always reduced below `n`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scalar(Limbs);

impl fmt::Debug for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Scalar(0x{})",
            parp_primitives::to_hex(&self.to_be_bytes())
        )
    }
}

impl Scalar {
    /// The scalar `0`.
    pub const ZERO: Scalar = Scalar([0, 0, 0, 0]);
    /// The scalar `1`.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Builds a scalar from a small integer.
    pub fn from_u64(v: u64) -> Self {
        Scalar([v, 0, 0, 0])
    }

    /// Parses 32 big-endian bytes; `None` when the value is >= `n`.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Option<Self> {
        let limbs = modarith::from_be_bytes(bytes);
        if modarith::gte(&limbs, &N) {
            None
        } else {
            Some(Scalar(limbs))
        }
    }

    /// Parses 32 big-endian bytes, reducing modulo `n`.
    pub fn from_be_bytes_reduced(bytes: &[u8; 32]) -> Self {
        let limbs = modarith::from_be_bytes(bytes);
        let wide = [limbs[0], limbs[1], limbs[2], limbs[3], 0, 0, 0, 0];
        Scalar(modarith::reduce_wide(wide, &D, &N))
    }

    /// Converts a [`U256`] reducing modulo `n`.
    pub fn from_u256_reduced(value: U256) -> Self {
        Self::from_be_bytes_reduced(&value.to_be_bytes())
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        modarith::to_be_bytes(&self.0)
    }

    /// Returns `true` for zero.
    pub fn is_zero(self) -> bool {
        modarith::is_zero(&self.0)
    }

    /// Returns `true` when the scalar exceeds `n/2` ("high s").
    pub fn is_high(self) -> bool {
        modarith::gte(&self.0, &HALF_N) && self != Scalar(HALF_N)
    }

    /// Multiplicative inverse, via the binary extended Euclidean
    /// algorithm (~5× faster than the former Fermat ladder).
    ///
    /// # Panics
    ///
    /// Panics when `self` is zero.
    pub fn invert(self) -> Self {
        assert!(!self.is_zero(), "inverse of zero scalar");
        Scalar(modarith::inv_mod_binary(&self.0, &N))
    }

    /// Extracts the 4-bit window ending at bit `i*4` (for windowed point
    /// multiplication).
    pub(crate) fn nibble(&self, i: usize) -> u8 {
        let bit = i * 4;
        ((self.0[bit / 64] >> (bit % 64)) & 0xf) as u8
    }

    /// Extracts byte `i` (0 = least significant) — the fixed-base comb
    /// table is indexed by the scalar's little-endian bytes.
    pub(crate) fn byte(&self, i: usize) -> u8 {
        (self.0[i / 8] >> ((i % 8) * 8)) as u8
    }

    /// Splits the scalar for the secp256k1 GLV endomorphism:
    /// `self ≡ k1 + k2·λ (mod n)` with both halves at most 129 bits
    /// (after sign normalization), where `λ` is the cube root of unity
    /// acting as `λ·(x, y) = (β·x, y)` on curve points. Halving the
    /// scalar length halves the doubling chain of a variable-base
    /// multiplication.
    ///
    /// Returns `(k1, neg1, k2, neg2)`: each half is the *magnitude* and
    /// its flag says the half enters negated. The decomposition is exact
    /// by construction (`k1 = k − c1·a1 − c2·a2` for any `c1`, `c2`); the
    /// precomputed `round(2^384·b/n)` constants only make the halves
    /// short, a bound the property tests pin down.
    pub(crate) fn split_glv(&self) -> (Scalar, bool, Scalar, bool) {
        /// `round(2^384 · b2 / n)`.
        const G1: Limbs = [
            0xe893_209a_45db_b031,
            0x3daa_8a14_71e8_ca7f,
            0xe86c_90e4_9284_eb15,
            0x3086_d221_a7d4_6bcd,
        ];
        /// `round(2^384 · (−b1) / n)`.
        const G2: Limbs = [
            0x1571_b4ae_8ac4_7f71,
            0x2212_08ac_9df5_06c6,
            0x6f54_7fa9_0abf_e4c4,
            0xe443_7ed6_010e_8828,
        ];
        const A1: Limbs = [0xe86c_90e4_9284_eb15, 0x3086_d221_a7d4_6bcd, 0, 0];
        const MINUS_B1: Limbs = [0x6f54_7fa9_0abf_e4c3, 0xe443_7ed6_010e_8828, 0, 0];
        const A2: Limbs = [0x57c1_108d_9d44_cfd8, 0x14ca_50f7_a8e2_f3f6, 0x1, 0];
        // b2 = a1 for this curve.
        const B2: Limbs = A1;
        let c1 = Scalar(mul_shift_384(&self.0, &G1));
        let c2 = Scalar(mul_shift_384(&self.0, &G2));
        // k1 = k − c1·a1 − c2·a2; k2 = c1·|b1| − c2·b2 (mod n).
        let k1 = *self - c1 * Scalar(A1) - c2 * Scalar(A2);
        let k2 = c1 * Scalar(MINUS_B1) - c2 * Scalar(B2);
        let (k1, neg1) = k1.sign_normalized();
        let (k2, neg2) = k2.sign_normalized();
        (k1, neg1, k2, neg2)
    }

    /// `(magnitude, was_negated)`: values above `n/2` are treated as
    /// negative and returned as their (short) negation.
    fn sign_normalized(self) -> (Scalar, bool) {
        if self.is_high() {
            (-self, true)
        } else {
            (self, false)
        }
    }

    /// The window-`w` non-adjacent form, least-significant digit first:
    /// 257 entries, each zero or odd with `|d| < 2^(w-1)`, satisfying
    /// `Σ digits[i] · 2^i = self`. Subtracting a negative digit can push
    /// the working value past 2^256, hence the 257th position.
    pub(crate) fn wnaf(&self, w: u32) -> [i8; 257] {
        debug_assert!((2..=8).contains(&w));
        let mut digits = [0i8; 257];
        // A fifth limb absorbs the carry a negative digit can produce.
        let mut k = [self.0[0], self.0[1], self.0[2], self.0[3], 0u64];
        let half = 1u64 << (w - 1);
        let full = 1u64 << w;
        let mut i = 0usize;
        while k.iter().any(|&l| l != 0) {
            if k[0] & 1 == 1 {
                let low = k[0] & (full - 1);
                if low >= half {
                    // Negative digit d = low − 2^w; clearing it adds
                    // 2^w − low to the working value.
                    digits[i] = (low as i64 - full as i64) as i8;
                    let mut carry = full - low;
                    for limb in k.iter_mut() {
                        let (s, c) = limb.overflowing_add(carry);
                        *limb = s;
                        carry = c as u64;
                        if carry == 0 {
                            break;
                        }
                    }
                } else {
                    digits[i] = low as i8;
                    let mut borrow = low;
                    for limb in k.iter_mut() {
                        let (s, b) = limb.overflowing_sub(borrow);
                        *limb = s;
                        borrow = b as u64;
                        if borrow == 0 {
                            break;
                        }
                    }
                }
            }
            for j in 0..4 {
                k[j] = (k[j] >> 1) | (k[j + 1] << 63);
            }
            k[4] >>= 1;
            i += 1;
        }
        digits
    }
}

/// `round((a · g) / 2^384)`: the 512-bit product's limbs 6 and 7, plus a
/// rounding carry from bit 383.
fn mul_shift_384(a: &Limbs, g: &Limbs) -> Limbs {
    let wide = modarith::mul_wide(a, g);
    let round = (wide[5] >> 63) & 1;
    let (lo, carry) = wide[6].overflowing_add(round);
    [lo, wide[7].wrapping_add(carry as u64), 0, 0]
}

impl Add for Scalar {
    type Output = Scalar;

    fn add(self, rhs: Scalar) -> Scalar {
        Scalar(modarith::add_mod(&self.0, &rhs.0, &N))
    }
}

impl Sub for Scalar {
    type Output = Scalar;

    fn sub(self, rhs: Scalar) -> Scalar {
        Scalar(modarith::sub_mod(&self.0, &rhs.0, &N))
    }
}

impl Mul for Scalar {
    type Output = Scalar;

    fn mul(self, rhs: Scalar) -> Scalar {
        Scalar(modarith::mul_mod(&self.0, &rhs.0, &D, &N))
    }
}

impl Neg for Scalar {
    type Output = Scalar;

    fn neg(self) -> Scalar {
        Scalar::ZERO - self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_constant_is_complement_of_n() {
        // n + d must equal 2^256, i.e. n + d wraps to zero with carry.
        let (sum, carry) = modarith::add(&N, &D);
        assert!(carry);
        assert!(modarith::is_zero(&sum));
    }

    #[test]
    fn half_n_doubles_to_n_minus_one() {
        let half = Scalar(HALF_N);
        let doubled = half + half;
        // 2 * ((n-1)/2) = n - 1
        assert_eq!(doubled + Scalar::ONE, Scalar::ZERO);
    }

    #[test]
    fn n_reduces_to_zero() {
        let n_bytes = modarith::to_be_bytes(&N);
        assert!(Scalar::from_be_bytes(&n_bytes).is_none());
        assert_eq!(Scalar::from_be_bytes_reduced(&n_bytes), Scalar::ZERO);
    }

    #[test]
    fn inverse() {
        let a = Scalar::from_u64(0xabcdef);
        assert_eq!(a * a.invert(), Scalar::ONE);
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn zero_inverse_panics() {
        let _ = Scalar::ZERO.invert();
    }

    #[test]
    fn high_low_classification() {
        assert!(!Scalar::ONE.is_high());
        assert!(!Scalar(HALF_N).is_high());
        assert!((Scalar(HALF_N) + Scalar::ONE).is_high());
        assert!((-Scalar::ONE).is_high());
    }

    #[test]
    fn negation_cancels() {
        let a = Scalar::from_u64(777);
        assert_eq!(a + (-a), Scalar::ZERO);
    }

    #[test]
    fn nibble_and_byte_extraction() {
        let s = Scalar::from_u64(0xabcd);
        assert_eq!(s.nibble(0), 0xd);
        assert_eq!(s.nibble(1), 0xc);
        assert_eq!(s.nibble(2), 0xb);
        assert_eq!(s.nibble(3), 0xa);
        assert_eq!(s.nibble(4), 0);
        assert_eq!(s.byte(0), 0xcd);
        assert_eq!(s.byte(1), 0xab);
        assert_eq!(s.byte(2), 0);
    }

    #[test]
    fn wnaf_recomposes_and_stays_sparse() {
        for (w, seed) in [(2u32, 1u64), (5, 0xdead_beef), (8, u64::MAX)] {
            let s =
                Scalar::from_be_bytes_reduced(&crate::keccak256(&seed.to_be_bytes()).into_inner());
            let digits = s.wnaf(w);
            let half = 1i16 << (w - 1);
            // Recompose Σ dᵢ·2ⁱ mod n by Horner from the top.
            let mut acc = Scalar::ZERO;
            for &d in digits.iter().rev() {
                acc = acc + acc;
                assert!(
                    d == 0 || (d % 2 != 0 && (d as i16).abs() < half),
                    "digit {d}"
                );
                let mag = Scalar::from_u64(d.unsigned_abs() as u64);
                acc = if d < 0 { acc - mag } else { acc + mag };
            }
            assert_eq!(acc, s, "wNAF({w}) must recompose");
        }
    }

    /// The scalar `λ` of the GLV endomorphism (`λ³ = 1 mod n`).
    const LAMBDA: Scalar = Scalar([
        0xdf02_967c_1b23_bd72,
        0x122e_22ea_2081_6678,
        0xa526_1c02_8812_645a,
        0x5363_ad4c_c05c_30e0,
    ]);

    #[test]
    fn lambda_is_a_cube_root_of_unity() {
        assert_eq!(LAMBDA * LAMBDA * LAMBDA, Scalar::ONE);
        assert_ne!(LAMBDA, Scalar::ONE);
    }

    #[test]
    fn glv_split_recomposes_with_short_halves() {
        for seed in [1u64, 7, 0xdead_beef, u64::MAX] {
            let k =
                Scalar::from_be_bytes_reduced(&crate::keccak256(&seed.to_be_bytes()).into_inner());
            let (k1, neg1, k2, neg2) = k.split_glv();
            let s1 = if neg1 { -k1 } else { k1 };
            let s2 = if neg2 { -k2 } else { k2 };
            assert_eq!(s1 + s2 * LAMBDA, k, "k1 + k2·λ must equal k");
            // Both magnitudes fit in 129 bits (the GLV shortness bound).
            for half in [k1, k2] {
                let bytes = half.to_be_bytes();
                assert!(
                    bytes[..15].iter().all(|&b| b == 0) && bytes[15] <= 3,
                    "GLV half too long: {half:?}"
                );
            }
        }
    }

    #[test]
    fn u256_reduction_roundtrip() {
        let v = U256::from(123456789u64);
        assert_eq!(Scalar::from_u256_reduced(v), Scalar::from_u64(123456789));
    }
}
