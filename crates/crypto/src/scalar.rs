//! Arithmetic modulo the secp256k1 group order
//! `n = 0xfffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141`.

use crate::modarith::{self, Limbs};
use parp_primitives::U256;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// The group order `n` as little-endian limbs.
pub(crate) const N: Limbs = [
    0xbfd2_5e8c_d036_4141,
    0xbaae_dce6_af48_a03b,
    0xffff_ffff_ffff_fffe,
    0xffff_ffff_ffff_ffff,
];

/// `2^256 - n = 0x14551231950b75fc4402da1732fc9bebf` (129 bits).
const D: Limbs = [0x402d_a173_2fc9_bebf, 0x4551_2319_50b7_5fc4, 0x1, 0];

/// Half the group order, used for low-`s` normalization (EIP-2).
const HALF_N: Limbs = [
    0xdfe9_2f46_681b_20a0,
    0x5d57_6e73_57a4_501d,
    0xffff_ffff_ffff_ffff,
    0x7fff_ffff_ffff_ffff,
];

/// A scalar modulo the secp256k1 group order, always reduced below `n`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scalar(Limbs);

impl fmt::Debug for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Scalar(0x{})",
            parp_primitives::to_hex(&self.to_be_bytes())
        )
    }
}

impl Scalar {
    /// The scalar `0`.
    pub const ZERO: Scalar = Scalar([0, 0, 0, 0]);
    /// The scalar `1`.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Builds a scalar from a small integer.
    pub fn from_u64(v: u64) -> Self {
        Scalar([v, 0, 0, 0])
    }

    /// Parses 32 big-endian bytes; `None` when the value is >= `n`.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Option<Self> {
        let limbs = modarith::from_be_bytes(bytes);
        if modarith::gte(&limbs, &N) {
            None
        } else {
            Some(Scalar(limbs))
        }
    }

    /// Parses 32 big-endian bytes, reducing modulo `n`.
    pub fn from_be_bytes_reduced(bytes: &[u8; 32]) -> Self {
        let limbs = modarith::from_be_bytes(bytes);
        let wide = [limbs[0], limbs[1], limbs[2], limbs[3], 0, 0, 0, 0];
        Scalar(modarith::reduce_wide(wide, &D, &N))
    }

    /// Converts a [`U256`] reducing modulo `n`.
    pub fn from_u256_reduced(value: U256) -> Self {
        Self::from_be_bytes_reduced(&value.to_be_bytes())
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        modarith::to_be_bytes(&self.0)
    }

    /// Returns `true` for zero.
    pub fn is_zero(self) -> bool {
        modarith::is_zero(&self.0)
    }

    /// Returns `true` when the scalar exceeds `n/2` ("high s").
    pub fn is_high(self) -> bool {
        modarith::gte(&self.0, &HALF_N) && self != Scalar(HALF_N)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics when `self` is zero.
    pub fn invert(self) -> Self {
        assert!(!self.is_zero(), "inverse of zero scalar");
        Scalar(modarith::inv_mod(&self.0, &D, &N))
    }

    /// Returns bit `i` (0 = least significant).
    pub(crate) fn bit(&self, i: usize) -> bool {
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Extracts the 4-bit window ending at bit `i*4` (for windowed point
    /// multiplication).
    pub(crate) fn nibble(&self, i: usize) -> u8 {
        let bit = i * 4;
        ((self.0[bit / 64] >> (bit % 64)) & 0xf) as u8
    }
}

impl Add for Scalar {
    type Output = Scalar;

    fn add(self, rhs: Scalar) -> Scalar {
        Scalar(modarith::add_mod(&self.0, &rhs.0, &N))
    }
}

impl Sub for Scalar {
    type Output = Scalar;

    fn sub(self, rhs: Scalar) -> Scalar {
        Scalar(modarith::sub_mod(&self.0, &rhs.0, &N))
    }
}

impl Mul for Scalar {
    type Output = Scalar;

    fn mul(self, rhs: Scalar) -> Scalar {
        Scalar(modarith::mul_mod(&self.0, &rhs.0, &D, &N))
    }
}

impl Neg for Scalar {
    type Output = Scalar;

    fn neg(self) -> Scalar {
        Scalar::ZERO - self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_constant_is_complement_of_n() {
        // n + d must equal 2^256, i.e. n + d wraps to zero with carry.
        let (sum, carry) = modarith::add(&N, &D);
        assert!(carry);
        assert!(modarith::is_zero(&sum));
    }

    #[test]
    fn half_n_doubles_to_n_minus_one() {
        let half = Scalar(HALF_N);
        let doubled = half + half;
        // 2 * ((n-1)/2) = n - 1
        assert_eq!(doubled + Scalar::ONE, Scalar::ZERO);
    }

    #[test]
    fn n_reduces_to_zero() {
        let n_bytes = modarith::to_be_bytes(&N);
        assert!(Scalar::from_be_bytes(&n_bytes).is_none());
        assert_eq!(Scalar::from_be_bytes_reduced(&n_bytes), Scalar::ZERO);
    }

    #[test]
    fn inverse() {
        let a = Scalar::from_u64(0xabcdef);
        assert_eq!(a * a.invert(), Scalar::ONE);
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn zero_inverse_panics() {
        let _ = Scalar::ZERO.invert();
    }

    #[test]
    fn high_low_classification() {
        assert!(!Scalar::ONE.is_high());
        assert!(!Scalar(HALF_N).is_high());
        assert!((Scalar(HALF_N) + Scalar::ONE).is_high());
        assert!((-Scalar::ONE).is_high());
    }

    #[test]
    fn negation_cancels() {
        let a = Scalar::from_u64(777);
        assert_eq!(a + (-a), Scalar::ZERO);
    }

    #[test]
    fn nibble_extraction() {
        let s = Scalar::from_u64(0xabcd);
        assert_eq!(s.nibble(0), 0xd);
        assert_eq!(s.nibble(1), 0xc);
        assert_eq!(s.nibble(2), 0xb);
        assert_eq!(s.nibble(3), 0xa);
        assert_eq!(s.nibble(4), 0);
        assert!(s.bit(0));
        assert!(!s.bit(1));
    }

    #[test]
    fn u256_reduction_roundtrip() {
        let v = U256::from(123456789u64);
        assert_eq!(Scalar::from_u256_reduced(v), Scalar::from_u64(123456789));
    }
}
