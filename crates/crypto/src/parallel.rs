//! Scoped-thread fan-out for independent crypto work.
//!
//! Every PARP verification site runs several **independent** ECDSA
//! operations: a server validates a request signature and a payment
//! signature, a gateway cross-checks `k` quorum responses, a batch
//! verifier judges N items. These helpers spread that work across
//! `std::thread::scope` workers — the same per-batch worker idiom as
//! `parp-runtime`'s sharded multiproof executor: workers live exactly as
//! long as the call, nothing persists, and on a single-core host (or for
//! tiny inputs) everything runs inline so the fan-out can never cost more
//! than the sequential loop it replaces.

use crate::ecdsa::{recover_address, Signature, SignatureError};
use parp_primitives::{Address, H256};

/// Worker-thread budget: available parallelism, capped so a wide quorum
/// cannot oversubscribe the host.
fn thread_budget() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Runs two independent closures, concurrently when a second core is
/// available, inline otherwise.
pub fn par_join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if thread_budget() < 2 {
        return (fa(), fb());
    }
    std::thread::scope(|scope| {
        let handle = scope.spawn(fa);
        let b = fb();
        (handle.join().expect("par_join worker panicked"), b)
    })
}

/// Maps `f` over `items`, fanning out across scoped workers when the
/// host has spare cores and the input is big enough to amortize the
/// spawns. Results come back in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread_budget().min(items.len());
    if workers < 2 {
        return items.iter().map(f).collect();
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    // Interleaved assignment (worker w takes items w, w+workers, …):
    // balanced without measuring per-item cost.
    let mut chunks: Vec<Vec<(usize, R)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        chunks = handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect();
    });
    for chunk in chunks {
        for (i, r) in chunk {
            results[i] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every index assigned to exactly one worker"))
        .collect()
}

/// Recovers the signing addresses of many independent `(digest,
/// signature)` pairs, in input order, across scoped workers — the batch
/// analogue of [`recover_address`] used by the batch-verification and
/// quorum paths.
pub fn recover_addresses_parallel(
    items: &[(H256, Signature)],
) -> Vec<Result<Address, SignatureError>> {
    par_map(items, |(digest, signature)| {
        recover_address(digest, signature)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keccak::keccak256;
    use crate::{sign, SecretKey};

    #[test]
    fn par_join_runs_both() {
        let (a, b) = par_join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        assert_eq!(
            par_map(&items, |x| x * 3),
            items.iter().map(|x| x * 3).collect::<Vec<_>>()
        );
        assert!(par_map(&items[..0], |x| x * 3).is_empty());
    }

    #[test]
    fn batch_recovery_matches_sequential() {
        let pairs: Vec<(H256, Signature)> = (0..24u8)
            .map(|i| {
                let key = SecretKey::from_seed(&[i]);
                let digest = keccak256(&[i, i]);
                (digest, sign(&key, &digest))
            })
            .collect();
        let parallel = recover_addresses_parallel(&pairs);
        for (i, result) in parallel.iter().enumerate() {
            let key = SecretKey::from_seed(&[i as u8]);
            assert_eq!(result.as_ref().ok(), Some(&key.address()));
        }
    }
}
