//! Arithmetic in the secp256k1 base field `F_p`,
//! `p = 2^256 - 2^32 - 977`.

use crate::modarith::{self, Limbs};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// The field prime `p` as little-endian limbs.
pub(crate) const P: Limbs = [
    0xffff_fffe_ffff_fc2f,
    0xffff_ffff_ffff_ffff,
    0xffff_ffff_ffff_ffff,
    0xffff_ffff_ffff_ffff,
];

/// `2^256 - p = 2^32 + 977 = 0x1000003d1`.
const D: Limbs = [0x1_0000_03d1, 0, 0, 0];

/// An element of the secp256k1 base field, always kept reduced below `p`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldElement(Limbs);

impl fmt::Debug for FieldElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FieldElement(0x{})",
            parp_primitives::to_hex(&self.to_be_bytes())
        )
    }
}

impl FieldElement {
    /// The additive identity.
    pub const ZERO: FieldElement = FieldElement([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: FieldElement = FieldElement([1, 0, 0, 0]);

    /// Curve constant `b = 7` in `y^2 = x^3 + 7`.
    pub const B: FieldElement = FieldElement([7, 0, 0, 0]);

    /// Builds an element from a small integer.
    pub fn from_u64(v: u64) -> Self {
        FieldElement([v, 0, 0, 0])
    }

    /// Parses 32 big-endian bytes; returns `None` when the value is >= `p`.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Option<Self> {
        let limbs = modarith::from_be_bytes(bytes);
        if modarith::gte(&limbs, &P) {
            None
        } else {
            Some(FieldElement(limbs))
        }
    }

    /// Parses 32 big-endian bytes, reducing modulo `p` if necessary.
    pub fn from_be_bytes_reduced(bytes: &[u8; 32]) -> Self {
        let limbs = modarith::from_be_bytes(bytes);
        let wide = [limbs[0], limbs[1], limbs[2], limbs[3], 0, 0, 0, 0];
        FieldElement(modarith::reduce_wide(wide, &D, &P))
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        modarith::to_be_bytes(&self.0)
    }

    /// Returns `true` for the additive identity.
    pub fn is_zero(self) -> bool {
        modarith::is_zero(&self.0)
    }

    /// Returns `true` when the canonical representative is odd.
    pub fn is_odd(self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Squares the element (dedicated squaring: ~40% fewer wide
    /// multiplications than a general multiply).
    pub fn square(self) -> Self {
        FieldElement(modarith::sqr_mod_d1(&self.0, D[0], &P))
    }

    /// Multiplicative inverse, via the binary extended Euclidean
    /// algorithm (~5× faster than the former Fermat ladder).
    ///
    /// # Panics
    ///
    /// Panics when `self` is zero.
    pub fn invert(self) -> Self {
        assert!(!self.is_zero(), "inverse of zero field element");
        FieldElement(modarith::inv_mod_binary(&self.0, &P))
    }

    /// Inverts every non-zero element of `elems` in place with one shared
    /// field inversion (Montgomery's batch-inversion trick): N elements
    /// cost 3(N−1) multiplications plus a single [`FieldElement::invert`].
    /// Zero elements are left as zero (they have no inverse), matching
    /// the behaviour of skipping them in a per-element loop.
    pub fn batch_invert(elems: &mut [FieldElement]) {
        // Prefix products over the non-zero elements.
        let mut prefix = Vec::with_capacity(elems.len());
        let mut acc = FieldElement::ONE;
        for e in elems.iter() {
            prefix.push(acc);
            if !e.is_zero() {
                acc = acc * *e;
            }
        }
        let mut inv_acc = acc.invert();
        for (e, pre) in elems.iter_mut().zip(prefix).rev() {
            if e.is_zero() {
                continue;
            }
            let inv_e = inv_acc * pre;
            inv_acc = inv_acc * *e;
            *e = inv_e;
        }
    }

    /// Square root, if one exists.
    ///
    /// Since `p ≡ 3 (mod 4)`, the candidate root is `self^((p+1)/4)`;
    /// the result is checked and `None` is returned for non-residues.
    /// The exponentiation uses 4-bit sliding windows — the exponent has
    /// ~250 set bits, so windowing removes ~200 multiplications.
    pub fn sqrt(self) -> Option<Self> {
        // (p + 1) / 4
        const EXP: Limbs = [
            0xffff_ffff_bfff_ff0c,
            0xffff_ffff_ffff_ffff,
            0xffff_ffff_ffff_ffff,
            0x3fff_ffff_ffff_ffff,
        ];
        let candidate = FieldElement(modarith::pow_mod_window(&self.0, &EXP, &D, &P));
        if candidate.square() == self {
            Some(candidate)
        } else {
            None
        }
    }
}

impl Add for FieldElement {
    type Output = FieldElement;

    fn add(self, rhs: FieldElement) -> FieldElement {
        FieldElement(modarith::add_mod(&self.0, &rhs.0, &P))
    }
}

impl Sub for FieldElement {
    type Output = FieldElement;

    fn sub(self, rhs: FieldElement) -> FieldElement {
        FieldElement(modarith::sub_mod(&self.0, &rhs.0, &P))
    }
}

impl Mul for FieldElement {
    type Output = FieldElement;

    fn mul(self, rhs: FieldElement) -> FieldElement {
        // The field's fold constant fits one limb, so the straight-line
        // single-limb reduction applies (the generic loop stays available
        // for the scalar modulus and the retained baseline).
        FieldElement(modarith::mul_mod_d1(&self.0, &rhs.0, D[0], &P))
    }
}

impl Neg for FieldElement {
    type Output = FieldElement;

    fn neg(self) -> FieldElement {
        FieldElement::ZERO - self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(v: u64) -> FieldElement {
        FieldElement::from_u64(v)
    }

    #[test]
    fn additive_identities() {
        let a = fe(12345);
        assert_eq!(a + FieldElement::ZERO, a);
        assert_eq!(a - a, FieldElement::ZERO);
        assert_eq!(a + (-a), FieldElement::ZERO);
    }

    #[test]
    fn p_minus_one_plus_one_wraps() {
        let p_minus_one = {
            let mut bytes = modarith::to_be_bytes(&P);
            bytes[31] -= 1; // p ends in 0x2f so no borrow
            FieldElement::from_be_bytes(&bytes).unwrap()
        };
        assert_eq!(p_minus_one + FieldElement::ONE, FieldElement::ZERO);
    }

    #[test]
    fn rejects_values_above_p() {
        let bytes = [0xffu8; 32];
        assert!(FieldElement::from_be_bytes(&bytes).is_none());
        // Reduced parse folds it below p instead.
        let reduced = FieldElement::from_be_bytes_reduced(&bytes);
        assert!(!reduced.is_zero());
    }

    #[test]
    fn inverse() {
        let a = fe(0xdeadbeef);
        assert_eq!(a * a.invert(), FieldElement::ONE);
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn zero_has_no_inverse() {
        let _ = FieldElement::ZERO.invert();
    }

    #[test]
    fn sqrt_of_square() {
        let a = fe(98765);
        let root = a.square().sqrt().expect("square is a residue");
        assert!(root == a || root == -a);
    }

    #[test]
    fn sqrt_of_non_residue_is_none() {
        // 5 is a known quadratic non-residue mod p (p ≡ 1 mod 5 check not
        // needed: verified empirically against the curve).
        let five = fe(5);
        if let Some(root) = five.sqrt() {
            assert_eq!(root.square(), five);
        } else {
            // expected branch
        }
        // 7 = B is a residue iff G-style points exist with x=0; y^2 = 7.
        // Just assert sqrt is self-consistent for a few small values.
        for v in 1..20u64 {
            if let Some(root) = fe(v).sqrt() {
                assert_eq!(root.square(), fe(v), "value {v}");
            }
        }
    }

    #[test]
    fn parity() {
        assert!(fe(3).is_odd());
        assert!(!fe(4).is_odd());
    }

    #[test]
    fn byte_roundtrip() {
        let a = fe(0x0123_4567_89ab_cdef);
        assert_eq!(FieldElement::from_be_bytes(&a.to_be_bytes()), Some(a));
    }
}
