//! Keccak-256 as used by Ethereum.
//!
//! This is the *original* Keccak submission (domain/padding byte `0x01`),
//! not the later FIPS-202 SHA3-256 (`0x06`). Ethereum block hashes, trie
//! node hashes, transaction hashes and address derivation all use this
//! variant.

use parp_primitives::H256;

const ROUNDS: usize = 24;
/// Sponge rate for a 256-bit capacity: 1600 - 2*256 = 1088 bits = 136 bytes.
const RATE: usize = 136;

const ROUND_CONSTANTS: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets for the rho step, indexed `[x][y]` flattened as `x + 5y`.
const ROTATION: [u32; 25] = [
    0, 1, 62, 28, 27, //
    36, 44, 6, 55, 20, //
    3, 10, 43, 25, 39, //
    41, 45, 15, 21, 8, //
    18, 2, 61, 56, 14,
];

fn keccak_f1600(state: &mut [u64; 25]) {
    for &rc in &ROUND_CONSTANTS {
        // theta
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // rho + pi
        let mut b = [0u64; 25];
        for x in 0..5 {
            for y in 0..5 {
                // B[y, 2x+3y] = rot(A[x, y], r[x, y])
                let target = y + 5 * ((2 * x + 3 * y) % 5);
                b[target] = state[x + 5 * y].rotate_left(ROTATION[x + 5 * y]);
            }
        }
        // chi
        for y in 0..5 {
            for x in 0..5 {
                state[x + 5 * y] =
                    b[x + 5 * y] ^ (!b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
            }
        }
        // iota
        state[0] ^= rc;
    }
}

/// XORs one rate-sized block into the sponge state. `block` must be
/// exactly [`RATE`] bytes; reading lanes straight off the input slice
/// avoids the buffer copy the incremental path pays per block.
fn xor_block(state: &mut [u64; 25], block: &[u8]) {
    debug_assert_eq!(block.len(), RATE);
    for (lane, chunk) in state.iter_mut().zip(block.chunks_exact(8)) {
        *lane ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }
}

/// Absorbs a complete message (including padding) into `state`.
fn absorb_all(state: &mut [u64; 25], data: &[u8]) {
    let mut chunks = data.chunks_exact(RATE);
    for block in chunks.by_ref() {
        xor_block(state, block);
        keccak_f1600(state);
    }
    // Original Keccak multi-rate padding: 0x01 .. 0x80 (0x81 if one byte).
    let rem = chunks.remainder();
    let mut last = [0u8; RATE];
    last[..rem.len()].copy_from_slice(rem);
    last[rem.len()] ^= 0x01;
    last[RATE - 1] ^= 0x80;
    xor_block(state, &last);
    keccak_f1600(state);
}

/// Squeezes the 32-byte digest out of an absorbed state.
fn squeeze(state: &[u64; 25]) -> H256 {
    let mut out = [0u8; 32];
    for i in 0..4 {
        out[i * 8..(i + 1) * 8].copy_from_slice(&state[i].to_le_bytes());
    }
    H256::new(out)
}

/// Incremental Keccak-256 hasher.
///
/// # Examples
///
/// ```
/// use parp_crypto::Keccak256;
///
/// let mut hasher = Keccak256::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// assert_eq!(hasher.finalize(), parp_crypto::keccak256(b"hello world"));
/// ```
#[derive(Clone)]
pub struct Keccak256 {
    state: [u64; 25],
    buffer: [u8; RATE],
    buffered: usize,
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Keccak256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Keccak256")
            .field("buffered", &self.buffered)
            .finish_non_exhaustive()
    }
}

impl Keccak256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Keccak256 {
            state: [0u64; 25],
            buffer: [0u8; RATE],
            buffered: 0,
        }
    }

    /// Absorbs `data` into the sponge.
    pub fn update(&mut self, data: &[u8]) {
        let mut input = data;
        if self.buffered > 0 {
            let take = (RATE - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == RATE {
                let block = self.buffer;
                self.absorb_block(&block);
                self.buffered = 0;
            }
        }
        while input.len() >= RATE {
            let (block, rest) = input.split_at(RATE);
            xor_block(&mut self.state, block);
            keccak_f1600(&mut self.state);
            input = rest;
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    fn absorb_block(&mut self, block: &[u8; RATE]) {
        xor_block(&mut self.state, block);
        keccak_f1600(&mut self.state);
    }

    /// Pads, squeezes and returns the 32-byte digest.
    pub fn finalize(mut self) -> H256 {
        // Original Keccak multi-rate padding: 0x01 .. 0x80 (0x81 if one byte).
        let mut block = [0u8; RATE];
        block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
        block[self.buffered] ^= 0x01;
        block[RATE - 1] ^= 0x80;
        self.absorb_block(&block);
        squeeze(&self.state)
    }
}

/// One-shot Keccak-256.
///
/// # Examples
///
/// ```
/// let digest = parp_crypto::keccak256(b"");
/// assert_eq!(
///     digest.to_string(),
///     "0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
/// );
/// ```
pub fn keccak256(data: &[u8]) -> H256 {
    // One-shot absorb: full blocks are XORed straight off `data`, skipping
    // the incremental hasher's per-block buffer copies.
    let mut state = [0u64; 25];
    absorb_all(&mut state, data);
    squeeze(&state)
}

/// Keccak-256 over many independent inputs in one call.
///
/// The hot paths that hash whole levels of trie node encodings (the
/// frozen-trie freeze pass) hand the hasher every encoding at once
/// instead of paying a hasher setup per node. Each digest equals
/// [`keccak256`] of the corresponding input; the batch shape is what a
/// future multi-lane implementation accelerates without callers
/// changing.
///
/// # Examples
///
/// ```
/// use parp_crypto::{keccak256, keccak256_batch};
///
/// let digests = keccak256_batch(&[b"abc".as_slice(), b"".as_slice()]);
/// assert_eq!(digests, vec![keccak256(b"abc"), keccak256(b"")]);
/// ```
pub fn keccak256_batch(inputs: &[&[u8]]) -> Vec<H256> {
    let mut out = Vec::with_capacity(inputs.len());
    for input in inputs {
        let mut state = [0u64; 25];
        absorb_all(&mut state, input);
        out.push(squeeze(&state));
    }
    out
}

/// Keccak-256 over the concatenation of several byte slices, without
/// intermediate allocation.
pub fn keccak256_concat(parts: &[&[u8]]) -> H256 {
    let mut hasher = Keccak256::new();
    for part in parts {
        hasher.update(part);
    }
    hasher.finalize()
}

/// HMAC instantiated with Keccak-256 (block size 136 bytes).
///
/// Used for deterministic ECDSA nonce derivation (RFC 6979 with the hash
/// swapped for Keccak-256, which this prototype standardizes on).
pub fn hmac_keccak256(key: &[u8], parts: &[&[u8]]) -> H256 {
    let mut key_block = [0u8; RATE];
    if key.len() > RATE {
        let digest = keccak256(key);
        key_block[..32].copy_from_slice(digest.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; RATE];
    let mut opad = [0x5cu8; RATE];
    for i in 0..RATE {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Keccak256::new();
    inner.update(&ipad);
    for part in parts {
        inner.update(part);
    }
    let inner_digest = inner.finalize();
    let mut outer = Keccak256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_digest(data: &[u8]) -> String {
        keccak256(data).to_string()
    }

    #[test]
    fn empty_string_vector() {
        // Canonical Ethereum empty-keccak constant.
        assert_eq!(
            hex_digest(b""),
            "0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex_digest(b"abc"),
            "0x4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn hello_vector() {
        // keccak256("hello") — widely published Ethereum example.
        assert_eq!(
            hex_digest(b"hello"),
            "0x1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8"
        );
    }

    #[test]
    fn empty_rlp_list_vector() {
        // keccak256(rlp([])) = keccak256(0xc0): the empty ommers hash in
        // every Ethereum block header.
        assert_eq!(
            hex_digest(&[0xc0]),
            "0x1dcc4de8dec75d7aab85b567b6ccd41ad312451b948a7413f0a142fd40d49347"
        );
    }

    #[test]
    fn rate_boundary_inputs() {
        // Exercise padding at and around the 136-byte rate boundary.
        for len in [135usize, 136, 137, 271, 272, 273] {
            let data = vec![0xabu8; len];
            let one_shot = keccak256(&data);
            let mut incremental = Keccak256::new();
            for chunk in data.chunks(17) {
                incremental.update(chunk);
            }
            assert_eq!(incremental.finalize(), one_shot, "length {len}");
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).collect();
        for split in [0usize, 1, 63, 128, 255, 256] {
            let mut hasher = Keccak256::new();
            hasher.update(&data[..split]);
            hasher.update(&data[split..]);
            assert_eq!(hasher.finalize(), keccak256(&data));
        }
    }

    #[test]
    fn batch_matches_oneshot() {
        let inputs: Vec<Vec<u8>> = (0..10usize)
            .map(|i| vec![i as u8; i * 41]) // crosses the rate boundary
            .collect();
        let slices: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
        let digests = keccak256_batch(&slices);
        for (input, digest) in inputs.iter().zip(&digests) {
            assert_eq!(*digest, keccak256(input));
        }
        assert!(keccak256_batch(&[]).is_empty());
    }

    #[test]
    fn concat_matches_buffer() {
        assert_eq!(
            keccak256_concat(&[b"foo", b"bar", b""]),
            keccak256(b"foobar")
        );
    }

    #[test]
    fn hmac_is_deterministic_and_key_sensitive() {
        let a = hmac_keccak256(b"key", &[b"message"]);
        let b = hmac_keccak256(b"key", &[b"mess", b"age"]);
        assert_eq!(a, b);
        assert_ne!(a, hmac_keccak256(b"other", &[b"message"]));
        assert_ne!(a, hmac_keccak256(b"key", &[b"messagf"]));
    }

    #[test]
    fn hmac_long_key_is_hashed() {
        let long_key = vec![7u8; 200];
        let digest = hmac_keccak256(&long_key, &[b"x"]);
        let hashed_key = keccak256(&long_key);
        assert_eq!(digest, hmac_keccak256(hashed_key.as_bytes(), &[b"x"]));
    }
}
