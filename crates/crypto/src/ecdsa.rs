//! ECDSA over secp256k1 with public-key recovery, Ethereum-style.
//!
//! Signatures are 65 bytes `r || s || v` where `v ∈ {0, 1}` is the recovery
//! id (the parity of the nonce point's y-coordinate, adjusted when `s` is
//! normalized to the low half of the order, as required by Ethereum's
//! EIP-2 malleability rule).
//!
//! Nonces are deterministic, derived with an RFC-6979-style HMAC DRBG
//! instantiated with Keccak-256 (see [`crate::hmac_keccak256`]). This keeps
//! the whole stack self-contained and reproducible; it intentionally does
//! not match the HMAC-SHA256 nonces other libraries produce — signatures
//! remain verifiable by any standards-compliant verifier.

use crate::field::FieldElement;
use crate::keccak::hmac_keccak256;
use crate::keys::{PublicKey, SecretKey};
use crate::point::{double_scalar_mul, mul_generator, AffinePoint};
use crate::scalar::Scalar;
use parp_primitives::{Address, H256};
use std::error::Error;
use std::fmt;

/// A recoverable ECDSA signature.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    r: [u8; 32],
    s: [u8; 32],
    v: u8,
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature(r=0x{}, s=0x{}, v={})",
            parp_primitives::to_hex(&self.r),
            parp_primitives::to_hex(&self.s),
            self.v
        )
    }
}

/// Errors produced when parsing or applying a signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureError {
    /// `r` or `s` is zero or not below the group order, or `s` is in the
    /// high half of the order (EIP-2).
    InvalidComponent,
    /// The recovery id is not 0 or 1.
    InvalidRecoveryId,
    /// Public-key recovery produced no valid point.
    RecoveryFailed,
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::InvalidComponent => {
                write!(f, "signature component out of range or non-canonical")
            }
            SignatureError::InvalidRecoveryId => write!(f, "recovery id must be 0 or 1"),
            SignatureError::RecoveryFailed => write!(f, "public key recovery failed"),
        }
    }
}

impl Error for SignatureError {}

impl Signature {
    /// Byte length of the serialized form.
    pub const LEN: usize = 65;

    /// Serializes as 65 bytes `r || s || v`.
    pub fn to_bytes(&self) -> [u8; 65] {
        let mut out = [0u8; 65];
        out[..32].copy_from_slice(&self.r);
        out[32..64].copy_from_slice(&self.s);
        out[64] = self.v;
        out
    }

    /// Parses a 65-byte `r || s || v` encoding.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range `r`/`s`, high-`s` values and recovery ids other
    /// than 0/1.
    pub fn from_bytes(bytes: &[u8; 65]) -> Result<Self, SignatureError> {
        let mut r = [0u8; 32];
        let mut s = [0u8; 32];
        r.copy_from_slice(&bytes[..32]);
        s.copy_from_slice(&bytes[32..64]);
        let v = bytes[64];
        if v > 1 {
            return Err(SignatureError::InvalidRecoveryId);
        }
        let r_scalar = Scalar::from_be_bytes(&r).ok_or(SignatureError::InvalidComponent)?;
        let s_scalar = Scalar::from_be_bytes(&s).ok_or(SignatureError::InvalidComponent)?;
        if r_scalar.is_zero() || s_scalar.is_zero() || s_scalar.is_high() {
            return Err(SignatureError::InvalidComponent);
        }
        Ok(Signature { r, s, v })
    }

    /// The recovery id (0 or 1).
    pub fn v(&self) -> u8 {
        self.v
    }

    /// The `r` component as big-endian bytes.
    pub fn r_bytes(&self) -> &[u8; 32] {
        &self.r
    }

    /// The `s` component as big-endian bytes.
    pub fn s_bytes(&self) -> &[u8; 32] {
        &self.s
    }

    fn r_scalar(&self) -> Scalar {
        Scalar::from_be_bytes(&self.r).expect("validated at construction")
    }

    fn s_scalar(&self) -> Scalar {
        Scalar::from_be_bytes(&self.s).expect("validated at construction")
    }
}

/// Derives a deterministic nonce for `(secret, digest)` following the
/// RFC 6979 HMAC-DRBG construction with Keccak-256. Shared with
/// [`crate::baseline`] so the retained reference produces byte-identical
/// signatures (the derivation itself is untouched by the hot-path work).
pub(crate) fn deterministic_nonce(secret: &SecretKey, digest: &H256, extra: u32) -> Scalar {
    let sk_bytes = secret.to_bytes();
    let mut v = [0x01u8; 32];
    let mut k = [0x00u8; 32];
    let extra_bytes = extra.to_be_bytes();
    k = hmac_keccak256(
        &k,
        &[&v, &[0x00], &sk_bytes, digest.as_bytes(), &extra_bytes],
    )
    .into_inner();
    v = hmac_keccak256(&k, &[&v]).into_inner();
    k = hmac_keccak256(
        &k,
        &[&v, &[0x01], &sk_bytes, digest.as_bytes(), &extra_bytes],
    )
    .into_inner();
    v = hmac_keccak256(&k, &[&v]).into_inner();
    loop {
        v = hmac_keccak256(&k, &[&v]).into_inner();
        if let Some(candidate) = Scalar::from_be_bytes(&v) {
            if !candidate.is_zero() {
                return candidate;
            }
        }
        k = hmac_keccak256(&k, &[&v, &[0x00]]).into_inner();
        v = hmac_keccak256(&k, &[&v]).into_inner();
    }
}

/// Signs a 32-byte message digest, producing a recoverable low-`s`
/// signature.
///
/// # Examples
///
/// ```
/// use parp_crypto::{keccak256, recover_address, sign, SecretKey};
///
/// let sk = SecretKey::from_seed(b"example");
/// let digest = keccak256(b"attack at dawn");
/// let sig = sign(&sk, &digest);
/// assert_eq!(recover_address(&digest, &sig).unwrap(), sk.address());
/// ```
pub fn sign(secret: &SecretKey, digest: &H256) -> Signature {
    let z = Scalar::from_be_bytes_reduced(&digest.into_inner());
    let d = secret.0;
    let mut extra = 0u32;
    loop {
        let k = deterministic_nonce(secret, digest, extra);
        extra = extra.wrapping_add(1);
        // Fixed-base comb: ≤32 mixed additions off the shared table
        // instead of rebuilding a 16-entry window table of G per call.
        let r_point = mul_generator(&k).to_affine();
        let (rx, ry_odd) = match r_point {
            AffinePoint::Infinity => continue,
            AffinePoint::Point { x, y } => (x, y.is_odd()),
        };
        let r = Scalar::from_be_bytes_reduced(&rx.to_be_bytes());
        if r.is_zero() {
            continue;
        }
        let mut s = k.invert() * (z + r * d);
        if s.is_zero() {
            continue;
        }
        // Recovery id: parity of R.y, plus whether r overflowed mod n
        // (ignored here: probability ~2^-127, retried instead).
        if Scalar::from_be_bytes(&rx.to_be_bytes()).is_none() {
            continue;
        }
        let mut v = ry_odd as u8;
        if s.is_high() {
            s = -s;
            v ^= 1;
        }
        return Signature {
            r: r.to_be_bytes(),
            s: s.to_be_bytes(),
            v,
        };
    }
}

/// Verifies a signature against a public key.
pub fn verify(public: &PublicKey, digest: &H256, signature: &Signature) -> bool {
    let r = signature.r_scalar();
    let s = signature.s_scalar();
    if r.is_zero() || s.is_zero() || s.is_high() {
        return false;
    }
    let z = Scalar::from_be_bytes_reduced(&digest.into_inner());
    let s_inv = s.invert();
    let u1 = z * s_inv;
    let u2 = r * s_inv;
    match double_scalar_mul(&u1, &u2, public.point()) {
        AffinePoint::Infinity => false,
        AffinePoint::Point { x, .. } => Scalar::from_be_bytes_reduced(&x.to_be_bytes()) == r,
    }
}

/// Recovers the signing public key from a digest and signature.
///
/// # Errors
///
/// Returns [`SignatureError::RecoveryFailed`] when `r` does not correspond
/// to a curve point or the recovered point is infinity.
pub fn recover(digest: &H256, signature: &Signature) -> Result<PublicKey, SignatureError> {
    let r = signature.r_scalar();
    let s = signature.s_scalar();
    // R has x = r (the r >= p - n edge case is never produced by `sign`).
    let x = FieldElement::from_be_bytes(&signature.r).ok_or(SignatureError::RecoveryFailed)?;
    let r_point = AffinePoint::from_x(x, signature.v == 1).ok_or(SignatureError::RecoveryFailed)?;
    let z = Scalar::from_be_bytes_reduced(&digest.into_inner());
    let r_inv = r.invert();
    // Q = r^{-1} (s R - z G) = (-z r^{-1}) G + (s r^{-1}) R
    let u1 = -(z * r_inv);
    let u2 = s * r_inv;
    match double_scalar_mul(&u1, &u2, &r_point) {
        AffinePoint::Infinity => Err(SignatureError::RecoveryFailed),
        point => Ok(PublicKey(point)),
    }
}

/// Recovers the signer's address, the operation Ethereum's `ecrecover`
/// precompile performs.
///
/// # Errors
///
/// Propagates [`SignatureError::RecoveryFailed`] from [`recover`].
pub fn recover_address(digest: &H256, signature: &Signature) -> Result<Address, SignatureError> {
    recover(digest, signature).map(|pk| pk.address())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keccak::keccak256;

    fn sk(seed: &str) -> SecretKey {
        SecretKey::from_seed(seed.as_bytes())
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = sk("alice");
        let digest = keccak256(b"message");
        let sig = sign(&key, &digest);
        assert!(verify(&key.public_key(), &digest, &sig));
    }

    #[test]
    fn signature_is_deterministic() {
        let key = sk("alice");
        let digest = keccak256(b"message");
        assert_eq!(sign(&key, &digest), sign(&key, &digest));
    }

    #[test]
    fn different_messages_different_signatures() {
        let key = sk("alice");
        let s1 = sign(&key, &keccak256(b"a"));
        let s2 = sign(&key, &keccak256(b"b"));
        assert_ne!(s1, s2);
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let digest = keccak256(b"message");
        let sig = sign(&sk("alice"), &digest);
        assert!(!verify(&sk("bob").public_key(), &digest, &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let key = sk("alice");
        let sig = sign(&key, &keccak256(b"message"));
        assert!(!verify(&key.public_key(), &keccak256(b"other"), &sig));
    }

    #[test]
    fn recover_returns_signer() {
        let key = sk("carol");
        let digest = keccak256(b"recover me");
        let sig = sign(&key, &digest);
        let recovered = recover(&digest, &sig).unwrap();
        assert_eq!(recovered, key.public_key());
        assert_eq!(recover_address(&digest, &sig).unwrap(), key.address());
    }

    #[test]
    fn recover_with_flipped_v_gives_other_key() {
        let key = sk("carol");
        let digest = keccak256(b"recover me");
        let sig = sign(&key, &digest);
        let mut bytes = sig.to_bytes();
        bytes[64] ^= 1;
        let flipped = Signature::from_bytes(&bytes).unwrap();
        let recovered = recover_address(&digest, &flipped);
        assert_ne!(recovered.ok(), Some(key.address()));
    }

    #[test]
    fn signatures_are_low_s() {
        for msg in [&b"one"[..], b"two", b"three", b"four"] {
            let sig = sign(&sk("dave"), &keccak256(msg));
            let s = Scalar::from_be_bytes(sig.s_bytes()).unwrap();
            assert!(!s.is_high());
        }
    }

    #[test]
    fn high_s_rejected_on_parse() {
        let key = sk("eve");
        let digest = keccak256(b"malleability");
        let sig = sign(&key, &digest);
        // Forge the high-s twin: s' = n - s.
        let s = Scalar::from_be_bytes(sig.s_bytes()).unwrap();
        let high_s = -s;
        let mut bytes = sig.to_bytes();
        bytes[32..64].copy_from_slice(&high_s.to_be_bytes());
        bytes[64] ^= 1;
        assert_eq!(
            Signature::from_bytes(&bytes),
            Err(SignatureError::InvalidComponent)
        );
    }

    #[test]
    fn bad_recovery_id_rejected() {
        let sig = sign(&sk("f"), &keccak256(b"x"));
        let mut bytes = sig.to_bytes();
        bytes[64] = 2;
        assert_eq!(
            Signature::from_bytes(&bytes),
            Err(SignatureError::InvalidRecoveryId)
        );
    }

    #[test]
    fn zero_r_rejected() {
        let mut bytes = [0u8; 65];
        bytes[63] = 1; // s = 1, r = 0
        assert_eq!(
            Signature::from_bytes(&bytes),
            Err(SignatureError::InvalidComponent)
        );
    }

    #[test]
    fn serialized_roundtrip() {
        let sig = sign(&sk("grace"), &keccak256(b"serialize"));
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(parsed, sig);
    }

    #[test]
    fn tampered_signature_fails_verification() {
        let key = sk("henry");
        let digest = keccak256(b"tamper");
        let sig = sign(&key, &digest);
        let mut bytes = sig.to_bytes();
        bytes[10] ^= 0xff;
        if let Ok(tampered) = Signature::from_bytes(&bytes) {
            assert!(!verify(&key.public_key(), &digest, &tampered));
        }
    }

    #[test]
    fn many_keys_roundtrip() {
        for i in 0..8u8 {
            let key = SecretKey::from_seed(&[i]);
            let digest = keccak256(&[i, i, i]);
            let sig = sign(&key, &digest);
            assert!(verify(&key.public_key(), &digest, &sig), "key {i}");
            assert_eq!(recover_address(&digest, &sig).unwrap(), key.address());
        }
    }
}
