//! Shared 256-bit modular arithmetic for moduli of the form `2^256 - d`.
//!
//! Both secp256k1 moduli have this shape: the field prime
//! `p = 2^256 - 0x1000003d1` and the group order
//! `n = 2^256 - 0x14551231950b75fc4402da1732fc9bebf`. Reduction therefore
//! folds the high 256 bits back in as `hi * d + lo` until the value fits in
//! 256 bits, followed by at most one conditional subtraction.
//!
//! Values are four little-endian `u64` limbs. Nothing here is constant-time;
//! this is a research prototype, not a production signer (see crate docs).

pub(crate) type Limbs = [u64; 4];

/// Adds `a + b`, returning the 4-limb sum and the carry-out.
pub(crate) fn add(a: &Limbs, b: &Limbs) -> (Limbs, bool) {
    let mut out = [0u64; 4];
    let mut carry = false;
    for i in 0..4 {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry as u64);
        out[i] = s2;
        carry = c1 | c2;
    }
    (out, carry)
}

/// Subtracts `a - b`, returning the 4-limb difference and the borrow-out.
pub(crate) fn sub(a: &Limbs, b: &Limbs) -> (Limbs, bool) {
    let mut out = [0u64; 4];
    let mut borrow = false;
    for i in 0..4 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow as u64);
        out[i] = d2;
        borrow = b1 | b2;
    }
    (out, borrow)
}

/// Compares two 4-limb values.
pub(crate) fn gte(a: &Limbs, b: &Limbs) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

pub(crate) fn is_zero(a: &Limbs) -> bool {
    a.iter().all(|&l| l == 0)
}

/// Schoolbook 4x4-limb multiplication into an 8-limb product.
pub(crate) fn mul_wide(a: &Limbs, b: &Limbs) -> [u64; 8] {
    let mut out = [0u64; 8];
    for i in 0..4 {
        let mut carry = 0u64;
        for j in 0..4 {
            let wide = a[i] as u128 * b[j] as u128 + out[i + j] as u128 + carry as u128;
            out[i + j] = wide as u64;
            carry = (wide >> 64) as u64;
        }
        out[i + 4] = carry;
    }
    out
}

/// Reduces an 8-limb value modulo `m = 2^256 - d`.
///
/// `d` must be at most 192 bits (three limbs) so the fold product fits in
/// eight limbs — true for both secp256k1 moduli.
pub(crate) fn reduce_wide(mut wide: [u64; 8], d: &Limbs, m: &Limbs) -> Limbs {
    debug_assert_eq!(d[3], 0, "fold constant must fit in three limbs");
    loop {
        let hi = [wide[4], wide[5], wide[6], wide[7]];
        if is_zero(&hi) {
            break;
        }
        let lo = [wide[0], wide[1], wide[2], wide[3]];
        // hi * d: hi has <=4 limbs, d has <=3 limbs, product <= 2^(256+192)
        // which fits in 7 limbs; adding lo can carry into limb 7.
        let mut folded = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u64;
            for j in 0..3 {
                let wide_prod =
                    hi[i] as u128 * d[j] as u128 + folded[i + j] as u128 + carry as u128;
                folded[i + j] = wide_prod as u64;
                carry = (wide_prod >> 64) as u64;
            }
            // Propagate the final carry.
            let mut k = i + 3;
            while carry != 0 {
                let (sum, c) = folded[k].overflowing_add(carry);
                folded[k] = sum;
                carry = c as u64;
                k += 1;
            }
        }
        // folded += lo
        let mut carry = 0u64;
        for i in 0..4 {
            let (s1, c1) = folded[i].overflowing_add(lo[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            folded[i] = s2;
            carry = (c1 | c2) as u64;
        }
        let mut k = 4;
        while carry != 0 {
            let (sum, c) = folded[k].overflowing_add(carry);
            folded[k] = sum;
            carry = c as u64;
            k += 1;
        }
        wide = folded;
    }
    let mut out = [wide[0], wide[1], wide[2], wide[3]];
    while gte(&out, m) {
        out = sub(&out, m).0;
    }
    out
}

/// Modular multiplication for `m = 2^256 - d`.
pub(crate) fn mul_mod(a: &Limbs, b: &Limbs, d: &Limbs, m: &Limbs) -> Limbs {
    reduce_wide(mul_wide(a, b), d, m)
}

/// Modular addition; inputs must already be `< m`.
pub(crate) fn add_mod(a: &Limbs, b: &Limbs, m: &Limbs) -> Limbs {
    let (sum, carry) = add(a, b);
    if carry || gte(&sum, m) {
        sub(&sum, m).0
    } else {
        sum
    }
}

/// Modular subtraction; inputs must already be `< m`.
pub(crate) fn sub_mod(a: &Limbs, b: &Limbs, m: &Limbs) -> Limbs {
    let (diff, borrow) = sub(a, b);
    if borrow {
        add(&diff, m).0
    } else {
        diff
    }
}

/// Modular exponentiation by square-and-multiply (MSB first).
pub(crate) fn pow_mod(base: &Limbs, exp: &Limbs, d: &Limbs, m: &Limbs) -> Limbs {
    let mut result = [1u64, 0, 0, 0];
    let mut started = false;
    for i in (0..256).rev() {
        if started {
            result = mul_mod(&result, &result, d, m);
        }
        if (exp[i / 64] >> (i % 64)) & 1 == 1 {
            if started {
                result = mul_mod(&result, base, d, m);
            } else {
                result = *base;
                started = true;
            }
        }
    }
    if started {
        result
    } else {
        [1, 0, 0, 0]
    }
}

/// Modular inverse via Fermat's little theorem (`m` must be prime).
pub(crate) fn inv_mod(a: &Limbs, d: &Limbs, m: &Limbs) -> Limbs {
    // exp = m - 2
    let (exp, _) = sub(m, &[2, 0, 0, 0]);
    pow_mod(a, &exp, d, m)
}

/// Parses 32 big-endian bytes into limbs (no reduction).
pub(crate) fn from_be_bytes(bytes: &[u8; 32]) -> Limbs {
    let mut limbs = [0u64; 4];
    for (i, chunk) in bytes.chunks_exact(8).enumerate() {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(chunk);
        limbs[3 - i] = u64::from_be_bytes(buf);
    }
    limbs
}

/// Serializes limbs as 32 big-endian bytes.
pub(crate) fn to_be_bytes(limbs: &Limbs) -> [u8; 32] {
    let mut out = [0u8; 32];
    for i in 0..4 {
        out[i * 8..(i + 1) * 8].copy_from_slice(&limbs[3 - i].to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Small prime 2^256 - 189 is handy: d = 189.
    const D: Limbs = [189, 0, 0, 0];
    const M: Limbs = [u64::MAX - 188, u64::MAX, u64::MAX, u64::MAX];

    #[test]
    fn add_sub_roundtrip() {
        let a = [5, 6, 7, 8];
        let b = [1, 2, 3, 4];
        let (sum, carry) = add(&a, &b);
        assert!(!carry);
        assert_eq!(sub(&sum, &b), (a, false));
    }

    #[test]
    fn mul_wide_known() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let a = [u64::MAX, 0, 0, 0];
        let prod = mul_wide(&a, &a);
        assert_eq!(prod[0], 1);
        assert_eq!(prod[1], u64::MAX - 1);
        assert!(prod[2..].iter().all(|&l| l == 0));
    }

    #[test]
    fn reduce_identity_below_modulus() {
        let value = [12345, 0, 0, 0];
        let wide = [12345, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(reduce_wide(wide, &D, &M), value);
    }

    #[test]
    fn reduce_exact_modulus_is_zero() {
        let wide = [M[0], M[1], M[2], M[3], 0, 0, 0, 0];
        assert_eq!(reduce_wide(wide, &D, &M), [0, 0, 0, 0]);
    }

    #[test]
    fn two_to_256_reduces_to_d() {
        // 2^256 mod (2^256 - d) = d
        let wide = [0, 0, 0, 0, 1, 0, 0, 0];
        assert_eq!(reduce_wide(wide, &D, &M), D);
    }

    #[test]
    fn mul_mod_matches_small_numbers() {
        let a = [0xffff_ffff_ffff_ffff, 1, 0, 0];
        let b = [7, 0, 0, 0];
        // No reduction needed (fits in 256 bits, below m).
        let expected = {
            let wide = mul_wide(&a, &b);
            [wide[0], wide[1], wide[2], wide[3]]
        };
        assert_eq!(mul_mod(&a, &b, &D, &M), expected);
    }

    #[test]
    fn inverse_times_self_is_one() {
        let a = [0xdead_beef, 0xcafe, 42, 7];
        let inv = inv_mod(&a, &D, &M);
        assert_eq!(mul_mod(&a, &inv, &D, &M), [1, 0, 0, 0]);
    }

    #[test]
    fn pow_zero_is_one() {
        let a = [9, 9, 9, 9];
        assert_eq!(pow_mod(&a, &[0, 0, 0, 0], &D, &M), [1, 0, 0, 0]);
    }

    #[test]
    fn byte_roundtrip() {
        let a = [1, 2, 3, 0x0807060504030201];
        assert_eq!(from_be_bytes(&to_be_bytes(&a)), a);
    }
}
