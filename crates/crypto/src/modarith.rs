//! Shared 256-bit modular arithmetic for moduli of the form `2^256 - d`.
//!
//! Both secp256k1 moduli have this shape: the field prime
//! `p = 2^256 - 0x1000003d1` and the group order
//! `n = 2^256 - 0x14551231950b75fc4402da1732fc9bebf`. Reduction therefore
//! folds the high 256 bits back in as `hi * d + lo` until the value fits in
//! 256 bits, followed by at most one conditional subtraction.
//!
//! Hot-path variants live alongside the generic routines: a dedicated
//! squaring ([`sqr_wide`]), a single-limb fold for the field prime
//! ([`reduce_wide_d1`], `d = 0x1000003d1` fits one limb), a binary
//! extended-GCD inverse ([`inv_mod_binary`]) that replaces the ~440-mul
//! Fermat ladder, and a sliding-window exponentiation ([`pow_mod_window`])
//! that cuts the multiply count of square roots by ~4×. The generic
//! multiply/reduce stay in use for the scalar modulus (whose fold
//! constant spans three limbs); the *whole* pre-optimization routine
//! set, Fermat ladders included, lives on as the frozen reference in
//! `crate::baseline`.
//!
//! Values are four little-endian `u64` limbs. Nothing here is constant-time;
//! this is a research prototype, not a production signer (see crate docs).

pub(crate) type Limbs = [u64; 4];

/// Adds `a + b`, returning the 4-limb sum and the carry-out.
#[inline]
pub(crate) fn add(a: &Limbs, b: &Limbs) -> (Limbs, bool) {
    let mut out = [0u64; 4];
    let mut carry = false;
    for i in 0..4 {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry as u64);
        out[i] = s2;
        carry = c1 | c2;
    }
    (out, carry)
}

/// Subtracts `a - b`, returning the 4-limb difference and the borrow-out.
#[inline]
pub(crate) fn sub(a: &Limbs, b: &Limbs) -> (Limbs, bool) {
    let mut out = [0u64; 4];
    let mut borrow = false;
    for i in 0..4 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow as u64);
        out[i] = d2;
        borrow = b1 | b2;
    }
    (out, borrow)
}

/// Compares two 4-limb values.
#[inline]
pub(crate) fn gte(a: &Limbs, b: &Limbs) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

pub(crate) fn is_zero(a: &Limbs) -> bool {
    a.iter().all(|&l| l == 0)
}

/// Schoolbook 4x4-limb multiplication into an 8-limb product.
#[inline]
pub(crate) fn mul_wide(a: &Limbs, b: &Limbs) -> [u64; 8] {
    let mut out = [0u64; 8];
    for i in 0..4 {
        let mut carry = 0u64;
        for j in 0..4 {
            let wide = a[i] as u128 * b[j] as u128 + out[i + j] as u128 + carry as u128;
            out[i + j] = wide as u64;
            carry = (wide >> 64) as u64;
        }
        out[i + 4] = carry;
    }
    out
}

/// Reduces an 8-limb value modulo `m = 2^256 - d`.
///
/// `d` must be at most 192 bits (three limbs) so the fold product fits in
/// eight limbs — true for both secp256k1 moduli.
pub(crate) fn reduce_wide(mut wide: [u64; 8], d: &Limbs, m: &Limbs) -> Limbs {
    debug_assert_eq!(d[3], 0, "fold constant must fit in three limbs");
    loop {
        let hi = [wide[4], wide[5], wide[6], wide[7]];
        if is_zero(&hi) {
            break;
        }
        let lo = [wide[0], wide[1], wide[2], wide[3]];
        // hi * d: hi has <=4 limbs, d has <=3 limbs, product <= 2^(256+192)
        // which fits in 7 limbs; adding lo can carry into limb 7.
        let mut folded = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u64;
            for j in 0..3 {
                let wide_prod =
                    hi[i] as u128 * d[j] as u128 + folded[i + j] as u128 + carry as u128;
                folded[i + j] = wide_prod as u64;
                carry = (wide_prod >> 64) as u64;
            }
            // Propagate the final carry.
            let mut k = i + 3;
            while carry != 0 {
                let (sum, c) = folded[k].overflowing_add(carry);
                folded[k] = sum;
                carry = c as u64;
                k += 1;
            }
        }
        // folded += lo
        let mut carry = 0u64;
        for i in 0..4 {
            let (s1, c1) = folded[i].overflowing_add(lo[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            folded[i] = s2;
            carry = (c1 | c2) as u64;
        }
        let mut k = 4;
        while carry != 0 {
            let (sum, c) = folded[k].overflowing_add(carry);
            folded[k] = sum;
            carry = c as u64;
            k += 1;
        }
        wide = folded;
    }
    let mut out = [wide[0], wide[1], wide[2], wide[3]];
    while gte(&out, m) {
        out = sub(&out, m).0;
    }
    out
}

/// Modular multiplication for `m = 2^256 - d`.
pub(crate) fn mul_mod(a: &Limbs, b: &Limbs, d: &Limbs, m: &Limbs) -> Limbs {
    reduce_wide(mul_wide(a, b), d, m)
}

/// Modular addition; inputs must already be `< m`.
#[inline]
pub(crate) fn add_mod(a: &Limbs, b: &Limbs, m: &Limbs) -> Limbs {
    let (sum, carry) = add(a, b);
    if carry || gte(&sum, m) {
        sub(&sum, m).0
    } else {
        sum
    }
}

/// Modular subtraction; inputs must already be `< m`.
#[inline]
pub(crate) fn sub_mod(a: &Limbs, b: &Limbs, m: &Limbs) -> Limbs {
    let (diff, borrow) = sub(a, b);
    if borrow {
        add(&diff, m).0
    } else {
        diff
    }
}

/// Dedicated 4-limb squaring: computes the 16 cross products once,
/// doubles them with shifts, and adds the 4 diagonal squares — 10 wide
/// multiplications instead of [`mul_wide`]'s 16.
#[inline]
pub(crate) fn sqr_wide(a: &Limbs) -> [u64; 8] {
    // Cross terms a[i] * a[j] for i < j, accumulated at i + j.
    let mut out = [0u64; 8];
    for i in 0..4 {
        let mut carry = 0u64;
        for j in (i + 1)..4 {
            let wide = a[i] as u128 * a[j] as u128 + out[i + j] as u128 + carry as u128;
            out[i + j] = wide as u64;
            carry = (wide >> 64) as u64;
        }
        if i < 3 {
            out[i + 4] = carry;
        }
    }
    // Double the cross terms (the sum of cross terms is < 2^447, so the
    // shift cannot lose a bit out of limb 7).
    let mut carry = 0u64;
    for limb in &mut out {
        let next = *limb >> 63;
        *limb = (*limb << 1) | carry;
        carry = next;
    }
    // Add the diagonal squares.
    let mut carry = 0u64;
    for i in 0..4 {
        let sq = a[i] as u128 * a[i] as u128;
        let (s1, c1) = out[2 * i].overflowing_add(sq as u64);
        let (s1, c2) = s1.overflowing_add(carry);
        out[2 * i] = s1;
        let (s2, c3) = out[2 * i + 1].overflowing_add((sq >> 64) as u64);
        let (s2, c4) = s2.overflowing_add(c1 as u64 + c2 as u64);
        out[2 * i + 1] = s2;
        carry = c3 as u64 + c4 as u64;
    }
    out
}

/// Reduces an 8-limb value modulo `m = 2^256 - d0` where the fold
/// constant fits a **single limb** (true for the field prime,
/// `d0 = 0x1000003d1`): two straight-line folds and a conditional
/// subtraction replace the generic loop's 4×3-limb products.
#[inline]
pub(crate) fn reduce_wide_d1(wide: [u64; 8], d0: u64, m: &Limbs) -> Limbs {
    // First fold: hi * d0 + lo. hi*d0 < 2^(256+34), so the sum fits in
    // five limbs.
    let mut t = [0u64; 5];
    let mut carry = 0u64;
    for i in 0..4 {
        let w = wide[4 + i] as u128 * d0 as u128 + carry as u128;
        t[i] = w as u64;
        carry = (w >> 64) as u64;
    }
    t[4] = carry;
    let mut c = 0u64;
    for i in 0..4 {
        let (s1, c1) = t[i].overflowing_add(wide[i]);
        let (s2, c2) = s1.overflowing_add(c);
        t[i] = s2;
        c = c1 as u64 + c2 as u64;
    }
    t[4] += c; // t[4] < 2^34, cannot overflow
               // Second fold: t[4] * d0 < 2^68.
    let mut out = [t[0], t[1], t[2], t[3]];
    if t[4] != 0 {
        let w = t[4] as u128 * d0 as u128;
        let (sum, overflow) = add(&out, &[w as u64, (w >> 64) as u64, 0, 0]);
        out = sum;
        if overflow {
            // Wrapped past 2^256: 2^256 ≡ d0 (mod m), and the result is
            // now tiny, so one more add cannot wrap again.
            out = add(&out, &[d0, 0, 0, 0]).0;
        }
    }
    while gte(&out, m) {
        out = sub(&out, m).0;
    }
    out
}

/// Modular multiplication for a single-limb fold constant.
#[inline]
pub(crate) fn mul_mod_d1(a: &Limbs, b: &Limbs, d0: u64, m: &Limbs) -> Limbs {
    reduce_wide_d1(mul_wide(a, b), d0, m)
}

/// Modular squaring for a single-limb fold constant.
#[inline]
pub(crate) fn sqr_mod_d1(a: &Limbs, d0: u64, m: &Limbs) -> Limbs {
    reduce_wide_d1(sqr_wide(a), d0, m)
}

fn is_one(a: &Limbs) -> bool {
    a[0] == 1 && a[1] == 0 && a[2] == 0 && a[3] == 0
}

/// Halves a 257-bit value given as four limbs plus a carry bit.
fn shr1_with(a: &mut Limbs, carry: bool) {
    for i in 0..3 {
        a[i] = (a[i] >> 1) | (a[i + 1] << 63);
    }
    a[3] = (a[3] >> 1) | ((carry as u64) << 63);
}

/// Modular inverse by the binary extended Euclidean algorithm.
///
/// `m` must be odd (both secp256k1 moduli are) and `0 < a < m` with
/// `gcd(a, m) = 1` (guaranteed for prime `m`). Roughly 5× faster than the
/// Fermat ladder it replaces: ~380 shift/add limb operations instead
/// of ~440 full modular multiplications.
pub(crate) fn inv_mod_binary(a: &Limbs, m: &Limbs) -> Limbs {
    debug_assert!(m[0] & 1 == 1, "modulus must be odd");
    debug_assert!(!is_zero(a), "inverse of zero");
    let mut u = *a;
    let mut v = *m;
    // Invariants: x1 * a ≡ u (mod m), x2 * a ≡ v (mod m).
    let mut x1: Limbs = [1, 0, 0, 0];
    let mut x2: Limbs = [0, 0, 0, 0];
    while !is_one(&u) && !is_one(&v) {
        while u[0] & 1 == 0 {
            shr1_with(&mut u, false);
            if x1[0] & 1 == 0 {
                shr1_with(&mut x1, false);
            } else {
                let (s, carry) = add(&x1, m);
                x1 = s;
                shr1_with(&mut x1, carry);
            }
        }
        while v[0] & 1 == 0 {
            shr1_with(&mut v, false);
            if x2[0] & 1 == 0 {
                shr1_with(&mut x2, false);
            } else {
                let (s, carry) = add(&x2, m);
                x2 = s;
                shr1_with(&mut x2, carry);
            }
        }
        if gte(&u, &v) {
            u = sub(&u, &v).0;
            x1 = sub_mod(&x1, &x2, m);
        } else {
            v = sub(&v, &u).0;
            x2 = sub_mod(&x2, &x1, m);
        }
    }
    if is_one(&u) {
        x1
    } else {
        x2
    }
}

/// Returns bit `i` of a 4-limb value.
fn bit(a: &Limbs, i: usize) -> bool {
    (a[i / 64] >> (i % 64)) & 1 == 1
}

/// Sliding-window (4-bit) modular exponentiation: ~255 squarings plus one
/// multiply per window instead of one per set bit. With the high-Hamming-
/// weight exponents of the square-root and Fermat paths (~250 set bits)
/// this removes ~200 multiplications per call.
pub(crate) fn pow_mod_window(base: &Limbs, exp: &Limbs, d: &Limbs, m: &Limbs) -> Limbs {
    let mut top = 255usize;
    loop {
        if bit(exp, top) {
            break;
        }
        if top == 0 {
            return [1, 0, 0, 0]; // exponent is zero
        }
        top -= 1;
    }
    // Odd powers base^1, base^3, ..., base^15.
    let base_sq = mul_mod(base, base, d, m);
    let mut odd = [[0u64; 4]; 8];
    odd[0] = *base;
    for i in 1..8 {
        odd[i] = mul_mod(&odd[i - 1], &base_sq, d, m);
    }
    let mut result: Limbs = [1, 0, 0, 0];
    let mut started = false;
    let mut i = top as isize;
    while i >= 0 {
        if !bit(exp, i as usize) {
            result = mul_mod(&result, &result, d, m);
            i -= 1;
            continue;
        }
        // Greedy window [j, i] with an odd low end, at most 4 bits wide.
        let mut j = if i >= 3 { i - 3 } else { 0 };
        while !bit(exp, j as usize) {
            j += 1;
        }
        let width = (i - j + 1) as usize;
        let mut window = 0usize;
        for k in (j..=i).rev() {
            window = (window << 1) | bit(exp, k as usize) as usize;
        }
        if started {
            for _ in 0..width {
                result = mul_mod(&result, &result, d, m);
            }
            result = mul_mod(&result, &odd[(window - 1) / 2], d, m);
        } else {
            result = odd[(window - 1) / 2];
            started = true;
        }
        i = j - 1;
    }
    result
}

/// Parses 32 big-endian bytes into limbs (no reduction).
pub(crate) fn from_be_bytes(bytes: &[u8; 32]) -> Limbs {
    let mut limbs = [0u64; 4];
    for (i, chunk) in bytes.chunks_exact(8).enumerate() {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(chunk);
        limbs[3 - i] = u64::from_be_bytes(buf);
    }
    limbs
}

/// Serializes limbs as 32 big-endian bytes.
pub(crate) fn to_be_bytes(limbs: &Limbs) -> [u8; 32] {
    let mut out = [0u8; 32];
    for i in 0..4 {
        out[i * 8..(i + 1) * 8].copy_from_slice(&limbs[3 - i].to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Small prime 2^256 - 189 is handy: d = 189.
    const D: Limbs = [189, 0, 0, 0];
    const M: Limbs = [u64::MAX - 188, u64::MAX, u64::MAX, u64::MAX];

    #[test]
    fn add_sub_roundtrip() {
        let a = [5, 6, 7, 8];
        let b = [1, 2, 3, 4];
        let (sum, carry) = add(&a, &b);
        assert!(!carry);
        assert_eq!(sub(&sum, &b), (a, false));
    }

    #[test]
    fn mul_wide_known() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let a = [u64::MAX, 0, 0, 0];
        let prod = mul_wide(&a, &a);
        assert_eq!(prod[0], 1);
        assert_eq!(prod[1], u64::MAX - 1);
        assert!(prod[2..].iter().all(|&l| l == 0));
    }

    #[test]
    fn reduce_identity_below_modulus() {
        let value = [12345, 0, 0, 0];
        let wide = [12345, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(reduce_wide(wide, &D, &M), value);
    }

    #[test]
    fn reduce_exact_modulus_is_zero() {
        let wide = [M[0], M[1], M[2], M[3], 0, 0, 0, 0];
        assert_eq!(reduce_wide(wide, &D, &M), [0, 0, 0, 0]);
    }

    #[test]
    fn two_to_256_reduces_to_d() {
        // 2^256 mod (2^256 - d) = d
        let wide = [0, 0, 0, 0, 1, 0, 0, 0];
        assert_eq!(reduce_wide(wide, &D, &M), D);
    }

    #[test]
    fn mul_mod_matches_small_numbers() {
        let a = [0xffff_ffff_ffff_ffff, 1, 0, 0];
        let b = [7, 0, 0, 0];
        // No reduction needed (fits in 256 bits, below m).
        let expected = {
            let wide = mul_wide(&a, &b);
            [wide[0], wide[1], wide[2], wide[3]]
        };
        assert_eq!(mul_mod(&a, &b, &D, &M), expected);
    }

    #[test]
    fn binary_inverse_times_self_is_one() {
        let a = [0xdead_beef, 0xcafe, 42, 7];
        let inv = inv_mod_binary(&a, &M);
        assert_eq!(mul_mod(&a, &inv, &D, &M), [1, 0, 0, 0]);
        assert_eq!(inv_mod_binary(&[1, 0, 0, 0], &M), [1, 0, 0, 0]);
    }

    #[test]
    fn windowed_pow_matches_square_and_multiply() {
        // Oracle: plain MSB-first square-and-multiply.
        let slow = |base: &Limbs, exp: &Limbs| -> Limbs {
            let mut result = [1u64, 0, 0, 0];
            for i in (0..256).rev() {
                result = mul_mod(&result, &result, &D, &M);
                if (exp[i / 64] >> (i % 64)) & 1 == 1 {
                    result = mul_mod(&result, base, &D, &M);
                }
            }
            result
        };
        let base = [0x1234_5678, 0x9abc_def0, 3, 1];
        for exp in [
            [0u64, 0, 0, 0],
            [1, 0, 0, 0],
            [0xff, 0, 0, 0],
            [
                0xdead_beef_cafe_f00d,
                0x0123_4567_89ab_cdef,
                u64::MAX,
                0x7fff_ffff_ffff_ffff,
            ],
            [u64::MAX, u64::MAX, u64::MAX, u64::MAX],
        ] {
            assert_eq!(pow_mod_window(&base, &exp, &D, &M), slow(&base, &exp));
        }
    }

    #[test]
    fn pow_window_zero_exponent_is_one() {
        let a = [9, 9, 9, 9];
        assert_eq!(pow_mod_window(&a, &[0, 0, 0, 0], &D, &M), [1, 0, 0, 0]);
    }

    #[test]
    fn squaring_matches_general_multiplication() {
        for a in [
            [0u64, 0, 0, 0],
            [1, 0, 0, 0],
            [u64::MAX, u64::MAX, u64::MAX, u64::MAX],
            [
                0xdead_beef_0bad_f00d,
                0x0123_4567_89ab_cdef,
                0xfedc_ba98_7654_3210,
                0x7fff_eeee_dddd_cccc,
            ],
        ] {
            assert_eq!(sqr_wide(&a), mul_wide(&a, &a), "sqr_wide({a:?})");
        }
    }

    #[test]
    fn single_limb_reduction_matches_generic() {
        // The field modulus: d fits one limb.
        const FIELD_D: Limbs = [0x1_0000_03d1, 0, 0, 0];
        const P: Limbs = [
            0xffff_fffe_ffff_fc2f,
            0xffff_ffff_ffff_ffff,
            0xffff_ffff_ffff_ffff,
            0xffff_ffff_ffff_ffff,
        ];
        let samples = [
            [0u64; 8],
            [0, 0, 0, 0, 1, 0, 0, 0],
            [u64::MAX; 8],
            [
                0xdead_beef,
                0xcafe_babe,
                1,
                2,
                0x0123_4567_89ab_cdef,
                u64::MAX,
                7,
                0x8000_0000_0000_0000,
            ],
        ];
        for wide in samples {
            assert_eq!(
                reduce_wide_d1(wide, FIELD_D[0], &P),
                reduce_wide(wide, &FIELD_D, &P),
                "reduce({wide:?})"
            );
        }
    }

    #[test]
    fn byte_roundtrip() {
        let a = [1, 2, 3, 0x0807060504030201];
        assert_eq!(from_be_bytes(&to_be_bytes(&a)), a);
    }
}
