//! Property tests on the cryptographic core: ECDSA round-trips, group
//! laws on secp256k1, and hash stability.

use parp_crypto::{
    keccak256, recover, recover_address, sign, verify, AffinePoint, Scalar, SecretKey, Signature,
};
use proptest::prelude::*;

fn arb_secret() -> impl Strategy<Value = SecretKey> {
    proptest::collection::vec(any::<u8>(), 1..32).prop_map(|seed| SecretKey::from_seed(&seed))
}

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    any::<[u8; 32]>().prop_map(|b| Scalar::from_be_bytes_reduced(&b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sign_verify_recover_roundtrip(key in arb_secret(), message in proptest::collection::vec(any::<u8>(), 0..128)) {
        let digest = keccak256(&message);
        let signature = sign(&key, &digest);
        prop_assert!(verify(&key.public_key(), &digest, &signature));
        prop_assert_eq!(recover(&digest, &signature).unwrap(), key.public_key());
        prop_assert_eq!(recover_address(&digest, &signature).unwrap(), key.address());
        // Serialized round-trip preserves everything.
        let parsed = Signature::from_bytes(&signature.to_bytes()).unwrap();
        prop_assert_eq!(parsed, signature);
    }

    #[test]
    fn signatures_do_not_cross_verify(a in arb_secret(), b in arb_secret(), message in any::<[u8; 16]>()) {
        prop_assume!(a.address() != b.address());
        let digest = keccak256(&message);
        let sig_a = sign(&a, &digest);
        prop_assert!(!verify(&b.public_key(), &digest, &sig_a));
    }

    #[test]
    fn tampered_digest_fails(key in arb_secret(), message in any::<[u8; 16]>(), flip in 0usize..32) {
        let digest = keccak256(&message);
        let signature = sign(&key, &digest);
        let mut tampered = digest.into_inner();
        tampered[flip] ^= 0x01;
        let tampered = parp_primitives::H256::new(tampered);
        prop_assert!(!verify(&key.public_key(), &tampered, &signature));
        prop_assert_ne!(recover_address(&tampered, &signature).ok(), Some(key.address()));
    }

    #[test]
    fn scalar_mul_is_additive_homomorphism(a in arb_scalar(), b in arb_scalar()) {
        // (a + b)G == aG + bG
        let g = AffinePoint::generator();
        let lhs = g.mul(&(a + b));
        let rhs = g.mul(&a).to_jacobian().add(&g.mul(&b).to_jacobian()).to_affine();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn point_addition_commutes(a in arb_scalar(), b in arb_scalar()) {
        let g = AffinePoint::generator();
        let p = g.mul(&a);
        let q = g.mul(&b);
        let pq = p.to_jacobian().add(&q.to_jacobian()).to_affine();
        let qp = q.to_jacobian().add(&p.to_jacobian()).to_affine();
        prop_assert_eq!(pq, qp);
        prop_assert!(pq.is_on_curve());
    }

    #[test]
    fn scalar_field_laws(a in arb_scalar(), b in arb_scalar(), c in arb_scalar()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) * c, a * c + b * c);
        prop_assert_eq!(a + (-a), Scalar::ZERO);
        if !a.is_zero() {
            prop_assert_eq!(a * a.invert(), Scalar::ONE);
        }
    }

    #[test]
    fn keccak_has_no_trivial_collisions(a in proptest::collection::vec(any::<u8>(), 0..64), b in proptest::collection::vec(any::<u8>(), 0..64)) {
        if a != b {
            prop_assert_ne!(keccak256(&a), keccak256(&b));
        } else {
            prop_assert_eq!(keccak256(&a), keccak256(&b));
        }
    }

    #[test]
    fn public_key_bytes_roundtrip(key in arb_secret()) {
        let public = key.public_key();
        let parsed = parp_crypto::PublicKey::from_bytes(&public.to_bytes()).unwrap();
        prop_assert_eq!(parsed, public);
        prop_assert_eq!(parsed.address(), key.address());
    }
}
