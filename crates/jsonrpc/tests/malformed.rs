//! Adversarial-input sweep for the JSON parser.
//!
//! The gateway parses request bodies from untrusted clients, so the
//! contract under test is simple and absolute: *any* byte sequence
//! either parses or returns `Err` — it never panics, never overflows
//! the stack, and never silently accepts garbage. Each case family
//! here maps to a way a hostile client can cheaply construct input:
//! truncation, corrupt escapes, depth bombs, control bytes, broken
//! UTF-8, and number edge cases.

use parp_jsonrpc::{parse, Json, MAX_NESTING_DEPTH};

/// Representative well-formed documents used as truncation seeds.
const SEEDS: [&str; 5] = [
    r#"{"jsonrpc":"2.0","method":"eth_getBalance","params":["0xabc","latest"],"id":1}"#,
    r#"[1,-2.5e3,true,false,null,"str\u0041\n"]"#,
    r#"{"a":{"b":[{"c":"😀"},"héllo"]}}"#,
    r#""\ud83d\ude00 surrogate pair""#,
    r#"[[[[[{"deep":[0]}]]]]]"#,
];

/// Every strict prefix of a valid document must fail cleanly: a
/// truncated body is the single most common malformed input a server
/// sees (closed connections, length-capped reads).
#[test]
fn every_truncation_of_valid_documents_errors_cleanly() {
    for seed in SEEDS {
        for cut in 0..seed.len() {
            if !seed.is_char_boundary(cut) {
                continue;
            }
            let prefix = &seed[..cut];
            assert!(
                parse(prefix).is_err(),
                "prefix {prefix:?} of {seed:?} should not parse"
            );
        }
        assert!(parse(seed).is_ok(), "seed {seed:?} must itself parse");
    }
}

/// Suffixes are the mirror case (a read that lost its start).
#[test]
fn every_suffix_of_valid_documents_never_panics() {
    for seed in SEEDS {
        for cut in 1..=seed.len() {
            if !seed.is_char_boundary(cut) {
                continue;
            }
            // Some suffixes are themselves valid JSON ("1]" is not, but
            // "null" from inside an array is) — only the no-panic
            // contract holds here, not rejection.
            let _ = parse(&seed[cut..]);
        }
    }
}

#[test]
fn bad_escapes_are_rejected() {
    for bad in [
        r#""\q""#,           // unknown escape
        r#""\""#,            // escape at end of input
        r#""\u""#,           // truncated \u
        r#""\u12""#,         // short hex
        r#""\u12g4""#,       // non-hex digit
        r#""\ud800""#,       // lone high surrogate
        r#""\ud800\n""#,     // high surrogate followed by non-escape
        r#""\ud800\u0041""#, // high surrogate + non-low-surrogate
        r#""\udc00""#,       // lone low surrogate (invalid char::from_u32)
        "\"\\\u{0}\"",       // NUL as the escape byte
    ] {
        assert!(parse(bad).is_err(), "should reject {bad:?}");
    }
}

#[test]
fn depth_bombs_fail_at_the_cap_not_the_stack() {
    // Exactly at the cap: parses.
    let at = format!(
        "{}1{}",
        "[".repeat(MAX_NESTING_DEPTH),
        "]".repeat(MAX_NESTING_DEPTH)
    );
    assert!(parse(&at).is_ok());
    // One past: ordinary error.
    let over = format!(
        "{}1{}",
        "[".repeat(MAX_NESTING_DEPTH + 1),
        "]".repeat(MAX_NESTING_DEPTH + 1)
    );
    let err = parse(&over).unwrap_err();
    assert!(err.message.contains("nesting depth"), "{err}");
    // A megabyte of alternating open brackets — the classic bomb — is
    // rejected after exactly MAX_NESTING_DEPTH + 1 bytes of work.
    let bomb: String = "[{\"k\":".repeat(200_000);
    let err = parse(&bomb).unwrap_err();
    assert!(err.offset <= 6 * (MAX_NESTING_DEPTH + 1), "{err}");
}

#[test]
fn control_bytes_and_broken_utf8_in_strings_are_rejected() {
    for byte in 0u8..0x20 {
        let doc = format!("\"a{}b\"", byte as char);
        assert!(parse(&doc).is_err(), "control byte {byte:#x} accepted");
    }
    // `parse` takes `&str`, so truncated multibyte sequences are
    // rejected by UTF-8 validation before the parser ever runs; what
    // the parser must still get right is multibyte content adjacent
    // to syntax bytes and the 0x7F DEL byte (≥ 0x20, legal per JSON).
    assert_eq!(parse("\"€\\\"😀\"").unwrap(), Json::String("€\"😀".into()));
    assert!(parse("\"a\u{7f}b\"").is_ok());
}

#[test]
fn number_edge_cases() {
    // Accepted: anything f64::from_str takes, including extremes that
    // round to infinity-adjacent values.
    for ok in [
        "0",
        "-0",
        "1e308",
        "-1e-308",
        "0.0000000001",
        "123456789012345678901234567890",
    ] {
        assert!(parse(ok).is_ok(), "{ok:?} should parse");
    }
    // Rejected: JSON forbids these even though Rust's float parser or a
    // lenient scanner might not.
    for bad in [
        "+1", ".5", "-", "1e", "0x10", "NaN", "Infinity", "- 1", "1.2.3",
    ] {
        assert!(parse(bad).is_err(), "{bad:?} should be rejected");
    }
}

#[test]
fn structural_garbage_is_rejected() {
    for bad in [
        "{\"a\":1,}", // trailing comma (object)
        "[1,]",       // trailing comma (array)
        "[,1]",       // leading comma
        "{1:2}",      // non-string key
        "{\"a\" 1}",  // missing colon
        "[1 2]",      // missing comma
        "}",          // close without open
        "]",          // close without open
        "[}",         // mismatched pair
        "{\"a\":}",   // missing value
        "\u{feff}{}", // BOM is not whitespace in strict JSON
    ] {
        assert!(parse(bad).is_err(), "should reject {bad:?}");
    }
}

/// The error itself must be usable for diagnostics: offsets stay
/// within the input and messages are non-empty.
#[test]
fn errors_carry_in_bounds_offsets() {
    for bad in ["", "{", "[1,", "tru", "\"\\q\"", "[1] x"] {
        let err = parse(bad).unwrap_err();
        assert!(err.offset <= bad.len(), "{err} vs len {}", bad.len());
        assert!(!err.message.is_empty());
        assert!(err.to_string().contains("byte"));
    }
}

/// Parse errors never leave partial state behind: a failed parse does
/// not affect a subsequent good one, and repeat parses agree.
#[test]
fn parser_is_stateless_across_calls() {
    assert!(parse("[").is_err());
    assert_eq!(parse("[1]").unwrap(), Json::Array(vec![Json::Number(1.0)]));
    assert_eq!(parse("[1]").unwrap(), parse("[1]").unwrap());
}
