//! Property tests: JSON serialize→parse round-trips.

use parp_jsonrpc::{parse, Json};
use proptest::prelude::*;

fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Integers only: float round-trips through shortest-repr are fine
        // but not bit-exact in general; our protocol never emits floats.
        (-1_000_000_000i64..1_000_000_000).prop_map(|n| Json::Number(n as f64)),
        "[a-zA-Z0-9 _\\-\"\\\\/\n\t]{0,20}".prop_map(Json::String),
    ];
    leaf.prop_recursive(3, 32, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            proptest::collection::vec(("[a-z]{1,8}", inner), 0..6)
                .prop_map(|members| { Json::Object(members) }),
        ]
    })
}

proptest! {
    #[test]
    fn serialize_parse_roundtrip(value in arb_json()) {
        let text = value.to_string_compact();
        let parsed = parse(&text).unwrap();
        prop_assert_eq!(parsed, value);
    }

    #[test]
    fn parser_never_panics(input in "\\PC{0,100}") {
        let _ = parse(&input);
    }

    #[test]
    fn parsing_is_idempotent(value in arb_json()) {
        let once = parse(&value.to_string_compact()).unwrap();
        let twice = parse(&once.to_string_compact()).unwrap();
        prop_assert_eq!(once, twice);
    }
}
