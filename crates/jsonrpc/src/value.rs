//! A minimal JSON document model.
//!
//! Object member order is preserved (members are a `Vec`, not a map) so
//! serialized requests are byte-stable — the property the message-size
//! experiments rely on.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number. JSON-RPC quantities in Ethereum are hex *strings*, so a
    /// double covers every numeric field we emit (ids, error codes).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with preserved member order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn object(members: Vec<(&str, Json)>) -> Json {
        Json::Object(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), the standard wire form for
    /// JSON-RPC requests.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::String(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_serialization() {
        let value = Json::object(vec![
            ("jsonrpc", Json::String("2.0".into())),
            ("id", Json::Number(1.0)),
            ("params", Json::Array(vec![Json::Null, Json::Bool(true)])),
        ]);
        assert_eq!(
            value.to_string_compact(),
            r#"{"jsonrpc":"2.0","id":1,"params":[null,true]}"#
        );
    }

    #[test]
    fn string_escaping() {
        let value = Json::String("a\"b\\c\nd\u{1}".into());
        assert_eq!(value.to_string_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn member_order_is_preserved() {
        let value = Json::object(vec![("z", Json::Null), ("a", Json::Null)]);
        assert_eq!(value.to_string_compact(), r#"{"z":null,"a":null}"#);
    }

    #[test]
    fn accessors() {
        let value = Json::object(vec![
            ("s", Json::String("x".into())),
            ("n", Json::Number(4.0)),
            ("a", Json::Array(vec![Json::Number(1.0)])),
        ]);
        assert_eq!(value.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(value.get("n").and_then(Json::as_f64), Some(4.0));
        assert_eq!(
            value.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(value.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(Json::Number(42.0).to_string_compact(), "42");
        assert_eq!(Json::Number(2.5).to_string_compact(), "2.5");
    }
}
