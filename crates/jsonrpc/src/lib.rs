//! A from-scratch JSON implementation plus the Ethereum JSON-RPC method
//! encodings used as the *baseline* in the paper's message-size
//! evaluation (Table II).
//!
//! PARP wraps a blockchain's base RPC protocol; to measure the wrapper's
//! overhead one needs byte-accurate base messages. This crate produces
//! exactly the compact JSON-RPC 2.0 documents a Web3 client exchanges
//! with a Geth node (e.g. `eth_getBalance` ≈ 118 bytes, matching §VI-C).
//!
//! # Examples
//!
//! ```
//! use parp_jsonrpc::{base_request, parse};
//! use parp_contracts::RpcCall;
//! use parp_primitives::Address;
//!
//! let call = RpcCall::GetBalance { address: Address::from_low_u64_be(1) };
//! let request = base_request(&call, 1);
//! let text = String::from_utf8(request.to_bytes()).unwrap();
//! let doc = parse(&text)?;
//! assert_eq!(doc.get("method").unwrap().as_str(), Some("eth_getBalance"));
//! # Ok::<(), parp_jsonrpc::ParseError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod parse;
mod rpc;
mod value;

pub use parse::{parse, ParseError, MAX_NESTING_DEPTH};
pub use rpc::{
    base_request, base_response, data_bytes, data_h256, quantity, quantity_u64, JsonRpcRequest,
    JsonRpcResponse,
};
pub use value::Json;
