//! A strict recursive-descent JSON parser.

use crate::value::Json;
use std::error::Error;
use std::fmt;

/// Maximum container nesting depth accepted by [`parse`].
///
/// The parser descends once per open `[` or `{`, so without a cap a
/// deeply nested array from an untrusted client overflows the stack and
/// kills the server process — a remote denial of service against any
/// endpoint that parses request bodies. 128 levels is far beyond any
/// legitimate JSON-RPC payload and keeps the recursion well inside the
/// default stack.
pub const MAX_NESTING_DEPTH: usize = 128;

/// Errors produced by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, trailing content, or
/// containers nested deeper than [`MAX_NESTING_DEPTH`].
///
/// # Examples
///
/// ```
/// use parp_jsonrpc::{parse, Json};
///
/// let value = parse(r#"{"a":[1,true,"x"]}"#)?;
/// assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 3);
/// # Ok::<(), parp_jsonrpc::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing content"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal, expected {literal}")))
        }
    }

    /// Counts one level of container nesting; errors past the cap
    /// *before* recursing, so the stack never grows past
    /// [`MAX_NESTING_DEPTH`] frames regardless of input size.
    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(self.error("nesting depth limit exceeded"));
        }
        Ok(())
    }

    fn parse_object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.descend()?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => {
                    self.depth -= 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => {
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs: only BMP needed for our use, but
                        // handle pairs for completeness.
                        if (0xd800..0xdc00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                            out.push(
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?,
                            );
                        } else {
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(byte) if byte < 0x20 => return Err(self.error("control character in string")),
                Some(byte) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if byte < 0x80 {
                        out.push(byte as char);
                    } else {
                        let len = utf8_len(byte).ok_or_else(|| self.error("invalid utf-8"))?;
                        let start = self.pos - 1;
                        let end = start + len;
                        let slice = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| self.error("truncated utf-8"))?;
                        let s =
                            std::str::from_utf8(slice).map_err(|_| self.error("invalid utf-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Number(-150.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let value = parse(r#"{ "a" : [ 1 , { "b" : null } ] }"#).unwrap();
        let a = value.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0], Json::Number(1.0));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn roundtrips_compact_output() {
        let source =
            r#"{"jsonrpc":"2.0","method":"eth_getBalance","params":["0xabc","latest"],"id":1}"#;
        let value = parse(source).unwrap();
        assert_eq!(value.to_string_compact(), source);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\ndA""#).unwrap(),
            Json::String("a\"b\\c\ndA".into())
        );
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(parse(r#""😀""#).unwrap(), Json::String("😀".into()));
        // Raw UTF-8 multibyte passthrough.
        assert_eq!(parse("\"héllo\"").unwrap(), Json::String("héllo".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            "tru",
            "01x",
            r#""unterminated"#,
            "[1] garbage",
            "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_control_chars_in_strings() {
        assert!(parse("\"a\u{1}b\"").is_err());
    }

    #[test]
    fn nesting_up_to_the_limit_parses() {
        let depth = MAX_NESTING_DEPTH;
        let input = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(parse(&input).is_ok());
        // Mixed containers count the same budget.
        let mixed = format!(
            "{}{{\"k\":1}}{}",
            "[".repeat(depth - 1),
            "]".repeat(depth - 1)
        );
        assert!(parse(&mixed).is_ok());
    }

    #[test]
    fn deep_nesting_rejected_not_stack_overflow() {
        // Regression: a 100k-deep array from an untrusted client used to
        // recurse once per bracket and kill the process with a stack
        // overflow. It must now come back as an ordinary ParseError.
        let depth = 100_000;
        let unclosed = "[".repeat(depth);
        let error = parse(&unclosed).unwrap_err();
        assert!(error.message.contains("nesting depth"), "{error}");
        assert_eq!(error.offset, MAX_NESTING_DEPTH + 1);
        // Same for objects.
        let objects = "{\"a\":".repeat(depth);
        assert!(parse(&objects)
            .unwrap_err()
            .message
            .contains("nesting depth"));
        // One past the limit is rejected even when well-formed.
        let closed = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(parse(&closed).is_err());
        // Sibling containers do not accumulate depth: a long flat array
        // of shallow objects is fine.
        let flat = format!("[{}{{}}]", "{},".repeat(10_000));
        assert!(parse(&flat).is_ok());
    }
}
