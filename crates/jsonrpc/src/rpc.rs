//! JSON-RPC 2.0 framing and the Ethereum method encodings the paper's
//! message-size evaluation (§VI-C, Table II) measures.

use crate::value::Json;
use parp_contracts::RpcCall;
use parp_primitives::{to_hex_prefixed, H256, U256};

/// A JSON-RPC 2.0 request.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonRpcRequest {
    /// Method name, e.g. `eth_getBalance`.
    pub method: String,
    /// Positional parameters.
    pub params: Vec<Json>,
    /// Request id.
    pub id: u64,
}

impl JsonRpcRequest {
    /// Creates a request.
    pub fn new(method: impl Into<String>, params: Vec<Json>, id: u64) -> Self {
        JsonRpcRequest {
            method: method.into(),
            params,
            id,
        }
    }

    /// The JSON document `{"jsonrpc":"2.0","method":...,"params":...,"id":...}`.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("jsonrpc", Json::String("2.0".into())),
            ("method", Json::String(self.method.clone())),
            ("params", Json::Array(self.params.clone())),
            ("id", Json::Number(self.id as f64)),
        ])
    }

    /// Compact wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_json().to_string_compact().into_bytes()
    }

    /// Wire size in bytes — the quantity Table II compares against.
    pub fn wire_size(&self) -> usize {
        self.to_bytes().len()
    }
}

/// A JSON-RPC 2.0 response.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonRpcResponse {
    /// The `result` member.
    pub result: Json,
    /// Response id (mirrors the request).
    pub id: u64,
}

impl JsonRpcResponse {
    /// Creates a successful response.
    pub fn new(result: Json, id: u64) -> Self {
        JsonRpcResponse { result, id }
    }

    /// The JSON document.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("jsonrpc", Json::String("2.0".into())),
            ("id", Json::Number(self.id as f64)),
            ("result", self.result.clone()),
        ])
    }

    /// Compact wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_json().to_string_compact().into_bytes()
    }

    /// Wire size in bytes.
    pub fn wire_size(&self) -> usize {
        self.to_bytes().len()
    }
}

/// Hex-quantity encoding per the Ethereum JSON-RPC spec (`0x0`, `0x1b4`,
/// minimal digits, no leading zeros).
pub fn quantity(value: &U256) -> Json {
    if value.is_zero() {
        return Json::String("0x0".into());
    }
    Json::String(format!("{value:#x}"))
}

/// Hex-quantity encoding of a `u64`.
pub fn quantity_u64(value: u64) -> Json {
    quantity(&U256::from(value))
}

/// 32-byte data encoding (`0x` + 64 hex digits).
pub fn data_h256(value: &H256) -> Json {
    Json::String(to_hex_prefixed(value.as_bytes()))
}

/// Arbitrary-length data encoding.
pub fn data_bytes(value: &[u8]) -> Json {
    Json::String(to_hex_prefixed(value))
}

/// Encodes a PARP [`RpcCall`] as the equivalent base-layer Ethereum
/// JSON-RPC request — what a non-PARP client would send to a Geth node.
///
/// This is the baseline of Table II: PARP overhead is measured relative
/// to these requests.
pub fn base_request(call: &RpcCall, id: u64) -> JsonRpcRequest {
    match call {
        RpcCall::GetBalance { address } => JsonRpcRequest::new(
            "eth_getBalance",
            vec![
                Json::String(to_hex_prefixed(address.as_bytes())),
                Json::String("latest".into()),
            ],
            id,
        ),
        RpcCall::SendRawTransaction { raw } => {
            JsonRpcRequest::new("eth_sendRawTransaction", vec![data_bytes(raw)], id)
        }
        RpcCall::GetTransactionByHash { hash } => {
            JsonRpcRequest::new("eth_getTransactionByHash", vec![data_h256(hash)], id)
        }
        RpcCall::BlockNumber => JsonRpcRequest::new("eth_blockNumber", vec![], id),
        RpcCall::GetHeader { number } => JsonRpcRequest::new(
            "eth_getBlockByNumber",
            vec![quantity_u64(*number), Json::Bool(false)],
            id,
        ),
        RpcCall::GetChannelStatus { channel_id } => {
            JsonRpcRequest::new("parp_getChannelStatus", vec![quantity_u64(*channel_id)], id)
        }
        RpcCall::GetTransactionReceipt { hash } => {
            JsonRpcRequest::new("eth_getTransactionReceipt", vec![data_h256(hash)], id)
        }
        RpcCall::GetTransactionCount { address } => JsonRpcRequest::new(
            "eth_getTransactionCount",
            vec![
                Json::String(to_hex_prefixed(address.as_bytes())),
                Json::String("latest".into()),
            ],
            id,
        ),
    }
}

/// Encodes the base-layer JSON-RPC *response* for a call, given the raw
/// result payload the PARP server computed.
pub fn base_response(call: &RpcCall, result: &[u8], id: u64) -> JsonRpcResponse {
    let json = match call {
        RpcCall::GetBalance { .. } => {
            // The PARP result is the RLP account record; the base response
            // is just the balance quantity.
            match parp_chain::Account::decode(result) {
                Ok(account) => quantity(&account.balance),
                Err(_) => quantity(&U256::ZERO),
            }
        }
        RpcCall::SendRawTransaction { raw } => data_h256(&parp_crypto::keccak256(raw)),
        RpcCall::GetTransactionByHash { .. }
        | RpcCall::GetChannelStatus { .. }
        | RpcCall::GetTransactionReceipt { .. } => data_bytes(result),
        RpcCall::BlockNumber => match parp_rlp::decode(result).and_then(|i| i.as_u64()) {
            Ok(n) => quantity_u64(n),
            Err(_) => Json::Null,
        },
        RpcCall::GetHeader { .. } => data_bytes(result),
        RpcCall::GetTransactionCount { .. } => {
            // The PARP result is the RLP account record; the base
            // response is just the nonce quantity.
            match parp_chain::Account::decode(result) {
                Ok(account) => quantity_u64(account.nonce),
                Err(_) => quantity_u64(0),
            }
        }
    };
    JsonRpcResponse::new(json, id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use parp_primitives::Address;

    #[test]
    fn get_balance_request_matches_paper_size() {
        // §VI-C: "retrieving an account balance is 118 bytes".
        let call = RpcCall::GetBalance {
            address: Address::from_low_u64_be(0xabcdef),
        };
        let request = base_request(&call, 1);
        let size = request.wire_size();
        assert!(
            (110..=126).contains(&size),
            "eth_getBalance request is {size} bytes, paper says 118"
        );
    }

    #[test]
    fn raw_transaction_request_scale() {
        // §VI-C: a raw transaction call is 422 bytes for the paper's
        // channel-open transaction (~170 byte payload). With a payload of
        // that size ours must land in the same range.
        let call = RpcCall::SendRawTransaction {
            raw: vec![0x5a; 170],
        };
        let size = base_request(&call, 1).wire_size();
        assert!(
            (400..=450).contains(&size),
            "eth_sendRawTransaction request is {size} bytes, paper says 422"
        );
    }

    #[test]
    fn requests_parse_back() {
        let call = RpcCall::BlockNumber;
        let request = base_request(&call, 7);
        let text = String::from_utf8(request.to_bytes()).unwrap();
        let value = parse(&text).unwrap();
        assert_eq!(
            value.get("method").and_then(Json::as_str),
            Some("eth_blockNumber")
        );
        assert_eq!(value.get("id").and_then(Json::as_f64), Some(7.0));
    }

    #[test]
    fn quantities_are_minimal_hex() {
        assert_eq!(quantity(&U256::ZERO).as_str(), Some("0x0"));
        assert_eq!(quantity(&U256::from(0x1b4u64)).as_str(), Some("0x1b4"));
    }

    #[test]
    fn response_wire_format() {
        let response = JsonRpcResponse::new(quantity_u64(5), 3);
        assert_eq!(
            String::from_utf8(response.to_bytes()).unwrap(),
            r#"{"jsonrpc":"2.0","id":3,"result":"0x5"}"#
        );
    }

    #[test]
    fn balance_response_decodes_account() {
        let account = parp_chain::Account::with_balance(U256::from(12_345u64));
        let call = RpcCall::GetBalance {
            address: Address::ZERO,
        };
        let response = base_response(&call, &account.encode(), 1);
        assert_eq!(response.result.as_str(), Some("0x3039"));
    }
}
