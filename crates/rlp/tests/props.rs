//! Property tests: RLP encode/decode round-trips for arbitrary item trees.

use parp_primitives::U256;
use parp_rlp::{decode, decode_prefix, encode_bytes, encode_u256, encode_u64, Item};
use proptest::prelude::*;

fn arb_item() -> impl Strategy<Value = Item> {
    let leaf = proptest::collection::vec(any::<u8>(), 0..80).prop_map(Item::Bytes);
    leaf.prop_recursive(4, 64, 8, |inner| {
        proptest::collection::vec(inner, 0..8).prop_map(Item::List)
    })
}

proptest! {
    #[test]
    fn item_roundtrip(item in arb_item()) {
        let encoded = item.encode();
        prop_assert_eq!(decode(&encoded).unwrap(), item);
    }

    #[test]
    fn bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..1000)) {
        let encoded = encode_bytes(&data);
        let decoded = decode(&encoded).unwrap();
        prop_assert_eq!(decoded.as_bytes().unwrap(), data.as_slice());
    }

    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(decode(&encode_u64(v)).unwrap().as_u64().unwrap(), v);
    }

    #[test]
    fn u256_roundtrip(limbs in any::<[u64; 4]>()) {
        let v = U256::from_limbs(limbs);
        prop_assert_eq!(decode(&encode_u256(&v)).unwrap().as_u256().unwrap(), v);
    }

    #[test]
    fn truncation_always_fails(item in arb_item()) {
        let encoded = item.encode();
        if encoded.len() > 1 {
            prop_assert!(decode(&encoded[..encoded.len() - 1]).is_err());
        }
    }

    #[test]
    fn prefix_decode_reports_exact_length(item in arb_item(), tail in proptest::collection::vec(any::<u8>(), 0..16)) {
        let mut encoded = item.encode();
        let item_len = encoded.len();
        encoded.extend_from_slice(&tail);
        let (decoded, consumed) = decode_prefix(&encoded).unwrap();
        prop_assert_eq!(consumed, item_len);
        prop_assert_eq!(decoded, item);
    }

    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode(&data); // must not panic
    }
}
