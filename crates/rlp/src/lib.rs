//! Recursive Length Prefix (RLP) serialization, Ethereum's canonical wire
//! and hashing encoding.
//!
//! Transactions, block headers and Merkle-Patricia-Trie nodes are all
//! RLP-encoded before hashing, so a byte-exact RLP implementation is the
//! foundation of every integrity check in PARP.
//!
//! The decoder is *strict*: it rejects non-minimal encodings (a single byte
//! below `0x80` wrapped in a string header, length fields with leading
//! zeros, trailing garbage), which matters because trie keys and fraud
//! proofs must have exactly one valid encoding.
//!
//! # Examples
//!
//! ```
//! use parp_rlp::{decode, encode_bytes, encode_list, Item};
//!
//! let dog = encode_bytes(b"dog");
//! assert_eq!(dog, vec![0x83, b'd', b'o', b'g']);
//!
//! let list = encode_list(&[encode_bytes(b"cat"), encode_bytes(b"dog")]);
//! let item = decode(&list).unwrap();
//! assert_eq!(item, Item::List(vec![
//!     Item::Bytes(b"cat".to_vec()),
//!     Item::Bytes(b"dog".to_vec()),
//! ]));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use parp_primitives::{Address, H256, U256};
use std::error::Error;
use std::fmt;

/// A decoded RLP item: either a byte string or a list of items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A byte string (possibly empty).
    Bytes(Vec<u8>),
    /// A list of nested items (possibly empty).
    List(Vec<Item>),
}

impl Item {
    /// Encodes the item tree back to RLP bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Item::Bytes(bytes) => encode_bytes(bytes),
            Item::List(items) => {
                let encoded: Vec<Vec<u8>> = items.iter().map(Item::encode).collect();
                encode_list(&encoded)
            }
        }
    }

    /// Borrows the payload if this is a byte string.
    ///
    /// # Errors
    ///
    /// Fails when the item is a list.
    pub fn as_bytes(&self) -> Result<&[u8], DecodeError> {
        match self {
            Item::Bytes(b) => Ok(b),
            Item::List(_) => Err(DecodeError::ExpectedBytes),
        }
    }

    /// Borrows the children if this is a list.
    ///
    /// # Errors
    ///
    /// Fails when the item is a byte string.
    pub fn as_list(&self) -> Result<&[Item], DecodeError> {
        match self {
            Item::List(items) => Ok(items),
            Item::Bytes(_) => Err(DecodeError::ExpectedList),
        }
    }

    /// Interprets a byte string as a minimal big-endian `u64`.
    ///
    /// # Errors
    ///
    /// Fails on lists, leading zeros, or values wider than 8 bytes.
    pub fn as_u64(&self) -> Result<u64, DecodeError> {
        let bytes = self.as_bytes()?;
        if bytes.len() > 8 {
            return Err(DecodeError::IntegerOverflow);
        }
        if bytes.first() == Some(&0) {
            return Err(DecodeError::NonMinimalInteger);
        }
        let mut buf = [0u8; 8];
        buf[8 - bytes.len()..].copy_from_slice(bytes);
        Ok(u64::from_be_bytes(buf))
    }

    /// Interprets a byte string as a minimal big-endian [`U256`].
    ///
    /// # Errors
    ///
    /// Fails on lists, leading zeros, or values wider than 32 bytes.
    pub fn as_u256(&self) -> Result<U256, DecodeError> {
        let bytes = self.as_bytes()?;
        if bytes.len() > 32 {
            return Err(DecodeError::IntegerOverflow);
        }
        if bytes.first() == Some(&0) {
            return Err(DecodeError::NonMinimalInteger);
        }
        Ok(U256::from_be_slice(bytes).expect("length checked"))
    }

    /// Interprets a byte string as a 32-byte hash.
    ///
    /// # Errors
    ///
    /// Fails on lists or byte strings that are not exactly 32 bytes.
    pub fn as_h256(&self) -> Result<H256, DecodeError> {
        let bytes = self.as_bytes()?;
        H256::from_slice(bytes).ok_or(DecodeError::WrongLength {
            expected: 32,
            actual: bytes.len(),
        })
    }

    /// Interprets a byte string as a 20-byte address.
    ///
    /// # Errors
    ///
    /// Fails on lists or byte strings that are not exactly 20 bytes.
    pub fn as_address(&self) -> Result<Address, DecodeError> {
        let bytes = self.as_bytes()?;
        Address::from_slice(bytes).ok_or(DecodeError::WrongLength {
            expected: 20,
            actual: bytes.len(),
        })
    }
}

/// Errors produced by the strict RLP decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the announced payload length.
    UnexpectedEof,
    /// Bytes remained after the top-level item.
    TrailingBytes,
    /// A long-form length had leading zeros or encoded a short value.
    NonMinimalLength,
    /// A single byte below 0x80 was wrapped in a string header.
    NonMinimalByte,
    /// An integer field had leading zeros.
    NonMinimalInteger,
    /// An integer field was wider than the target type.
    IntegerOverflow,
    /// Expected a byte string, found a list.
    ExpectedBytes,
    /// Expected a list, found a byte string.
    ExpectedList,
    /// A fixed-size field had the wrong length.
    WrongLength {
        /// Required length in bytes.
        expected: usize,
        /// Length found in the input.
        actual: usize,
    },
    /// A list had the wrong number of elements.
    WrongArity {
        /// Required element count.
        expected: usize,
        /// Count found in the input.
        actual: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of rlp input"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after rlp item"),
            DecodeError::NonMinimalLength => write!(f, "non-minimal rlp length encoding"),
            DecodeError::NonMinimalByte => write!(f, "single byte encoded with a header"),
            DecodeError::NonMinimalInteger => write!(f, "integer encoded with leading zeros"),
            DecodeError::IntegerOverflow => write!(f, "integer does not fit the target type"),
            DecodeError::ExpectedBytes => write!(f, "expected an rlp byte string, found a list"),
            DecodeError::ExpectedList => write!(f, "expected an rlp list, found bytes"),
            DecodeError::WrongLength { expected, actual } => {
                write!(f, "expected {expected}-byte field, found {actual} bytes")
            }
            DecodeError::WrongArity { expected, actual } => {
                write!(f, "expected list of {expected} items, found {actual}")
            }
        }
    }
}

impl Error for DecodeError {}

fn encode_length(len: usize, short_offset: u8, out: &mut Vec<u8>) {
    if len <= 55 {
        out.push(short_offset + len as u8);
    } else {
        let len_bytes = (len as u64).to_be_bytes();
        let first = len_bytes.iter().position(|&b| b != 0).expect("len > 55");
        let minimal = &len_bytes[first..];
        out.push(short_offset + 55 + minimal.len() as u8);
        out.extend_from_slice(minimal);
    }
}

/// Encodes a byte string.
pub fn encode_bytes(data: &[u8]) -> Vec<u8> {
    if data.len() == 1 && data[0] < 0x80 {
        return vec![data[0]];
    }
    let mut out = Vec::with_capacity(data.len() + 9);
    encode_length(data.len(), 0x80, &mut out);
    out.extend_from_slice(data);
    out
}

/// Wraps already-encoded items in a list header.
pub fn encode_list(encoded_items: &[Vec<u8>]) -> Vec<u8> {
    let payload_len: usize = encoded_items.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(payload_len + 9);
    encode_length(payload_len, 0xc0, &mut out);
    for item in encoded_items {
        out.extend_from_slice(item);
    }
    out
}

/// Encodes a `u64` as a minimal big-endian byte string (zero → empty).
pub fn encode_u64(value: u64) -> Vec<u8> {
    if value == 0 {
        return encode_bytes(&[]);
    }
    let bytes = value.to_be_bytes();
    let first = bytes.iter().position(|&b| b != 0).expect("nonzero");
    encode_bytes(&bytes[first..])
}

/// Encodes a [`U256`] as a minimal big-endian byte string.
pub fn encode_u256(value: &U256) -> Vec<u8> {
    encode_bytes(&value.to_be_bytes_minimal())
}

/// Encodes a 32-byte hash as a byte string.
pub fn encode_h256(value: &H256) -> Vec<u8> {
    encode_bytes(value.as_bytes())
}

/// Encodes a 20-byte address as a byte string.
pub fn encode_address(value: &Address) -> Vec<u8> {
    encode_bytes(value.as_bytes())
}

/// Decodes a complete RLP item, rejecting trailing bytes.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed, truncated or non-minimal input.
pub fn decode(input: &[u8]) -> Result<Item, DecodeError> {
    let (item, consumed) = decode_prefix(input)?;
    if consumed != input.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(item)
}

/// Decodes the first RLP item of `input`, returning it with the number of
/// bytes consumed.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed, truncated or non-minimal input.
pub fn decode_prefix(input: &[u8]) -> Result<(Item, usize), DecodeError> {
    let first = *input.first().ok_or(DecodeError::UnexpectedEof)?;
    match first {
        0x00..=0x7f => Ok((Item::Bytes(vec![first]), 1)),
        0x80..=0xb7 => {
            let len = (first - 0x80) as usize;
            let payload = input.get(1..1 + len).ok_or(DecodeError::UnexpectedEof)?;
            if len == 1 && payload[0] < 0x80 {
                return Err(DecodeError::NonMinimalByte);
            }
            Ok((Item::Bytes(payload.to_vec()), 1 + len))
        }
        0xb8..=0xbf => {
            let len_of_len = (first - 0xb7) as usize;
            let len = read_long_length(input, len_of_len)?;
            let start = 1 + len_of_len;
            let payload = input
                .get(start..start + len)
                .ok_or(DecodeError::UnexpectedEof)?;
            Ok((Item::Bytes(payload.to_vec()), start + len))
        }
        0xc0..=0xf7 => {
            let len = (first - 0xc0) as usize;
            let payload = input.get(1..1 + len).ok_or(DecodeError::UnexpectedEof)?;
            Ok((Item::List(decode_list_payload(payload)?), 1 + len))
        }
        0xf8..=0xff => {
            let len_of_len = (first - 0xf7) as usize;
            let len = read_long_length(input, len_of_len)?;
            let start = 1 + len_of_len;
            let payload = input
                .get(start..start + len)
                .ok_or(DecodeError::UnexpectedEof)?;
            Ok((Item::List(decode_list_payload(payload)?), start + len))
        }
    }
}

fn read_long_length(input: &[u8], len_of_len: usize) -> Result<usize, DecodeError> {
    let len_bytes = input
        .get(1..1 + len_of_len)
        .ok_or(DecodeError::UnexpectedEof)?;
    if len_bytes[0] == 0 {
        return Err(DecodeError::NonMinimalLength);
    }
    if len_bytes.len() > 8 {
        return Err(DecodeError::NonMinimalLength);
    }
    let mut buf = [0u8; 8];
    buf[8 - len_bytes.len()..].copy_from_slice(len_bytes);
    let len = u64::from_be_bytes(buf) as usize;
    if len <= 55 {
        return Err(DecodeError::NonMinimalLength);
    }
    Ok(len)
}

fn decode_list_payload(mut payload: &[u8]) -> Result<Vec<Item>, DecodeError> {
    let mut items = Vec::new();
    while !payload.is_empty() {
        let (item, consumed) = decode_prefix(payload)?;
        items.push(item);
        payload = &payload[consumed..];
    }
    Ok(items)
}

/// Convenience: decodes a top-level list and checks its arity.
///
/// # Errors
///
/// Fails when the input is not a list of exactly `arity` items.
pub fn decode_list_of(input: &[u8], arity: usize) -> Result<Vec<Item>, DecodeError> {
    let item = decode(input)?;
    match item {
        Item::List(items) if items.len() == arity => Ok(items),
        Item::List(items) => Err(DecodeError::WrongArity {
            expected: arity,
            actual: items.len(),
        }),
        Item::Bytes(_) => Err(DecodeError::ExpectedList),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Canonical examples from the Ethereum wiki / yellow paper appendix.
    #[test]
    fn canonical_vectors() {
        assert_eq!(encode_bytes(b"dog"), vec![0x83, b'd', b'o', b'g']);
        assert_eq!(
            encode_list(&[encode_bytes(b"cat"), encode_bytes(b"dog")]),
            vec![0xc8, 0x83, b'c', b'a', b't', 0x83, b'd', b'o', b'g']
        );
        assert_eq!(encode_bytes(b""), vec![0x80]);
        assert_eq!(encode_list(&[]), vec![0xc0]);
        assert_eq!(encode_u64(0), vec![0x80]);
        assert_eq!(encode_u64(15), vec![0x0f]);
        assert_eq!(encode_u64(1024), vec![0x82, 0x04, 0x00]);
        // A 56-byte string gets a long header.
        let lorem = b"Lorem ipsum dolor sit amet, consectetur adipisicing elit";
        let encoded = encode_bytes(lorem);
        assert_eq!(encoded[0], 0xb8);
        assert_eq!(encoded[1], lorem.len() as u8);
    }

    #[test]
    fn nested_list_vector() {
        // [ [], [[]], [ [], [[]] ] ] — the set-theoretic representation of 3.
        let empty = encode_list(&[]);
        let one = encode_list(std::slice::from_ref(&empty));
        let two = encode_list(&[empty.clone(), one.clone()]);
        let three = encode_list(&[empty.clone(), one.clone(), two.clone()]);
        assert_eq!(three, vec![0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0]);
        assert_eq!(decode(&three).unwrap().encode(), three);
    }

    #[test]
    fn single_byte_passthrough() {
        assert_eq!(encode_bytes(&[0x00]), vec![0x00]);
        assert_eq!(encode_bytes(&[0x7f]), vec![0x7f]);
        assert_eq!(encode_bytes(&[0x80]), vec![0x81, 0x80]);
    }

    #[test]
    fn decode_rejects_non_minimal_byte() {
        // [0x81, 0x05] wraps 0x05 needlessly.
        assert_eq!(decode(&[0x81, 0x05]), Err(DecodeError::NonMinimalByte));
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        assert_eq!(decode(&[0x80, 0x00]), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn decode_rejects_truncation() {
        assert_eq!(decode(&[0x83, b'd', b'o']), Err(DecodeError::UnexpectedEof));
        assert_eq!(decode(&[0xb8]), Err(DecodeError::UnexpectedEof));
        assert_eq!(decode(&[]), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn decode_rejects_non_minimal_length() {
        // Long form used for a short payload.
        let mut bad = vec![0xb8, 3];
        bad.extend_from_slice(b"dog");
        assert_eq!(decode(&bad), Err(DecodeError::NonMinimalLength));
        // Leading zero in the length.
        let mut bad2 = vec![0xb9, 0, 56];
        bad2.extend_from_slice(&[0u8; 56]);
        assert_eq!(decode(&bad2), Err(DecodeError::NonMinimalLength));
    }

    #[test]
    fn long_list_roundtrip() {
        let items: Vec<Vec<u8>> = (0..40u64).map(encode_u64).collect();
        let encoded = encode_list(&items);
        let decoded = decode(&encoded).unwrap();
        let children = decoded.as_list().unwrap();
        assert_eq!(children.len(), 40);
        for (i, child) in children.iter().enumerate() {
            assert_eq!(child.as_u64().unwrap(), i as u64);
        }
    }

    #[test]
    fn integer_accessors() {
        assert_eq!(decode(&encode_u64(0)).unwrap().as_u64().unwrap(), 0);
        assert_eq!(
            decode(&encode_u64(u64::MAX)).unwrap().as_u64().unwrap(),
            u64::MAX
        );
        let big = U256::from(123456789u64) * U256::from(987654321u64);
        assert_eq!(decode(&encode_u256(&big)).unwrap().as_u256().unwrap(), big);
        // Leading-zero integers rejected.
        let padded = encode_bytes(&[0x00, 0x01]);
        assert_eq!(
            decode(&padded).unwrap().as_u64(),
            Err(DecodeError::NonMinimalInteger)
        );
    }

    #[test]
    fn typed_accessors() {
        let h = H256::from_low_u64_be(7);
        assert_eq!(decode(&encode_h256(&h)).unwrap().as_h256().unwrap(), h);
        let a = Address::from_low_u64_be(9);
        assert_eq!(
            decode(&encode_address(&a)).unwrap().as_address().unwrap(),
            a
        );
        assert!(matches!(
            decode(&encode_bytes(&[1, 2, 3])).unwrap().as_h256(),
            Err(DecodeError::WrongLength {
                expected: 32,
                actual: 3
            })
        ));
        assert_eq!(
            decode(&encode_list(&[])).unwrap().as_bytes(),
            Err(DecodeError::ExpectedBytes)
        );
        assert_eq!(
            decode(&encode_bytes(b"x")).unwrap().as_list(),
            Err(DecodeError::ExpectedList)
        );
    }

    #[test]
    fn arity_checked_decode() {
        let two = encode_list(&[encode_u64(1), encode_u64(2)]);
        assert_eq!(decode_list_of(&two, 2).unwrap().len(), 2);
        assert_eq!(
            decode_list_of(&two, 3),
            Err(DecodeError::WrongArity {
                expected: 3,
                actual: 2
            })
        );
        assert_eq!(
            decode_list_of(&encode_bytes(b"x"), 1),
            Err(DecodeError::ExpectedList)
        );
    }

    #[test]
    fn large_payload_roundtrip() {
        let blob = vec![0x42u8; 70_000];
        let encoded = encode_bytes(&blob);
        assert_eq!(encoded[0], 0xb7 + 3); // 3-byte length
        let decoded = decode(&encoded).unwrap();
        assert_eq!(decoded.as_bytes().unwrap(), blob.as_slice());
    }
}
