//! The over-capacity serving scenario: many clients contending for one
//! full node, with the runtime's admission controller and fair queue
//! between them.
//!
//! One client floods far beyond any sustainable rate while honest
//! clients request at modest, paid-for rates. The scenario drives real
//! batched exchanges through the serving runtime (so the snapshot cache
//! and shard pool are exercised, not mocked) under a deterministic
//! logical clock, and reports per-client admission and latency figures.
//! The properties the runtime must deliver — the flooder bounded to its
//! token-bucket rate, honest clients' latency within a small factor of
//! the uncontended case — are asserted by `tests/runtime.rs` on top of
//! the [`ContentionReport`] this module produces.

use crate::sim::Network;
use parp_contracts::{ParpBatchRequest, RpcCall};
use parp_crypto::SecretKey;
use parp_primitives::{Address, U256};
use parp_runtime::{FairQueue, Runtime, RuntimeConfig};
use parp_telemetry::{MetricsSnapshot, Telemetry};

/// Tuning for the contention scenario.
#[derive(Debug, Clone, Copy)]
pub struct ContentionConfig {
    /// Number of honest clients.
    pub honest_clients: usize,
    /// Honest request rate: batches per simulated second, per client.
    pub honest_rate_per_sec: u64,
    /// Flooder request rate: batches per simulated second (0 disables
    /// the flooder — the uncontended baseline).
    pub flood_rate_per_sec: u64,
    /// Calls per batch.
    pub batch_size: usize,
    /// Admission burst per client (calls).
    pub admission_burst: u64,
    /// Admission refill rate per client (calls per second).
    pub admission_rate_per_sec: u64,
    /// Simulated scenario length in milliseconds.
    pub duration_ms: u64,
    /// Simulated service time per batch in microseconds.
    pub service_time_us: u64,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig {
            honest_clients: 3,
            honest_rate_per_sec: 20,
            flood_rate_per_sec: 500,
            batch_size: 4,
            admission_burst: 16,
            admission_rate_per_sec: 100,
            duration_ms: 1_000,
            service_time_us: 200,
        }
    }
}

/// Per-client outcome of a contention run.
#[derive(Debug, Clone, Copy)]
pub struct ClientOutcome {
    /// The client's address.
    pub address: Address,
    /// Calls the client attempted (batches × batch size).
    pub attempted_calls: u64,
    /// Calls past the admission controller.
    pub admitted_calls: u64,
    /// Calls rejected by the rate limit.
    pub throttled_calls: u64,
    /// Batches actually served.
    pub served_batches: u64,
    /// Mean enqueue-to-completion latency over served batches (µs).
    pub mean_latency_us: u64,
    /// Worst served-batch latency (µs).
    pub max_latency_us: u64,
}

/// Aggregate outcome of a contention run.
#[derive(Debug, Clone)]
pub struct ContentionReport {
    /// Per-honest-client outcomes.
    pub honest: Vec<ClientOutcome>,
    /// The flooding client's outcome (zeroed when flooding is off).
    pub flooder: ClientOutcome,
    /// Snapshot-cache hits across the run.
    pub cache_hits: u64,
    /// Snapshot-cache misses across the run.
    pub cache_misses: u64,
    /// End-of-run snapshot of the run's telemetry registry (runtime
    /// admission/cache counters, serve-path histograms, net series).
    pub metrics: MetricsSnapshot,
}

impl ContentionReport {
    /// Mean latency over every served honest batch (µs).
    pub fn honest_mean_latency_us(&self) -> u64 {
        let (sum, count) = self.honest.iter().fold((0u64, 0u64), |(s, c), o| {
            (
                s + o.mean_latency_us * o.served_batches,
                c + o.served_batches,
            )
        });
        sum.checked_div(count).unwrap_or(0)
    }

    /// Total calls served for honest clients.
    pub fn honest_served_calls(&self, batch_size: usize) -> u64 {
        self.honest
            .iter()
            .map(|o| o.served_batches * batch_size as u64)
            .sum()
    }
}

/// One client's request stream inside the scenario.
struct Contender {
    secret: SecretKey,
    address: Address,
    channel_id: u64,
    tip: parp_primitives::H256,
    /// Cumulative payment committed so far (grows by price × batch).
    amount: U256,
    targets: Vec<Address>,
    attempted: u64,
    served: u64,
    latency_sum_us: u64,
    latency_max_us: u64,
}

impl Contender {
    fn next_batch(&mut self, price: U256, batch_size: usize) -> ParpBatchRequest {
        let calls: Vec<RpcCall> = (0..batch_size)
            .map(|i| RpcCall::GetBalance {
                address: self.targets[(self.attempted as usize + i) % self.targets.len()],
            })
            .collect();
        self.amount += price * U256::from(batch_size as u64);
        self.attempted += batch_size as u64;
        ParpBatchRequest::build(&self.secret, self.channel_id, self.tip, self.amount, calls)
    }

    fn outcome(&self, runtime: &Runtime) -> ClientOutcome {
        let stats = runtime.admission_stats(&self.address);
        ClientOutcome {
            address: self.address,
            attempted_calls: self.attempted,
            admitted_calls: stats.admitted,
            throttled_calls: stats.throttled,
            served_batches: self.served,
            mean_latency_us: self.latency_sum_us.checked_div(self.served).unwrap_or(0),
            max_latency_us: self.latency_max_us,
        }
    }
}

/// Runs the over-capacity scenario and reports per-client figures.
///
/// The simulation is fully deterministic: arrivals follow fixed
/// per-client periods on a logical microsecond clock, admission is the
/// runtime's token buckets, the backlog drains through the runtime's
/// fair round-robin queue, and every admitted batch is genuinely served
/// (signed, proven) through the snapshot cache at the pinned head.
pub fn run_contention(config: &ContentionConfig) -> ContentionReport {
    let price = U256::from(10u64);
    let telemetry = Telemetry::new();
    let mut net = Network::with_latency(crate::latency::LatencyModel::zero());
    net.set_runtime(Runtime::new(RuntimeConfig {
        burst_capacity: config.admission_burst,
        rate_per_sec: config.admission_rate_per_sec,
        ..RuntimeConfig::default()
    }));
    net.attach_telemetry(&telemetry);
    let node = net.spawn_node(b"contended-node", price);

    // Some funded accounts for the read workload to target.
    let targets: Vec<Address> = (0..32)
        .map(|i| Address::from_low_u64_be(0xCA11 + i))
        .collect();
    net.fund_many(&targets);

    // Flooder is contender 0 (when enabled), honest clients follow.
    let budget = U256::from(1u64) << 60;
    let mut contenders: Vec<Contender> = Vec::new();
    let mut periods_us: Vec<u64> = Vec::new();
    let flooding = config.flood_rate_per_sec > 0;
    let roles: Vec<(Vec<u8>, u64)> =
        std::iter::once((b"flood-client".to_vec(), config.flood_rate_per_sec))
            .filter(|_| flooding)
            .chain((0..config.honest_clients).map(|i| {
                (
                    format!("honest-client-{i}").into_bytes(),
                    config.honest_rate_per_sec,
                )
            }))
            .collect();
    for (seed, rate) in &roles {
        let mut client = net.spawn_client(seed, price);
        let channel_id = net.connect(&mut client, node, budget).expect("connect");
        contenders.push(Contender {
            secret: *client.secret(),
            address: client.address(),
            channel_id,
            tip: client.tip().expect("synced").hash(),
            amount: U256::ZERO,
            targets: targets.clone(),
            attempted: 0,
            served: 0,
            latency_sum_us: 0,
            latency_max_us: 0,
        });
        periods_us.push(if *rate == 0 {
            u64::MAX
        } else {
            1_000_000 / rate
        });
    }

    // Deterministic arrival schedule: (time, contender index), merged in
    // time order with index as tie-break. Small per-client offsets keep
    // periodic streams from aligning on the exact same microsecond.
    let horizon_us = config.duration_ms * 1_000;
    let mut arrivals: Vec<(u64, usize)> = Vec::new();
    for (index, period) in periods_us.iter().enumerate() {
        if *period == u64::MAX {
            continue;
        }
        let mut t = 13 * (index as u64 + 1);
        while t < horizon_us {
            arrivals.push((t, index));
            t += period;
        }
    }
    arrivals.sort_unstable();

    // Single-server queueing loop: admission at arrival time, fair
    // round-robin service, fixed per-batch service time.
    let mut queue: FairQueue<(ParpBatchRequest, u64)> = FairQueue::new();
    let mut server_free_at = 0u64;
    let mut next_arrival = 0usize;
    let ingest = |net: &mut Network,
                  contenders: &mut Vec<Contender>,
                  queue: &mut FairQueue<(ParpBatchRequest, u64)>,
                  time: u64,
                  index: usize| {
        let contender = &mut contenders[index];
        let address = contender.address;
        if net
            .runtime_mut()
            .admit(address, config.batch_size as u64, time)
            .is_ok()
        {
            let request = contender.next_batch(price, config.batch_size);
            queue.push(address, (request, time));
        } else {
            // Throttled attempts still count as attempted calls.
            contender.attempted += config.batch_size as u64;
        }
    };
    while next_arrival < arrivals.len() || !queue.is_empty() {
        if queue.is_empty() {
            let (time, index) = arrivals[next_arrival];
            next_arrival += 1;
            server_free_at = server_free_at.max(time);
            ingest(&mut net, &mut contenders, &mut queue, time, index);
            continue;
        }
        // Ingest everything arriving before the server frees up, so
        // round-robin sees the full contention set.
        while next_arrival < arrivals.len() && arrivals[next_arrival].0 <= server_free_at {
            let (time, index) = arrivals[next_arrival];
            next_arrival += 1;
            ingest(&mut net, &mut contenders, &mut queue, time, index);
        }
        let (address, (request, enqueued_at)) = queue.pop().expect("non-empty");
        net.serve_batch(node, &request)
            .expect("admitted batch serves");
        let finish = server_free_at + config.service_time_us;
        let latency = finish - enqueued_at;
        server_free_at = finish;
        let contender = contenders
            .iter_mut()
            .find(|c| c.address == address)
            .expect("known contender");
        contender.served += 1;
        contender.latency_sum_us += latency;
        contender.latency_max_us = contender.latency_max_us.max(latency);
    }

    let runtime = net.runtime();
    let honest_range = if flooding { 1.. } else { 0.. };
    let honest = contenders[honest_range]
        .iter()
        .map(|c| c.outcome(runtime))
        .collect();
    let flooder = if flooding {
        contenders[0].outcome(runtime)
    } else {
        ClientOutcome {
            address: Address::ZERO,
            attempted_calls: 0,
            admitted_calls: 0,
            throttled_calls: 0,
            served_batches: 0,
            mean_latency_us: 0,
            max_latency_us: 0,
        }
    };
    ContentionReport {
        honest,
        flooder,
        cache_hits: runtime.cache().hits(),
        cache_misses: runtime.cache().misses(),
        metrics: telemetry.registry.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_baseline_serves_everything() {
        let config = ContentionConfig {
            flood_rate_per_sec: 0,
            duration_ms: 200,
            ..ContentionConfig::default()
        };
        let report = run_contention(&config);
        assert_eq!(report.honest.len(), config.honest_clients);
        for outcome in &report.honest {
            assert!(outcome.served_batches > 0);
            assert_eq!(outcome.throttled_calls, 0, "honest rate is within bucket");
            assert_eq!(
                outcome.served_batches * config.batch_size as u64,
                outcome.admitted_calls
            );
        }
        assert_eq!(report.flooder.admitted_calls, 0);
        // Same head for every exchange: one cold build, all hits after.
        assert!(report.cache_hits > report.cache_misses);
        // The telemetry registry adopted the very counters the runtime
        // increments, so the snapshot agrees with the report exactly.
        assert_eq!(
            report
                .metrics
                .counter("parp_runtime_snapshot_cache_hits_total", &[]),
            Some(report.cache_hits)
        );
        let admitted: u64 = report.honest.iter().map(|o| o.admitted_calls).sum();
        assert_eq!(
            report
                .metrics
                .counter("parp_runtime_admitted_calls_total", &[]),
            Some(admitted)
        );
    }

    #[test]
    fn flooder_gets_throttled_not_honest() {
        let config = ContentionConfig {
            duration_ms: 300,
            ..ContentionConfig::default()
        };
        let report = run_contention(&config);
        assert!(
            report.flooder.throttled_calls > 0,
            "flood must hit the limit"
        );
        for outcome in &report.honest {
            assert_eq!(outcome.throttled_calls, 0);
        }
    }
}
