//! A deterministic latency model for the simulated network.
//!
//! PARP assumes strong synchrony — messages between honest parties arrive
//! within a bounded delay (§IV-D). The model charges a fixed base delay
//! plus a per-byte serialization cost, which is enough to study how PARP's
//! larger messages translate into wall-clock overhead.

/// Simulated link characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// One-way propagation delay in microseconds.
    pub base_one_way_us: u64,
    /// Bandwidth in bytes per microsecond (e.g. 12.5 = 100 Mbit/s).
    pub bytes_per_us: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // 1 ms one-way on a 100 Mbit/s LAN — the paper's local OpenStack
        // deployment is in this regime.
        LatencyModel {
            base_one_way_us: 1_000,
            bytes_per_us: 12.5,
        }
    }
}

impl LatencyModel {
    /// A zero-latency model (pure processing measurements).
    pub fn zero() -> Self {
        LatencyModel {
            base_one_way_us: 0,
            bytes_per_us: f64::INFINITY,
        }
    }

    /// One-way delivery time for a message of `bytes`, rounded to the
    /// nearest microsecond. Rounding (rather than the truncation this
    /// used to do) keeps sub-microsecond transmit times from silently
    /// costing zero: at the default 12.5 B/µs, a 7-byte frame is
    /// 0.56 µs on the wire and must charge 1 µs, not 0.
    pub fn one_way_us(&self, bytes: usize) -> u64 {
        let transmit = if self.bytes_per_us.is_finite() && self.bytes_per_us > 0.0 {
            (bytes as f64 / self.bytes_per_us).round() as u64
        } else {
            0
        };
        self.base_one_way_us + transmit
    }

    /// Round-trip time for a request of `up` bytes and a response of
    /// `down` bytes.
    pub fn round_trip_us(&self, up: usize, down: usize) -> u64 {
        self.one_way_us(up) + self.one_way_us(down)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_free() {
        let model = LatencyModel::zero();
        assert_eq!(model.one_way_us(1_000_000), 0);
        assert_eq!(model.round_trip_us(100, 100), 0);
    }

    #[test]
    fn default_model_charges_size() {
        let model = LatencyModel::default();
        let small = model.one_way_us(100);
        let large = model.one_way_us(100_000);
        assert!(large > small);
        assert!(small >= model.base_one_way_us);
    }

    #[test]
    fn fractional_transmit_time_rounds_instead_of_truncating() {
        // 12.5 B/µs: 7 bytes is 0.56 µs on the wire. Truncation used
        // to charge 0 here — byte-size changes near bucket edges were
        // silently free.
        let model = LatencyModel {
            base_one_way_us: 0,
            bytes_per_us: 12.5,
        };
        assert_eq!(model.one_way_us(7), 1, "0.56 µs rounds up to 1");
        assert_eq!(model.one_way_us(5), 0, "0.4 µs rounds down to 0");
        assert_eq!(model.one_way_us(25), 2, "exact multiples unchanged");
        // The base delay rides on top of the rounded transmit time.
        let with_base = LatencyModel {
            base_one_way_us: 1_000,
            bytes_per_us: 12.5,
        };
        assert_eq!(with_base.one_way_us(7), 1_001);
    }

    #[test]
    fn round_trip_is_sum_of_legs() {
        let model = LatencyModel::default();
        assert_eq!(
            model.round_trip_us(500, 1500),
            model.one_way_us(500) + model.one_way_us(1500)
        );
    }
}
