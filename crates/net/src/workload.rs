//! Read and write workload generators (paper §VI-A).
//!
//! A *read* queries blockchain state without changing it (the paper uses
//! `eth_getBalance`); a *write* submits a signed transaction
//! (`eth_sendRawTransaction`).

use parp_chain::Transaction;
use parp_contracts::RpcCall;
use parp_crypto::SecretKey;
use parp_primitives::{Address, H256, U256};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The §VI-A workload classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// State queries (`eth_getBalance`).
    Read,
    /// Transaction submission (`eth_sendRawTransaction`).
    Write,
}

/// A deterministic, seedable generator of PARP RPC calls.
///
/// # Examples
///
/// ```
/// use parp_net::{Workload, WorkloadKind};
/// use parp_crypto::SecretKey;
///
/// let sender = SecretKey::from_seed(b"wl-sender");
/// let mut workload = Workload::new(42, sender, 0);
/// let call = workload.next_call(WorkloadKind::Read);
/// assert!(matches!(call, parp_contracts::RpcCall::GetBalance { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    rng: StdRng,
    sender: SecretKey,
    next_nonce: u64,
    accounts: Vec<Address>,
}

impl Workload {
    /// Creates a generator. `sender` signs write-workload transfers and
    /// must be funded on the target chain; `starting_nonce` must match its
    /// current account nonce.
    pub fn new(seed: u64, sender: SecretKey, starting_nonce: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let accounts = (0..64)
            .map(|_| Address::from_low_u64_be(rng.gen_range(1..1_000_000)))
            .collect();
        Workload {
            rng,
            sender,
            next_nonce: starting_nonce,
            accounts,
        }
    }

    /// The next call of the requested kind.
    pub fn next_call(&mut self, kind: WorkloadKind) -> RpcCall {
        match kind {
            WorkloadKind::Read => {
                let address = self.accounts[self.rng.gen_range(0..self.accounts.len())];
                RpcCall::GetBalance { address }
            }
            WorkloadKind::Write => {
                let to = self.accounts[self.rng.gen_range(0..self.accounts.len())];
                let tx = Transaction {
                    nonce: self.next_nonce,
                    gas_price: U256::ZERO,
                    gas_limit: 21_000,
                    to: Some(to),
                    value: U256::from(self.rng.gen_range(1..1_000u64)),
                    data: Vec::new(),
                }
                .sign(&self.sender);
                self.next_nonce += 1;
                RpcCall::SendRawTransaction { raw: tx.encode() }
            }
        }
    }

    /// A batch of `size` batchable read calls — the workload mode behind
    /// the batched PARP pipeline. Mostly balance reads (the paper's read
    /// workload), mixed with nonce reads (served from the same account
    /// multiproof) and an occasional unproven chain query, so batches
    /// exercise proven and unproven items together.
    pub fn next_read_batch(&mut self, size: usize) -> Vec<RpcCall> {
        (0..size)
            .map(|_| {
                let address = self.accounts[self.rng.gen_range(0..self.accounts.len())];
                match self.rng.gen_range(0..10u32) {
                    0..=6 => RpcCall::GetBalance { address },
                    7 | 8 => RpcCall::GetTransactionCount { address },
                    _ => RpcCall::BlockNumber,
                }
            })
            .collect()
    }

    /// A batch of `size` calls mixing **state reads and historical
    /// inclusion lookups** — the wallet/indexer-shaped workload the
    /// multi-header batch envelope exists for (Relay Mining's RPC relay
    /// accounting assumes exactly this kind of mixed read session).
    /// `lookups` supplies known transaction hashes (e.g. from
    /// previously mined blocks); roughly a third of the batch becomes
    /// `GetTransactionByHash`/`GetTransactionReceipt` over them, the
    /// rest state reads and the occasional chain query. With no known
    /// hashes the batch degenerates to [`Workload::next_read_batch`].
    pub fn next_mixed_read_batch(&mut self, size: usize, lookups: &[H256]) -> Vec<RpcCall> {
        if lookups.is_empty() {
            return self.next_read_batch(size);
        }
        (0..size)
            .map(|_| {
                let address = self.accounts[self.rng.gen_range(0..self.accounts.len())];
                match self.rng.gen_range(0..12u32) {
                    0..=5 => RpcCall::GetBalance { address },
                    6 | 7 => RpcCall::GetTransactionCount { address },
                    8 | 9 => RpcCall::GetTransactionByHash {
                        hash: lookups[self.rng.gen_range(0..lookups.len())],
                    },
                    10 => RpcCall::GetTransactionReceipt {
                        hash: lookups[self.rng.gen_range(0..lookups.len())],
                    },
                    _ => RpcCall::BlockNumber,
                }
            })
            .collect()
    }

    /// A mixed call: `read_fraction` in \[0,1\] chooses reads vs writes.
    pub fn next_mixed(&mut self, read_fraction: f64) -> RpcCall {
        let kind = if self.rng.gen_bool(read_fraction.clamp(0.0, 1.0)) {
            WorkloadKind::Read
        } else {
            WorkloadKind::Write
        };
        self.next_call(kind)
    }

    /// Builds a batch of `n` signed transfer transactions (used to fill
    /// blocks for the Figure 6 proof-size sweep).
    pub fn transfer_batch(&mut self, n: usize) -> Vec<parp_chain::SignedTransaction> {
        (0..n)
            .map(|_| {
                let to = self.accounts[self.rng.gen_range(0..self.accounts.len())];
                let tx = Transaction {
                    nonce: self.next_nonce,
                    gas_price: U256::ZERO,
                    gas_limit: 21_000,
                    to: Some(to),
                    value: U256::from(self.rng.gen_range(1..1_000u64)),
                    data: Vec::new(),
                }
                .sign(&self.sender);
                self.next_nonce += 1;
                tx
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let sender = SecretKey::from_seed(b"det");
        let mut a = Workload::new(7, sender, 0);
        let mut b = Workload::new(7, sender, 0);
        for _ in 0..10 {
            assert_eq!(
                a.next_call(WorkloadKind::Read),
                b.next_call(WorkloadKind::Read)
            );
        }
    }

    #[test]
    fn writes_have_increasing_nonces() {
        let sender = SecretKey::from_seed(b"nonce");
        let mut workload = Workload::new(1, sender, 5);
        for expected in 5..8u64 {
            let RpcCall::SendRawTransaction { raw } = workload.next_call(WorkloadKind::Write)
            else {
                panic!("expected a write");
            };
            let tx = parp_chain::SignedTransaction::decode(&raw).unwrap();
            assert_eq!(tx.tx().nonce, expected);
        }
    }

    #[test]
    fn batch_is_well_formed() {
        let sender = SecretKey::from_seed(b"batch");
        let mut workload = Workload::new(3, sender, 0);
        let batch = workload.transfer_batch(20);
        assert_eq!(batch.len(), 20);
        for (i, tx) in batch.iter().enumerate() {
            assert_eq!(tx.tx().nonce, i as u64);
            assert_eq!(tx.sender().unwrap(), sender.address());
        }
    }

    #[test]
    fn mixed_read_batch_spans_state_and_inclusion() {
        let sender = SecretKey::from_seed(b"mixed-batch");
        let mut workload = Workload::new(11, sender, 0);
        let lookups: Vec<parp_primitives::H256> =
            (0..4).map(|i| parp_crypto::keccak256(&[i as u8])).collect();
        let batch = workload.next_mixed_read_batch(64, &lookups);
        assert_eq!(batch.len(), 64);
        // Every generated call is batchable, and both families appear.
        assert!(batch.iter().all(RpcCall::batchable));
        assert!(batch
            .iter()
            .any(|c| matches!(c, RpcCall::GetBalance { .. })));
        assert!(batch.iter().any(|c| matches!(
            c,
            RpcCall::GetTransactionByHash { .. } | RpcCall::GetTransactionReceipt { .. }
        )));
        // Without known hashes it falls back to pure state reads.
        let fallback = workload.next_mixed_read_batch(16, &[]);
        assert!(fallback.iter().all(|c| !matches!(
            c,
            RpcCall::GetTransactionByHash { .. } | RpcCall::GetTransactionReceipt { .. }
        )));
    }

    #[test]
    fn mixed_respects_extremes() {
        let sender = SecretKey::from_seed(b"mix");
        let mut workload = Workload::new(9, sender, 0);
        for _ in 0..5 {
            assert!(matches!(
                workload.next_mixed(1.0),
                RpcCall::GetBalance { .. }
            ));
            assert!(matches!(
                workload.next_mixed(0.0),
                RpcCall::SendRawTransaction { .. }
            ));
        }
    }
}
