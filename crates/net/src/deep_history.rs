//! The deep-history serving scenario: a provider with a bounded memory
//! envelope answering inclusion lookups far behind its resident window.
//!
//! The node mines a chain thousands of blocks deep with the storage
//! tier on — every block archived into append-only segment files, the
//! resident window pruned, and the runtime's per-block inclusion tries
//! bounded by a byte budget that spills cold pages to disk. A Zipf
//! stream of old-block transaction lookups (most mass on the deepest
//! blocks, the access pattern archival RPC traffic shows) then drives
//! real batched PARP exchanges through the cold path.
//!
//! A second, fully resident network runs the *same* schedule in
//! lockstep as the control: every batch is served by both and the
//! response bytes compared, so the scenario asserts — not assumes —
//! that segment-backed serving is indistinguishable on the wire from
//! keeping everything in memory.

use crate::latency::LatencyModel;
use crate::sim::{Network, SimError};
use parp_contracts::RpcCall;
use parp_core::ProcessBatchOutcome;
use parp_primitives::{Address, H256, U256};
use parp_runtime::{Runtime, RuntimeConfig};
use parp_telemetry::{MetricsSnapshot, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning for the deep-history scenario.
#[derive(Debug, Clone, Copy)]
pub struct DeepHistoryConfig {
    /// Blocks to mine beyond the bootstrap (each carries one funding
    /// transaction, so every block has a provable inclusion target).
    pub blocks: u64,
    /// Resident window the chain keeps in memory (floored at
    /// [`parp_chain::MIN_HISTORY_WINDOW`]; 0 means the floor).
    pub window: u64,
    /// Warm-tier byte budget for rebuilt inclusion-trie pages.
    pub storage_budget_bytes: usize,
    /// Batched lookups to drive (each batch pairs a transaction lookup
    /// with its receipt lookup against one sampled block).
    pub lookups: usize,
    /// Zipf exponent of the block sampler: higher skews harder toward
    /// the oldest blocks.
    pub zipf_exponent: f64,
    /// Sampler seed.
    pub seed: u64,
}

impl Default for DeepHistoryConfig {
    fn default() -> Self {
        DeepHistoryConfig {
            blocks: 2_048,
            window: 0,
            storage_budget_bytes: 1_024,
            lookups: 48,
            zipf_exponent: 1.1,
            seed: 42,
        }
    }
}

/// Outcome of a deep-history run.
#[derive(Debug, Clone)]
pub struct DeepHistoryReport {
    /// Final chain height of the storage-tiered network.
    pub height: u64,
    /// Blocks still resident in memory (the pruning window).
    pub resident_blocks: u64,
    /// First resident block number.
    pub resident_base: u64,
    /// Bytes the history segments occupy on disk.
    pub history_disk_bytes: u64,
    /// Bytes the spilled trie pages occupy on disk.
    pub spill_disk_bytes: u64,
    /// Measured bytes of inclusion-trie pages resident at the end.
    pub resident_trie_bytes: u64,
    /// Warm-tier hits across the lookup stream.
    pub warm_hits: u64,
    /// Warm-tier misses (pages built from segment decodes).
    pub warm_misses: u64,
    /// Pages spilled to disk under budget pressure.
    pub spills: u64,
    /// Pages rehydrated from disk.
    pub rehydrates: u64,
    /// Batches served and verified valid by the client.
    pub served_batches: u64,
    /// Batches whose sampled block lay behind the resident window.
    pub cold_batches: u64,
    /// Whether every batch response matched the fully resident
    /// control network byte for byte.
    pub byte_identical: bool,
    /// End-of-run snapshot of the run's telemetry registry.
    pub metrics: MetricsSnapshot,
}

/// Deterministic Zipf sampler over `0..n`: index 0 carries the most
/// mass. Cumulative weights are precomputed once; each draw maps a
/// uniform integer onto the distribution by binary search.
struct ZipfSampler {
    cumulative: Vec<f64>,
}

/// Resolution of the uniform draw the sampler quantizes to.
const ZIPF_DRAW_STEPS: u64 = 1 << 20;

/// One block in this many carries a lookup-target transaction while
/// mining the deep history (the rest are empty blocks — history depth
/// is what the scenario stresses, not signature throughput).
const TX_STRIDE: u64 = 8;

impl ZipfSampler {
    fn new(n: usize, exponent: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 1..=n {
            total += (rank as f64).powf(-exponent);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let Some(&total) = self.cumulative.last() else {
            return 0;
        };
        let u = rng.gen_range(0..ZIPF_DRAW_STEPS) as f64 / ZIPF_DRAW_STEPS as f64;
        let target = u * total;
        self.cumulative.partition_point(|&c| c <= target)
    }
}

/// Runs the deep-history scenario and reports storage-tier figures.
///
/// Fully deterministic: both networks replay the identical bootstrap,
/// mining schedule and lookup stream, so the byte-identity comparison
/// is exact and the report reproduces across hosts.
///
/// # Errors
///
/// Propagates [`SimError`]s from setup, mining, and serving (the cold
/// tier failing to open its segment files surfaces as
/// [`SimError::Storage`]).
pub fn run_deep_history(config: &DeepHistoryConfig) -> Result<DeepHistoryReport, SimError> {
    let price = U256::from(10u64);
    let telemetry = Telemetry::new();

    // The network under test: bounded memory, segments on disk.
    let mut cold_net = Network::with_latency(LatencyModel::zero());
    cold_net.set_runtime(Runtime::new(RuntimeConfig::default()));
    cold_net.enable_deep_history(config.window, config.storage_budget_bytes)?;
    cold_net.attach_telemetry(&telemetry);

    // The control: same schedule, everything resident, no telemetry.
    let mut full_net = Network::with_latency(LatencyModel::zero());
    full_net.set_runtime(Runtime::new(RuntimeConfig::default()));

    let node_seed: &[u8] = b"deep-history-node";
    let client_seed: &[u8] = b"deep-history-client";
    let budget = U256::from(1u64) << 60;
    let cold_node = cold_net.spawn_node(node_seed, price);
    let full_node = full_net.spawn_node(node_seed, price);
    let mut cold_client = cold_net.spawn_client(client_seed, price);
    let mut full_client = full_net.spawn_client(client_seed, price);
    cold_net.connect(&mut cold_client, cold_node, budget)?;
    full_net.connect(&mut full_client, full_node, budget)?;

    // Mine the history: every TX_STRIDEth block carries one funding
    // transfer (a provable inclusion target); the rest are empty. The
    // transfers cycle over a fixed target set so the state stays small
    // and per-block cost constant — the scenario measures depth of
    // *history*, not breadth of *state* or signature throughput.
    let targets: Vec<Address> = (0..32u64)
        .map(|i| Address::from_low_u64_be(0xB10C_0000 + i))
        .collect();
    let mut funded = 0u64;
    for i in 0..config.blocks {
        if i % TX_STRIDE == 0 {
            let target = targets[(funded % targets.len() as u64) as usize];
            cold_net.fund(target);
            full_net.fund(target);
            funded += 1;
        } else {
            cold_net.advance_blocks(1)?;
            full_net.advance_blocks(1)?;
        }
    }

    // Lookup targets, oldest block first — read back through the
    // segments on the cold network, so the supply itself exercises the
    // archive path. The identical schedule makes both maps equal.
    let locations: Vec<(H256, u64)> = cold_net.transaction_locations();
    let provider = cold_net.node(cold_node).address();
    let resident_base = cold_net.chain().resident_base();

    let sampler = ZipfSampler::new(locations.len(), config.zipf_exponent);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut byte_identical = true;
    let mut served_batches = 0u64;
    let mut cold_batches = 0u64;
    for _ in 0..config.lookups {
        let (hash, block) = locations[sampler.sample(&mut rng)];
        if block < resident_base {
            cold_batches += 1;
        }
        let calls = vec![
            RpcCall::GetTransactionByHash { hash },
            RpcCall::GetTransactionReceipt { hash },
        ];
        // Both clients share one identity and one ledger history, so
        // the signed requests — and therefore the responses — must
        // agree byte for byte.
        let cold_request = cold_client.request_batch_from(provider, calls.clone())?;
        let full_request = full_client.request_batch_from(provider, calls)?;
        let cold_response = cold_net.serve_batch(cold_node, &cold_request)?;
        let full_response = full_net.serve_batch(full_node, &full_request)?;
        byte_identical &= cold_request.encode() == full_request.encode();
        byte_identical &= cold_response.encode() == full_response.encode();
        cold_net.sync_client(&mut cold_client);
        full_net.sync_client(&mut full_client);
        let outcome = cold_client.process_batch_response_from(provider, &cold_response)?;
        full_client.process_batch_response_from(provider, &full_response)?;
        if matches!(outcome, ProcessBatchOutcome::Valid { .. }) {
            served_batches += 1;
        }
    }

    let chain = cold_net.chain();
    let (height, resident_blocks, resident_base, history_disk_bytes) = (
        chain.height(),
        chain.resident_blocks(),
        chain.resident_base(),
        chain.history_disk_bytes(),
    );
    let tier = cold_net.runtime().cold_storage().map(|cold| cold.tier());
    let report = DeepHistoryReport {
        height,
        resident_blocks,
        resident_base,
        history_disk_bytes,
        spill_disk_bytes: tier.map(|t| t.disk_bytes()).unwrap_or(0),
        resident_trie_bytes: tier.map(|t| t.resident_bytes() as u64).unwrap_or(0),
        warm_hits: tier.map(|t| t.hits()).unwrap_or(0),
        warm_misses: tier.map(|t| t.misses()).unwrap_or(0),
        spills: tier.map(|t| t.spill_count()).unwrap_or(0),
        rehydrates: tier.map(|t| t.rehydrate_count()).unwrap_or(0),
        served_batches,
        cold_batches,
        byte_identical,
        metrics: telemetry.registry.snapshot(),
    };
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sampler_skews_toward_low_ranks() {
        let sampler = ZipfSampler::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 100];
        for _ in 0..2_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 dominates rank 10");
        assert!(counts[0] > counts[50]);
        let head: u32 = counts[..10].iter().sum();
        assert!(head > 1_000, "top decile carries most of the mass");
        // Degenerate sampler never panics.
        assert_eq!(ZipfSampler::new(0, 1.0).sample(&mut rng), 0);
    }

    #[test]
    fn deep_history_sustains_thousands_of_blocks_under_budget() {
        let config = DeepHistoryConfig::default();
        let report = run_deep_history(&config).expect("scenario runs");
        assert!(report.height > 2_000, "chain is thousands of blocks deep");
        assert!(
            report.resident_blocks < report.height / 4,
            "almost all blocks pruned from memory"
        );
        assert!(report.resident_base > 0);
        assert!(report.history_disk_bytes > 0, "segments hold the history");
        // The acceptance property: serving from segments is
        // indistinguishable on the wire from serving from memory.
        assert!(report.byte_identical, "cold responses match resident ones");
        assert_eq!(report.served_batches, config.lookups as u64);
        assert!(report.cold_batches > 0, "Zipf stream reached cold blocks");
        // The warm tier stayed within its budget and actually tiered:
        // pages were built, spilled under pressure, and rehydrated.
        assert!(report.resident_trie_bytes <= config.storage_budget_bytes as u64);
        assert!(report.warm_misses > 0);
        assert!(report.spills > 0, "budget pressure forced spills");
        assert!(report.rehydrates > 0, "revisited pages came back from disk");
        // Telemetry adopted the live tier counters.
        assert_eq!(
            report
                .metrics
                .counter("parp_runtime_warm_tier_spills_total", &[]),
            Some(report.spills)
        );
        assert_eq!(
            report
                .metrics
                .gauge("parp_runtime_warm_tier_resident_bytes", &[]),
            Some(report.resident_trie_bytes as i64)
        );
    }
}
