//! Deterministic fault injection for the simulated network.
//!
//! A [`FaultPlane`] turns the perfectly reliable [`crate::Network`]
//! transport into one that drops messages, delays them, corrupts
//! payload bytes, crashes providers, and partitions provider subsets —
//! the boring failures a production deployment sees far more often
//! than provable fraud. Every decision is drawn from a splitmix64
//! stream seeded by the schedule's `seed` and indexed by a monotone
//! **step counter** (one step per injected exchange attempt), so a run
//! is fully replayable from `(seed, step)`: no wall clock, no global
//! RNG, byte-identical schedules across same-seed runs.
//!
//! Faults are *transport-level*: a corrupted response is flipped
//! **without** re-signing, so the client's §V-D signature check
//! classifies it (as [`parp_core::InvalidReason::ResponseSignatureInvalid`])
//! instead of accepting it — distinct from [`parp_core::Misbehavior`],
//! which models a lying provider that signs what it sends.

use parp_contracts::{ParpBatchResponse, ParpResponse};
use parp_telemetry::{Counter, Telemetry};

/// The splitmix64 mixer: a full-period, statistically solid 64-bit
/// permutation (Steele et al.), used everywhere the simulator needs a
/// cheap deterministic stream. Public so resilience machinery layered
/// above the network (backoff jitter) can share the generator.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One provider crash window: the node at `provider_index` refuses
/// connections for every injection step in `from_step..until_step`,
/// then comes back (the restart).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// Simulation index of the crashed node ([`crate::NodeId`] `.0`).
    pub provider_index: usize,
    /// First step the node is down (inclusive).
    pub from_step: u64,
    /// First step the node is back up (exclusive end).
    pub until_step: u64,
}

/// One network partition window: every listed provider is unreachable
/// (requests hang until the caller's deadline) for steps in
/// `from_step..until_step`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Simulation indices of the partitioned nodes.
    pub provider_indices: Vec<usize>,
    /// First step the partition holds (inclusive).
    pub from_step: u64,
    /// First step connectivity is restored (exclusive end).
    pub until_step: u64,
}

/// A corruption burst: during `from_step..until_step` the corruption
/// probability is raised to `corrupt_ppm` (replacing the base rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptionBurst {
    /// First step of the burst (inclusive).
    pub from_step: u64,
    /// First step past the burst (exclusive end).
    pub until_step: u64,
    /// Corruption probability during the burst, parts per million.
    pub corrupt_ppm: u32,
}

/// Per-provider overrides of the global fault rates — how a scenario
/// makes exactly one provider flaky while the rest stay clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProviderFaultRates {
    /// Simulation index of the targeted node.
    pub provider_index: usize,
    /// Message-drop probability for this provider (ppm).
    pub drop_ppm: u32,
    /// Payload-corruption probability for this provider (ppm).
    pub corrupt_ppm: u32,
    /// Added-delay probability for this provider (ppm).
    pub delay_ppm: u32,
}

/// A seeded, replayable fault schedule.
///
/// All probabilities are in parts per million (`1_000_000` = always).
/// Rate-driven faults are drawn independently per step with priority
/// drop > corrupt > delay; window-driven faults (crashes, partitions)
/// take precedence over all rates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the splitmix64 decision stream.
    pub seed: u64,
    /// Global message-drop probability (ppm).
    pub drop_ppm: u32,
    /// Global payload-corruption probability (ppm).
    pub corrupt_ppm: u32,
    /// Global added-delay probability (ppm).
    pub delay_ppm: u32,
    /// Added delay for an ordinary delayed message (µs).
    pub delay_base_us: u64,
    /// Added delay for a delay *spike* (µs); one in eight delayed
    /// messages spikes.
    pub delay_spike_us: u64,
    /// Provider crash + restart windows.
    pub crashes: Vec<CrashWindow>,
    /// Network partition windows.
    pub partitions: Vec<PartitionWindow>,
    /// Corruption bursts layered over the base corruption rate.
    pub bursts: Vec<CorruptionBurst>,
    /// Per-provider rate overrides (first matching entry wins).
    pub overrides: Vec<ProviderFaultRates>,
}

impl Default for FaultConfig {
    /// A schedule that injects nothing (all rates zero, no windows).
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            drop_ppm: 0,
            corrupt_ppm: 0,
            delay_ppm: 0,
            delay_base_us: 2_000,
            delay_spike_us: 40_000,
            crashes: Vec::new(),
            partitions: Vec::new(),
            bursts: Vec::new(),
            overrides: Vec::new(),
        }
    }
}

/// What the plane decided to do to one exchange attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEffect {
    /// Deliver the exchange untouched.
    None,
    /// The provider's process is down: the connection is refused
    /// immediately ([`crate::SimError::Crashed`]).
    Crashed,
    /// The provider is partitioned away: the request hangs until the
    /// caller's deadline burns ([`crate::SimError::Timeout`]).
    Partitioned,
    /// The message is lost in flight; the caller's deadline burns.
    Drop,
    /// The response payload is corrupted in flight (one byte flipped,
    /// signature left alone — caught by the §V-D signature check).
    Corrupt {
        /// Deterministic byte-position selector for the flip.
        nudge: u64,
    },
    /// The response is delivered late by `added_us` microseconds (a
    /// deadline overrun converts this into a timeout downstream).
    Delay {
        /// Extra one-way delay injected (µs).
        added_us: u64,
    },
}

/// Live counters for every fault the plane injected, adoptable by a
/// telemetry registry (`parp_net_fault_*_total`). `timeouts` counts
/// deadline burns the *network* observed, whatever fault caused them.
#[derive(Debug, Clone, Default)]
pub struct FaultCounters {
    /// Messages dropped.
    pub drops: Counter,
    /// Responses corrupted.
    pub corruptions: Counter,
    /// Responses delayed.
    pub delays: Counter,
    /// Connections refused by a crashed provider.
    pub crashes: Counter,
    /// Requests swallowed by a partition.
    pub partitions: Counter,
    /// Exchanges that burned the caller's deadline.
    pub timeouts: Counter,
}

/// The installed fault plane: a [`FaultConfig`] plus the monotone step
/// counter its decision stream is indexed by.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    config: FaultConfig,
    step: u64,
    counters: FaultCounters,
}

impl FaultPlane {
    /// Wraps a schedule with the step counter at zero.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlane {
            config,
            step: 0,
            counters: FaultCounters::default(),
        }
    }

    /// The schedule this plane replays.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Exchange attempts decided so far.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// The live injection counters.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Registers the injection counters with `telemetry`'s registry.
    pub fn register(&self, telemetry: &Telemetry) {
        let r = &telemetry.registry;
        r.adopt_counter("parp_net_fault_drops_total", &[], &self.counters.drops);
        r.adopt_counter(
            "parp_net_fault_corruptions_total",
            &[],
            &self.counters.corruptions,
        );
        r.adopt_counter("parp_net_fault_delays_total", &[], &self.counters.delays);
        r.adopt_counter("parp_net_fault_crashes_total", &[], &self.counters.crashes);
        r.adopt_counter(
            "parp_net_fault_partitions_total",
            &[],
            &self.counters.partitions,
        );
        r.adopt_counter("parp_net_call_timeouts_total", &[], &self.counters.timeouts);
    }

    /// Counts one deadline burn (called by the network, not by
    /// [`FaultPlane::decide`] — delays only become timeouts once the
    /// caller's deadline is known).
    pub(crate) fn note_timeout(&self) {
        self.counters.timeouts.inc();
    }

    /// Draws the fault (if any) for the next exchange attempt against
    /// the node at `provider_index`, advancing the step counter.
    /// Deterministic: the decision depends only on `(seed, step,
    /// provider_index)` and the configured windows.
    pub fn decide(&mut self, provider_index: usize) -> FaultEffect {
        let step = self.step;
        self.step += 1;
        // Window-driven faults outrank every probabilistic one.
        if self.config.crashes.iter().any(|w| {
            w.provider_index == provider_index && step >= w.from_step && step < w.until_step
        }) {
            self.counters.crashes.inc();
            return FaultEffect::Crashed;
        }
        if self.config.partitions.iter().any(|w| {
            step >= w.from_step
                && step < w.until_step
                && w.provider_indices.contains(&provider_index)
        }) {
            self.counters.partitions.inc();
            return FaultEffect::Partitioned;
        }
        let rates = self
            .config
            .overrides
            .iter()
            .find(|o| o.provider_index == provider_index);
        let drop_ppm = rates.map(|r| r.drop_ppm).unwrap_or(self.config.drop_ppm);
        let mut corrupt_ppm = rates
            .map(|r| r.corrupt_ppm)
            .unwrap_or(self.config.corrupt_ppm);
        let delay_ppm = rates.map(|r| r.delay_ppm).unwrap_or(self.config.delay_ppm);
        if let Some(burst) = self
            .config
            .bursts
            .iter()
            .find(|b| step >= b.from_step && step < b.until_step)
        {
            corrupt_ppm = burst.corrupt_ppm;
        }
        // Independent draws per fault class, all from (seed, step,
        // provider): changing one rate never reshuffles the other
        // classes' decisions.
        let base =
            splitmix64(self.config.seed ^ splitmix64(step).wrapping_add(provider_index as u64));
        let roll = |salt: u64| splitmix64(base ^ salt) % 1_000_000;
        if roll(0x1) < drop_ppm as u64 {
            self.counters.drops.inc();
            return FaultEffect::Drop;
        }
        if roll(0x2) < corrupt_ppm as u64 {
            self.counters.corruptions.inc();
            return FaultEffect::Corrupt {
                nudge: splitmix64(base ^ 0x3),
            };
        }
        if roll(0x4) < delay_ppm as u64 {
            self.counters.delays.inc();
            let spike = splitmix64(base ^ 0x5).is_multiple_of(8);
            let added_us = if spike {
                self.config.delay_spike_us
            } else {
                self.config.delay_base_us
            };
            return FaultEffect::Delay { added_us };
        }
        FaultEffect::None
    }
}

/// Flips one deterministic byte of a served single response **without**
/// re-signing it — transport corruption. The recomputed `h_res` no
/// longer matches `σ_res`, so the client classifies the response
/// `Invalid(ResponseSignatureInvalid)` instead of trusting it.
pub fn corrupt_response(response: &mut ParpResponse, nudge: u64) {
    if response.result.is_empty() {
        // Nothing to flip in the payload: grow it, which breaks the
        // hash just the same.
        response.result.push(0xA5);
    } else {
        let index = (nudge as usize) % response.result.len();
        response.result[index] ^= 0x40;
    }
}

/// Batch analogue of [`corrupt_response`]: flips one byte of one item's
/// result, condemning the whole signed envelope.
pub fn corrupt_batch_response(response: &mut ParpBatchResponse, nudge: u64) {
    if let Some(result) = response.results.iter_mut().find(|r| !r.is_empty()) {
        let index = (nudge as usize) % result.len();
        result[index] ^= 0x40;
    } else if let Some(first) = response.results.first_mut() {
        first.push(0xA5);
    } else {
        response.results.push(vec![0xA5]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic_config(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_ppm: 100_000,
            corrupt_ppm: 50_000,
            delay_ppm: 200_000,
            crashes: vec![CrashWindow {
                provider_index: 1,
                from_step: 10,
                until_step: 20,
            }],
            partitions: vec![PartitionWindow {
                provider_indices: vec![2, 3],
                from_step: 15,
                until_step: 30,
            }],
            bursts: vec![CorruptionBurst {
                from_step: 40,
                until_step: 60,
                corrupt_ppm: 900_000,
            }],
            ..FaultConfig::default()
        }
    }

    #[test]
    fn same_seed_replays_byte_identically() {
        let mut a = FaultPlane::new(chaotic_config(7));
        let mut b = FaultPlane::new(chaotic_config(7));
        let decisions_a: Vec<FaultEffect> = (0..200).map(|i| a.decide(i % 4)).collect();
        let decisions_b: Vec<FaultEffect> = (0..200).map(|i| b.decide(i % 4)).collect();
        assert_eq!(decisions_a, decisions_b);
        assert_eq!(a.step(), 200);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlane::new(chaotic_config(7));
        let mut b = FaultPlane::new(chaotic_config(8));
        let decisions_a: Vec<FaultEffect> = (0..200).map(|i| a.decide(i % 4)).collect();
        let decisions_b: Vec<FaultEffect> = (0..200).map(|i| b.decide(i % 4)).collect();
        assert_ne!(decisions_a, decisions_b);
    }

    #[test]
    fn windows_fire_exactly_in_range() {
        let config = chaotic_config(1);
        let mut plane = FaultPlane::new(FaultConfig {
            drop_ppm: 0,
            corrupt_ppm: 0,
            delay_ppm: 0,
            bursts: Vec::new(),
            ..config
        });
        for step in 0..40u64 {
            // One decision per step against provider 1 first, then read
            // what provider 2 would have seen by rebuilding a plane at
            // that step (windows are step-indexed, not provider-paired).
            let effect = plane.decide(1);
            let expected = if (10..20).contains(&step) {
                FaultEffect::Crashed
            } else {
                FaultEffect::None
            };
            assert_eq!(effect, expected, "step {step}");
        }
        let mut partitioned = FaultPlane::new(FaultConfig {
            drop_ppm: 0,
            corrupt_ppm: 0,
            delay_ppm: 0,
            bursts: Vec::new(),
            ..chaotic_config(1)
        });
        for step in 0..40u64 {
            let effect = partitioned.decide(2);
            let expected = if (15..30).contains(&step) {
                FaultEffect::Partitioned
            } else {
                FaultEffect::None
            };
            assert_eq!(effect, expected, "step {step}");
        }
    }

    #[test]
    fn burst_raises_corruption_rate() {
        let mut plane = FaultPlane::new(FaultConfig {
            seed: 3,
            bursts: vec![CorruptionBurst {
                from_step: 0,
                until_step: 1_000,
                corrupt_ppm: 1_000_000,
            }],
            ..FaultConfig::default()
        });
        for _ in 0..50 {
            assert!(matches!(plane.decide(0), FaultEffect::Corrupt { .. }));
        }
        assert_eq!(plane.counters().corruptions.get(), 50);
    }

    #[test]
    fn overrides_target_one_provider() {
        let mut plane = FaultPlane::new(FaultConfig {
            seed: 9,
            overrides: vec![ProviderFaultRates {
                provider_index: 0,
                drop_ppm: 1_000_000,
                corrupt_ppm: 0,
                delay_ppm: 0,
            }],
            ..FaultConfig::default()
        });
        for i in 0..20 {
            let effect = plane.decide(i % 2);
            if i % 2 == 0 {
                assert_eq!(effect, FaultEffect::Drop);
            } else {
                assert_eq!(effect, FaultEffect::None);
            }
        }
    }

    #[test]
    fn rates_hit_within_tolerance() {
        let mut plane = FaultPlane::new(FaultConfig {
            seed: 42,
            drop_ppm: 100_000, // 10%
            ..FaultConfig::default()
        });
        let drops = (0..10_000)
            .filter(|_| plane.decide(0) == FaultEffect::Drop)
            .count();
        // 10% ± 1.5 points over 10k draws.
        assert!((850..=1_150).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn corruption_breaks_payload_not_length_invariants() {
        let secret = parp_crypto::SecretKey::from_seed(b"fault-test");
        let sig = parp_crypto::sign(&secret, &parp_primitives::H256::ZERO);
        let mut response = ParpResponse {
            channel_id: 0,
            block_number: 1,
            amount: parp_primitives::U256::from(10u64),
            result: vec![1, 2, 3],
            proof: Vec::new(),
            request_hash: parp_primitives::H256::ZERO,
            request_sig: sig,
            response_sig: sig,
        };
        let original = response.result.clone();
        corrupt_response(&mut response, 5);
        assert_ne!(response.result, original);
        assert_eq!(response.result.len(), original.len());
    }
}
