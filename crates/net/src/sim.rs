//! The deterministic in-process PARP network: one simulated chain, any
//! number of PARP full nodes and light clients, and a logical clock.

use crate::latency::LatencyModel;
use parp_chain::{BlockError, Blockchain, SignedTransaction};
use parp_contracts::{
    build_module_call, ModuleCall, ParpBatchRequest, ParpBatchResponse, ParpExecutor, ParpRequest,
    ParpResponse, RpcCall, DISPUTE_WINDOW_BLOCKS,
};
use parp_core::{FullNode, LightClient, ProcessBatchOutcome, ProcessOutcome, ServeError};
use parp_crypto::SecretKey;
use parp_primitives::{Address, U256};
use parp_runtime::Runtime;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Identifier of a registered full node within the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Aggregate traffic and timing statistics for one PARP exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeStats {
    /// PARP request size on the wire (bytes).
    pub request_bytes: usize,
    /// PARP response size on the wire (bytes).
    pub response_bytes: usize,
    /// Merkle proof portion of the response (bytes).
    pub proof_bytes: usize,
    /// Server-side processing time (steps B+C), measured.
    pub server_us: u64,
    /// Simulated network round-trip time.
    pub network_us: u64,
}

/// Errors surfaced by the simulation driver.
#[derive(Debug)]
pub enum SimError {
    /// The underlying chain rejected a block.
    Chain(BlockError),
    /// A full node refused to serve.
    Serve(ServeError),
    /// A client-side protocol error.
    Client(parp_core::ClientError),
    /// An on-chain module call reverted.
    Reverted(String),
    /// Unknown node id.
    UnknownNode(usize),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Chain(e) => write!(f, "chain error: {e}"),
            SimError::Serve(e) => write!(f, "serve error: {e}"),
            SimError::Client(e) => write!(f, "client error: {e}"),
            SimError::Reverted(e) => write!(f, "module call reverted: {e}"),
            SimError::UnknownNode(id) => write!(f, "unknown node {id}"),
        }
    }
}

impl Error for SimError {}

impl From<BlockError> for SimError {
    fn from(e: BlockError) -> Self {
        SimError::Chain(e)
    }
}

impl From<ServeError> for SimError {
    fn from(e: ServeError) -> Self {
        SimError::Serve(e)
    }
}

impl From<parp_core::ClientError> for SimError {
    fn from(e: parp_core::ClientError) -> Self {
        SimError::Client(e)
    }
}

/// The simulated PARP network.
///
/// # Examples
///
/// ```
/// use parp_net::Network;
/// use parp_contracts::RpcCall;
/// use parp_core::ProcessOutcome;
/// use parp_primitives::U256;
///
/// let mut net = Network::new();
/// let node = net.spawn_node(b"node-1", U256::from(10u64));
/// let mut client = net.spawn_client(b"client-1", U256::from(10u64));
/// net.connect(&mut client, node, U256::from(100_000u64)).unwrap();
/// let (outcome, stats) = net
///     .parp_call(&mut client, node, RpcCall::BlockNumber)
///     .unwrap();
/// assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
/// assert!(stats.request_bytes > 0);
/// ```
#[derive(Debug)]
pub struct Network {
    chain: Blockchain,
    executor: ParpExecutor,
    nodes: Vec<FullNode>,
    nonces: HashMap<Address, u64>,
    latency: LatencyModel,
    faucet: SecretKey,
    clock_us: u64,
    /// The serving runtime every node's exchanges route through:
    /// snapshot cache (invalidated by [`Network::mine`]), sharded proof
    /// generation, and the admission controller the contention scenario
    /// drives.
    runtime: Runtime,
}

/// Funds given to every spawned identity: 100 tokens.
fn spawn_grant() -> U256 {
    U256::from(100u64) * U256::from(1_000_000_000_000_000_000u64)
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// Creates a network with a funded faucet and default LAN latency.
    pub fn new() -> Self {
        Self::with_latency(LatencyModel::default())
    }

    /// Creates a network with a custom latency model.
    pub fn with_latency(latency: LatencyModel) -> Self {
        let faucet = SecretKey::from_seed(b"network-faucet");
        // Faucet holds 2^170-ish wei: enough for any experiment.
        let supply = U256::ONE << 170;
        let chain = Blockchain::new(vec![(faucet.address(), supply)]);
        Network {
            chain,
            executor: ParpExecutor::new(),
            nodes: Vec::new(),
            nonces: HashMap::new(),
            latency,
            faucet,
            clock_us: 0,
            runtime: Runtime::default(),
        }
    }

    /// Replaces the serving runtime (cache size, shard count, admission
    /// limits). The existing cache is dropped with the old runtime.
    pub fn set_runtime(&mut self, runtime: Runtime) {
        self.runtime = runtime;
    }

    /// The serving runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Mutable access to the serving runtime (admission checks, shard
    /// reconfiguration).
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.runtime
    }

    /// The simulated chain.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// The on-chain module state.
    pub fn executor(&self) -> &ParpExecutor {
        &self.executor
    }

    /// A registered node.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn node(&self, id: NodeId) -> &FullNode {
        &self.nodes[id.0]
    }

    /// Mutable access to a registered node (e.g. to inject misbehavior).
    pub fn node_mut(&mut self, id: NodeId) -> &mut FullNode {
        &mut self.nodes[id.0]
    }

    /// Elapsed simulated time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.clock_us
    }

    /// Mines a block with the given transactions.
    ///
    /// # Errors
    ///
    /// Propagates chain validation failures.
    pub fn mine(&mut self, txs: Vec<SignedTransaction>) -> Result<(), SimError> {
        self.chain.produce_block(txs, &mut self.executor)?;
        // The head moved: evict unreachable snapshot tries and warm the
        // new head so the next exchange is a cache hit.
        self.runtime.note_new_head(&self.chain);
        Ok(())
    }

    /// Mines `n` empty blocks (time passing).
    ///
    /// # Errors
    ///
    /// Propagates chain validation failures.
    pub fn advance_blocks(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.mine(Vec::new())?;
        }
        Ok(())
    }

    fn next_nonce(&mut self, address: Address) -> u64 {
        // Track nonces locally so queued transactions in one block don't
        // collide; fall back to chain state for fresh accounts.
        let chain_nonce = self.chain.nonce(&address);
        let entry = self.nonces.entry(address).or_insert(chain_nonce);
        if *entry < chain_nonce {
            *entry = chain_nonce;
        }
        let nonce = *entry;
        *entry += 1;
        nonce
    }

    /// Submits a module call from `key`, mines it, and returns whether the
    /// receipt reported success.
    ///
    /// # Errors
    ///
    /// Fails when the chain rejects the transaction outright.
    pub fn submit_module_call(
        &mut self,
        key: &SecretKey,
        call: ModuleCall,
        value: U256,
    ) -> Result<bool, SimError> {
        let nonce = self.next_nonce(key.address());
        let tx = build_module_call(key, nonce, call, value);
        self.mine(vec![tx])?;
        let receipts = self
            .chain
            .receipts(self.chain.height())
            .expect("just mined");
        Ok(receipts.last().map(|r| r.status == 1).unwrap_or(false))
    }

    /// Creates, funds, stakes and registers a PARP full node, returning
    /// its id.
    pub fn spawn_node(&mut self, seed: &[u8], price_per_call: U256) -> NodeId {
        let key = SecretKey::from_seed(seed);
        self.fund(key.address());
        let stake = parp_contracts::min_deposit();
        assert!(
            self.submit_module_call(&key.clone(), ModuleCall::Deposit, stake)
                .expect("deposit tx"),
            "deposit must succeed"
        );
        assert!(
            self.submit_module_call(&key, ModuleCall::SetServing { serving: true }, U256::ZERO)
                .expect("serving tx"),
            "serving registration must succeed"
        );
        let node = FullNode::new(key, price_per_call);
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Creates and funds a light client identity.
    pub fn spawn_client(&mut self, seed: &[u8], price_per_call: U256) -> LightClient {
        let key = SecretKey::from_seed(seed);
        self.fund(key.address());
        LightClient::new(key, price_per_call)
    }

    /// Sends 100 tokens from the faucet to `address`.
    pub fn fund(&mut self, address: Address) {
        let nonce = self.next_nonce(self.faucet.address());
        let tx = parp_chain::Transaction {
            nonce,
            gas_price: U256::ZERO,
            gas_limit: 21_000,
            to: Some(address),
            value: spawn_grant(),
            data: Vec::new(),
        }
        .sign(&self.faucet.clone());
        self.mine(vec![tx]).expect("faucet transfer");
    }

    /// Funds many addresses with as few blocks as possible (chunked to
    /// stay under the block gas limit) — the way to populate a large
    /// state for throughput experiments without mining one block per
    /// account.
    pub fn fund_many(&mut self, addresses: &[Address]) {
        // 21k gas per transfer against a 30M block limit → stay well
        // below with 1000 transfers per block.
        for chunk in addresses.chunks(1000) {
            let faucet = self.faucet;
            let txs: Vec<SignedTransaction> = chunk
                .iter()
                .map(|address| {
                    let nonce = self.next_nonce(faucet.address());
                    parp_chain::Transaction {
                        nonce,
                        gas_price: U256::ZERO,
                        gas_limit: 21_000,
                        to: Some(*address),
                        value: spawn_grant(),
                        data: Vec::new(),
                    }
                    .sign(&faucet)
                })
                .collect();
            self.mine(txs).expect("bulk faucet transfer");
        }
    }

    /// The on-chain serving registry (how clients discover nodes, §IV-A).
    pub fn registry(&self) -> Vec<Address> {
        self.executor.fndm().registry()
    }

    /// Every mined transaction as `(hash, containing block)` in chain
    /// order — the supply of historical inclusion-lookup targets for
    /// mixed batched workloads and tests ([`Network::fund`] mines one
    /// faucet transfer per call, so funding N addresses leaves N
    /// targets spread over N distinct blocks).
    pub fn transaction_locations(&self) -> Vec<(parp_primitives::H256, u64)> {
        (1..=self.chain.height())
            .flat_map(|number| {
                self.chain
                    .block(number)
                    .expect("height bounded")
                    .transactions
                    .iter()
                    .map(move |tx| (tx.hash(), number))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Syncs a client's header store up to the chain head.
    pub fn sync_client(&self, client: &mut LightClient) {
        let from = client.tip().map(|h| h.number + 1).unwrap_or(0);
        for n in from..=self.chain.height() {
            client.sync_header(self.chain.block(n).expect("height bounded").header.clone());
        }
    }

    /// Runs the full bootstrap + connection setup of §IV-E: header sync,
    /// handshake, `OpenChannel` transaction, receipt. Returns the channel
    /// id.
    ///
    /// # Errors
    ///
    /// Propagates handshake and chain failures.
    pub fn connect(
        &mut self,
        client: &mut LightClient,
        node_id: NodeId,
        budget: U256,
    ) -> Result<u64, SimError> {
        self.sync_client(client);
        let node = self
            .nodes
            .get(node_id.0)
            .ok_or(SimError::UnknownNode(node_id.0))?;
        client.start_handshake(node.address())?;
        let now = self.chain.head().header.timestamp;
        let confirm = node.confirm_handshake(client.address(), now);
        self.clock_us += self.latency.round_trip_us(64, 128);
        let nonce = self.next_nonce(client.address());
        let open_tx = client.accept_confirmation(&confirm, budget, nonce)?;
        self.mine(vec![open_tx])?;
        let receipts = self
            .chain
            .receipts(self.chain.height())
            .expect("just mined");
        if receipts.last().map(|r| r.status) != Some(1) {
            client.abandon_connection();
            return Err(SimError::Reverted("open channel reverted".into()));
        }
        let channel_id = self.executor.cmm().channel_count() as u64 - 1;
        client.channel_opened(channel_id)?;
        self.sync_client(client);
        Ok(channel_id)
    }

    /// One full PARP exchange: the client builds a request, the node
    /// serves it, the client verifies the response.
    ///
    /// # Errors
    ///
    /// Propagates client and server refusals (a *served but corrupt*
    /// response is not an error — it comes back as the outcome).
    pub fn parp_call(
        &mut self,
        client: &mut LightClient,
        node_id: NodeId,
        call: RpcCall,
    ) -> Result<(ProcessOutcome, ExchangeStats), SimError> {
        if self.nodes.get(node_id.0).is_none() {
            return Err(SimError::UnknownNode(node_id.0));
        }
        let request = client.request(call)?;
        let started = Instant::now();
        let response = self.serve(node_id, &request)?;
        let server_us = started.elapsed().as_micros() as u64;
        // The client needs the header for res.m_B before verifying.
        self.sync_client(client);
        let request_bytes = request.encode().len();
        let response_bytes = response.encode().len();
        let proof_bytes = response.proof_bytes();
        let network_us = self.latency.round_trip_us(request_bytes, response_bytes);
        self.clock_us += network_us + server_us;
        let outcome = client.process_response(&response)?;
        Ok((
            outcome,
            ExchangeStats {
                request_bytes,
                response_bytes,
                proof_bytes,
                server_us,
                network_us,
            },
        ))
    }

    /// One full **batched** PARP exchange: the client signs N calls once,
    /// the node serves them against a single snapshot with a deduplicated
    /// multiproof, and the client classifies every item.
    ///
    /// # Errors
    ///
    /// Propagates client and server refusals (a *served but corrupt*
    /// response is not an error — it comes back as the outcome).
    pub fn parp_batch_call(
        &mut self,
        client: &mut LightClient,
        node_id: NodeId,
        calls: Vec<RpcCall>,
    ) -> Result<(ProcessBatchOutcome, ExchangeStats), SimError> {
        if self.nodes.get(node_id.0).is_none() {
            return Err(SimError::UnknownNode(node_id.0));
        }
        let request = client.request_batch(calls)?;
        let started = Instant::now();
        let response = self.serve_batch(node_id, &request)?;
        let server_us = started.elapsed().as_micros() as u64;
        // The client needs the header for res.m_B before verifying.
        self.sync_client(client);
        let request_bytes = request.encode().len();
        let response_bytes = response.encode().len();
        let proof_bytes = response.proof_bytes();
        let network_us = self.latency.round_trip_us(request_bytes, response_bytes);
        self.clock_us += network_us + server_us;
        let outcome = client.process_batch_response(&response)?;
        Ok((
            outcome,
            ExchangeStats {
                request_bytes,
                response_bytes,
                proof_bytes,
                server_us,
                network_us,
            },
        ))
    }

    /// Server-side handling only (used by the scalability harness).
    /// Routes through the serving runtime's snapshot cache; responses
    /// are byte-identical to the sequential path.
    ///
    /// # Errors
    ///
    /// Propagates the node's refusal.
    pub fn serve(
        &mut self,
        node_id: NodeId,
        request: &ParpRequest,
    ) -> Result<ParpResponse, SimError> {
        let node = self
            .nodes
            .get_mut(node_id.0)
            .ok_or(SimError::UnknownNode(node_id.0))?;
        Ok(self
            .runtime
            .serve_request(node, request, &mut self.chain, &mut self.executor)?)
    }

    /// Server-side batch handling only (used by the benches). Routes
    /// through the serving runtime: cached snapshot trie, sharded
    /// multiproof generation — byte-identical to the sequential path.
    ///
    /// # Errors
    ///
    /// Propagates the node's refusal.
    pub fn serve_batch(
        &mut self,
        node_id: NodeId,
        request: &ParpBatchRequest,
    ) -> Result<ParpBatchResponse, SimError> {
        let node = self
            .nodes
            .get_mut(node_id.0)
            .ok_or(SimError::UnknownNode(node_id.0))?;
        Ok(self
            .runtime
            .serve_batch(node, request, &mut self.chain, &mut self.executor)?)
    }

    /// Cooperative closure initiated by the client: close, wait out the
    /// dispute window, confirm, settle.
    ///
    /// # Errors
    ///
    /// Propagates chain failures and reverted settlements.
    pub fn close_cooperatively(
        &mut self,
        client: &mut LightClient,
        _node_id: NodeId,
    ) -> Result<(), SimError> {
        let close = client.close_channel_call()?;
        let client_key = *client.secret();
        if !self.submit_module_call(&client_key, close, U256::ZERO)? {
            return Err(SimError::Reverted("close channel reverted".into()));
        }
        self.advance_blocks(DISPUTE_WINDOW_BLOCKS)?;
        let confirm = client.confirm_closure_call()?;
        if !self.submit_module_call(&client_key, confirm, U256::ZERO)? {
            return Err(SimError::Reverted("confirm closure reverted".into()));
        }
        client.channel_closed();
        Ok(())
    }

    /// Relays a fraud proof through a witness node (§IV-F): the witness
    /// submits the on-chain transaction on the client's behalf.
    ///
    /// # Errors
    ///
    /// Propagates chain failures.
    pub fn report_fraud(
        &mut self,
        evidence: &parp_core::FraudEvidence,
        witness_id: NodeId,
    ) -> Result<bool, SimError> {
        let witness = self
            .nodes
            .get(witness_id.0)
            .ok_or(SimError::UnknownNode(witness_id.0))?;
        let witness_key = *witness.secret();
        let witness_addr = witness.address();
        let call = evidence.to_module_call(witness_addr);
        self.submit_module_call(&witness_key, call, U256::ZERO)
    }

    /// Relays a **batch** fraud proof through a witness node: one
    /// provably wrong item in a signed batch slashes the offender exactly
    /// like single-call fraud.
    ///
    /// # Errors
    ///
    /// Propagates chain failures.
    pub fn report_batch_fraud(
        &mut self,
        evidence: &parp_core::BatchFraudEvidence,
        witness_id: NodeId,
    ) -> Result<bool, SimError> {
        let witness = self
            .nodes
            .get(witness_id.0)
            .ok_or(SimError::UnknownNode(witness_id.0))?;
        let witness_key = *witness.secret();
        let witness_addr = witness.address();
        let call = evidence.to_module_call(witness_addr);
        self.submit_module_call(&witness_key, call, U256::ZERO)
    }
}
