//! The deterministic in-process PARP network: one simulated chain, any
//! number of PARP full nodes and light clients, and a logical clock.

use crate::fault::{self, FaultConfig, FaultEffect, FaultPlane};
use crate::latency::LatencyModel;
use parp_chain::{BlockError, Blockchain, SignedTransaction};
use parp_contracts::{
    build_module_call, ModuleCall, ParpBatchRequest, ParpBatchResponse, ParpExecutor, ParpRequest,
    ParpResponse, RpcCall, DISPUTE_WINDOW_BLOCKS,
};
use parp_core::{FullNode, LightClient, ProcessBatchOutcome, ProcessOutcome, ServeError};
use parp_crypto::SecretKey;
use parp_primitives::{Address, U256};
use parp_runtime::Runtime;
use parp_telemetry::{
    ArgValue, Counter, Histogram, StageRecorder, StageSample, Telemetry, TimeSource,
};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Identifier of a registered full node within the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Serve-time quantum of the simulator's default deterministic clock:
/// every measured serve leg reports this many microseconds.
///
/// The simulator used to stamp `ExchangeStats::server_us` (and through
/// it the sim clock, provider aggregates, and reputation latencies)
/// with `Instant::now()` wall readings — host scheduling noise leaking
/// into what is otherwise a fully deterministic run (lint W002). By
/// default every serve measurement now reports this fixed quantum;
/// harnesses that genuinely measure the hardware (the Figure 7
/// scalability sweep, the bench binaries) opt back into wall time via
/// [`Network::set_time_source`].
pub const DEFAULT_SERVE_QUANTUM_US: u64 = 50;

/// Default per-call deadline budget against the simulated clock (µs):
/// generous enough that no fault-free exchange comes near it, tight
/// enough that *nothing* can hang the simulation — a dropped or
/// partitioned exchange burns at most this much simulated time and
/// surfaces as [`SimError::Timeout`]. Chaos scenarios tighten it via
/// [`Network::set_call_deadline_us`].
pub const DEFAULT_CALL_DEADLINE_US: u64 = 2_000_000;

/// Aggregate traffic and timing statistics for one PARP exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeStats {
    /// PARP request size on the wire (bytes).
    pub request_bytes: usize,
    /// PARP response size on the wire (bytes).
    pub response_bytes: usize,
    /// Merkle proof portion of the response (bytes).
    pub proof_bytes: usize,
    /// Server-side processing time (steps B+C), measured.
    pub server_us: u64,
    /// Simulated network round-trip time.
    pub network_us: u64,
}

impl ExchangeStats {
    /// End-to-end latency of the exchange: server time + network time.
    pub fn latency_us(&self) -> u64 {
        self.server_us + self.network_us
    }
}

/// Nearest-rank `q`-quantile of unsorted latency samples (0 when
/// empty): the **exact** percentile definition the fixed-memory
/// histograms approximate.
///
/// Production accounting ([`ProviderAggregate`], the gateway's
/// reputation book) now lives in [`parp_telemetry::Histogram`]s, whose
/// quantiles agree with this function within the histogram's
/// documented one-sided relative error
/// ([`parp_telemetry::RELATIVE_ERROR`] = 2⁻⁶ ≈ 1.56%, never *above*
/// the exact value). This O(n log n) full-sort form is kept as the
/// reference for tests and offline analysis of raw sample sets.
pub fn latency_quantile_us(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Rolling per-provider accounting the network maintains across every
/// exchange it carries: call and failure counts plus a **fixed-memory**
/// latency histogram, from which the gateway's reputation scorer and
/// the bench report read p50/p99. One exchange (single or batched)
/// counts once.
///
/// The aggregate used to retain every latency sample in an unbounded
/// `Vec<u64>` and re-sort it on each quantile query — memory and CPU
/// both scaling with exchange count, a wall for population-scale runs.
/// It now records into a [`parp_telemetry::Histogram`] (~30 KiB flat,
/// O(buckets) quantiles within the documented
/// [`parp_telemetry::RELATIVE_ERROR`]), and its counters are live
/// [`Counter`] cells a telemetry registry adopts per provider.
#[derive(Debug, Default)]
pub struct ProviderAggregate {
    calls: Counter,
    failures: Counter,
    latency: Arc<Histogram>,
}

impl ProviderAggregate {
    /// Exchanges attempted against this provider.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// Exchanges that ended in a refusal, an invalid response, or
    /// detected fraud.
    pub fn failures(&self) -> u64 {
        self.failures.get()
    }

    /// Counts one attempted exchange.
    pub fn record_call(&self) {
        self.calls.inc();
    }

    /// Counts one failed exchange.
    pub fn record_failure(&self) {
        self.failures.inc();
    }

    /// Records a completed exchange's end-to-end latency.
    pub fn record_latency(&self, latency_us: u64) {
        self.latency.record(latency_us);
    }

    /// Number of latency samples recorded.
    pub fn samples(&self) -> u64 {
        self.latency.count()
    }

    /// Median exchange latency (µs; histogram quantile, within
    /// [`parp_telemetry::RELATIVE_ERROR`] below the exact
    /// nearest-rank value).
    pub fn latency_p50_us(&self) -> u64 {
        self.latency.quantile(0.50)
    }

    /// 99th-percentile exchange latency (µs; same error bound).
    pub fn latency_p99_us(&self) -> u64 {
        self.latency.quantile(0.99)
    }

    /// Arbitrary latency quantile (µs; same error bound).
    pub fn latency_quantile(&self, q: f64) -> u64 {
        self.latency.quantile(q)
    }

    /// Live counter handle for registry adoption.
    pub fn calls_counter(&self) -> Counter {
        self.calls.clone()
    }

    /// Live counter handle for registry adoption.
    pub fn failures_counter(&self) -> Counter {
        self.failures.clone()
    }

    /// Shared latency histogram for registry adoption.
    pub fn latency_histogram(&self) -> &Arc<Histogram> {
        &self.latency
    }

    /// Current memory footprint in bytes — constant in the number of
    /// recorded exchanges (the regression the telemetry tests assert).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.latency.mem_bytes()
    }
}

impl Clone for ProviderAggregate {
    /// Deep snapshot: the clone owns fresh cells holding the source's
    /// current readings (how scenario reports freeze per-provider
    /// stats without aliasing the live network accounting).
    fn clone(&self) -> Self {
        ProviderAggregate {
            calls: Counter::with_value(self.calls.get()),
            failures: Counter::with_value(self.failures.get()),
            latency: Arc::new(Histogram::clone(&self.latency)),
        }
    }
}

impl PartialEq for ProviderAggregate {
    fn eq(&self, other: &Self) -> bool {
        self.calls == other.calls
            && self.failures == other.failures
            && self.latency == other.latency
    }
}

impl Eq for ProviderAggregate {}

/// Errors surfaced by the simulation driver.
#[derive(Debug)]
pub enum SimError {
    /// The underlying chain rejected a block.
    Chain(BlockError),
    /// A full node refused to serve.
    Serve(ServeError),
    /// A client-side protocol error.
    Client(parp_core::ClientError),
    /// An on-chain module call reverted.
    Reverted(String),
    /// Unknown node id.
    UnknownNode(usize),
    /// The on-disk storage tier failed (opening or writing segment
    /// files for deep history).
    Storage(std::io::Error),
    /// A node with this registry address already exists in the
    /// simulation (same seed spawned twice).
    DuplicateNode(Address),
    /// The exchange exceeded the per-call deadline budget (the message
    /// was dropped, the provider partitioned away, or the response was
    /// delayed past the deadline). The simulated clock was charged the
    /// full deadline.
    Timeout {
        /// The provider the exchange was attempted against.
        provider: Address,
        /// The deadline budget that was burned (µs of simulated time).
        deadline_us: u64,
    },
    /// The provider's process is down (fault-plane crash window): the
    /// connection was refused immediately.
    Crashed(Address),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Chain(e) => write!(f, "chain error: {e}"),
            SimError::Serve(e) => write!(f, "serve error: {e}"),
            SimError::Client(e) => write!(f, "client error: {e}"),
            SimError::Reverted(e) => write!(f, "module call reverted: {e}"),
            SimError::UnknownNode(id) => write!(f, "unknown node {id}"),
            SimError::Storage(e) => write!(f, "storage error: {e}"),
            SimError::DuplicateNode(address) => {
                write!(
                    f,
                    "a full node with registry address {address} already exists \
                     (duplicate spawn seed?)"
                )
            }
            SimError::Timeout {
                provider,
                deadline_us,
            } => {
                write!(
                    f,
                    "exchange with {provider} exceeded its {deadline_us} µs deadline"
                )
            }
            SimError::Crashed(provider) => {
                write!(f, "provider {provider} is down (connection refused)")
            }
        }
    }
}

impl Error for SimError {}

impl From<BlockError> for SimError {
    fn from(e: BlockError) -> Self {
        SimError::Chain(e)
    }
}

impl From<ServeError> for SimError {
    fn from(e: ServeError) -> Self {
        SimError::Serve(e)
    }
}

impl From<parp_core::ClientError> for SimError {
    fn from(e: parp_core::ClientError) -> Self {
        SimError::Client(e)
    }
}

/// The simulated PARP network.
///
/// # Examples
///
/// ```
/// use parp_net::Network;
/// use parp_contracts::RpcCall;
/// use parp_core::ProcessOutcome;
/// use parp_primitives::U256;
///
/// let mut net = Network::new();
/// let node = net.spawn_node(b"node-1", U256::from(10u64));
/// let mut client = net.spawn_client(b"client-1", U256::from(10u64));
/// net.connect(&mut client, node, U256::from(100_000u64)).unwrap();
/// let (outcome, stats) = net
///     .parp_call(&mut client, node, RpcCall::BlockNumber)
///     .unwrap();
/// assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
/// assert!(stats.request_bytes > 0);
/// ```
#[derive(Debug)]
pub struct Network {
    chain: Blockchain,
    executor: ParpExecutor,
    nodes: Vec<FullNode>,
    nonces: HashMap<Address, u64>,
    latency: LatencyModel,
    faucet: SecretKey,
    clock_us: u64,
    /// The serving runtime every node's exchanges route through:
    /// snapshot cache (invalidated by [`Network::mine`]), sharded proof
    /// generation, and the admission controller the contention scenario
    /// drives.
    runtime: Runtime,
    /// Per-provider exchange accounting (see [`ProviderAggregate`]).
    provider_stats: HashMap<Address, ProviderAggregate>,
    /// The attached observability hub, if any (see
    /// [`Network::attach_telemetry`]).
    telemetry: Option<Telemetry>,
    /// Network-wide metric handles, present with `telemetry`.
    metrics: Option<NetMetrics>,
    /// Shared per-stage serve-timing scratch every node reports into
    /// (drained per exchange to emit trace sub-spans).
    stages: StageRecorder,
    /// The injected clock every serve-time measurement routes through
    /// (see [`DEFAULT_SERVE_QUANTUM_US`]): deterministic by default,
    /// wall time when a measurement harness injects it.
    time: TimeSource,
    /// The installed fault schedule, if any (see
    /// [`Network::install_fault_plane`]).
    fault: Option<FaultPlane>,
    /// Per-call deadline budget in simulated µs (see
    /// [`DEFAULT_CALL_DEADLINE_US`]). A dropped, partitioned, or
    /// over-delayed exchange charges exactly this much simulated time
    /// and returns [`SimError::Timeout`] — no exchange can hang.
    call_deadline_us: u64,
}

/// The network's registered global metric handles.
#[derive(Debug, Clone)]
struct NetMetrics {
    exchanges_total: Counter,
    failures_total: Counter,
    exchange_latency_us: Arc<Histogram>,
}

/// Funds given to every spawned identity: 100 tokens.
fn spawn_grant() -> U256 {
    U256::from(100u64) * U256::from(1_000_000_000_000_000_000u64)
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// Creates a network with a funded faucet and default LAN latency.
    pub fn new() -> Self {
        Self::with_latency(LatencyModel::default())
    }

    /// Creates a network with a custom latency model.
    pub fn with_latency(latency: LatencyModel) -> Self {
        let faucet = SecretKey::from_seed(b"network-faucet");
        // Faucet holds 2^170-ish wei: enough for any experiment.
        let supply = U256::ONE << 170;
        let chain = Blockchain::new(vec![(faucet.address(), supply)]);
        let time = TimeSource::fixed(DEFAULT_SERVE_QUANTUM_US);
        let mut runtime = Runtime::default();
        runtime.set_time_source(time.clone());
        Network {
            chain,
            executor: ParpExecutor::new(),
            nodes: Vec::new(),
            nonces: HashMap::new(),
            latency,
            faucet,
            clock_us: 0,
            runtime,
            provider_stats: HashMap::new(),
            telemetry: None,
            metrics: None,
            stages: StageRecorder::new(),
            time,
            fault: None,
            call_deadline_us: DEFAULT_CALL_DEADLINE_US,
        }
    }

    /// Installs a seeded fault schedule: from now on every
    /// `parp_call` / `parp_batch_call` / fan-out leg consults the plane
    /// before flying. Replaces any previously installed plane (and its
    /// step counter). With telemetry attached, the plane's injection
    /// counters are registered immediately.
    pub fn install_fault_plane(&mut self, config: FaultConfig) {
        let plane = FaultPlane::new(config);
        if let Some(telemetry) = &self.telemetry {
            plane.register(telemetry);
        }
        self.fault = Some(plane);
    }

    /// The installed fault plane, if any (step counter + injection
    /// counters).
    pub fn fault_plane(&self) -> Option<&FaultPlane> {
        self.fault.as_ref()
    }

    /// Sets the per-call deadline budget (simulated µs). Values below
    /// one serve quantum are clamped to it.
    pub fn set_call_deadline_us(&mut self, deadline_us: u64) {
        self.call_deadline_us = deadline_us.max(DEFAULT_SERVE_QUANTUM_US);
    }

    /// The per-call deadline budget (simulated µs).
    pub fn call_deadline_us(&self) -> u64 {
        self.call_deadline_us
    }

    /// Advances the simulated clock by `us` without carrying any
    /// traffic — how resilience layers above the network model backoff
    /// waits and other deliberate pauses.
    pub fn advance_clock(&mut self, us: u64) {
        self.clock_us += us;
    }

    /// Draws the fault effect for one exchange attempt against node
    /// `node_index` (no-op [`FaultEffect::None`] without a plane).
    fn fault_effect(&mut self, node_index: usize) -> FaultEffect {
        match &mut self.fault {
            Some(plane) => plane.decide(node_index),
            None => FaultEffect::None,
        }
    }

    /// Counts one deadline burn on the plane's timeout counter.
    fn note_timeout(&self) {
        if let Some(plane) = &self.fault {
            plane.note_timeout();
        }
    }

    /// Replaces the clock serve-time measurements route through — for
    /// the whole network *and* its serving runtime (and every already
    /// spawned node's stage recorder). The default is a deterministic
    /// [`TimeSource::fixed`] quantum; measurement harnesses inject
    /// [`TimeSource::wall`] to time the hardware.
    pub fn set_time_source(&mut self, time: TimeSource) {
        self.time = time.clone();
        self.runtime.set_time_source(time.clone());
        for node in &mut self.nodes {
            node.set_time_source(time.clone());
        }
    }

    /// The clock serve-time measurements route through.
    pub fn time_source(&self) -> &TimeSource {
        &self.time
    }

    /// Attaches an observability hub: registers the runtime's and the
    /// network's metrics with `telemetry.registry` (adopting every
    /// live counter and per-provider aggregate, so attaching late
    /// loses no counts), wires a shared [`StageRecorder`] into every
    /// node, and — when `telemetry.tracer` is enabled — starts
    /// emitting per-exchange request-lifecycle spans stamped with the
    /// simulated clock (sign → flight → serve with verify / multiproof
    /// / sign-response sub-spans → flight → classify).
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.runtime.attach_telemetry(telemetry);
        let r = &telemetry.registry;
        self.metrics = Some(NetMetrics {
            exchanges_total: r.counter("parp_net_exchanges_total", &[]),
            failures_total: r.counter("parp_net_failures_total", &[]),
            exchange_latency_us: r.histogram("parp_net_exchange_latency_us", &[]),
        });
        for (provider, aggregate) in &self.provider_stats {
            Self::register_provider(telemetry, *provider, aggregate);
        }
        if let Some(plane) = &self.fault {
            plane.register(telemetry);
        }
        telemetry.tracer.name_track(0, "client");
        for (index, node) in self.nodes.iter_mut().enumerate() {
            node.set_stage_recorder(Some(self.stages.clone()));
            telemetry
                .tracer
                .name_track(index as u32 + 1, &format!("provider {}", node.address()));
        }
        self.telemetry = Some(telemetry.clone());
    }

    /// The attached observability hub, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    fn register_provider(telemetry: &Telemetry, provider: Address, aggregate: &ProviderAggregate) {
        let address = provider.to_string();
        let labels = [("provider", address.as_str())];
        let r = &telemetry.registry;
        r.adopt_counter(
            "parp_net_provider_calls_total",
            &labels,
            &aggregate.calls_counter(),
        );
        r.adopt_counter(
            "parp_net_provider_failures_total",
            &labels,
            &aggregate.failures_counter(),
        );
        r.adopt_histogram(
            "parp_net_provider_latency_us",
            &labels,
            aggregate.latency_histogram(),
        );
    }

    /// The aggregate for `provider`, created (and, with telemetry
    /// attached, registered under per-provider labels) on first touch.
    fn provider_entry(&mut self, provider: Address) -> &mut ProviderAggregate {
        if !self.provider_stats.contains_key(&provider) {
            let aggregate = ProviderAggregate::default();
            if let Some(telemetry) = &self.telemetry {
                Self::register_provider(telemetry, provider, &aggregate);
            }
            self.provider_stats.insert(provider, aggregate);
        }
        self.provider_stats
            .get_mut(&provider)
            .expect("just inserted")
    }

    /// Replaces the serving runtime (cache size, shard count, admission
    /// limits). The existing cache is dropped with the old runtime; the
    /// network's injected clock carries over so a runtime swap cannot
    /// silently reintroduce wall-clock readings into the sim.
    pub fn set_runtime(&mut self, runtime: Runtime) {
        self.runtime = runtime;
        self.runtime.set_time_source(self.time.clone());
    }

    /// The serving runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Mutable access to the serving runtime (admission checks, shard
    /// reconfiguration).
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.runtime
    }

    /// The simulated chain.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// The on-chain module state.
    pub fn executor(&self) -> &ParpExecutor {
        &self.executor
    }

    /// A registered node.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn node(&self, id: NodeId) -> &FullNode {
        &self.nodes[id.0]
    }

    /// Mutable access to a registered node (e.g. to inject misbehavior).
    pub fn node_mut(&mut self, id: NodeId) -> &mut FullNode {
        &mut self.nodes[id.0]
    }

    /// Elapsed simulated time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.clock_us
    }

    /// Mines a block with the given transactions.
    ///
    /// # Errors
    ///
    /// Propagates chain validation failures.
    pub fn mine(&mut self, txs: Vec<SignedTransaction>) -> Result<(), SimError> {
        self.chain.produce_block(txs, &mut self.executor)?;
        // The head moved: evict unreachable snapshot tries and warm the
        // new head so the next exchange is a cache hit.
        self.runtime.note_new_head(&self.chain);
        Ok(())
    }

    /// Mines `n` empty blocks (time passing).
    ///
    /// # Errors
    ///
    /// Propagates chain validation failures.
    pub fn advance_blocks(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.mine(Vec::new())?;
        }
        Ok(())
    }

    fn next_nonce(&mut self, address: Address) -> u64 {
        // Track nonces locally so queued transactions in one block don't
        // collide; fall back to chain state for fresh accounts.
        let chain_nonce = self.chain.nonce(&address);
        let entry = self.nonces.entry(address).or_insert(chain_nonce);
        if *entry < chain_nonce {
            *entry = chain_nonce;
        }
        let nonce = *entry;
        *entry += 1;
        nonce
    }

    /// Submits a module call from `key`, mines it, and returns whether the
    /// receipt reported success.
    ///
    /// # Errors
    ///
    /// Fails when the chain rejects the transaction outright.
    pub fn submit_module_call(
        &mut self,
        key: &SecretKey,
        call: ModuleCall,
        value: U256,
    ) -> Result<bool, SimError> {
        let nonce = self.next_nonce(key.address());
        let tx = build_module_call(key, nonce, call, value);
        self.mine(vec![tx])?;
        let receipts = self
            .chain
            .receipts(self.chain.height())
            .expect("just mined");
        Ok(receipts.last().map(|r| r.status == 1).unwrap_or(false))
    }

    /// Creates, funds, stakes and registers a PARP full node, returning
    /// its id.
    ///
    /// # Panics
    ///
    /// Panics when a node with the same registry address already exists
    /// (a duplicate seed would otherwise silently create a second
    /// `FullNode` behind one on-chain identity — the second `Deposit`
    /// just tops up the first, and every registry-keyed view would
    /// conflate the two). Use [`Network::try_spawn_node`] to handle the
    /// collision as a value.
    pub fn spawn_node(&mut self, seed: &[u8], price_per_call: U256) -> NodeId {
        match self.try_spawn_node(seed, price_per_call) {
            Ok(id) => id,
            Err(e) => panic!("spawn_node: {e}"),
        }
    }

    /// Fallible [`Network::spawn_node`]: detects registry-address
    /// collisions instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateNode`] when a node with the same
    /// address is already registered.
    pub fn try_spawn_node(
        &mut self,
        seed: &[u8],
        price_per_call: U256,
    ) -> Result<NodeId, SimError> {
        let key = SecretKey::from_seed(seed);
        if self.nodes.iter().any(|n| n.address() == key.address()) {
            return Err(SimError::DuplicateNode(key.address()));
        }
        self.fund(key.address());
        let stake = parp_contracts::min_deposit();
        assert!(
            self.submit_module_call(&key.clone(), ModuleCall::Deposit, stake)
                .expect("deposit tx"),
            "deposit must succeed"
        );
        assert!(
            self.submit_module_call(&key, ModuleCall::SetServing { serving: true }, U256::ZERO)
                .expect("serving tx"),
            "serving registration must succeed"
        );
        let mut node = FullNode::new(key, price_per_call);
        node.set_time_source(self.time.clone());
        if let Some(telemetry) = &self.telemetry {
            node.set_stage_recorder(Some(self.stages.clone()));
            telemetry.tracer.name_track(
                self.nodes.len() as u32 + 1,
                &format!("provider {}", node.address()),
            );
        }
        self.nodes.push(node);
        Ok(NodeId(self.nodes.len() - 1))
    }

    /// Looks up a registered node's simulation id by its registry
    /// address — how a registry-driven client maps on-chain discovery
    /// onto a serving endpoint.
    pub fn node_id_by_address(&self, address: &Address) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.address() == *address)
            .map(NodeId)
    }

    /// Creates and funds a light client identity.
    pub fn spawn_client(&mut self, seed: &[u8], price_per_call: U256) -> LightClient {
        let key = SecretKey::from_seed(seed);
        self.fund(key.address());
        LightClient::new(key, price_per_call)
    }

    /// Sends 100 tokens from the faucet to `address`.
    pub fn fund(&mut self, address: Address) {
        let nonce = self.next_nonce(self.faucet.address());
        let tx = parp_chain::Transaction {
            nonce,
            gas_price: U256::ZERO,
            gas_limit: 21_000,
            to: Some(address),
            value: spawn_grant(),
            data: Vec::new(),
        }
        .sign(&self.faucet.clone());
        self.mine(vec![tx]).expect("faucet transfer");
    }

    /// Funds many addresses with as few blocks as possible (chunked to
    /// stay under the block gas limit) — the way to populate a large
    /// state for throughput experiments without mining one block per
    /// account.
    pub fn fund_many(&mut self, addresses: &[Address]) {
        // 21k gas per transfer against a 30M block limit → stay well
        // below with 1000 transfers per block.
        for chunk in addresses.chunks(1000) {
            let faucet = self.faucet;
            let txs: Vec<SignedTransaction> = chunk
                .iter()
                .map(|address| {
                    let nonce = self.next_nonce(faucet.address());
                    parp_chain::Transaction {
                        nonce,
                        gas_price: U256::ZERO,
                        gas_limit: 21_000,
                        to: Some(*address),
                        value: spawn_grant(),
                        data: Vec::new(),
                    }
                    .sign(&faucet)
                })
                .collect();
            self.mine(txs).expect("bulk faucet transfer");
        }
    }

    /// The on-chain serving registry (how clients discover nodes, §IV-A).
    ///
    /// Duplicate-free by construction: the FNDM keys records by address
    /// and [`Network::spawn_node`] refuses address collisions, so one
    /// entry here is one distinct serving identity.
    pub fn registry(&self) -> Vec<Address> {
        self.executor.fndm().registry()
    }

    /// Every mined transaction as `(hash, containing block)` in chain
    /// order — the supply of historical inclusion-lookup targets for
    /// mixed batched workloads and tests ([`Network::fund`] mines one
    /// faucet transfer per call, so funding N addresses leaves N
    /// targets spread over N distinct blocks).
    pub fn transaction_locations(&self) -> Vec<(parp_primitives::H256, u64)> {
        // `transactions_at` decodes pruned blocks out of the history
        // segments, so the supply of lookup targets survives deep
        // history (blocks the node never archived contribute nothing).
        (1..=self.chain.height())
            .flat_map(|number| {
                self.chain
                    .transactions_at(number)
                    .unwrap_or_default()
                    .iter()
                    .map(|tx| (tx.hash(), number))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Syncs a client's header store up to the chain head.
    pub fn sync_client(&self, client: &mut LightClient) {
        let from = client.tip().map(|h| h.number + 1).unwrap_or(0);
        for n in from..=self.chain.height() {
            // `header_at` falls through to the history segments for
            // headers behind the resident window.
            if let Some(header) = self.chain.header_at(n) {
                client.sync_header(header);
            }
        }
    }

    /// Turns on the storage tier for deep historical serving: attaches
    /// an append-only [`parp_store::BlockStore`] to the chain (archiving
    /// every block and pruning the resident window down to `window`,
    /// floored at [`parp_chain::MIN_HISTORY_WINDOW`]) and routes the
    /// runtime's inclusion proofs through a cold-storage tier whose
    /// resident trie pages are bounded by `storage_budget_bytes`.
    ///
    /// Call before [`Network::attach_telemetry`] so the tier's counters
    /// are adopted, and before mining the history the scenario will
    /// look back into.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Storage`] when the segment files cannot be
    /// created.
    pub fn enable_deep_history(
        &mut self,
        window: u64,
        storage_budget_bytes: usize,
    ) -> Result<(), SimError> {
        let history_dir = parp_store::scratch_dir("net-history").map_err(SimError::Storage)?;
        let store = parp_store::BlockStore::open(&history_dir).map_err(SimError::Storage)?;
        self.chain
            .attach_history(store, window)
            .map_err(SimError::Storage)?;
        let spill_dir = parp_store::scratch_dir("net-spill").map_err(SimError::Storage)?;
        let spill = parp_store::SpillStore::open(&spill_dir).map_err(SimError::Storage)?;
        self.runtime
            .enable_cold_storage(spill, storage_budget_bytes);
        Ok(())
    }

    /// Runs the full bootstrap + connection setup of §IV-E: header sync,
    /// handshake, `OpenChannel` transaction, receipt. Returns the channel
    /// id.
    ///
    /// # Errors
    ///
    /// Propagates handshake and chain failures.
    pub fn connect(
        &mut self,
        client: &mut LightClient,
        node_id: NodeId,
        budget: U256,
    ) -> Result<u64, SimError> {
        self.sync_client(client);
        let node = self
            .nodes
            .get(node_id.0)
            .ok_or(SimError::UnknownNode(node_id.0))?;
        client.start_handshake(node.address())?;
        let now = self.chain.head().header.timestamp;
        let confirm = node.confirm_handshake(client.address(), now);
        self.clock_us += self.latency.round_trip_us(64, 128);
        let nonce = self.next_nonce(client.address());
        let open_tx = client.accept_confirmation(&confirm, budget, nonce)?;
        self.mine(vec![open_tx])?;
        let receipts = self
            .chain
            .receipts(self.chain.height())
            .expect("just mined");
        if receipts.last().map(|r| r.status) != Some(1) {
            client.abandon_connection();
            return Err(SimError::Reverted("open channel reverted".into()));
        }
        let channel_id = self.executor.cmm().channel_count() as u64 - 1;
        client.channel_opened(channel_id)?;
        self.sync_client(client);
        Ok(channel_id)
    }

    /// One full PARP exchange: the client builds a request, the node
    /// serves it, the client verifies the response.
    ///
    /// # Errors
    ///
    /// Propagates client and server refusals (a *served but corrupt*
    /// response is not an error — it comes back as the outcome).
    pub fn parp_call(
        &mut self,
        client: &mut LightClient,
        node_id: NodeId,
        call: RpcCall,
    ) -> Result<(ProcessOutcome, ExchangeStats), SimError> {
        let provider = self
            .nodes
            .get(node_id.0)
            .ok_or(SimError::UnknownNode(node_id.0))?
            .address();
        let deadline_us = self.call_deadline_us;
        let effect = self.fault_effect(node_id.0);
        match effect {
            FaultEffect::Crashed => {
                // Connection refused: the attempt costs one one-way hop.
                self.provider_entry(provider).record_call();
                self.note_provider_failure(provider);
                self.clock_us += self.latency.one_way_us(64);
                return Err(SimError::Crashed(provider));
            }
            FaultEffect::Partitioned => {
                // The request vanishes into the partition; the caller's
                // deadline burns in full.
                self.provider_entry(provider).record_call();
                self.note_provider_failure(provider);
                self.note_timeout();
                self.clock_us += deadline_us;
                return Err(SimError::Timeout {
                    provider,
                    deadline_us,
                });
            }
            _ => {}
        }
        let request = client.request_from(provider, call)?;
        self.provider_entry(provider).record_call();
        if effect == FaultEffect::Drop {
            // The signed request was lost in flight: the client waits
            // out its deadline, then abandons the in-flight entry (a
            // retry re-presents the same cumulative amount, so dropping
            // it is payment-safe).
            client.forget_pending(provider, &request.request_hash);
            self.note_provider_failure(provider);
            self.note_timeout();
            self.clock_us += deadline_us;
            return Err(SimError::Timeout {
                provider,
                deadline_us,
            });
        }
        let trace_t0 = self.exchange_trace_start();
        let started = self.time.start();
        let mut response = match self.serve(node_id, &request) {
            Ok(response) => response,
            Err(e) => {
                self.note_provider_failure(provider);
                return Err(e);
            }
        };
        let server_us = self.time.elapsed_us(started);
        if let FaultEffect::Corrupt { nudge } = effect {
            // Transport corruption: flip a payload byte *without*
            // re-signing — the §V-D signature check downstream refuses
            // the response instead of surfacing the flipped bytes.
            fault::corrupt_response(&mut response, nudge);
        }
        // The client needs the header for res.m_B before verifying.
        self.sync_client(client);
        let request_bytes = request.encode().len();
        let response_bytes = response.encode().len();
        let proof_bytes = response.proof_bytes();
        let mut network_us = self.latency.round_trip_us(request_bytes, response_bytes);
        if let FaultEffect::Delay { added_us } = effect {
            network_us += added_us;
        }
        if network_us + server_us > deadline_us {
            // The response exists but arrived past the deadline: the
            // client already walked away, so it is never classified.
            client.forget_pending(provider, &request.request_hash);
            self.note_provider_failure(provider);
            self.note_timeout();
            self.clock_us += deadline_us;
            return Err(SimError::Timeout {
                provider,
                deadline_us,
            });
        }
        self.clock_us += network_us + server_us;
        // Scoped processing: the response arrived over this provider's
        // connection, so pairing can never cross onto another channel.
        let outcome = match client.process_response_from(provider, &response) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.note_provider_failure(provider);
                return Err(e.into());
            }
        };
        let stats = ExchangeStats {
            request_bytes,
            response_bytes,
            proof_bytes,
            server_us,
            network_us,
        };
        if let Some(t0) = trace_t0 {
            let verdict = match &outcome {
                ProcessOutcome::Valid { .. } => "valid",
                ProcessOutcome::Invalid(_) => "invalid",
                ProcessOutcome::Fraud(_) => "fraud",
            };
            self.trace_exchange(node_id, "call", 1, t0, &stats, verdict);
        }
        self.note_provider_outcome(
            provider,
            matches!(outcome, ProcessOutcome::Valid { .. }),
            stats.latency_us(),
        );
        Ok((outcome, stats))
    }

    /// One full **batched** PARP exchange: the client signs N calls once,
    /// the node serves them against a single snapshot with a deduplicated
    /// multiproof, and the client classifies every item.
    ///
    /// # Errors
    ///
    /// Propagates client and server refusals (a *served but corrupt*
    /// response is not an error — it comes back as the outcome).
    pub fn parp_batch_call(
        &mut self,
        client: &mut LightClient,
        node_id: NodeId,
        calls: Vec<RpcCall>,
    ) -> Result<(ProcessBatchOutcome, ExchangeStats), SimError> {
        let provider = self
            .nodes
            .get(node_id.0)
            .ok_or(SimError::UnknownNode(node_id.0))?
            .address();
        let batch_size = calls.len() as u64;
        let deadline_us = self.call_deadline_us;
        let effect = self.fault_effect(node_id.0);
        match effect {
            FaultEffect::Crashed => {
                self.provider_entry(provider).record_call();
                self.note_provider_failure(provider);
                self.clock_us += self.latency.one_way_us(64);
                return Err(SimError::Crashed(provider));
            }
            FaultEffect::Partitioned => {
                self.provider_entry(provider).record_call();
                self.note_provider_failure(provider);
                self.note_timeout();
                self.clock_us += deadline_us;
                return Err(SimError::Timeout {
                    provider,
                    deadline_us,
                });
            }
            _ => {}
        }
        let request = client.request_batch_from(provider, calls)?;
        self.provider_entry(provider).record_call();
        if effect == FaultEffect::Drop {
            client.forget_pending_batch(provider, &request.request_hash);
            self.note_provider_failure(provider);
            self.note_timeout();
            self.clock_us += deadline_us;
            return Err(SimError::Timeout {
                provider,
                deadline_us,
            });
        }
        let trace_t0 = self.exchange_trace_start();
        let started = self.time.start();
        let mut response = match self.serve_batch(node_id, &request) {
            Ok(response) => response,
            Err(e) => {
                self.note_provider_failure(provider);
                return Err(e);
            }
        };
        let server_us = self.time.elapsed_us(started);
        if let FaultEffect::Corrupt { nudge } = effect {
            fault::corrupt_batch_response(&mut response, nudge);
        }
        // The client needs the header for res.m_B before verifying.
        self.sync_client(client);
        let request_bytes = request.encode().len();
        let response_bytes = response.encode().len();
        let proof_bytes = response.proof_bytes();
        let mut network_us = self.latency.round_trip_us(request_bytes, response_bytes);
        if let FaultEffect::Delay { added_us } = effect {
            network_us += added_us;
        }
        if network_us + server_us > deadline_us {
            client.forget_pending_batch(provider, &request.request_hash);
            self.note_provider_failure(provider);
            self.note_timeout();
            self.clock_us += deadline_us;
            return Err(SimError::Timeout {
                provider,
                deadline_us,
            });
        }
        self.clock_us += network_us + server_us;
        // Scoped processing: the response arrived over this provider's
        // connection, so pairing can never cross onto another channel.
        let outcome = match client.process_batch_response_from(provider, &response) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.note_provider_failure(provider);
                return Err(e.into());
            }
        };
        let stats = ExchangeStats {
            request_bytes,
            response_bytes,
            proof_bytes,
            server_us,
            network_us,
        };
        if let Some(t0) = trace_t0 {
            let verdict = match &outcome {
                ProcessBatchOutcome::Valid { .. } => "valid",
                ProcessBatchOutcome::Invalid(_) => "invalid",
                ProcessBatchOutcome::Fraud { .. } => "fraud",
            };
            self.trace_exchange(node_id, "batch", batch_size, t0, &stats, verdict);
        }
        self.note_provider_outcome(
            provider,
            matches!(outcome, ProcessBatchOutcome::Valid { .. }),
            stats.latency_us(),
        );
        Ok((outcome, stats))
    }

    /// Fans one call out to several providers **concurrently** — the
    /// transport the gateway's quorum reads ride on. Per-leg results
    /// come back in input order.
    ///
    /// Request building and ledger updates stay sequential (they mutate
    /// the client), but the expensive middle of every leg runs in
    /// parallel across scoped worker threads (the `parp-runtime` shard
    /// idiom):
    ///
    /// * **serving** — each leg's node runs request verification (two
    ///   signature recoveries), proof generation off the shared
    ///   `Arc`-frozen head trie, and response signing on its own worker
    ///   over one `&Blockchain` (read-only calls never mutate the
    ///   chain, enforced by [`FullNode::handle_read_request`]);
    /// * **client verification** — the §V-D classifications fan out via
    ///   [`LightClient::process_responses_from`].
    ///
    /// Because the legs fly concurrently, the simulated clock advances
    /// by the **slowest leg**, not the sum — the serial fan-out this
    /// replaces paid the sum.
    ///
    /// Falls back to sequential serving (still with parallel
    /// classification) when a leg carries a write, node ids repeat, or
    /// the host has a single core. Responses are byte-identical either
    /// way.
    pub fn parp_call_fanout(
        &mut self,
        client: &mut LightClient,
        legs: &[(NodeId, RpcCall)],
    ) -> Vec<Result<(ProcessOutcome, ExchangeStats), SimError>> {
        let trace_t0 = self.exchange_trace_start();
        let deadline_us = self.call_deadline_us;
        // Phase 1 (sequential): draw each leg's fault, then build one
        // signed request per deliverable leg. Fault decisions are drawn
        // here, before any parallel serving, so the schedule stays
        // deterministic whatever the worker interleaving.
        let mut requests: Vec<Result<(Address, ParpRequest), SimError>> = Vec::new();
        let mut effects: Vec<FaultEffect> = Vec::with_capacity(legs.len());
        // Makespan charged by legs that never produce stats: crashed
        // and timed-out legs still occupy the concurrent window.
        let mut error_makespan_us = 0u64;
        for (node_id, call) in legs {
            let provider = match self.nodes.get(node_id.0) {
                None => {
                    effects.push(FaultEffect::None);
                    requests.push(Err(SimError::UnknownNode(node_id.0)));
                    continue;
                }
                Some(node) => node.address(),
            };
            self.provider_entry(provider).record_call();
            let effect = self.fault_effect(node_id.0);
            let built = match effect {
                FaultEffect::Crashed => {
                    self.note_provider_failure(provider);
                    error_makespan_us = error_makespan_us.max(self.latency.one_way_us(64));
                    Err(SimError::Crashed(provider))
                }
                FaultEffect::Partitioned => {
                    self.note_provider_failure(provider);
                    self.note_timeout();
                    error_makespan_us = error_makespan_us.max(deadline_us);
                    Err(SimError::Timeout {
                        provider,
                        deadline_us,
                    })
                }
                _ => match client.request_from(provider, call.clone()) {
                    Ok(request) => Ok((provider, request)),
                    Err(e) => {
                        self.note_provider_failure(provider);
                        Err(e.into())
                    }
                },
            };
            effects.push(effect);
            requests.push(built);
        }
        // Phase 2: serve every buildable leg.
        let parallel_ok = legs.len() > 1
            && legs
                .iter()
                .all(|(_, call)| !matches!(call, RpcCall::SendRawTransaction { .. }))
            && {
                let mut seen = HashSet::new();
                legs.iter().all(|(id, _)| seen.insert(id.0))
            }
            && std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                > 1;
        let mut served: Vec<Option<(ParpResponse, u64)>> = vec![None; legs.len()];
        let mut serve_errors: Vec<Option<SimError>> = Vec::new();
        serve_errors.resize_with(legs.len(), || None);
        if parallel_ok {
            // One &mut moment resolves the shared frozen head trie; the
            // legs then serve over disjoint &mut nodes + one &chain.
            let engine = self.runtime.read_engine(&self.chain);
            let clock = self.time.clone();
            let Network {
                nodes,
                chain,
                executor,
                ..
            } = &mut *self;
            let chain = &*chain;
            let executor = &*executor;
            let mut node_slots: HashMap<usize, &mut FullNode> = nodes
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| legs.iter().any(|(id, _)| id.0 == *i))
                .collect();
            let mut worker_results: Vec<(usize, Result<ParpResponse, ServeError>, u64)> =
                Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (index, built) in requests.iter().enumerate() {
                    let Ok((_, request)) = built else { continue };
                    let node = node_slots
                        .remove(&legs[index].0 .0)
                        .expect("distinct leg nodes");
                    let mut engine = engine.clone();
                    let clock = clock.clone();
                    handles.push(scope.spawn(move || {
                        let started = clock.start();
                        let outcome =
                            node.handle_read_request(request, chain, executor, &mut engine);
                        (index, outcome, clock.elapsed_us(started))
                    }));
                }
                worker_results = handles
                    .into_iter()
                    .map(|handle| handle.join().expect("serve worker panicked"))
                    .collect();
            });
            for (index, outcome, server_us) in worker_results {
                match outcome {
                    Ok(response) => served[index] = Some((response, server_us)),
                    Err(e) => serve_errors[index] = Some(SimError::Serve(e)),
                }
            }
        } else {
            for (index, built) in requests.iter().enumerate() {
                let Ok((_, request)) = built else { continue };
                let started = self.time.start();
                match self.serve(legs[index].0, request) {
                    Ok(response) => {
                        served[index] = Some((response, self.time.elapsed_us(started)));
                    }
                    Err(e) => serve_errors[index] = Some(e),
                }
            }
        }
        // Phase 2.5 (sequential): response-path transport faults.
        // Corruption flips a byte in the served frame (signature left
        // untouched, so classification catches it); drops and
        // over-deadline delays turn served legs into timeouts before
        // the client ever sees the response, so its payment ledger is
        // never advanced by them.
        let mut extra_delay_us: Vec<u64> = vec![0; legs.len()];
        for index in 0..legs.len() {
            let Ok((provider, request)) = &requests[index] else {
                continue;
            };
            let provider = *provider;
            let effect = effects[index];
            match effect {
                FaultEffect::Corrupt { nudge } => {
                    if let Some((response, _)) = served[index].as_mut() {
                        fault::corrupt_response(response, nudge);
                    }
                }
                FaultEffect::Drop => {
                    if served[index].take().is_some() {
                        client.forget_pending(provider, &request.request_hash);
                        self.note_timeout();
                        error_makespan_us = error_makespan_us.max(deadline_us);
                        serve_errors[index] = Some(SimError::Timeout {
                            provider,
                            deadline_us,
                        });
                    }
                }
                FaultEffect::None | FaultEffect::Delay { .. } => {
                    let added_us = match effect {
                        FaultEffect::Delay { added_us } => added_us,
                        _ => 0,
                    };
                    if let Some((response, server_us)) = served[index].as_ref() {
                        let request_bytes = request.encode().len();
                        let response_bytes = response.encode().len();
                        let leg_us = self.latency.round_trip_us(request_bytes, response_bytes)
                            + added_us
                            + server_us;
                        if leg_us > deadline_us {
                            served[index] = None;
                            client.forget_pending(provider, &request.request_hash);
                            self.note_timeout();
                            error_makespan_us = error_makespan_us.max(deadline_us);
                            serve_errors[index] = Some(SimError::Timeout {
                                provider,
                                deadline_us,
                            });
                        } else {
                            extra_delay_us[index] = added_us;
                        }
                    }
                }
                FaultEffect::Crashed | FaultEffect::Partitioned => {}
            }
        }
        // The client needs headers for every served res.m_B.
        self.sync_client(client);
        // Phase 3: classify all served legs in parallel (one clone per
        // served response — it moves into the processing list).
        let process_legs: Vec<(Address, ParpResponse)> = requests
            .iter()
            .enumerate()
            .filter_map(|(index, built)| {
                let Ok((provider, _)) = built else {
                    return None;
                };
                served[index]
                    .as_ref()
                    .map(|(response, _)| (*provider, response.clone()))
            })
            .collect();
        let mut outcomes = client.process_responses_from(&process_legs).into_iter();
        // Phase 4 (sequential): stats, clock (max over concurrent legs),
        // and per-leg results in input order.
        let mut results: Vec<Result<(ProcessOutcome, ExchangeStats), SimError>> = Vec::new();
        let mut slowest_leg_us = 0u64;
        for (index, built) in requests.into_iter().enumerate() {
            let result = match built {
                Err(e) => Err(e),
                Ok((provider, request)) => {
                    if let Some(e) = serve_errors[index].take() {
                        self.note_provider_failure(provider);
                        Err(e)
                    } else {
                        let (response, server_us) = served[index].take().expect("leg served");
                        let request_bytes = request.encode().len();
                        let response_bytes = response.encode().len();
                        let stats = ExchangeStats {
                            request_bytes,
                            response_bytes,
                            proof_bytes: response.proof_bytes(),
                            server_us,
                            network_us: self.latency.round_trip_us(request_bytes, response_bytes)
                                + extra_delay_us[index],
                        };
                        // Every served leg flew its round trip, whatever
                        // the client concludes about the payload — it
                        // counts toward the concurrent batch's makespan
                        // (the serial path charges it too).
                        slowest_leg_us = slowest_leg_us.max(stats.latency_us());
                        let outcome = outcomes.next().expect("one outcome per served leg");
                        match outcome {
                            Err(e) => {
                                self.note_provider_failure(provider);
                                Err(e.into())
                            }
                            Ok(outcome) => {
                                if let (Some(t0), Some(telemetry)) = (trace_t0, &self.telemetry) {
                                    // Concurrent legs share the window
                                    // [t0, t0 + slowest]; each leg's
                                    // span lives on its provider track.
                                    let verdict = match &outcome {
                                        ProcessOutcome::Valid { .. } => "valid",
                                        ProcessOutcome::Invalid(_) => "invalid",
                                        ProcessOutcome::Fraud(_) => "fraud",
                                    };
                                    telemetry.tracer.span(
                                        "quorum_leg",
                                        "net",
                                        t0,
                                        stats.latency_us(),
                                        legs[index].0 .0 as u32 + 1,
                                        vec![
                                            (
                                                "server_us".to_string(),
                                                ArgValue::U64(stats.server_us),
                                            ),
                                            (
                                                "network_us".to_string(),
                                                ArgValue::U64(stats.network_us),
                                            ),
                                            (
                                                "verdict".to_string(),
                                                ArgValue::Str(verdict.to_string()),
                                            ),
                                        ],
                                    );
                                }
                                self.note_provider_outcome(
                                    provider,
                                    matches!(outcome, ProcessOutcome::Valid { .. }),
                                    stats.latency_us(),
                                );
                                Ok((outcome, stats))
                            }
                        }
                    }
                }
            };
            results.push(result);
        }
        self.clock_us += slowest_leg_us.max(error_makespan_us);
        results
    }

    /// When tracing is live, drains stale stage timings (so the coming
    /// exchange's sub-spans are its own) and returns the sim-clock
    /// timestamp the exchange starts at.
    fn exchange_trace_start(&self) -> Option<u64> {
        let telemetry = self.telemetry.as_ref()?;
        if !telemetry.tracer.enabled() {
            return None;
        }
        self.stages.take();
        Some(self.clock_us)
    }

    /// Emits the request-lifecycle spans of one completed exchange on
    /// the simulated-clock timeline `[t0, t0 + network + server]` —
    /// exactly the interval the exchange advanced `clock_us` by, so
    /// consecutive exchanges' spans never overlap and always sort in
    /// sim-clock order:
    ///
    /// ```text
    /// client track:   sign ▸ [request_flight] ............ [response_flight] ▸ classify
    /// provider track:                [serve: verify|multiproof|sign_response]
    /// ```
    ///
    /// Stage sub-spans come from the shared [`StageRecorder`] the
    /// node stamped while serving (wall-clock µs, clamped to the
    /// serve interval).
    fn trace_exchange(
        &self,
        node_id: NodeId,
        kind: &str,
        calls: u64,
        t0: u64,
        stats: &ExchangeStats,
        verdict: &str,
    ) {
        let Some(telemetry) = &self.telemetry else {
            return;
        };
        let tracer = &telemetry.tracer;
        let stages = self.stages.take();
        let tid = node_id.0 as u32 + 1;
        let up_us = self.latency.one_way_us(stats.request_bytes);
        let down_us = stats.network_us.saturating_sub(up_us);
        let t_end = t0 + stats.network_us + stats.server_us;
        tracer.span(
            "exchange",
            "net",
            t0,
            t_end - t0,
            0,
            vec![
                ("kind".to_string(), ArgValue::Str(kind.to_string())),
                ("calls".to_string(), ArgValue::U64(calls)),
                ("verdict".to_string(), ArgValue::Str(verdict.to_string())),
            ],
        );
        tracer.instant(
            "sign_request",
            "client",
            t0,
            0,
            vec![(
                "request_bytes".to_string(),
                ArgValue::U64(stats.request_bytes as u64),
            )],
        );
        tracer.span("request_flight", "net", t0, up_us, 0, Vec::new());
        let serve_ts = t0 + up_us;
        tracer.span(
            "serve",
            "serve",
            serve_ts,
            stats.server_us,
            tid,
            vec![
                ("calls".to_string(), ArgValue::U64(calls)),
                (
                    "proof_bytes".to_string(),
                    ArgValue::U64(stats.proof_bytes as u64),
                ),
            ],
        );
        self.trace_serve_stages(serve_ts, stats.server_us, tid, &stages);
        tracer.span(
            "response_flight",
            "net",
            serve_ts + stats.server_us,
            down_us,
            0,
            vec![(
                "response_bytes".to_string(),
                ArgValue::U64(stats.response_bytes as u64),
            )],
        );
        tracer.instant(
            "classify",
            "client",
            t_end,
            0,
            vec![("verdict".to_string(), ArgValue::Str(verdict.to_string()))],
        );
    }

    /// Lays the measured serve stages out as sequential sub-spans of
    /// `[serve_ts, serve_ts + server_us]`, clamped so they never
    /// escape the serve span (stage and serve times are measured by
    /// different wall-clock reads).
    fn trace_serve_stages(&self, serve_ts: u64, server_us: u64, tid: u32, stages: &StageSample) {
        let Some(telemetry) = &self.telemetry else {
            return;
        };
        let mut offset = 0u64;
        for (name, dur) in [
            ("verify", stages.verify_us),
            ("multiproof", stages.proof_us),
            ("sign_response", stages.sign_us),
        ] {
            let dur = dur.min(server_us.saturating_sub(offset));
            if dur > 0 {
                telemetry
                    .tracer
                    .span(name, "serve", serve_ts + offset, dur, tid, Vec::new());
            }
            offset += dur;
        }
    }

    /// Records a completed exchange in the provider's aggregate and
    /// the network-wide metrics.
    fn note_provider_outcome(&mut self, provider: Address, valid: bool, latency_us: u64) {
        let entry = self.provider_entry(provider);
        entry.record_latency(latency_us);
        if !valid {
            entry.record_failure();
        }
        if let Some(metrics) = &self.metrics {
            metrics.exchanges_total.inc();
            metrics.exchange_latency_us.record(latency_us);
            if !valid {
                metrics.failures_total.inc();
            }
        }
    }

    /// Records a refusal (the exchange never completed).
    fn note_provider_failure(&mut self, provider: Address) {
        self.provider_entry(provider).record_failure();
        if let Some(metrics) = &self.metrics {
            metrics.exchanges_total.inc();
            metrics.failures_total.inc();
        }
    }

    /// The rolling exchange aggregate for one provider (empty default
    /// when the provider has served nothing).
    pub fn provider_stats(&self, provider: &Address) -> ProviderAggregate {
        self.provider_stats
            .get(provider)
            .cloned()
            .unwrap_or_default()
    }

    /// Every provider aggregate recorded so far, sorted by address for
    /// deterministic reporting.
    pub fn provider_stats_all(&self) -> Vec<(Address, ProviderAggregate)> {
        let mut all: Vec<_> = self
            .provider_stats
            .iter()
            .map(|(a, s)| (*a, s.clone()))
            .collect();
        all.sort_by_key(|(a, _)| *a);
        all
    }

    /// Server-side handling only (used by the scalability harness).
    /// Routes through the serving runtime's snapshot cache; responses
    /// are byte-identical to the sequential path.
    ///
    /// # Errors
    ///
    /// Propagates the node's refusal.
    pub fn serve(
        &mut self,
        node_id: NodeId,
        request: &ParpRequest,
    ) -> Result<ParpResponse, SimError> {
        let node = self
            .nodes
            .get_mut(node_id.0)
            .ok_or(SimError::UnknownNode(node_id.0))?;
        Ok(self
            .runtime
            .serve_request(node, request, &mut self.chain, &mut self.executor)?)
    }

    /// Server-side batch handling only (used by the benches). Routes
    /// through the serving runtime: cached snapshot trie, sharded
    /// multiproof generation — byte-identical to the sequential path.
    ///
    /// # Errors
    ///
    /// Propagates the node's refusal.
    pub fn serve_batch(
        &mut self,
        node_id: NodeId,
        request: &ParpBatchRequest,
    ) -> Result<ParpBatchResponse, SimError> {
        let node = self
            .nodes
            .get_mut(node_id.0)
            .ok_or(SimError::UnknownNode(node_id.0))?;
        Ok(self
            .runtime
            .serve_batch(node, request, &mut self.chain, &mut self.executor)?)
    }

    /// Cooperative closure initiated by the client: close, wait out the
    /// dispute window, confirm, settle.
    ///
    /// # Errors
    ///
    /// Propagates chain failures and reverted settlements.
    pub fn close_cooperatively(
        &mut self,
        client: &mut LightClient,
        _node_id: NodeId,
    ) -> Result<(), SimError> {
        let close = client.close_channel_call()?;
        let client_key = *client.secret();
        if !self.submit_module_call(&client_key, close, U256::ZERO)? {
            return Err(SimError::Reverted("close channel reverted".into()));
        }
        self.advance_blocks(DISPUTE_WINDOW_BLOCKS)?;
        let confirm = client.confirm_closure_call()?;
        if !self.submit_module_call(&client_key, confirm, U256::ZERO)? {
            return Err(SimError::Reverted("confirm closure reverted".into()));
        }
        client.channel_closed();
        Ok(())
    }

    /// Relays a fraud proof through a witness node (§IV-F): the witness
    /// submits the on-chain transaction on the client's behalf.
    ///
    /// # Errors
    ///
    /// Propagates chain failures.
    pub fn report_fraud(
        &mut self,
        evidence: &parp_core::FraudEvidence,
        witness_id: NodeId,
    ) -> Result<bool, SimError> {
        let witness = self
            .nodes
            .get(witness_id.0)
            .ok_or(SimError::UnknownNode(witness_id.0))?;
        let witness_key = *witness.secret();
        let witness_addr = witness.address();
        let call = evidence.to_module_call(witness_addr);
        self.submit_module_call(&witness_key, call, U256::ZERO)
    }

    /// Relays a **batch** fraud proof through a witness node: one
    /// provably wrong item in a signed batch slashes the offender exactly
    /// like single-call fraud.
    ///
    /// # Errors
    ///
    /// Propagates chain failures.
    pub fn report_batch_fraud(
        &mut self,
        evidence: &parp_core::BatchFraudEvidence,
        witness_id: NodeId,
    ) -> Result<bool, SimError> {
        let witness = self
            .nodes
            .get(witness_id.0)
            .ok_or(SimError::UnknownNode(witness_id.0))?;
        let witness_key = *witness.secret();
        let witness_addr = witness.address();
        let call = evidence.to_module_call(witness_addr);
        self.submit_module_call(&witness_key, call, U256::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn duplicate_spawn_seed_is_detected() {
        let mut net = Network::new();
        let first = net.try_spawn_node(b"dup-seed", U256::from(10u64)).unwrap();
        let err = net
            .try_spawn_node(b"dup-seed", U256::from(99u64))
            .unwrap_err();
        let SimError::DuplicateNode(address) = err else {
            panic!("expected DuplicateNode, got {err:?}");
        };
        assert_eq!(address, net.node(first).address());
        // The collision left no second node and no registry duplicate.
        assert_eq!(net.node_id_by_address(&address), Some(first));
        assert_eq!(net.registry().len(), 1);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_spawn_seed_panics_in_infallible_path() {
        let mut net = Network::new();
        net.spawn_node(b"dup-panic", U256::from(10u64));
        net.spawn_node(b"dup-panic", U256::from(10u64));
    }

    #[test]
    fn registry_is_duplicate_free_and_sorted() {
        let mut net = Network::new();
        for i in 0..6u64 {
            net.spawn_node(format!("reg-{i}").as_bytes(), U256::from(10 + i));
        }
        let registry = net.registry();
        assert_eq!(registry.len(), 6);
        let unique: HashSet<_> = registry.iter().collect();
        assert_eq!(
            unique.len(),
            registry.len(),
            "registry must be duplicate-free"
        );
        let mut sorted = registry.clone();
        sorted.sort();
        assert_eq!(registry, sorted, "registry is address-sorted");
        // The records surface agrees with the address list.
        let records = net.executor().fndm().registry_records();
        assert_eq!(
            records.iter().map(|(a, _)| *a).collect::<Vec<_>>(),
            registry
        );
        assert!(records
            .iter()
            .all(|(_, r)| r.serving && r.deposit >= parp_contracts::min_deposit()));
    }

    #[test]
    fn provider_aggregates_track_exchanges() {
        let mut net = Network::new();
        let good = net.spawn_node(b"agg-good", U256::from(10u64));
        let bad = net.spawn_node(b"agg-bad", U256::from(10u64));
        let mut client = net.spawn_client(b"agg-client", U256::from(10u64));
        net.connect(&mut client, good, U256::from(10_000u64))
            .unwrap();
        net.connect(&mut client, bad, U256::from(10_000u64))
            .unwrap();
        net.node_mut(bad)
            .set_misbehavior(parp_core::Misbehavior::WrongAmount);
        for _ in 0..4 {
            let (outcome, _) = net
                .parp_call(&mut client, good, RpcCall::BlockNumber)
                .unwrap();
            assert!(matches!(outcome, ProcessOutcome::Valid { .. }));
        }
        let (outcome, _) = net
            .parp_call(&mut client, bad, RpcCall::BlockNumber)
            .unwrap();
        assert!(!matches!(outcome, ProcessOutcome::Valid { .. }));
        let good_stats = net.provider_stats(&net.node(good).address());
        assert_eq!(good_stats.calls(), 4);
        assert_eq!(good_stats.failures(), 0);
        assert_eq!(good_stats.samples(), 4);
        assert!(good_stats.latency_p50_us() > 0);
        assert!(good_stats.latency_p99_us() >= good_stats.latency_p50_us());
        let bad_stats = net.provider_stats(&net.node(bad).address());
        assert_eq!(bad_stats.calls(), 1);
        assert_eq!(bad_stats.failures(), 1);
        assert_eq!(net.provider_stats_all().len(), 2);
    }
}
