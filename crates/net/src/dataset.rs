//! The node-provider survey data behind Table I and §II-B.
//!
//! The paper analyzes the wallet-address-leakage dataset of Torres et al.
//! (USENIX Security '23): of 1572 dApps, 383 send JSON-RPC calls directly
//! to node providers. The per-provider dApp counts and registration
//! traits below are the aggregates printed in the paper; the analysis
//! example recomputes the traffic shares from them.

/// Total dApps in the underlying crawl.
pub const TOTAL_DAPPS: u32 = 1572;
/// dApps that call node providers directly from their frontend.
pub const RPC_DAPPS: u32 = 383;

/// One provider's Table I row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProviderRecord {
    /// Provider name.
    pub name: &'static str,
    /// dApps observed sending JSON-RPC calls to this provider.
    pub dapp_count: u32,
    /// Offers unauthenticated public endpoints.
    pub free_public_service: bool,
    /// Supports wallet-based sign-in (no email).
    pub wallet_login: bool,
    /// Requires an email address to register.
    pub email_required: bool,
    /// Requires full / organization name.
    pub name_required: bool,
    /// Prices per call type ("call-based").
    pub call_based_pricing: bool,
    /// Number of plan tiers.
    pub plan_tiers: u8,
    /// Free-tier allowance as advertised.
    pub free_usage: &'static str,
    /// Accepts credit cards.
    pub accepts_card: bool,
    /// Accepts cryptocurrency payment.
    pub accepts_crypto: bool,
}

/// The five providers examined in Table I (top providers by traffic,
/// excluding network-specific ones), plus the remaining traffic buckets
/// from §II-B.
pub fn providers() -> Vec<ProviderRecord> {
    vec![
        ProviderRecord {
            name: "Infura",
            dapp_count: 182,
            free_public_service: false,
            wallet_login: false,
            email_required: true,
            name_required: false,
            call_based_pricing: false,
            plan_tiers: 5,
            free_usage: "3 million credits (daily)",
            accepts_card: true,
            accepts_crypto: false,
        },
        ProviderRecord {
            name: "Alchemy",
            dapp_count: 119,
            free_public_service: false,
            wallet_login: false,
            email_required: true,
            name_required: false,
            call_based_pricing: true,
            plan_tiers: 4,
            free_usage: "300 million compute units (monthly)",
            accepts_card: true,
            accepts_crypto: false,
        },
        ProviderRecord {
            name: "Binance",
            dapp_count: 46,
            free_public_service: false,
            wallet_login: false,
            email_required: true,
            name_required: true,
            call_based_pricing: false,
            plan_tiers: 0,
            free_usage: "network-specific endpoints",
            accepts_card: true,
            accepts_crypto: true,
        },
        ProviderRecord {
            name: "Ankr",
            dapp_count: 36,
            free_public_service: true,
            wallet_login: true,
            email_required: false,
            name_required: false,
            call_based_pricing: false,
            plan_tiers: 4,
            free_usage: "30 requests (per sec)",
            accepts_card: true,
            accepts_crypto: true,
        },
        ProviderRecord {
            name: "Cloudflare",
            dapp_count: 26,
            free_public_service: true,
            wallet_login: false,
            email_required: true,
            name_required: false,
            call_based_pricing: false,
            plan_tiers: 0,
            free_usage: "rate-limited public gateway",
            accepts_card: true,
            accepts_crypto: false,
        },
        ProviderRecord {
            name: "Quicknode",
            dapp_count: 16,
            free_public_service: false,
            wallet_login: false,
            email_required: true,
            name_required: true,
            call_based_pricing: true,
            plan_tiers: 5,
            free_usage: "10 million API credits (monthly)",
            accepts_card: true,
            accepts_crypto: false,
        },
        ProviderRecord {
            name: "Chainstack",
            dapp_count: 5,
            free_public_service: false,
            wallet_login: false,
            email_required: true,
            name_required: true,
            call_based_pricing: true,
            plan_tiers: 4,
            free_usage: "3 million request units (monthly)",
            accepts_card: true,
            accepts_crypto: true,
        },
    ]
}

/// A provider's share of RPC-calling dApps, in percent (a dApp can use
/// several providers, so shares do not sum to 100).
pub fn traffic_share(record: &ProviderRecord) -> f64 {
    100.0 * record.dapp_count as f64 / RPC_DAPPS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_match_paper_section_2b() {
        let providers = providers();
        let share = |name: &str| {
            traffic_share(
                providers
                    .iter()
                    .find(|p| p.name == name)
                    .unwrap_or_else(|| panic!("missing provider {name}")),
            )
        };
        // §II-B: Infura 47.52%, Alchemy 31.07%, Binance 12.01%, Ankr 9.4%,
        // Cloudflare 6.79%; Table I adds Quicknode 4.18%, Chainstack 1.31%.
        assert!((share("Infura") - 47.52).abs() < 0.05);
        assert!((share("Alchemy") - 31.07).abs() < 0.05);
        assert!((share("Binance") - 12.01).abs() < 0.05);
        assert!((share("Ankr") - 9.4).abs() < 0.05);
        assert!((share("Cloudflare") - 6.79).abs() < 0.05);
        assert!((share("Quicknode") - 4.18).abs() < 0.05);
        assert!((share("Chainstack") - 1.31).abs() < 0.05);
    }

    #[test]
    fn only_ankr_is_permissionless() {
        let permissionless: Vec<&str> = providers()
            .iter()
            .filter(|p| p.wallet_login && !p.email_required)
            .map(|p| p.name)
            .collect();
        assert_eq!(permissionless, vec!["Ankr"]);
    }

    #[test]
    fn top_provider_dominates() {
        let providers = providers();
        let max = providers.iter().map(|p| p.dapp_count).max().unwrap();
        assert_eq!(max, 182); // Infura
        let sum_top2: u32 = {
            let mut counts: Vec<u32> = providers.iter().map(|p| p.dapp_count).collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            counts[0] + counts[1]
        };
        // Top-2 centralization: over 75% of RPC dApps touch Infura or
        // Alchemy.
        assert!(sum_top2 as f64 / RPC_DAPPS as f64 > 0.75);
    }
}
