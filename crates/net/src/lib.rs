//! Network simulation and experiment harnesses for the PARP reproduction.
//!
//! Provides the deterministic in-process [`Network`] (chain + on-chain
//! modules + PARP full nodes + logical clock, serving through the
//! `parp-runtime` snapshot cache), seedable read/write [`Workload`]
//! generators (§VI-A), the Figure 7 scalability harness, the
//! over-capacity contention scenario ([`run_contention`]: one flooding
//! client against honest ones, bounded by per-client admission
//! control), a bounded-delay [`LatencyModel`] (the §IV-D
//! strong-synchrony assumption), and the Table I provider survey
//! dataset.
//!
//! # Examples
//!
//! ```
//! use parp_net::Network;
//! use parp_contracts::RpcCall;
//! use parp_core::ProcessOutcome;
//! use parp_primitives::U256;
//!
//! let mut net = Network::new();
//! let node = net.spawn_node(b"docs-node", U256::from(10u64));
//! let mut client = net.spawn_client(b"docs-client", U256::from(10u64));
//! net.connect(&mut client, node, U256::from(1_000_000u64)).unwrap();
//!
//! let me = client.address();
//! let (outcome, stats) = net
//!     .parp_call(&mut client, node, RpcCall::GetBalance { address: me })
//!     .unwrap();
//! assert!(matches!(outcome, ProcessOutcome::Valid { proven: true, .. }));
//! assert!(stats.proof_bytes > 0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod contention;
pub mod dataset;
mod deep_history;
mod fault;
mod latency;
mod scalability;
mod sim;
mod workload;

pub use contention::{run_contention, ClientOutcome, ContentionConfig, ContentionReport};
pub use deep_history::{run_deep_history, DeepHistoryConfig, DeepHistoryReport};
pub use fault::{
    splitmix64, CorruptionBurst, CrashWindow, FaultConfig, FaultCounters, FaultEffect, FaultPlane,
    PartitionWindow, ProviderFaultRates,
};
pub use latency::LatencyModel;
pub use scalability::{
    run_scalability_point, run_scalability_sweep, BaseRpcServer, ScalabilityConfig,
    ScalabilityPoint,
};
pub use sim::{
    latency_quantile_us, ExchangeStats, Network, NodeId, ProviderAggregate, SimError,
    DEFAULT_CALL_DEADLINE_US,
};
pub use workload::{Workload, WorkloadKind};
