//! The Figure 7 scalability harness: one PARP full node serving N light
//! clients, compared against a plain (non-PARP) RPC node on the same
//! workload.
//!
//! The paper reports whole-VM CPU% and memory% for a Geth process; an
//! in-process simulation has no VM to sample, so the harness measures the
//! same *quantities* with explicit proxies and reports PARP/base ratios:
//!
//! * **CPU** — wall-clock time the server spends handling requests
//!   (request verification + execution + proof + signing for PARP;
//!   execution only for the base node).
//! * **Memory** — bytes of per-client service state the node retains
//!   (channel ledgers and signatures for PARP; a plain connection record
//!   for the base node) plus the message buffers held per in-flight
//!   request.

use crate::sim::Network;
use crate::workload::Workload;
use parp_chain::{Blockchain, SignedTransaction};
use parp_contracts::RpcCall;
use parp_core::{LightClient, ProcessOutcome};
use parp_crypto::{SecretKey, Signature};
use parp_primitives::U256;
use parp_telemetry::TimeSource;

/// Result of one scalability run at a given client count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalabilityPoint {
    /// Number of concurrently connected light clients.
    pub clients: usize,
    /// Requests served in total.
    pub requests: u64,
    /// Server CPU time for the PARP node (microseconds).
    pub parp_cpu_us: u64,
    /// Server CPU time for the plain RPC node on the same workload.
    pub base_cpu_us: u64,
    /// Retained service-state bytes for the PARP node.
    pub parp_mem_bytes: usize,
    /// Retained service-state bytes for the plain node.
    pub base_mem_bytes: usize,
}

impl ScalabilityPoint {
    /// CPU overhead ratio (paper: 3.43× at 20 clients).
    pub fn cpu_ratio(&self) -> f64 {
        self.parp_cpu_us as f64 / self.base_cpu_us.max(1) as f64
    }

    /// Memory overhead ratio (paper: 2.38× at 20 clients).
    pub fn mem_ratio(&self) -> f64 {
        self.parp_mem_bytes as f64 / self.base_mem_bytes.max(1) as f64
    }
}

/// Per-client PARP service state: the channel ledger entry the node must
/// keep (latest amount + signature + counters).
const PARP_CLIENT_STATE_BYTES: usize = 8 + 32 + Signature::LEN + 8;
/// Per-client state of a plain RPC node: a connection record.
const BASE_CLIENT_STATE_BYTES: usize = 64;

/// A plain (non-PARP) RPC server used as the Figure 7 baseline: executes
/// the same calls with no signatures, payments or proofs.
#[derive(Debug, Default)]
pub struct BaseRpcServer {
    requests_served: u64,
}

impl BaseRpcServer {
    /// Creates a baseline server.
    pub fn new() -> Self {
        BaseRpcServer::default()
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Executes a call the way a standard node would: direct state reads
    /// and transaction inclusion, no proof generation.
    pub fn handle(&mut self, call: &RpcCall, chain: &mut Blockchain) -> Result<Vec<u8>, String> {
        self.requests_served += 1;
        match call {
            RpcCall::GetBalance { address } => Ok(parp_rlp::encode_u256(&chain.balance(address))),
            RpcCall::GetTransactionCount { address } => {
                Ok(parp_rlp::encode_u64(chain.nonce(address)))
            }
            RpcCall::SendRawTransaction { raw } => {
                let tx = SignedTransaction::decode(raw).map_err(|e| e.to_string())?;
                let hash = tx.hash();
                chain
                    .produce_block(vec![tx], &mut parp_chain::TransferExecutor)
                    .map_err(|e| e.to_string())?;
                Ok(hash.as_bytes().to_vec())
            }
            RpcCall::GetTransactionByHash { hash } => Ok(chain
                .transaction_location(hash)
                .map(|(block, index)| {
                    chain.block(block).expect("located").transactions[index].encode()
                })
                .unwrap_or_default()),
            RpcCall::BlockNumber => Ok(parp_rlp::encode_u64(chain.height())),
            RpcCall::GetHeader { number } => Ok(chain
                .block(*number)
                .map(|b| b.header.encode())
                .unwrap_or_default()),
            RpcCall::GetChannelStatus { .. } => Ok(vec![0xff]),
            RpcCall::GetTransactionReceipt { hash } => Ok(chain
                .transaction_location(hash)
                .map(|(block, index)| chain.receipts(block).expect("located")[index].encode())
                .unwrap_or_default()),
        }
    }
}

/// Configuration for a scalability run.
#[derive(Debug, Clone, Copy)]
pub struct ScalabilityConfig {
    /// Requests each client issues (paper: 2 req/s × 120 s = 240).
    pub requests_per_client: usize,
    /// Fraction of reads in the workload mix.
    pub read_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScalabilityConfig {
    fn default() -> Self {
        ScalabilityConfig {
            requests_per_client: 240,
            read_fraction: 0.9,
            seed: 0xF167,
        }
    }
}

/// Runs the Figure 7 experiment at one client count.
///
/// Interleaves clients round-robin (each "second" every client issues its
/// next request), mirroring the paper's 2-requests-per-second pacing.
pub fn run_scalability_point(clients: usize, config: &ScalabilityConfig) -> ScalabilityPoint {
    assert!(clients > 0, "need at least one client");
    // --- PARP node under load ---
    // This harness *is* a hardware measurement (the paper's Figure 7
    // compares CPU time against a plain RPC node), so both sides
    // deliberately read the host clock through an injected wall
    // TimeSource instead of the simulator's deterministic default.
    let wall = TimeSource::wall();
    let mut net = Network::with_latency(crate::latency::LatencyModel::zero());
    net.set_time_source(wall.clone());
    let node = net.spawn_node(b"fig7-node", U256::from(10u64));
    let mut lcs: Vec<LightClient> = Vec::with_capacity(clients);
    let mut workloads: Vec<Workload> = Vec::with_capacity(clients);
    for i in 0..clients {
        let seed = format!("fig7-client-{i}");
        let mut client = net.spawn_client(seed.as_bytes(), U256::from(10u64));
        let budget = U256::from(1_000_000_000u64);
        net.connect(&mut client, node, budget).expect("connect");
        let key = SecretKey::from_seed(format!("fig7-sender-{i}").as_bytes());
        net.fund(key.address());
        let workload = Workload::new(config.seed + i as u64, key, 0);
        lcs.push(client);
        workloads.push(workload);
    }
    let mut parp_cpu_us = 0u64;
    let mut requests = 0u64;
    let mut inflight_bytes = 0usize;
    for _round in 0..config.requests_per_client {
        for (client, workload) in lcs.iter_mut().zip(workloads.iter_mut()) {
            let call = workload.next_mixed(config.read_fraction);
            let (outcome, stats) = net.parp_call(client, node, call).expect("parp call");
            assert!(
                matches!(outcome, ProcessOutcome::Valid { .. }),
                "honest node must produce valid responses"
            );
            parp_cpu_us += stats.server_us;
            inflight_bytes = inflight_bytes.max(stats.request_bytes + stats.response_bytes);
            requests += 1;
        }
    }
    let parp_mem_bytes = clients * (PARP_CLIENT_STATE_BYTES + inflight_bytes);

    // --- Plain RPC node on the same workload ---
    let faucet_supply = U256::ONE << 170;
    let mut base_chain = {
        let faucet = SecretKey::from_seed(b"base-faucet");
        let mut chain = Blockchain::new(vec![(faucet.address(), faucet_supply)]);
        // Fund the same senders.
        for i in 0..clients {
            let key = SecretKey::from_seed(format!("fig7-sender-{i}").as_bytes());
            let tx = parp_chain::Transaction {
                nonce: i as u64,
                gas_price: U256::ZERO,
                gas_limit: 21_000,
                to: Some(key.address()),
                value: U256::from(1u64) << 80,
                data: Vec::new(),
            }
            .sign(&faucet);
            chain
                .produce_block(vec![tx], &mut parp_chain::TransferExecutor)
                .expect("fund sender");
        }
        chain
    };
    let mut base_server = BaseRpcServer::new();
    let mut base_workloads: Vec<Workload> = (0..clients)
        .map(|i| {
            let key = SecretKey::from_seed(format!("fig7-sender-{i}").as_bytes());
            Workload::new(config.seed + i as u64, key, 0)
        })
        .collect();
    let mut base_cpu_us = 0u64;
    let mut base_inflight = 0usize;
    for _round in 0..config.requests_per_client {
        for workload in base_workloads.iter_mut() {
            let call = workload.next_mixed(config.read_fraction);
            let request_bytes = parp_jsonrpc::base_request(&call, 1).wire_size();
            let started = wall.start();
            let result = base_server
                .handle(&call, &mut base_chain)
                .expect("base call");
            base_cpu_us += wall.elapsed_us(started);
            base_inflight = base_inflight.max(request_bytes + result.len());
        }
    }
    let base_mem_bytes = clients * (BASE_CLIENT_STATE_BYTES + base_inflight);

    ScalabilityPoint {
        clients,
        requests,
        parp_cpu_us,
        base_cpu_us,
        parp_mem_bytes,
        base_mem_bytes,
    }
}

/// Sweeps client counts, producing the Figure 7 series.
pub fn run_scalability_sweep(
    client_counts: &[usize],
    config: &ScalabilityConfig,
) -> Vec<ScalabilityPoint> {
    client_counts
        .iter()
        .map(|&n| run_scalability_point(n, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_server_matches_chain_state() {
        let key = SecretKey::from_seed(b"base-test");
        let mut chain = Blockchain::new(vec![(key.address(), U256::from(1_000_000u64))]);
        let mut server = BaseRpcServer::new();
        let balance = server
            .handle(
                &RpcCall::GetBalance {
                    address: key.address(),
                },
                &mut chain,
            )
            .unwrap();
        assert_eq!(
            parp_rlp::decode(&balance).unwrap().as_u256().unwrap(),
            U256::from(1_000_000u64)
        );
        assert_eq!(server.requests_served(), 1);
    }

    #[test]
    fn small_point_has_sane_shape() {
        let config = ScalabilityConfig {
            requests_per_client: 4,
            read_fraction: 0.75,
            seed: 1,
        };
        let point = run_scalability_point(2, &config);
        assert_eq!(point.clients, 2);
        assert_eq!(point.requests, 8);
        assert!(point.parp_cpu_us > 0);
        assert!(point.cpu_ratio() > 1.0, "PARP must cost more CPU than base");
        assert!(point.mem_ratio() > 1.0, "PARP must retain more state");
    }

    #[test]
    fn memory_grows_with_clients() {
        let config = ScalabilityConfig {
            requests_per_client: 2,
            read_fraction: 1.0,
            seed: 2,
        };
        let one = run_scalability_point(1, &config);
        let three = run_scalability_point(3, &config);
        assert!(three.parp_mem_bytes > one.parp_mem_bytes);
    }
}
