//! The PARP wire messages (paper §V-A, Fig. 3).
//!
//! `req = (α, h_B, a, γ, h_req, σ_a, σ_req)` and
//! `res = (α, m_B, a, R(γ), π_γ, h_req, σ_req, σ_res)`.
//!
//! These types live in the contracts crate because the on-chain Fraud
//! Detection Module is the canonical decoder of this encoding — exactly as
//! the Solidity contract is in the paper's prototype. The off-chain
//! protocol (`parp-core`) reuses them.

use parp_crypto::{keccak256, recover_address, sign, SecretKey, Signature};
use parp_primitives::{Address, H256, U256};
use parp_rlp::{
    decode_list_of, encode_bytes, encode_h256, encode_list, encode_u256, encode_u64, DecodeError,
    Item,
};
use std::error::Error;
use std::fmt;

/// The RPC call γ carried inside a PARP request.
///
/// The variants cover the calls the paper's evaluation exercises: balance
/// reads (the read workload), raw-transaction submission (the write
/// workload), transaction lookups, plus the protocol-internal calls used
/// for bootstrapping and channel liveness checks (§V-C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcCall {
    /// `eth_getBalance(address)` — proven against the state trie.
    GetBalance {
        /// Queried account.
        address: Address,
    },
    /// `eth_sendRawTransaction(bytes)` — proven against the transaction
    /// trie of the block that includes the transaction.
    SendRawTransaction {
        /// RLP-encoded signed transaction.
        raw: Vec<u8>,
    },
    /// `eth_getTransactionByHash(hash)` — proven against the transaction
    /// trie.
    GetTransactionByHash {
        /// Transaction hash.
        hash: H256,
    },
    /// `eth_blockNumber` — unproven chain-tip query.
    BlockNumber,
    /// Fetch a block header by number (light-client sync; unproven, the
    /// header is self-authenticating via its hash).
    GetHeader {
        /// Block height.
        number: u64,
    },
    /// Channel liveness probe (§V-C): the current on-chain status of a
    /// payment channel.
    GetChannelStatus {
        /// Channel identifier α.
        channel_id: u64,
    },
    /// `eth_getTransactionReceipt(hash)` — proven against the receipt
    /// trie (the third MPT committed in every header, §VI).
    ///
    /// The receipt proof binds `(index → receipt)` under the header's
    /// `receipts_root`; binding `index` to the queried hash additionally
    /// requires the transaction-trie proof for the same index, which the
    /// client obtains via [`RpcCall::GetTransactionByHash`].
    GetTransactionReceipt {
        /// Transaction hash.
        hash: H256,
    },
    /// `eth_getTransactionCount(address)` — the account nonce, proven
    /// against the state trie with the **same** account record (and the
    /// same multiproof path) as [`RpcCall::GetBalance`]: the response
    /// payload is the full RLP account, and the client reads the nonce
    /// out of it. Batches can therefore mix balance and nonce reads over
    /// one snapshot at no extra proof cost.
    GetTransactionCount {
        /// Queried account.
        address: Address,
    },
}

/// Which Merkle trie (if any) authenticates the response to a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofKind {
    /// No Merkle proof applies.
    None,
    /// State-trie proof keyed by `keccak256(address)`.
    State,
    /// Transaction-trie proof keyed by `rlp(index)`.
    Transaction,
    /// Receipt-trie proof keyed by `rlp(index)`.
    Receipt,
}

impl RpcCall {
    /// RLP encoding `[selector, args...]`.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            RpcCall::GetBalance { address } => {
                encode_list(&[encode_u64(0), parp_rlp::encode_address(address)])
            }
            RpcCall::SendRawTransaction { raw } => encode_list(&[encode_u64(1), encode_bytes(raw)]),
            RpcCall::GetTransactionByHash { hash } => {
                encode_list(&[encode_u64(2), encode_h256(hash)])
            }
            RpcCall::BlockNumber => encode_list(&[encode_u64(3)]),
            RpcCall::GetHeader { number } => encode_list(&[encode_u64(4), encode_u64(*number)]),
            RpcCall::GetChannelStatus { channel_id } => {
                encode_list(&[encode_u64(5), encode_u64(*channel_id)])
            }
            RpcCall::GetTransactionReceipt { hash } => {
                encode_list(&[encode_u64(6), encode_h256(hash)])
            }
            RpcCall::GetTransactionCount { address } => {
                encode_list(&[encode_u64(7), parp_rlp::encode_address(address)])
            }
        }
    }

    /// Decodes a call.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for unknown selectors or malformed args.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let item = parp_rlp::decode(bytes)?;
        let fields = item.as_list()?;
        let selector = fields
            .first()
            .ok_or(DecodeError::WrongArity {
                expected: 1,
                actual: 0,
            })?
            .as_u64()?;
        let arity = |n: usize| -> Result<(), DecodeError> {
            if fields.len() != n {
                Err(DecodeError::WrongArity {
                    expected: n,
                    actual: fields.len(),
                })
            } else {
                Ok(())
            }
        };
        match selector {
            0 => {
                arity(2)?;
                Ok(RpcCall::GetBalance {
                    address: fields[1].as_address()?,
                })
            }
            1 => {
                arity(2)?;
                Ok(RpcCall::SendRawTransaction {
                    raw: fields[1].as_bytes()?.to_vec(),
                })
            }
            2 => {
                arity(2)?;
                Ok(RpcCall::GetTransactionByHash {
                    hash: fields[1].as_h256()?,
                })
            }
            3 => {
                arity(1)?;
                Ok(RpcCall::BlockNumber)
            }
            4 => {
                arity(2)?;
                Ok(RpcCall::GetHeader {
                    number: fields[1].as_u64()?,
                })
            }
            5 => {
                arity(2)?;
                Ok(RpcCall::GetChannelStatus {
                    channel_id: fields[1].as_u64()?,
                })
            }
            6 => {
                arity(2)?;
                Ok(RpcCall::GetTransactionReceipt {
                    hash: fields[1].as_h256()?,
                })
            }
            7 => {
                arity(2)?;
                Ok(RpcCall::GetTransactionCount {
                    address: fields[1].as_address()?,
                })
            }
            _ => Err(DecodeError::ExpectedList),
        }
    }

    /// The trie that authenticates this call's response.
    pub fn proof_kind(&self) -> ProofKind {
        match self {
            RpcCall::GetBalance { .. } | RpcCall::GetTransactionCount { .. } => ProofKind::State,
            RpcCall::SendRawTransaction { .. } | RpcCall::GetTransactionByHash { .. } => {
                ProofKind::Transaction
            }
            RpcCall::GetTransactionReceipt { .. } => ProofKind::Receipt,
            RpcCall::BlockNumber | RpcCall::GetHeader { .. } | RpcCall::GetChannelStatus { .. } => {
                ProofKind::None
            }
        }
    }

    /// Whether this call may ride inside a [`crate::ParpBatchRequest`].
    ///
    /// The multi-header batch envelope carries one header per distinct
    /// block any item's proof binds to, so every *read* batches: state
    /// reads and unproven chain queries verify against the snapshot
    /// header, and historical inclusion lookups
    /// (`eth_getTransactionByHash`, `eth_getTransactionReceipt`) verify
    /// against the header of their containing block. Only
    /// `eth_sendRawTransaction` travels alone: it mutates state (the
    /// serving node mines the transaction), so it cannot share a batch's
    /// read-only snapshot.
    pub fn batchable(&self) -> bool {
        !matches!(self, RpcCall::SendRawTransaction { .. })
    }

    /// The account a state-proven call reads, i.e. the address whose
    /// `keccak256(address)` trie key its proof walks. `None` for calls
    /// that are not state-proven.
    ///
    /// This is the single source of truth pairing state-proven calls
    /// with their trie keys: the serving node, the batched multiproof
    /// verifier and the on-chain FDM all extract keys through it, so a
    /// new state-read variant cannot desync them.
    pub fn state_address(&self) -> Option<&Address> {
        match self {
            RpcCall::GetBalance { address } | RpcCall::GetTransactionCount { address } => {
                Some(address)
            }
            _ => None,
        }
    }

    /// Whether the §V-D timestamp check applies: calls that answer about
    /// the *current* chain state must respond at `m_B >= height(h_B)`.
    ///
    /// Lookups of historical inclusions (`GetTransactionByHash`,
    /// `GetTransactionReceipt`) are exempt: their proofs are bound to the
    /// containing block, which may legitimately predate the client's tip.
    /// Without this exemption a malicious client could slash an honest
    /// node simply by querying an old transaction.
    pub fn requires_fresh_height(&self) -> bool {
        !matches!(
            self,
            RpcCall::GetTransactionByHash { .. } | RpcCall::GetTransactionReceipt { .. }
        )
    }
}

/// Errors from decoding PARP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageError {
    /// Malformed RLP structure.
    Decode(DecodeError),
    /// A signature field was out of range.
    BadSignature,
}

impl fmt::Display for MessageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageError::Decode(e) => write!(f, "message decode failed: {e}"),
            MessageError::BadSignature => write!(f, "message signature field out of range"),
        }
    }
}

impl Error for MessageError {}

impl From<DecodeError> for MessageError {
    fn from(e: DecodeError) -> Self {
        MessageError::Decode(e)
    }
}

pub(crate) fn encode_signature(sig: &Signature) -> Vec<u8> {
    encode_bytes(&sig.to_bytes())
}

pub(crate) fn decode_signature(item: &Item) -> Result<Signature, MessageError> {
    let bytes = item.as_bytes()?;
    let array: &[u8; 65] = bytes.try_into().map_err(|_| MessageError::BadSignature)?;
    Signature::from_bytes(array).map_err(|_| MessageError::BadSignature)
}

/// A PARP request (paper Fig. 3, left).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParpRequest {
    /// Channel identifier α.
    pub channel_id: u64,
    /// `h_B`: the most recent block hash known to the light client.
    pub block_hash: H256,
    /// `a`: cumulative payment amount authorized so far.
    pub amount: U256,
    /// γ: the wrapped RPC call.
    pub call: RpcCall,
    /// `h_req = keccak256(rlp([α, h_B, a, γ]))`.
    pub request_hash: H256,
    /// `σ_a = Sign(keccak256(rlp([α, a])))` — the detachable payment proof.
    pub payment_sig: Signature,
    /// `σ_req = Sign(h_req)`.
    pub request_sig: Signature,
}

/// Computes `h_req` over the request's signed fields.
pub fn request_hash(channel_id: u64, block_hash: &H256, amount: &U256, call: &RpcCall) -> H256 {
    keccak256(&encode_list(&[
        encode_u64(channel_id),
        encode_h256(block_hash),
        encode_u256(amount),
        encode_bytes(&call.encode()),
    ]))
}

/// Computes the payment digest `keccak256(rlp([α, a]))` that `σ_a` signs.
/// This is the message the CMM verifies when redeeming payments on-chain.
pub fn payment_digest(channel_id: u64, amount: &U256) -> H256 {
    keccak256(&encode_list(&[encode_u64(channel_id), encode_u256(amount)]))
}

impl ParpRequest {
    /// Builds and signs a request with the light client's key.
    pub fn build(
        secret: &SecretKey,
        channel_id: u64,
        block_hash: H256,
        amount: U256,
        call: RpcCall,
    ) -> Self {
        let h_req = request_hash(channel_id, &block_hash, &amount, &call);
        let payment_sig = sign(secret, &payment_digest(channel_id, &amount));
        let request_sig = sign(secret, &h_req);
        ParpRequest {
            channel_id,
            block_hash,
            amount,
            call,
            request_hash: h_req,
            payment_sig,
            request_sig,
        }
    }

    /// Recomputes `h_req` from the request contents.
    pub fn expected_hash(&self) -> H256 {
        request_hash(self.channel_id, &self.block_hash, &self.amount, &self.call)
    }

    /// Recovers the request signer (the light client) from `σ_req`.
    ///
    /// Returns `None` when recovery fails or the hash is inconsistent.
    pub fn signer(&self) -> Option<Address> {
        if self.expected_hash() != self.request_hash {
            return None;
        }
        recover_address(&self.request_hash, &self.request_sig).ok()
    }

    /// Recovers the payment signer from `σ_a`.
    pub fn payment_signer(&self) -> Option<Address> {
        recover_address(
            &payment_digest(self.channel_id, &self.amount),
            &self.payment_sig,
        )
        .ok()
    }

    /// Full RLP wire encoding (7 fields).
    pub fn encode(&self) -> Vec<u8> {
        encode_list(&[
            encode_u64(self.channel_id),
            encode_h256(&self.block_hash),
            encode_u256(&self.amount),
            encode_bytes(&self.call.encode()),
            encode_h256(&self.request_hash),
            encode_signature(&self.payment_sig),
            encode_signature(&self.request_sig),
        ])
    }

    /// Decodes a request.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError`] on malformed structure or signatures.
    pub fn decode(bytes: &[u8]) -> Result<Self, MessageError> {
        let fields = decode_list_of(bytes, 7)?;
        Ok(ParpRequest {
            channel_id: fields[0].as_u64()?,
            block_hash: fields[1].as_h256()?,
            amount: fields[2].as_u256()?,
            call: RpcCall::decode(fields[3].as_bytes()?)?,
            request_hash: fields[4].as_h256()?,
            payment_sig: decode_signature(&fields[5])?,
            request_sig: decode_signature(&fields[6])?,
        })
    }

    /// Byte size of the PARP metadata added on top of the bare RPC call
    /// (Table II's "PARP request overhead").
    pub fn overhead_bytes(&self) -> usize {
        self.encode().len() - self.call.encode().len()
    }
}

/// A PARP response (paper Fig. 3, right).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParpResponse {
    /// Channel identifier α (must match the request).
    pub channel_id: u64,
    /// `m_B`: the block height the response (and its proof) refer to.
    pub block_number: u64,
    /// `a`: echo of the request's cumulative payment amount.
    pub amount: U256,
    /// `R(γ)`: the call result payload (encoding depends on the call).
    pub result: Vec<u8>,
    /// `π_γ`: Merkle proof nodes (empty for unproven calls).
    pub proof: Vec<Vec<u8>>,
    /// `h_req`: echo of the request hash.
    pub request_hash: H256,
    /// `σ_req`: echo of the request signature.
    pub request_sig: Signature,
    /// `σ_res = Sign(h_res)` by the full node.
    pub response_sig: Signature,
}

/// Computes `h_res` over all response fields before `σ_res`.
pub fn response_hash(
    channel_id: u64,
    block_number: u64,
    amount: &U256,
    result: &[u8],
    proof: &[Vec<u8>],
    request_hash: &H256,
    request_sig: &Signature,
) -> H256 {
    let proof_items: Vec<Vec<u8>> = proof.iter().map(|n| encode_bytes(n)).collect();
    keccak256(&encode_list(&[
        encode_u64(channel_id),
        encode_u64(block_number),
        encode_u256(amount),
        encode_bytes(result),
        encode_list(&proof_items),
        encode_h256(request_hash),
        encode_bytes(&request_sig.to_bytes()),
    ]))
}

impl ParpResponse {
    /// Builds and signs a response with the full node's key.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        secret: &SecretKey,
        request: &ParpRequest,
        block_number: u64,
        result: Vec<u8>,
        proof: Vec<Vec<u8>>,
    ) -> Self {
        let h_res = response_hash(
            request.channel_id,
            block_number,
            &request.amount,
            &result,
            &proof,
            &request.request_hash,
            &request.request_sig,
        );
        ParpResponse {
            channel_id: request.channel_id,
            block_number,
            amount: request.amount,
            result,
            proof,
            request_hash: request.request_hash,
            request_sig: request.request_sig,
            response_sig: sign(secret, &h_res),
        }
    }

    /// Recomputes `h_res` from the response contents.
    pub fn expected_hash(&self) -> H256 {
        response_hash(
            self.channel_id,
            self.block_number,
            &self.amount,
            &self.result,
            &self.proof,
            &self.request_hash,
            &self.request_sig,
        )
    }

    /// Recovers the response signer (the full node) from `σ_res`.
    pub fn signer(&self) -> Option<Address> {
        recover_address(&self.expected_hash(), &self.response_sig).ok()
    }

    /// Full RLP wire encoding (8 fields).
    pub fn encode(&self) -> Vec<u8> {
        let proof_items: Vec<Vec<u8>> = self.proof.iter().map(|n| encode_bytes(n)).collect();
        encode_list(&[
            encode_u64(self.channel_id),
            encode_u64(self.block_number),
            encode_u256(&self.amount),
            encode_bytes(&self.result),
            encode_list(&proof_items),
            encode_h256(&self.request_hash),
            encode_signature(&self.request_sig),
            encode_signature(&self.response_sig),
        ])
    }

    /// Decodes a response.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError`] on malformed structure or signatures.
    pub fn decode(bytes: &[u8]) -> Result<Self, MessageError> {
        let fields = decode_list_of(bytes, 8)?;
        let proof = fields[4]
            .as_list()?
            .iter()
            .map(|n| n.as_bytes().map(<[u8]>::to_vec))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ParpResponse {
            channel_id: fields[0].as_u64()?,
            block_number: fields[1].as_u64()?,
            amount: fields[2].as_u256()?,
            result: fields[3].as_bytes()?.to_vec(),
            proof,
            request_hash: fields[5].as_h256()?,
            request_sig: decode_signature(&fields[6])?,
            response_sig: decode_signature(&fields[7])?,
        })
    }

    /// Total size of the Merkle proof nodes in bytes.
    pub fn proof_bytes(&self) -> usize {
        self.proof.iter().map(Vec::len).sum()
    }

    /// Byte size of the PARP metadata added on top of the result and proof
    /// (Table II's "PARP response overhead", which excludes the
    /// variable-sized proof).
    pub fn overhead_bytes(&self) -> usize {
        self.encode().len() - self.result.len() - self.proof_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lc_key() -> SecretKey {
        SecretKey::from_seed(b"light-client")
    }

    fn fn_key() -> SecretKey {
        SecretKey::from_seed(b"full-node")
    }

    fn sample_request(amount: u64) -> ParpRequest {
        ParpRequest::build(
            &lc_key(),
            7,
            H256::from_low_u64_be(0xb10c),
            U256::from(amount),
            RpcCall::GetBalance {
                address: Address::from_low_u64_be(0xabc),
            },
        )
    }

    #[test]
    fn rpc_call_roundtrips() {
        let calls = vec![
            RpcCall::GetBalance {
                address: Address::from_low_u64_be(1),
            },
            RpcCall::SendRawTransaction { raw: vec![1, 2, 3] },
            RpcCall::GetTransactionByHash {
                hash: H256::from_low_u64_be(2),
            },
            RpcCall::BlockNumber,
            RpcCall::GetHeader { number: 9 },
            RpcCall::GetChannelStatus { channel_id: 3 },
            RpcCall::GetTransactionReceipt {
                hash: H256::from_low_u64_be(4),
            },
            RpcCall::GetTransactionCount {
                address: Address::from_low_u64_be(5),
            },
        ];
        for call in calls {
            assert_eq!(RpcCall::decode(&call.encode()).unwrap(), call);
        }
    }

    #[test]
    fn nonce_reads_share_the_balance_read_proof_machinery() {
        let address = Address::from_low_u64_be(0x77);
        let call = RpcCall::GetTransactionCount { address };
        assert_eq!(call.proof_kind(), ProofKind::State);
        assert!(call.batchable());
        assert!(call.requires_fresh_height());
        assert_eq!(call.state_address(), Some(&address));
        assert_eq!(
            RpcCall::GetBalance { address }.state_address(),
            Some(&address)
        );
        assert_eq!(RpcCall::BlockNumber.state_address(), None);
    }

    #[test]
    fn unknown_selector_rejected() {
        let bad = encode_list(&[encode_u64(99)]);
        assert!(RpcCall::decode(&bad).is_err());
    }

    #[test]
    fn proof_kinds() {
        assert_eq!(
            RpcCall::GetBalance {
                address: Address::ZERO
            }
            .proof_kind(),
            ProofKind::State
        );
        assert_eq!(
            RpcCall::SendRawTransaction { raw: vec![] }.proof_kind(),
            ProofKind::Transaction
        );
        assert_eq!(RpcCall::BlockNumber.proof_kind(), ProofKind::None);
    }

    #[test]
    fn request_roundtrip_and_signers() {
        let request = sample_request(100);
        let decoded = ParpRequest::decode(&request.encode()).unwrap();
        assert_eq!(decoded, request);
        assert_eq!(decoded.signer(), Some(lc_key().address()));
        assert_eq!(decoded.payment_signer(), Some(lc_key().address()));
    }

    #[test]
    fn tampered_request_hash_breaks_signer() {
        let mut request = sample_request(100);
        request.amount = U256::from(999u64);
        // Hash no longer matches contents.
        assert_eq!(request.signer(), None);
    }

    #[test]
    fn response_roundtrip_and_signer() {
        let request = sample_request(100);
        let response = ParpResponse::build(
            &fn_key(),
            &request,
            42,
            b"result".to_vec(),
            vec![vec![1, 2, 3], vec![4, 5]],
        );
        let decoded = ParpResponse::decode(&response.encode()).unwrap();
        assert_eq!(decoded, response);
        assert_eq!(decoded.signer(), Some(fn_key().address()));
        assert_eq!(decoded.proof_bytes(), 5);
    }

    #[test]
    fn tampered_response_changes_signer() {
        let request = sample_request(100);
        let mut response = ParpResponse::build(&fn_key(), &request, 42, b"result".to_vec(), vec![]);
        response.result = b"forged".to_vec();
        assert_ne!(response.signer(), Some(fn_key().address()));
    }

    #[test]
    fn payment_sig_is_detachable() {
        // σ_a alone (without the RPC payload) must let the CMM attribute
        // a payment of `a` on channel α to the light client.
        let request = sample_request(5000);
        let digest = payment_digest(request.channel_id, &request.amount);
        assert_eq!(
            recover_address(&digest, &request.payment_sig).unwrap(),
            lc_key().address()
        );
    }

    #[test]
    fn request_overhead_matches_table2_scale() {
        // Table II: 226 bytes of request overhead (two 65-byte signatures
        // plus hash and bookkeeping). Our RLP framing differs from the
        // prototype's JSON, but the same order of magnitude must hold.
        let request = sample_request(100);
        let overhead = request.overhead_bytes();
        assert!(
            (150..350).contains(&overhead),
            "request overhead {overhead} out of expected range"
        );
    }

    #[test]
    fn response_overhead_matches_table2_scale() {
        let request = sample_request(100);
        let response = ParpResponse::build(
            &fn_key(),
            &request,
            42,
            b"some-result-bytes".to_vec(),
            vec![vec![0xaa; 100], vec![0xbb; 100]],
        );
        let overhead = response.overhead_bytes();
        // Table II: 187 bytes + proof.
        assert!(
            (120..300).contains(&overhead),
            "response overhead {overhead} out of expected range"
        );
    }
}
