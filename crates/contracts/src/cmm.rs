//! The Channels Management Module (CMM): unidirectional payment channels
//! between light clients and full nodes (paper §IV-C, §V-B).

use crate::fndm::{address_topic, event_log, DepositModule, Revert};
use crate::gas::GasMeter;
use crate::message::payment_digest;
use parp_chain::{BlockContext, Log, State};
use parp_crypto::{keccak256_concat, recover_address, Keccak256, Signature};
use parp_primitives::{Address, H256, U256};
use std::collections::BTreeMap;

/// Length of the dispute window, in blocks (paper §IV-E: "the channel
/// will have a dispute window for a period of time before it closes").
pub const DISPUTE_WINDOW_BLOCKS: u64 = 25;

/// The lifecycle of a payment channel (paper §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelStatus {
    /// Successfully set up; off-chain payments flowing.
    Open,
    /// A party has initiated settlement; disputes may be filed until the
    /// deadline block.
    Closing {
        /// First block at which `confirmClosure` succeeds.
        deadline: u64,
    },
    /// Settled; funds redistributed.
    Closed,
}

impl ChannelStatus {
    /// Single-byte encoding used in liveness responses.
    pub fn as_byte(&self) -> u8 {
        match self {
            ChannelStatus::Open => 0,
            ChannelStatus::Closing { .. } => 1,
            ChannelStatus::Closed => 2,
        }
    }
}

/// An on-chain payment channel record `P = (α, LC, FN, b, cs, T)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    /// Unique identifier α.
    pub id: u64,
    /// The paying light client.
    pub light_client: Address,
    /// The serving full node.
    pub full_node: Address,
    /// Total budget `b` locked by the light client.
    pub budget: U256,
    /// Latest accepted cumulative amount `cs`.
    pub latest_amount: U256,
    /// Lifecycle status `T`.
    pub status: ChannelStatus,
    /// Block at which the channel was opened.
    pub opened_at: u64,
}

/// The digest a full node signs to consent to a channel
/// (`Sign(keccak256(LC || expiry), sk_FN)`, Algorithm 1).
pub fn confirmation_digest(light_client: &Address, expiry: u64) -> H256 {
    keccak256_concat(&[light_client.as_bytes(), &expiry.to_be_bytes()])
}

/// The channels module state.
#[derive(Debug, Clone, Default)]
pub struct ChannelsModule {
    channels: BTreeMap<u64, Channel>,
    next_id: u64,
}

impl ChannelsModule {
    /// Creates an empty module.
    pub fn new() -> Self {
        ChannelsModule::default()
    }

    /// Looks up a channel by identifier.
    pub fn channel(&self, id: u64) -> Option<&Channel> {
        self.channels.get(&id)
    }

    /// Number of channels ever opened.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// `openChannel(fullNode, expiry, confirmationSig)` with the budget as
    /// transaction value. Returns `rlp(channel_id)`.
    ///
    /// # Errors
    ///
    /// Reverts on zero budget, expired or invalid confirmation, or an
    /// ineligible full node.
    #[allow(clippy::too_many_arguments)]
    pub fn open_channel(
        &mut self,
        sender: Address,
        value: U256,
        full_node: Address,
        expiry: u64,
        confirmation_sig: &Signature,
        ctx: &BlockContext,
        fndm: &DepositModule,
        meter: &mut GasMeter,
    ) -> Result<(Vec<u8>, Vec<Log>), Revert> {
        if value.is_zero() {
            return Err(Revert::new("channel budget must be positive"));
        }
        if expiry < ctx.timestamp {
            return Err(Revert::new("full node confirmation expired"));
        }
        let digest = confirmation_digest(&sender, expiry);
        meter.keccak(28);
        meter.ecrecover();
        let signer = recover_address(&digest, confirmation_sig)
            .map_err(|_| Revert::new("invalid confirmation signature"))?;
        if signer != full_node {
            return Err(Revert::new("confirmation not signed by full node"));
        }
        meter.sload_n(2);
        if !fndm.is_eligible(&full_node) {
            return Err(Revert::new("full node not eligible to serve"));
        }
        let id = self.next_id;
        self.next_id += 1;
        // A fresh Solidity channel struct: id counter update plus six new
        // slots (participants, budget, cs, status/expiry, opened_at).
        meter.sstore_update();
        meter.sstore_set_n(6);
        meter.value_transfer(false);
        self.channels.insert(
            id,
            Channel {
                id,
                light_client: sender,
                full_node,
                budget: value,
                latest_amount: U256::ZERO,
                status: ChannelStatus::Open,
                opened_at: ctx.number,
            },
        );
        let log = event_log(
            crate::calls::cmm_address(),
            "ChannelOpened(uint64,address,address,uint256)",
            &[address_topic(&sender), address_topic(&full_node)],
            &parp_rlp::encode_list(&[parp_rlp::encode_u64(id), parp_rlp::encode_u256(&value)]),
        );
        meter.log(3, 40);
        Ok((parp_rlp::encode_u64(id), vec![log]))
    }

    /// Validates a payment state `(α, a, σ_a)` against a channel: the
    /// signature must be the light client's and `a` must not exceed the
    /// budget.
    fn validate_state(
        channel: &Channel,
        amount: &U256,
        payment_sig: &Signature,
        meter: &mut GasMeter,
    ) -> Result<(), Revert> {
        if *amount > channel.budget {
            return Err(Revert::new("amount exceeds channel budget"));
        }
        meter.keccak(40);
        meter.ecrecover();
        let digest = payment_digest(channel.id, amount);
        let signer = recover_address(&digest, payment_sig)
            .map_err(|_| Revert::new("invalid payment signature"))?;
        if signer != channel.light_client {
            return Err(Revert::new("payment not signed by light client"));
        }
        Ok(())
    }

    /// `closeChannel(α, a, σ_a)`: either party starts settlement with the
    /// latest signed state.
    ///
    /// # Errors
    ///
    /// Reverts when the channel is not open, the caller is not a
    /// participant, or the state is invalid.
    pub fn close_channel(
        &mut self,
        sender: Address,
        channel_id: u64,
        amount: U256,
        payment_sig: &Signature,
        ctx: &BlockContext,
        meter: &mut GasMeter,
    ) -> Result<(Vec<u8>, Vec<Log>), Revert> {
        meter.sload_n(6);
        let channel = self
            .channels
            .get_mut(&channel_id)
            .ok_or_else(|| Revert::new("unknown channel"))?;
        if channel.status != ChannelStatus::Open {
            return Err(Revert::new("channel is not open"));
        }
        if sender != channel.light_client && sender != channel.full_node {
            return Err(Revert::new("caller is not a channel participant"));
        }
        if !amount.is_zero() {
            Self::validate_state(channel, &amount, payment_sig, meter)?;
        }
        channel.latest_amount = channel.latest_amount.max(amount);
        let deadline = ctx.number + DISPUTE_WINDOW_BLOCKS;
        channel.status = ChannelStatus::Closing { deadline };
        // cs update + status/deadline slot (first write).
        meter.sstore_update();
        meter.sstore_set();
        let log = event_log(
            crate::calls::cmm_address(),
            "ChannelClosing(uint64,uint256,uint64)",
            &[address_topic(&sender)],
            &parp_rlp::encode_list(&[
                parp_rlp::encode_u64(channel_id),
                parp_rlp::encode_u256(&amount),
                parp_rlp::encode_u64(deadline),
            ]),
        );
        meter.log(2, 48);
        Ok((Vec::new(), vec![log]))
    }

    /// `submitState(α, a, σ_a)`: during the dispute window, a strictly
    /// higher valid state supersedes the recorded one and resets the
    /// window (paper §V-B "Dispute present").
    ///
    /// # Errors
    ///
    /// Reverts when the channel is not closing or the state is not an
    /// improvement.
    pub fn submit_state(
        &mut self,
        channel_id: u64,
        amount: U256,
        payment_sig: &Signature,
        ctx: &BlockContext,
        meter: &mut GasMeter,
    ) -> Result<(Vec<u8>, Vec<Log>), Revert> {
        meter.sload_n(6);
        let channel = self
            .channels
            .get_mut(&channel_id)
            .ok_or_else(|| Revert::new("unknown channel"))?;
        let ChannelStatus::Closing { .. } = channel.status else {
            return Err(Revert::new("channel is not closing"));
        };
        if amount <= channel.latest_amount {
            return Err(Revert::new("state is not newer than the recorded one"));
        }
        Self::validate_state(channel, &amount, payment_sig, meter)?;
        channel.latest_amount = amount;
        let deadline = ctx.number + DISPUTE_WINDOW_BLOCKS;
        channel.status = ChannelStatus::Closing { deadline };
        meter.sstore_update();
        meter.sstore_update();
        let log = event_log(
            crate::calls::cmm_address(),
            "ChannelStateSubmitted(uint64,uint256,uint64)",
            &[],
            &parp_rlp::encode_list(&[
                parp_rlp::encode_u64(channel_id),
                parp_rlp::encode_u256(&amount),
                parp_rlp::encode_u64(deadline),
            ]),
        );
        meter.log(1, 48);
        Ok((Vec::new(), vec![log]))
    }

    /// `confirmClosure(α)`: after the dispute window, pays the full node
    /// its earned `cs` and refunds the remainder to the light client.
    ///
    /// # Errors
    ///
    /// Reverts before the deadline or when the channel is not closing.
    pub fn confirm_closure(
        &mut self,
        channel_id: u64,
        ctx: &BlockContext,
        state: &mut State,
        meter: &mut GasMeter,
    ) -> Result<(Vec<u8>, Vec<Log>), Revert> {
        meter.sload_n(6);
        let channel = self
            .channels
            .get_mut(&channel_id)
            .ok_or_else(|| Revert::new("unknown channel"))?;
        let ChannelStatus::Closing { deadline } = channel.status else {
            return Err(Revert::new("channel is not closing"));
        };
        if ctx.number < deadline {
            return Err(Revert::new("dispute window still open"));
        }
        let module = crate::calls::cmm_address();
        let earned = channel.latest_amount.min(channel.budget);
        let refund = channel.budget - earned;
        if !state.transfer(&module, channel.full_node, earned) {
            return Err(Revert::new("module balance underflow"));
        }
        meter.value_transfer(false);
        if !state.transfer(&module, channel.light_client, refund) {
            return Err(Revert::new("module balance underflow"));
        }
        meter.value_transfer(false);
        channel.status = ChannelStatus::Closed;
        meter.sstore_update();
        meter.sstore_update();
        let log = event_log(
            crate::calls::cmm_address(),
            "ChannelClosed(uint64,uint256,uint256)",
            &[],
            &parp_rlp::encode_list(&[
                parp_rlp::encode_u64(channel_id),
                parp_rlp::encode_u256(&earned),
                parp_rlp::encode_u256(&refund),
            ]),
        );
        meter.log(1, 64);
        Ok((Vec::new(), vec![log]))
    }

    /// Force-settles a channel after proven fraud: the full node forfeits
    /// nothing here (its collateral is slashed by the FNDM); the budget
    /// is settled at the recorded `cs` so honest payments stand.
    pub(crate) fn settle_for_fraud(
        &mut self,
        channel_id: u64,
        state: &mut State,
        meter: &mut GasMeter,
    ) -> Result<(), Revert> {
        let channel = self
            .channels
            .get_mut(&channel_id)
            .ok_or_else(|| Revert::new("unknown channel"))?;
        if channel.status == ChannelStatus::Closed {
            return Err(Revert::new("channel already closed"));
        }
        let module = crate::calls::cmm_address();
        let earned = channel.latest_amount.min(channel.budget);
        let refund = channel.budget - earned;
        if !state.transfer(&module, channel.full_node, earned)
            || !state.transfer(&module, channel.light_client, refund)
        {
            return Err(Revert::new("module balance underflow"));
        }
        meter.value_transfer(false);
        meter.value_transfer(false);
        channel.status = ChannelStatus::Closed;
        meter.sstore_update();
        Ok(())
    }

    /// Commitment to the module state (stored as the module account's
    /// `storage_root`).
    pub fn commitment(&self) -> H256 {
        let mut hasher = Keccak256::new();
        hasher.update(b"cmm");
        hasher.update(&self.next_id.to_be_bytes());
        for channel in self.channels.values() {
            hasher.update(&channel.id.to_be_bytes());
            hasher.update(channel.light_client.as_bytes());
            hasher.update(channel.full_node.as_bytes());
            hasher.update(&channel.budget.to_be_bytes());
            hasher.update(&channel.latest_amount.to_be_bytes());
            hasher.update(&[channel.status.as_byte()]);
            if let ChannelStatus::Closing { deadline } = channel.status {
                hasher.update(&deadline.to_be_bytes());
            }
            hasher.update(&channel.opened_at.to_be_bytes());
        }
        hasher.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_crypto::{sign, SecretKey};

    fn lc() -> SecretKey {
        SecretKey::from_seed(b"cmm-lc")
    }

    fn full_node() -> SecretKey {
        SecretKey::from_seed(b"cmm-fn")
    }

    fn ctx_at(number: u64) -> BlockContext {
        BlockContext::bare(number, 1_700_000_000 + number * 12, Address::ZERO)
    }

    fn eligible_fndm() -> DepositModule {
        let mut fndm = DepositModule::new();
        fndm.deposit(
            full_node().address(),
            crate::fndm::min_deposit(),
            &mut GasMeter::new(),
        )
        .unwrap();
        fndm.set_serving(full_node().address(), true, &mut GasMeter::new())
            .unwrap();
        fndm
    }

    fn consent(expiry: u64) -> Signature {
        sign(&full_node(), &confirmation_digest(&lc().address(), expiry))
    }

    fn open_test_channel(cmm: &mut ChannelsModule, budget: u64) -> u64 {
        let fndm = eligible_fndm();
        let expiry = ctx_at(1).timestamp + 600;
        let (output, _) = cmm
            .open_channel(
                lc().address(),
                U256::from(budget),
                full_node().address(),
                expiry,
                &consent(expiry),
                &ctx_at(1),
                &fndm,
                &mut GasMeter::new(),
            )
            .unwrap();
        parp_rlp::decode(&output).unwrap().as_u64().unwrap()
    }

    fn payment(channel_id: u64, amount: u64) -> (U256, Signature) {
        let a = U256::from(amount);
        let sig = sign(&lc(), &payment_digest(channel_id, &a));
        (a, sig)
    }

    #[test]
    fn open_channel_happy_path() {
        let mut cmm = ChannelsModule::new();
        let id = open_test_channel(&mut cmm, 1000);
        let channel = cmm.channel(id).unwrap();
        assert_eq!(channel.status, ChannelStatus::Open);
        assert_eq!(channel.budget, U256::from(1000u64));
        assert_eq!(channel.light_client, lc().address());
        assert_eq!(channel.full_node, full_node().address());
    }

    #[test]
    fn open_rejects_expired_confirmation() {
        let mut cmm = ChannelsModule::new();
        let fndm = eligible_fndm();
        let ctx = ctx_at(1);
        let expiry = ctx.timestamp - 1;
        let err = cmm
            .open_channel(
                lc().address(),
                U256::from(10u64),
                full_node().address(),
                expiry,
                &consent(expiry),
                &ctx,
                &fndm,
                &mut GasMeter::new(),
            )
            .unwrap_err();
        assert!(err.0.contains("expired"));
    }

    #[test]
    fn open_rejects_wrong_signer() {
        let mut cmm = ChannelsModule::new();
        let fndm = eligible_fndm();
        let ctx = ctx_at(1);
        let expiry = ctx.timestamp + 600;
        // Signed by the light client instead of the full node.
        let forged = sign(&lc(), &confirmation_digest(&lc().address(), expiry));
        let err = cmm
            .open_channel(
                lc().address(),
                U256::from(10u64),
                full_node().address(),
                expiry,
                &forged,
                &ctx,
                &fndm,
                &mut GasMeter::new(),
            )
            .unwrap_err();
        assert!(err.0.contains("not signed by full node"));
    }

    #[test]
    fn open_rejects_ineligible_node() {
        let mut cmm = ChannelsModule::new();
        let fndm = DepositModule::new(); // no deposit
        let ctx = ctx_at(1);
        let expiry = ctx.timestamp + 600;
        let err = cmm
            .open_channel(
                lc().address(),
                U256::from(10u64),
                full_node().address(),
                expiry,
                &consent(expiry),
                &ctx,
                &fndm,
                &mut GasMeter::new(),
            )
            .unwrap_err();
        assert!(err.0.contains("not eligible"));
    }

    #[test]
    fn close_and_confirm_settles_funds() {
        let mut cmm = ChannelsModule::new();
        let id = open_test_channel(&mut cmm, 1000);
        let (amount, sig) = payment(id, 300);
        cmm.close_channel(
            full_node().address(),
            id,
            amount,
            &sig,
            &ctx_at(10),
            &mut GasMeter::new(),
        )
        .unwrap();
        let ChannelStatus::Closing { deadline } = cmm.channel(id).unwrap().status else {
            panic!("expected closing");
        };
        assert_eq!(deadline, 10 + DISPUTE_WINDOW_BLOCKS);

        // Too early.
        let mut state = State::new();
        state.credit(crate::calls::cmm_address(), U256::from(1000u64));
        assert!(cmm
            .confirm_closure(id, &ctx_at(deadline - 1), &mut state, &mut GasMeter::new())
            .is_err());

        cmm.confirm_closure(id, &ctx_at(deadline), &mut state, &mut GasMeter::new())
            .unwrap();
        assert_eq!(state.balance(&full_node().address()), U256::from(300u64));
        assert_eq!(state.balance(&lc().address()), U256::from(700u64));
        assert_eq!(cmm.channel(id).unwrap().status, ChannelStatus::Closed);
    }

    #[test]
    fn dispute_raises_amount_and_resets_window() {
        let mut cmm = ChannelsModule::new();
        let id = open_test_channel(&mut cmm, 1000);
        // FN closes with a stale state (100)...
        let (stale, stale_sig) = payment(id, 100);
        cmm.close_channel(
            full_node().address(),
            id,
            stale,
            &stale_sig,
            &ctx_at(10),
            &mut GasMeter::new(),
        )
        .unwrap();
        // ...and the LC disputes with the newer state (250)? No — only a
        // *higher* amount wins, which favors the FN; here the FN itself
        // could submit the higher state. Either party may call it.
        let (newer, newer_sig) = payment(id, 250);
        cmm.submit_state(id, newer, &newer_sig, &ctx_at(20), &mut GasMeter::new())
            .unwrap();
        let channel = cmm.channel(id).unwrap();
        assert_eq!(channel.latest_amount, U256::from(250u64));
        let ChannelStatus::Closing { deadline } = channel.status else {
            panic!("expected closing");
        };
        assert_eq!(deadline, 20 + DISPUTE_WINDOW_BLOCKS);
        // A lower state is rejected.
        let (lower, lower_sig) = payment(id, 200);
        assert!(cmm
            .submit_state(id, lower, &lower_sig, &ctx_at(21), &mut GasMeter::new())
            .is_err());
    }

    #[test]
    fn amount_cannot_exceed_budget() {
        let mut cmm = ChannelsModule::new();
        let id = open_test_channel(&mut cmm, 100);
        let (too_much, sig) = payment(id, 500);
        let err = cmm
            .close_channel(
                lc().address(),
                id,
                too_much,
                &sig,
                &ctx_at(5),
                &mut GasMeter::new(),
            )
            .unwrap_err();
        assert!(err.0.contains("exceeds"));
    }

    #[test]
    fn non_participant_cannot_close() {
        let mut cmm = ChannelsModule::new();
        let id = open_test_channel(&mut cmm, 100);
        let (amount, sig) = payment(id, 10);
        let stranger = Address::from_low_u64_be(0xbad);
        assert!(cmm
            .close_channel(stranger, id, amount, &sig, &ctx_at(5), &mut GasMeter::new())
            .is_err());
    }

    #[test]
    fn forged_payment_sig_rejected() {
        let mut cmm = ChannelsModule::new();
        let id = open_test_channel(&mut cmm, 1000);
        let amount = U256::from(900u64);
        // Signed by the full node, not the light client.
        let forged = sign(&full_node(), &payment_digest(id, &amount));
        let err = cmm
            .close_channel(
                full_node().address(),
                id,
                amount,
                &forged,
                &ctx_at(5),
                &mut GasMeter::new(),
            )
            .unwrap_err();
        assert!(err.0.contains("not signed by light client"));
    }

    #[test]
    fn commitment_tracks_channel_changes() {
        let mut cmm = ChannelsModule::new();
        let c0 = cmm.commitment();
        let id = open_test_channel(&mut cmm, 100);
        let c1 = cmm.commitment();
        assert_ne!(c0, c1);
        let (amount, sig) = payment(id, 10);
        cmm.close_channel(
            lc().address(),
            id,
            amount,
            &sig,
            &ctx_at(5),
            &mut GasMeter::new(),
        )
        .unwrap();
        assert_ne!(c1, cmm.commitment());
    }
}
