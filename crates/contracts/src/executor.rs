//! The PARP transaction executor: routes transactions addressed to the
//! on-chain modules and falls back to plain transfers otherwise.

use crate::calls::{cmm_address, fdm_address, fndm_address, ModuleCall};
use crate::cmm::ChannelsModule;
use crate::fdm::FraudModule;
use crate::fndm::{DepositModule, Revert};
use crate::gas::GasMeter;
use parp_chain::{
    BlockContext, ExecutionResult, Log, SignedTransaction, State, TransactionExecutor,
    TransferExecutor,
};
use parp_primitives::{Address, U256};

/// Executor wiring the three PARP modules into the chain's execution
/// layer.
///
/// # Examples
///
/// ```
/// use parp_contracts::{ModuleCall, ParpExecutor};
/// use parp_chain::{Blockchain, Transaction};
/// use parp_crypto::SecretKey;
/// use parp_primitives::U256;
///
/// let node = SecretKey::from_seed(b"node");
/// let stake = U256::from(2_000_000_000_000_000_000u64); // 2 tokens
/// let mut chain = Blockchain::new(vec![(node.address(), stake + stake)]);
/// let mut executor = ParpExecutor::new();
///
/// let deposit = Transaction {
///     nonce: 0,
///     gas_price: U256::ZERO,
///     gas_limit: 100_000,
///     to: Some(parp_contracts::fndm_address()),
///     value: stake,
///     data: ModuleCall::Deposit.encode(),
/// }
/// .sign(&node);
/// chain.produce_block(vec![deposit], &mut executor).unwrap();
/// assert_eq!(executor.fndm().deposit_of(&node.address()), stake);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParpExecutor {
    fndm: DepositModule,
    cmm: ChannelsModule,
    fdm: FraudModule,
}

impl ParpExecutor {
    /// Creates an executor with empty module state.
    pub fn new() -> Self {
        ParpExecutor::default()
    }

    /// The deposit module (read-only view).
    pub fn fndm(&self) -> &DepositModule {
        &self.fndm
    }

    /// The channels module (read-only view).
    pub fn cmm(&self) -> &ChannelsModule {
        &self.cmm
    }

    /// The fraud module (read-only view).
    pub fn fdm(&self) -> &FraudModule {
        &self.fdm
    }

    fn is_module(address: &Address) -> bool {
        *address == fndm_address() || *address == cmm_address() || *address == fdm_address()
    }

    fn dispatch(
        &mut self,
        call: &ModuleCall,
        sender: Address,
        value: U256,
        ctx: &BlockContext,
        state: &mut State,
        meter: &mut GasMeter,
    ) -> Result<(Vec<u8>, Vec<Log>), Revert> {
        match call {
            ModuleCall::Deposit => self.fndm.deposit(sender, value, meter),
            ModuleCall::Withdraw { amount } => self.fndm.withdraw(sender, *amount, state, meter),
            ModuleCall::SetServing { serving } => self.fndm.set_serving(sender, *serving, meter),
            ModuleCall::OpenChannel {
                full_node,
                expiry,
                confirmation_sig,
            } => self.cmm.open_channel(
                sender,
                value,
                *full_node,
                *expiry,
                confirmation_sig,
                ctx,
                &self.fndm,
                meter,
            ),
            ModuleCall::CloseChannel {
                channel_id,
                amount,
                payment_sig,
            } => self
                .cmm
                .close_channel(sender, *channel_id, *amount, payment_sig, ctx, meter),
            ModuleCall::SubmitState {
                channel_id,
                amount,
                payment_sig,
            } => self
                .cmm
                .submit_state(*channel_id, *amount, payment_sig, ctx, meter),
            ModuleCall::ConfirmClosure { channel_id } => {
                self.cmm.confirm_closure(*channel_id, ctx, state, meter)
            }
            ModuleCall::SubmitFraudProof {
                request,
                response,
                witness,
                header,
            } => self.fdm.submit_fraud_proof(
                request,
                response,
                *witness,
                header,
                ctx,
                &mut self.cmm,
                &mut self.fndm,
                state,
                meter,
            ),
            ModuleCall::SubmitBatchFraudProof {
                request,
                response,
                witness,
                headers,
            } => self.fdm.submit_batch_fraud_proof(
                request,
                response,
                *witness,
                headers,
                ctx,
                &mut self.cmm,
                &mut self.fndm,
                state,
                meter,
            ),
        }
    }

    /// Refreshes the module accounts' `storage_root` commitments so the
    /// world-state root covers module state.
    fn commit_modules(&self, state: &mut State) {
        state.account_mut(fndm_address()).storage_root = self.fndm.commitment();
        state.account_mut(cmm_address()).storage_root = self.cmm.commitment();
        state.account_mut(fdm_address()).storage_root = self.fdm.commitment();
    }
}

impl TransactionExecutor for ParpExecutor {
    fn execute(
        &mut self,
        state: &mut State,
        ctx: &BlockContext,
        tx: &SignedTransaction,
        sender: Address,
        intrinsic_gas: u64,
    ) -> ExecutionResult {
        let Some(to) = tx.tx().to else {
            return ExecutionResult::failure(intrinsic_gas);
        };
        if !Self::is_module(&to) {
            return TransferExecutor.execute(state, ctx, tx, sender, intrinsic_gas);
        }
        let mut meter = GasMeter::new();
        // ABI decode of the calldata.
        meter.process_bytes(tx.tx().data.len().min(256));
        let call = match ModuleCall::decode(&tx.tx().data) {
            Ok(call) => call,
            Err(_) => return ExecutionResult::failure(intrinsic_gas + meter.used()),
        };
        if call.target() != to {
            return ExecutionResult::failure(intrinsic_gas + meter.used());
        }
        // Snapshot for revert semantics.
        let state_snapshot = state.clone();
        let modules_snapshot = self.clone();
        // Move the transaction value into the module's custody.
        if !state.transfer(&sender, to, tx.tx().value) {
            return ExecutionResult::failure(intrinsic_gas + meter.used());
        }
        match self.dispatch(&call, sender, tx.tx().value, ctx, state, &mut meter) {
            Ok((output, logs)) => {
                self.commit_modules(state);
                ExecutionResult {
                    success: true,
                    gas_used: intrinsic_gas + meter.used(),
                    logs,
                    output,
                }
            }
            Err(revert) => {
                *state = state_snapshot;
                *self = modules_snapshot;
                let mut result = ExecutionResult::failure(intrinsic_gas + meter.used());
                result.output = revert.0.into_bytes();
                result
            }
        }
    }
}
