//! Calldata encoding for the on-chain PARP modules.
//!
//! A module call is a transaction whose `to` is one of the module
//! addresses and whose `data` is `rlp([selector, args...])` — the moral
//! equivalent of a Solidity ABI call.

use parp_crypto::Signature;
use parp_primitives::{Address, U256};
use parp_rlp::{
    encode_address, encode_bytes, encode_list, encode_u256, encode_u64, DecodeError, Item,
};

/// Address of the Full Nodes Deposit Module.
pub fn fndm_address() -> Address {
    Address::from_low_u64_be(0xF1)
}

/// Address of the Channels Management Module.
pub fn cmm_address() -> Address {
    Address::from_low_u64_be(0xF2)
}

/// Address of the Fraud Detection Module.
pub fn fdm_address() -> Address {
    Address::from_low_u64_be(0xF3)
}

/// A decoded module invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleCall {
    /// FNDM: deposit the transaction value as serving collateral.
    Deposit,
    /// FNDM: withdraw unlocked collateral (only while not serving).
    Withdraw {
        /// Amount to withdraw.
        amount: U256,
    },
    /// FNDM: toggle availability to serve light clients.
    SetServing {
        /// New serving flag.
        serving: bool,
    },
    /// CMM: open a payment channel; the transaction value is the budget.
    OpenChannel {
        /// The serving full node.
        full_node: Address,
        /// Expiry (block timestamp) of the handshake confirmation.
        expiry: u64,
        /// `Sign(keccak256(LC || expiry), sk_FN)` — the full node's
        /// consent from Algorithm 1.
        confirmation_sig: Signature,
    },
    /// CMM: start closing a channel with the latest signed state.
    CloseChannel {
        /// Channel identifier α.
        channel_id: u64,
        /// Final cumulative amount `a`.
        amount: U256,
        /// The light client's `σ_a` over `(α, a)`.
        payment_sig: Signature,
    },
    /// CMM: submit a later state during the dispute window.
    SubmitState {
        /// Channel identifier α.
        channel_id: u64,
        /// Claimed cumulative amount `a`.
        amount: U256,
        /// The light client's `σ_a` over `(α, a)`.
        payment_sig: Signature,
    },
    /// CMM: settle a channel whose dispute window has elapsed.
    ConfirmClosure {
        /// Channel identifier α.
        channel_id: u64,
    },
    /// FDM: submit a fraud proof (paper Algorithm 2).
    SubmitFraudProof {
        /// Encoded [`crate::ParpRequest`].
        request: Vec<u8>,
        /// Encoded [`crate::ParpResponse`].
        response: Vec<u8>,
        /// The witness full node that relayed this proof.
        witness: Address,
        /// RLP-encoded header of block `res.m_B` (the contract recomputes
        /// its hash and checks it against the `BLOCKHASH` window, exactly
        /// like the prototype's Solidity does — §VI).
        header: Vec<u8>,
    },
    /// FDM: submit a fraud proof against a **batched** exchange — one
    /// provably wrong item condemns the whole signed response.
    SubmitBatchFraudProof {
        /// Encoded [`crate::ParpBatchRequest`].
        request: Vec<u8>,
        /// Encoded [`crate::ParpBatchResponse`].
        response: Vec<u8>,
        /// The witness full node that relayed this proof.
        witness: Address,
        /// RLP-encoded headers of every block the response binds proofs
        /// to: the snapshot block `res.m_B` plus each inclusion item's
        /// containing block. The contract recomputes every hash and
        /// checks it against the `BLOCKHASH` window, exactly as for the
        /// single-call proof.
        headers: Vec<Vec<u8>>,
    },
}

impl ModuleCall {
    /// Encodes the call into transaction calldata.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ModuleCall::Deposit => encode_list(&[encode_u64(0)]),
            ModuleCall::Withdraw { amount } => encode_list(&[encode_u64(1), encode_u256(amount)]),
            ModuleCall::SetServing { serving } => {
                encode_list(&[encode_u64(2), encode_u64(*serving as u64)])
            }
            ModuleCall::OpenChannel {
                full_node,
                expiry,
                confirmation_sig,
            } => encode_list(&[
                encode_u64(3),
                encode_address(full_node),
                encode_u64(*expiry),
                encode_bytes(&confirmation_sig.to_bytes()),
            ]),
            ModuleCall::CloseChannel {
                channel_id,
                amount,
                payment_sig,
            } => encode_list(&[
                encode_u64(4),
                encode_u64(*channel_id),
                encode_u256(amount),
                encode_bytes(&payment_sig.to_bytes()),
            ]),
            ModuleCall::SubmitState {
                channel_id,
                amount,
                payment_sig,
            } => encode_list(&[
                encode_u64(5),
                encode_u64(*channel_id),
                encode_u256(amount),
                encode_bytes(&payment_sig.to_bytes()),
            ]),
            ModuleCall::ConfirmClosure { channel_id } => {
                encode_list(&[encode_u64(6), encode_u64(*channel_id)])
            }
            ModuleCall::SubmitFraudProof {
                request,
                response,
                witness,
                header,
            } => encode_list(&[
                encode_u64(7),
                encode_bytes(request),
                encode_bytes(response),
                encode_address(witness),
                encode_bytes(header),
            ]),
            ModuleCall::SubmitBatchFraudProof {
                request,
                response,
                witness,
                headers,
            } => {
                let header_items: Vec<Vec<u8>> = headers.iter().map(|h| encode_bytes(h)).collect();
                encode_list(&[
                    encode_u64(8),
                    encode_bytes(request),
                    encode_bytes(response),
                    encode_address(witness),
                    encode_list(&header_items),
                ])
            }
        }
    }

    /// Decodes calldata into a module call.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on unknown selectors or malformed args.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let item = parp_rlp::decode(data)?;
        let fields = item.as_list()?;
        let selector = fields
            .first()
            .ok_or(DecodeError::WrongArity {
                expected: 1,
                actual: 0,
            })?
            .as_u64()?;
        let arity = |n: usize| -> Result<(), DecodeError> {
            if fields.len() != n {
                Err(DecodeError::WrongArity {
                    expected: n,
                    actual: fields.len(),
                })
            } else {
                Ok(())
            }
        };
        match selector {
            0 => {
                arity(1)?;
                Ok(ModuleCall::Deposit)
            }
            1 => {
                arity(2)?;
                Ok(ModuleCall::Withdraw {
                    amount: fields[1].as_u256()?,
                })
            }
            2 => {
                arity(2)?;
                Ok(ModuleCall::SetServing {
                    serving: fields[1].as_u64()? != 0,
                })
            }
            3 => {
                arity(4)?;
                Ok(ModuleCall::OpenChannel {
                    full_node: fields[1].as_address()?,
                    expiry: fields[2].as_u64()?,
                    confirmation_sig: decode_sig(&fields[3])?,
                })
            }
            4 => {
                arity(4)?;
                Ok(ModuleCall::CloseChannel {
                    channel_id: fields[1].as_u64()?,
                    amount: fields[2].as_u256()?,
                    payment_sig: decode_sig(&fields[3])?,
                })
            }
            5 => {
                arity(4)?;
                Ok(ModuleCall::SubmitState {
                    channel_id: fields[1].as_u64()?,
                    amount: fields[2].as_u256()?,
                    payment_sig: decode_sig(&fields[3])?,
                })
            }
            6 => {
                arity(2)?;
                Ok(ModuleCall::ConfirmClosure {
                    channel_id: fields[1].as_u64()?,
                })
            }
            7 => {
                arity(5)?;
                Ok(ModuleCall::SubmitFraudProof {
                    request: fields[1].as_bytes()?.to_vec(),
                    response: fields[2].as_bytes()?.to_vec(),
                    witness: fields[3].as_address()?,
                    header: fields[4].as_bytes()?.to_vec(),
                })
            }
            8 => {
                arity(5)?;
                let headers = fields[4]
                    .as_list()?
                    .iter()
                    .map(|h| h.as_bytes().map(<[u8]>::to_vec))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ModuleCall::SubmitBatchFraudProof {
                    request: fields[1].as_bytes()?.to_vec(),
                    response: fields[2].as_bytes()?.to_vec(),
                    witness: fields[3].as_address()?,
                    headers,
                })
            }
            _ => Err(DecodeError::ExpectedList),
        }
    }

    /// The module address this call targets.
    pub fn target(&self) -> Address {
        match self {
            ModuleCall::Deposit | ModuleCall::Withdraw { .. } | ModuleCall::SetServing { .. } => {
                fndm_address()
            }
            ModuleCall::OpenChannel { .. }
            | ModuleCall::CloseChannel { .. }
            | ModuleCall::SubmitState { .. }
            | ModuleCall::ConfirmClosure { .. } => cmm_address(),
            ModuleCall::SubmitFraudProof { .. } | ModuleCall::SubmitBatchFraudProof { .. } => {
                fdm_address()
            }
        }
    }
}

fn decode_sig(item: &Item) -> Result<Signature, DecodeError> {
    let bytes = item.as_bytes()?;
    let array: &[u8; 65] = bytes.try_into().map_err(|_| DecodeError::WrongLength {
        expected: 65,
        actual: bytes.len(),
    })?;
    Signature::from_bytes(array).map_err(|_| DecodeError::ExpectedBytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_crypto::{keccak256, sign, SecretKey};

    fn sig() -> Signature {
        sign(&SecretKey::from_seed(b"signer"), &keccak256(b"payload"))
    }

    #[test]
    fn all_calls_roundtrip() {
        let calls = vec![
            ModuleCall::Deposit,
            ModuleCall::Withdraw {
                amount: U256::from(5u64),
            },
            ModuleCall::SetServing { serving: true },
            ModuleCall::OpenChannel {
                full_node: Address::from_low_u64_be(1),
                expiry: 12345,
                confirmation_sig: sig(),
            },
            ModuleCall::CloseChannel {
                channel_id: 3,
                amount: U256::from(100u64),
                payment_sig: sig(),
            },
            ModuleCall::SubmitState {
                channel_id: 3,
                amount: U256::from(200u64),
                payment_sig: sig(),
            },
            ModuleCall::ConfirmClosure { channel_id: 3 },
            ModuleCall::SubmitFraudProof {
                request: vec![1, 2],
                response: vec![3, 4],
                witness: Address::from_low_u64_be(9),
                header: vec![5, 6],
            },
            ModuleCall::SubmitBatchFraudProof {
                request: vec![1, 2],
                response: vec![3, 4],
                witness: Address::from_low_u64_be(9),
                headers: vec![vec![5, 6], vec![7, 8]],
            },
        ];
        for call in calls {
            assert_eq!(ModuleCall::decode(&call.encode()).unwrap(), call);
        }
    }

    #[test]
    fn targets_are_stable() {
        assert_eq!(ModuleCall::Deposit.target(), fndm_address());
        assert_eq!(
            ModuleCall::ConfirmClosure { channel_id: 0 }.target(),
            cmm_address()
        );
        assert_eq!(
            ModuleCall::SubmitFraudProof {
                request: vec![],
                response: vec![],
                witness: Address::ZERO,
                header: vec![],
            }
            .target(),
            fdm_address()
        );
        // All three modules have distinct addresses.
        assert_ne!(fndm_address(), cmm_address());
        assert_ne!(cmm_address(), fdm_address());
    }

    #[test]
    fn unknown_selector_rejected() {
        let bad = encode_list(&[encode_u64(42)]);
        assert!(ModuleCall::decode(&bad).is_err());
    }

    #[test]
    fn garbage_rejected() {
        assert!(ModuleCall::decode(&[0xff, 0x00]).is_err());
        assert!(ModuleCall::decode(&[]).is_err());
    }
}
