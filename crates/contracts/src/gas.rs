//! EVM-style gas metering for the simulated on-chain modules.
//!
//! Constants follow the published EVM cost schedule (EIP-150/2028/2929
//! era) wherever the operation has a direct EVM analogue. One surrogate
//! constant, [`BYTE_PROCESS`], stands in for the byte-churning loops
//! (RLP decoding, memory copies, ABI re-encoding) that a Solidity
//! implementation of the fraud-proof verifier performs; it is calibrated
//! once against the paper's Table IV and documented in EXPERIMENTS.md.

/// Base cost of any transaction.
pub const TX_BASE: u64 = 21_000;
/// Calldata cost per nonzero byte (EIP-2028).
pub const CALLDATA_NONZERO: u64 = 16;
/// Calldata cost per zero byte.
pub const CALLDATA_ZERO: u64 = 4;
/// Storing a nonzero value into a previously zero slot.
pub const SSTORE_SET: u64 = 20_000;
/// Updating an already-nonzero slot (cold, EIP-2929: 2 900 + 2 100).
pub const SSTORE_UPDATE: u64 = 5_000;
/// Cold storage read (EIP-2929).
pub const SLOAD_COLD: u64 = 2_100;
/// The `ecrecover` precompile.
pub const ECRECOVER: u64 = 3_000;
/// Keccak-256 base cost.
pub const KECCAK_BASE: u64 = 30;
/// Keccak-256 cost per 32-byte word.
pub const KECCAK_WORD: u64 = 6;
/// Log base cost.
pub const LOG_BASE: u64 = 375;
/// Additional cost per log topic.
pub const LOG_TOPIC: u64 = 375;
/// Log data cost per byte.
pub const LOG_DATA_BYTE: u64 = 8;
/// Stipend for a value-bearing internal transfer.
pub const CALL_VALUE: u64 = 9_000;
/// Creating a previously empty account by sending it value.
pub const NEW_ACCOUNT: u64 = 25_000;
/// Surrogate for Solidity-level byte processing (RLP decode, memory copy,
/// bounds checks) per input byte. Published Solidity MPT verifiers cost
/// 300k-600k gas for a ~1 KB proof, i.e. a few hundred gas per byte; 200
/// reproduces the paper's fraud-proof/open-channel cost ratio.
pub const BYTE_PROCESS: u64 = 200;

/// Calldata gas for a payload.
pub fn calldata_cost(data: &[u8]) -> u64 {
    data.iter()
        .map(|&b| {
            if b == 0 {
                CALLDATA_ZERO
            } else {
                CALLDATA_NONZERO
            }
        })
        .sum()
}

/// Keccak-256 gas over `len` input bytes.
pub fn keccak_cost(len: usize) -> u64 {
    KECCAK_BASE + KECCAK_WORD * (len as u64).div_ceil(32)
}

/// An accumulating gas meter for one module call.
///
/// # Examples
///
/// ```
/// use parp_contracts::gas::{GasMeter, SSTORE_SET};
///
/// let mut meter = GasMeter::new();
/// meter.sstore_set();
/// assert_eq!(meter.used(), SSTORE_SET);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GasMeter {
    used: u64,
}

impl GasMeter {
    /// A meter with zero gas consumed.
    pub fn new() -> Self {
        GasMeter { used: 0 }
    }

    /// Total gas charged so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Charges an arbitrary amount.
    pub fn charge(&mut self, amount: u64) {
        self.used = self.used.saturating_add(amount);
    }

    /// Charges for writing a fresh storage slot.
    pub fn sstore_set(&mut self) {
        self.charge(SSTORE_SET);
    }

    /// Charges for `n` fresh storage slots.
    pub fn sstore_set_n(&mut self, n: u64) {
        self.charge(SSTORE_SET * n);
    }

    /// Charges for updating an existing slot.
    pub fn sstore_update(&mut self) {
        self.charge(SSTORE_UPDATE);
    }

    /// Charges for `n` cold storage reads.
    pub fn sload_n(&mut self, n: u64) {
        self.charge(SLOAD_COLD * n);
    }

    /// Charges for one `ecrecover` invocation.
    pub fn ecrecover(&mut self) {
        self.charge(ECRECOVER);
    }

    /// Charges for hashing `len` bytes.
    pub fn keccak(&mut self, len: usize) {
        self.charge(keccak_cost(len));
    }

    /// Charges for emitting a log.
    pub fn log(&mut self, topics: usize, data_len: usize) {
        self.charge(LOG_BASE + LOG_TOPIC * topics as u64 + LOG_DATA_BYTE * data_len as u64);
    }

    /// Charges for an internal value transfer, optionally creating the
    /// destination account.
    pub fn value_transfer(&mut self, creates_account: bool) {
        self.charge(CALL_VALUE);
        if creates_account {
            self.charge(NEW_ACCOUNT);
        }
    }

    /// Charges the Solidity byte-processing surrogate over `len` bytes.
    pub fn process_bytes(&mut self, len: usize) {
        self.charge(BYTE_PROCESS * len as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calldata_distinguishes_zero_bytes() {
        assert_eq!(calldata_cost(&[0, 0, 1, 2]), 2 * 4 + 2 * 16);
        assert_eq!(calldata_cost(&[]), 0);
    }

    #[test]
    fn keccak_rounds_up_words() {
        assert_eq!(keccak_cost(0), 30);
        assert_eq!(keccak_cost(1), 36);
        assert_eq!(keccak_cost(32), 36);
        assert_eq!(keccak_cost(33), 42);
    }

    #[test]
    fn meter_accumulates() {
        let mut meter = GasMeter::new();
        meter.sstore_set();
        meter.sstore_update();
        meter.sload_n(2);
        meter.ecrecover();
        meter.log(3, 10);
        meter.value_transfer(true);
        let expected = SSTORE_SET
            + SSTORE_UPDATE
            + 2 * SLOAD_COLD
            + ECRECOVER
            + (LOG_BASE + 3 * LOG_TOPIC + 10 * LOG_DATA_BYTE)
            + CALL_VALUE
            + NEW_ACCOUNT;
        assert_eq!(meter.used(), expected);
    }

    #[test]
    fn meter_saturates() {
        let mut meter = GasMeter::new();
        meter.charge(u64::MAX);
        meter.charge(100);
        assert_eq!(meter.used(), u64::MAX);
    }
}
