//! Batched PARP wire messages: one ECDSA signature and one cumulative
//! micropayment covering N RPC calls, with a **multi-header envelope**
//! that lets historical inclusion lookups ride in the same batch as
//! state reads.
//!
//! The single-call protocol (Fig. 3) pays for its accountability with a
//! signature check and a Merkle proof *per call* — the dominant server
//! cost under heavy read traffic. A batch amortizes both: the light
//! client signs the whole call vector once, the full node verifies one
//! signature and serves every item, and all state-trie proofs collapse
//! into a single deduplicated multiproof (shared branch nodes cross the
//! wire once; see [`parp_trie::verify_many`]).
//!
//! Where the first batched pipeline bound every item to **one** snapshot
//! header, the envelope now carries a deduplicated set of block headers —
//! one per distinct block any item's proof binds to — so transaction and
//! receipt lookups (proven against the trie roots of their *containing*
//! blocks) batch alongside balance and nonce reads. Each item names its
//! block in [`ParpBatchResponse::item_blocks`]; inclusion items carry
//! their own proof in [`ParpBatchResponse::item_proofs`]; state items
//! keep sharing the snapshot multiproof. One `σ_res` still commits the
//! node to everything, including the carried headers.
//!
//! Accountability is preserved per item: the node's batch signature
//! commits it to every `(result, block, proof)` triple, so one
//! fraudulent item is enough for the client to hold fraud evidence
//! against the whole signed response.

use crate::fdm::FraudVerdict;
use crate::message::{
    decode_signature, encode_signature, payment_digest, MessageError, ProofKind, RpcCall,
};
use parp_chain::Header;
use parp_crypto::{keccak256, recover_address, sign, SecretKey, Signature};
use parp_primitives::{Address, H256, U256};
use parp_rlp::{
    decode_list_of, encode_bytes, encode_h256, encode_list, encode_u256, encode_u64, Item,
};
use std::collections::BTreeMap;

fn encode_calls(calls: &[RpcCall]) -> Vec<u8> {
    let items: Vec<Vec<u8>> = calls.iter().map(|c| encode_bytes(&c.encode())).collect();
    encode_list(&items)
}

fn encode_nodes(nodes: &[Vec<u8>]) -> Vec<u8> {
    let items: Vec<Vec<u8>> = nodes.iter().map(|n| encode_bytes(n)).collect();
    encode_list(&items)
}

fn decode_nodes(item: &Item) -> Result<Vec<Vec<u8>>, MessageError> {
    Ok(item
        .as_list()?
        .iter()
        .map(|n| n.as_bytes().map(<[u8]>::to_vec))
        .collect::<Result<Vec<_>, _>>()?)
}

fn encode_u64_list(values: &[u64]) -> Vec<u8> {
    let items: Vec<Vec<u8>> = values.iter().map(|v| encode_u64(*v)).collect();
    encode_list(&items)
}

fn decode_u64_list(item: &Item) -> Result<Vec<u64>, MessageError> {
    Ok(item
        .as_list()?
        .iter()
        .map(Item::as_u64)
        .collect::<Result<Vec<_>, _>>()?)
}

fn encode_proof_sets(proofs: &[Vec<Vec<u8>>]) -> Vec<u8> {
    let items: Vec<Vec<u8>> = proofs.iter().map(|p| encode_nodes(p)).collect();
    encode_list(&items)
}

fn decode_proof_sets(item: &Item) -> Result<Vec<Vec<Vec<u8>>>, MessageError> {
    item.as_list()?.iter().map(decode_nodes).collect()
}

/// Computes the batch `h_req` over the request's signed fields.
pub fn batch_request_hash(
    channel_id: u64,
    block_hash: &H256,
    amount: &U256,
    calls: &[RpcCall],
) -> H256 {
    keccak256(&encode_list(&[
        encode_u64(channel_id),
        encode_h256(block_hash),
        encode_u256(amount),
        encode_calls(calls),
    ]))
}

/// A batched PARP request: the Fig. 3 request shape with γ generalized to
/// a call vector. One `σ_req` covers every call; one `σ_a` covers the
/// cumulative payment for all of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParpBatchRequest {
    /// Channel identifier α.
    pub channel_id: u64,
    /// `h_B`: the most recent block hash known to the light client.
    pub block_hash: H256,
    /// `a`: cumulative payment amount authorized so far — this single
    /// amount pays for the whole batch.
    pub amount: U256,
    /// The wrapped RPC calls γ₁..γₙ (read-only; see
    /// [`RpcCall::batchable`]).
    pub calls: Vec<RpcCall>,
    /// `h_req = keccak256(rlp([α, h_B, a, [γ₁..γₙ]]))`.
    pub request_hash: H256,
    /// `σ_a = Sign(keccak256(rlp([α, a])))` — the detachable payment
    /// proof, identical in form to the single-call one so the CMM redeems
    /// batch payments unchanged.
    pub payment_sig: Signature,
    /// `σ_req = Sign(h_req)` — the batch's one request signature.
    pub request_sig: Signature,
}

impl ParpBatchRequest {
    /// Builds and signs a batch request with the light client's key.
    pub fn build(
        secret: &SecretKey,
        channel_id: u64,
        block_hash: H256,
        amount: U256,
        calls: Vec<RpcCall>,
    ) -> Self {
        let h_req = batch_request_hash(channel_id, &block_hash, &amount, &calls);
        let payment_sig = sign(secret, &payment_digest(channel_id, &amount));
        let request_sig = sign(secret, &h_req);
        ParpBatchRequest {
            channel_id,
            block_hash,
            amount,
            calls,
            request_hash: h_req,
            payment_sig,
            request_sig,
        }
    }

    /// Number of calls in the batch.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether the batch carries no calls (such requests are rejected by
    /// every honest server: an empty batch still demands payment).
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Recomputes `h_req` from the request contents.
    pub fn expected_hash(&self) -> H256 {
        batch_request_hash(self.channel_id, &self.block_hash, &self.amount, &self.calls)
    }

    /// Recovers the request signer (the light client) from `σ_req`.
    ///
    /// Returns `None` when recovery fails or the hash is inconsistent.
    pub fn signer(&self) -> Option<Address> {
        if self.expected_hash() != self.request_hash {
            return None;
        }
        recover_address(&self.request_hash, &self.request_sig).ok()
    }

    /// Recovers the payment signer from `σ_a`.
    pub fn payment_signer(&self) -> Option<Address> {
        recover_address(
            &payment_digest(self.channel_id, &self.amount),
            &self.payment_sig,
        )
        .ok()
    }

    /// Full RLP wire encoding (7 fields, as the single-call request).
    pub fn encode(&self) -> Vec<u8> {
        encode_list(&[
            encode_u64(self.channel_id),
            encode_h256(&self.block_hash),
            encode_u256(&self.amount),
            encode_calls(&self.calls),
            encode_h256(&self.request_hash),
            encode_signature(&self.payment_sig),
            encode_signature(&self.request_sig),
        ])
    }

    /// Decodes a batch request.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError`] on malformed structure or signatures.
    pub fn decode(bytes: &[u8]) -> Result<Self, MessageError> {
        let fields = decode_list_of(bytes, 7)?;
        let calls = fields[3]
            .as_list()?
            .iter()
            .map(|c| {
                c.as_bytes()
                    .map_err(MessageError::from)
                    .and_then(|b| Ok(RpcCall::decode(b)?))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ParpBatchRequest {
            channel_id: fields[0].as_u64()?,
            block_hash: fields[1].as_h256()?,
            amount: fields[2].as_u256()?,
            calls,
            request_hash: fields[4].as_h256()?,
            payment_sig: decode_signature(&fields[5])?,
            request_sig: decode_signature(&fields[6])?,
        })
    }

    /// Byte size of the PARP metadata added on top of the bare RPC calls:
    /// the per-batch equivalent of Table II's request overhead. Constant
    /// in the batch size — that is the point.
    pub fn overhead_bytes(&self) -> usize {
        let calls: usize = self.calls.iter().map(|c| c.encode().len()).sum();
        self.encode().len() - calls
    }
}

/// Everything a full node produces when serving a batch: the served
/// payloads, each item's binding block and (for inclusion lookups) its
/// own proof, the shared state multiproof, and the deduplicated header
/// set. [`ParpBatchResponse::build`] signs it as one response.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchOutput {
    /// `m_B`: the state-snapshot height state-proven and unproven items
    /// were served at.
    pub block_number: u64,
    /// `R(γᵢ)` per item, aligned with the request's call order.
    pub results: Vec<Vec<u8>>,
    /// The shared state-trie multiproof under the snapshot's
    /// `state_root`.
    pub multiproof: Vec<Vec<u8>>,
    /// Per item: the block whose header roots the item's proof binds to
    /// (`block_number` for state-proven and unproven items, the
    /// containing block for inclusion lookups).
    pub item_blocks: Vec<u64>,
    /// Per item: the inclusion proof nodes for transaction/receipt
    /// lookups; empty for state-proven (they share the multiproof) and
    /// unproven items.
    pub item_proofs: Vec<Vec<Vec<u8>>>,
    /// The deduplicated header set: the RLP encoding of one header per
    /// distinct block in `item_blocks` (plus the snapshot block),
    /// ascending by height.
    pub headers: Vec<Vec<u8>>,
}

impl BatchOutput {
    /// A snapshot-only output: every item bound to `block_number`, no
    /// per-item proofs, and `header` as the single carried header —
    /// the shape the original one-snapshot pipeline produced.
    pub fn snapshot(
        block_number: u64,
        results: Vec<Vec<u8>>,
        multiproof: Vec<Vec<u8>>,
        header: Vec<u8>,
    ) -> Self {
        let n = results.len();
        BatchOutput {
            block_number,
            results,
            multiproof,
            item_blocks: vec![block_number; n],
            item_proofs: vec![Vec::new(); n],
            headers: vec![header],
        }
    }
}

/// A batched PARP response: per-item results, one shared deduplicated
/// state multiproof, per-item inclusion proofs bound to their own
/// blocks' headers, the deduplicated header set, and one response
/// signature over everything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParpBatchResponse {
    /// Channel identifier α (must match the request).
    pub channel_id: u64,
    /// `m_B`: the snapshot height state-proven and unproven items were
    /// served at.
    pub block_number: u64,
    /// `a`: echo of the request's cumulative payment amount.
    pub amount: U256,
    /// `R(γᵢ)` per item, aligned with the request's call order.
    pub results: Vec<Vec<u8>>,
    /// The shared state-trie multiproof: the deduplicated union of every
    /// state-proven item's path under the snapshot's `state_root`
    /// (verified with [`parp_trie::verify_many`]).
    pub multiproof: Vec<Vec<u8>>,
    /// Per item: the block whose header the item's proof binds to.
    /// State-proven and unproven items carry `block_number`; inclusion
    /// lookups carry their containing block.
    pub item_blocks: Vec<u64>,
    /// Per item: inclusion proof nodes under the item block's
    /// transaction/receipt root; empty for state-proven and unproven
    /// items.
    pub item_proofs: Vec<Vec<Vec<u8>>>,
    /// The deduplicated carried headers (RLP), one per distinct
    /// referenced block, ascending by height. `σ_res` commits the node
    /// to them: they are its claim of which roots it served against.
    pub headers: Vec<Vec<u8>>,
    /// `h_req`: echo of the batch request hash.
    pub request_hash: H256,
    /// `σ_req`: echo of the batch request signature.
    pub request_sig: Signature,
    /// `σ_res = Sign(h_res)` by the full node — the batch's one response
    /// signature, committing the node to every item.
    pub response_sig: Signature,
}

/// Computes the batch `h_res` over all response fields before `σ_res`.
pub fn batch_response_hash(
    channel_id: u64,
    amount: &U256,
    output: &BatchOutput,
    request_hash: &H256,
    request_sig: &Signature,
) -> H256 {
    hash_response_parts(
        channel_id,
        output.block_number,
        amount,
        &output.results,
        &output.multiproof,
        &output.item_blocks,
        &output.item_proofs,
        &output.headers,
        request_hash,
        request_sig,
    )
}

/// The shared `h_res` computation, by reference — [`batch_response_hash`]
/// and [`ParpBatchResponse::expected_hash`] both borrow their payloads so
/// neither copies proof or header bytes just to hash them.
#[allow(clippy::too_many_arguments)]
fn hash_response_parts(
    channel_id: u64,
    block_number: u64,
    amount: &U256,
    results: &[Vec<u8>],
    multiproof: &[Vec<u8>],
    item_blocks: &[u64],
    item_proofs: &[Vec<Vec<u8>>],
    headers: &[Vec<u8>],
    request_hash: &H256,
    request_sig: &Signature,
) -> H256 {
    let result_items: Vec<Vec<u8>> = results.iter().map(|r| encode_bytes(r)).collect();
    keccak256(&encode_list(&[
        encode_u64(channel_id),
        encode_u64(block_number),
        encode_u256(amount),
        encode_list(&result_items),
        encode_nodes(multiproof),
        encode_u64_list(item_blocks),
        encode_proof_sets(item_proofs),
        encode_nodes(headers),
        encode_h256(request_hash),
        encode_bytes(&request_sig.to_bytes()),
    ]))
}

impl ParpBatchResponse {
    /// Builds and signs a batch response with the full node's key.
    pub fn build(secret: &SecretKey, request: &ParpBatchRequest, output: BatchOutput) -> Self {
        let h_res = batch_response_hash(
            request.channel_id,
            &request.amount,
            &output,
            &request.request_hash,
            &request.request_sig,
        );
        ParpBatchResponse {
            channel_id: request.channel_id,
            block_number: output.block_number,
            amount: request.amount,
            results: output.results,
            multiproof: output.multiproof,
            item_blocks: output.item_blocks,
            item_proofs: output.item_proofs,
            headers: output.headers,
            request_hash: request.request_hash,
            request_sig: request.request_sig,
            response_sig: sign(secret, &h_res),
        }
    }

    /// Number of items in the response.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the response carries no items.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Recomputes `h_res` from the response contents.
    pub fn expected_hash(&self) -> H256 {
        hash_response_parts(
            self.channel_id,
            self.block_number,
            &self.amount,
            &self.results,
            &self.multiproof,
            &self.item_blocks,
            &self.item_proofs,
            &self.headers,
            &self.request_hash,
            &self.request_sig,
        )
    }

    /// Recovers the response signer (the full node) from `σ_res`.
    pub fn signer(&self) -> Option<Address> {
        recover_address(&self.expected_hash(), &self.response_sig).ok()
    }

    /// Full RLP wire encoding (11 fields).
    pub fn encode(&self) -> Vec<u8> {
        let result_items: Vec<Vec<u8>> = self.results.iter().map(|r| encode_bytes(r)).collect();
        encode_list(&[
            encode_u64(self.channel_id),
            encode_u64(self.block_number),
            encode_u256(&self.amount),
            encode_list(&result_items),
            encode_nodes(&self.multiproof),
            encode_u64_list(&self.item_blocks),
            encode_proof_sets(&self.item_proofs),
            encode_nodes(&self.headers),
            encode_h256(&self.request_hash),
            encode_signature(&self.request_sig),
            encode_signature(&self.response_sig),
        ])
    }

    /// Decodes a batch response.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError`] on malformed structure or signatures.
    pub fn decode(bytes: &[u8]) -> Result<Self, MessageError> {
        let fields = decode_list_of(bytes, 11)?;
        let results = fields[3]
            .as_list()?
            .iter()
            .map(|r| r.as_bytes().map(<[u8]>::to_vec))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ParpBatchResponse {
            channel_id: fields[0].as_u64()?,
            block_number: fields[1].as_u64()?,
            amount: fields[2].as_u256()?,
            results,
            multiproof: decode_nodes(&fields[4])?,
            item_blocks: decode_u64_list(&fields[5])?,
            item_proofs: decode_proof_sets(&fields[6])?,
            headers: decode_nodes(&fields[7])?,
            request_hash: fields[8].as_h256()?,
            request_sig: decode_signature(&fields[9])?,
            response_sig: decode_signature(&fields[10])?,
        })
    }

    /// Total proof bytes on the wire: the shared state multiproof plus
    /// every per-item inclusion proof.
    pub fn proof_bytes(&self) -> usize {
        let state: usize = self.multiproof.iter().map(Vec::len).sum();
        let inclusion: usize = self
            .item_proofs
            .iter()
            .flat_map(|p| p.iter().map(Vec::len))
            .sum::<usize>();
        state + inclusion
    }

    /// Total bytes of the carried header set.
    pub fn header_bytes(&self) -> usize {
        self.headers.iter().map(Vec::len).sum()
    }

    /// The distinct block heights this response binds proofs to: the
    /// snapshot height plus every item's block, deduplicated ascending.
    pub fn referenced_blocks(&self) -> Vec<u64> {
        referenced_blocks(self.block_number, &self.item_blocks)
    }

    /// Byte size of the PARP metadata on top of the results, proofs and
    /// headers: the per-batch equivalent of Table II's response overhead.
    pub fn overhead_bytes(&self) -> usize {
        let results: usize = self.results.iter().map(Vec::len).sum();
        self.encode().len() - results - self.proof_bytes() - self.header_bytes()
    }
}

/// The distinct block heights a batch binds proofs to — the snapshot
/// plus every item's block, deduplicated ascending. The serving node
/// orders its carried header set with this exact function and the
/// judge zips the carried headers against it, so the two sides can
/// never drift.
pub fn referenced_blocks(snapshot: u64, item_blocks: &[u64]) -> Vec<u64> {
    let mut blocks: Vec<u64> = std::iter::once(snapshot)
        .chain(item_blocks.iter().copied())
        .collect();
    blocks.sort_unstable();
    blocks.dedup();
    blocks
}

/// How a batched response fails the fraud conditions, when it does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchFraud {
    /// The whole response is condemned: payment echo mismatch, stale
    /// snapshot, or a state multiproof that does not verify against the
    /// trusted root.
    Batch(FraudVerdict),
    /// Individual items are condemned: `Some(verdict)` at an item's index
    /// means that item's result/proof pair is provably wrong.
    Items(Vec<Option<FraudVerdict>>),
}

/// Structural consistency of the envelope before any fraud judgement:
/// arity of the per-item vectors, snapshot binding of state/unproven
/// items, and the carried header set matching the trusted headers.
///
/// Returns an error description when the response is unjudgeable —
/// *invalid* rather than fraudulent in the §V-D trichotomy.
fn check_envelope_structure(
    req: &ParpBatchRequest,
    res: &ParpBatchResponse,
    trusted: &BTreeMap<u64, Header>,
) -> Result<(), String> {
    let n = req.calls.len();
    if res.results.len() != n || res.item_blocks.len() != n || res.item_proofs.len() != n {
        return Err(format!(
            "batch arity mismatch: {n} calls, {} results, {} item blocks, {} item proofs",
            res.results.len(),
            res.item_blocks.len(),
            res.item_proofs.len(),
        ));
    }
    for (index, call) in req.calls.iter().enumerate() {
        let snapshot_bound = match call.proof_kind() {
            ProofKind::State | ProofKind::None => true,
            // A "not found" inclusion answer (empty result, no proof)
            // has no containing block; it binds to the snapshot.
            ProofKind::Transaction | ProofKind::Receipt => {
                res.results[index].is_empty() && res.item_proofs[index].is_empty()
            }
        };
        if snapshot_bound {
            if res.item_blocks[index] != res.block_number {
                return Err(format!(
                    "item {index} must bind to the snapshot block {}, claims {}",
                    res.block_number, res.item_blocks[index],
                ));
            }
            if !res.item_proofs[index].is_empty() {
                return Err(format!(
                    "item {index} carries a per-item proof but is snapshot-proven"
                ));
            }
        }
    }
    // The carried header set must be exactly one header per referenced
    // block, each matching the trusted (canonical) header by hash.
    let referenced = res.referenced_blocks();
    if res.headers.len() != referenced.len() {
        return Err(format!(
            "carried header set has {} entries for {} referenced blocks",
            res.headers.len(),
            referenced.len(),
        ));
    }
    for (bytes, number) in res.headers.iter().zip(referenced.iter()) {
        let carried =
            Header::decode(bytes).map_err(|e| format!("malformed carried header: {e}"))?;
        if carried.number != *number {
            return Err(format!(
                "carried headers must cover referenced blocks ascending: expected {number}, got {}",
                carried.number,
            ));
        }
        // Hash-check against the canonical header where one is
        // available. A referenced block the judge has no trusted header
        // for (outside the on-chain `BLOCKHASH` window) is tolerated
        // here — items bound to it simply cannot be condemned — so an
        // old honest lookup in the batch never blocks judging the
        // fresh items next to it.
        if let Some(trusted_header) = trusted.get(number) {
            if carried.hash() != trusted_header.hash() {
                return Err(format!(
                    "carried header for block {number} does not match the canonical header"
                ));
            }
        }
    }
    Ok(())
}

/// Evaluates the fraud conditions of §V-D against a batched exchange:
/// the batch-level payment and timestamp checks, each state-proven
/// item's value against the shared multiproof under the snapshot header,
/// and each inclusion item's proof against its own block's header.
///
/// `trusted` maps block heights to their canonical headers — the light
/// client reads them from its header store, the on-chain FDM from
/// witness-submitted headers validated against the `BLOCKHASH` window.
/// The snapshot block's header is mandatory; for other referenced
/// blocks the map is best-effort: an inclusion item whose block is
/// missing (outside the judge's window) is simply not condemnable —
/// the paper's §VI freshness bound — and never blocks judging the
/// items next to it.
///
/// Returns `Ok(None)` when every item is consistent.
///
/// # Errors
///
/// Returns a description when the response is structurally unjudgeable
/// (arity mismatch, an unbatchable call, a carried header set that does
/// not match the trusted headers, or a missing trusted header) — such
/// responses are *invalid* rather than fraudulent.
pub fn batch_fraud_conditions(
    req: &ParpBatchRequest,
    res: &ParpBatchResponse,
    trusted: &BTreeMap<u64, Header>,
    request_height: u64,
) -> Result<Option<BatchFraud>, String> {
    // Writes cannot be judged against any header set: they mutate state.
    if let Some(call) = req.calls.iter().find(|c| !c.batchable()) {
        return Err(format!("unbatchable call in batch: {call:?}"));
    }
    // Condition 1: payment amount mismatch.
    if req.amount != res.amount {
        return Ok(Some(BatchFraud::Batch(FraudVerdict::AmountMismatch)));
    }
    // Condition 2: stale snapshot. One snapshot answers every
    // fresh-height item, so a single fresh-height call in the batch pins
    // the whole response; inclusion lookups are exempt (their proofs
    // legitimately bind to older blocks).
    if req.calls.iter().any(RpcCall::requires_fresh_height) && res.block_number < request_height {
        return Ok(Some(BatchFraud::Batch(FraudVerdict::StaleBlockHeight)));
    }
    check_envelope_structure(req, res, trusted)?;
    let snapshot_header = trusted
        .get(&res.block_number)
        .ok_or_else(|| format!("no trusted header for snapshot block {}", res.block_number))?;
    // Condition 3a: the shared state multiproof. All state-proven items
    // verify in one pass over the deduplicated node set. The key
    // extraction matches on `proof_kind()` — the same predicate the
    // per-item loop below pairs results with — so the two sides cannot
    // desync if a new state-proven call variant appears.
    let mut state_keys: Vec<Vec<u8>> = Vec::new();
    for call in &req.calls {
        if call.proof_kind() == ProofKind::State {
            let Some(address) = call.state_address() else {
                return Err(format!("state-proven call without a trie key: {call:?}"));
            };
            state_keys.push(keccak256(address.as_bytes()).as_bytes().to_vec());
        }
    }
    let proven =
        match parp_trie::verify_many(snapshot_header.state_root, &state_keys, &res.multiproof) {
            Ok(proven) => proven,
            // The node signed a multiproof that does not verify against the
            // trusted root: provably wrong as a whole.
            Err(_) => return Ok(Some(BatchFraud::Batch(FraudVerdict::InvalidProof))),
        };
    // Condition 3b: per-item value checks. State items against the
    // proven multiproof bindings; inclusion items against their own
    // block's transaction/receipt root via the single-call proof check.
    let mut verdicts: Vec<Option<FraudVerdict>> = Vec::with_capacity(req.calls.len());
    let mut any_fraud = false;
    let mut proven_iter = proven.into_iter();
    for (index, (call, result)) in req.calls.iter().zip(res.results.iter()).enumerate() {
        let verdict = match call.proof_kind() {
            ProofKind::State => {
                let proven_value = proven_iter.next().expect("one entry per state key");
                if crate::fdm::state_claim_matches(result, &proven_value) {
                    None
                } else {
                    Some(FraudVerdict::InvalidProof)
                }
            }
            ProofKind::Transaction | ProofKind::Receipt => {
                match trusted.get(&res.item_blocks[index]) {
                    Some(header) => {
                        crate::fdm::proof_condition(call, result, &res.item_proofs[index], header)?
                    }
                    // No trusted header for the item's block (it fell
                    // out of the `BLOCKHASH` window): the item cannot
                    // be judged either way — the §VI freshness bound,
                    // exactly as for single-call historical lookups.
                    None => None,
                }
            }
            // Unproven items only need the batch-level checks above.
            ProofKind::None => None,
        };
        any_fraud |= verdict.is_some();
        verdicts.push(verdict);
    }
    if any_fraud {
        Ok(Some(BatchFraud::Items(verdicts)))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lc_key() -> SecretKey {
        SecretKey::from_seed(b"batch-light-client")
    }

    fn fn_key() -> SecretKey {
        SecretKey::from_seed(b"batch-full-node")
    }

    fn sample_calls(n: u64) -> Vec<RpcCall> {
        (0..n)
            .map(|i| RpcCall::GetBalance {
                address: Address::from_low_u64_be(0x1000 + i),
            })
            .collect()
    }

    fn sample_request(n: u64) -> ParpBatchRequest {
        ParpBatchRequest::build(
            &lc_key(),
            7,
            H256::from_low_u64_be(0xb10c),
            U256::from(10 * n),
            sample_calls(n),
        )
    }

    fn sample_header_bytes() -> Vec<u8> {
        vec![0xc1, 0x80]
    }

    #[test]
    fn batch_request_roundtrip_and_signers() {
        let request = sample_request(5);
        let decoded = ParpBatchRequest::decode(&request.encode()).unwrap();
        assert_eq!(decoded, request);
        assert_eq!(decoded.len(), 5);
        assert_eq!(decoded.signer(), Some(lc_key().address()));
        assert_eq!(decoded.payment_signer(), Some(lc_key().address()));
    }

    #[test]
    fn tampered_batch_request_breaks_signer() {
        let mut request = sample_request(3);
        request.calls.pop();
        assert_eq!(request.signer(), None);
    }

    #[test]
    fn empty_batch_encodes_but_reports_empty() {
        let request = sample_request(0);
        assert!(request.is_empty());
        let decoded = ParpBatchRequest::decode(&request.encode()).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn batch_response_roundtrip_and_signer() {
        let request = sample_request(3);
        let response = ParpBatchResponse::build(
            &fn_key(),
            &request,
            BatchOutput::snapshot(
                42,
                vec![b"r0".to_vec(), b"r1".to_vec(), b"r2".to_vec()],
                vec![vec![1, 2, 3], vec![4, 5]],
                sample_header_bytes(),
            ),
        );
        let decoded = ParpBatchResponse::decode(&response.encode()).unwrap();
        assert_eq!(decoded, response);
        assert_eq!(decoded.signer(), Some(fn_key().address()));
        assert_eq!(decoded.proof_bytes(), 5);
        assert_eq!(decoded.item_blocks, vec![42; 3]);
        assert_eq!(decoded.referenced_blocks(), vec![42]);
    }

    #[test]
    fn multi_block_response_roundtrips() {
        let request = sample_request(2);
        let output = BatchOutput {
            block_number: 42,
            results: vec![b"state".to_vec(), b"inclusion".to_vec()],
            multiproof: vec![vec![1, 2]],
            item_blocks: vec![42, 7],
            item_proofs: vec![Vec::new(), vec![vec![9, 9], vec![8]]],
            headers: vec![sample_header_bytes(), sample_header_bytes()],
        };
        let response = ParpBatchResponse::build(&fn_key(), &request, output);
        let decoded = ParpBatchResponse::decode(&response.encode()).unwrap();
        assert_eq!(decoded, response);
        assert_eq!(decoded.signer(), Some(fn_key().address()));
        assert_eq!(decoded.referenced_blocks(), vec![7, 42]);
        // Proof bytes cover the multiproof and the inclusion proofs.
        assert_eq!(decoded.proof_bytes(), 2 + 3);
        assert_eq!(decoded.header_bytes(), 4);
    }

    #[test]
    fn tampered_batch_response_changes_signer() {
        let request = sample_request(2);
        let mut response = ParpBatchResponse::build(
            &fn_key(),
            &request,
            BatchOutput::snapshot(
                42,
                vec![b"a".to_vec(), b"b".to_vec()],
                Vec::new(),
                sample_header_bytes(),
            ),
        );
        response.results[1] = b"forged".to_vec();
        assert_ne!(response.signer(), Some(fn_key().address()));
        // The signature also commits the node to its item blocks and
        // carried headers: re-binding an item is equally detectable.
        let mut rebound = ParpBatchResponse::build(
            &fn_key(),
            &request,
            BatchOutput::snapshot(
                42,
                vec![b"a".to_vec(), b"b".to_vec()],
                Vec::new(),
                sample_header_bytes(),
            ),
        );
        rebound.item_blocks[0] = 41;
        assert_ne!(rebound.signer(), Some(fn_key().address()));
    }

    #[test]
    fn batch_overhead_amortizes_signatures() {
        // One signature pair serves any N: going from 1 to 64 calls may
        // add per-call RLP framing (length prefixes for the result, the
        // item block and the empty item-proof list) but no new
        // signatures or hashes — unlike 64 single requests, which repeat
        // the full ~226-byte overhead each time.
        let small = sample_request(1).overhead_bytes();
        let large = sample_request(64).overhead_bytes();
        assert!(
            large < small + 2 * 64,
            "batch overhead grew from {small} to {large}"
        );
        let singles: usize = (0..64).map(|_| sample_request(1).overhead_bytes()).sum();
        assert!(
            large * 10 < singles,
            "64-batch overhead {large} not ≪ 64 singles {singles}"
        );
    }

    #[test]
    fn payment_sig_redeems_like_single_calls() {
        // The CMM accepts batch payment signatures unchanged: σ_a signs
        // the same (α, a) digest as the single-call protocol.
        let request = sample_request(8);
        let digest = payment_digest(request.channel_id, &request.amount);
        assert_eq!(
            recover_address(&digest, &request.payment_sig).unwrap(),
            lc_key().address()
        );
    }
}
