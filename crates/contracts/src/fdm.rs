//! The Fraud Detection Module (FDM): on-chain verification of fraud
//! proofs, implementing the paper's Algorithm 2.
//!
//! A fraud proof is `(req, res, addr_WN, header)`. The module:
//!
//! 1. checks the channel identifiers match and the channel is not closed;
//! 2. re-derives `h_req` and recovers the request signer (must be the
//!    channel's light client);
//! 3. recovers the response signer (must be the channel's full node);
//! 4. validates the submitted header against the `BLOCKHASH` window
//!    (Ethereum can only validate hashes of the last 256 blocks — §VI);
//! 5. condemns the full node when the response shows a payment-amount
//!    mismatch, a stale block height, or an invalid/contradicting Merkle
//!    proof;
//! 6. slashes the offender's collateral via the FNDM and distributes the
//!    reward to the light client, the witness node and the serving pool.

use crate::cmm::{ChannelStatus, ChannelsModule};
use crate::fndm::{address_topic, event_log, DepositModule, Revert};
use crate::gas::GasMeter;
use crate::message::{ParpRequest, ParpResponse, ProofKind, RpcCall};
use parp_chain::{BlockContext, Header, Log, State};
use parp_crypto::{keccak256, recover_address, Signature};
use parp_primitives::{Address, H256, U256};
use parp_trie::verify_proof;
use std::collections::BTreeMap;

/// Why a full node was condemned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FraudVerdict {
    /// `req.a != res.a` (payment amount check, §V-D).
    AmountMismatch,
    /// `res.m_B` is lower than the height of `req.h_B` (timestamp check).
    StaleBlockHeight,
    /// `π_γ` does not verify against the trusted root, or proves a value
    /// different from the claimed result (Merkle proof check).
    InvalidProof,
}

impl FraudVerdict {
    /// Single-byte encoding used in the module output and event data.
    pub fn as_byte(&self) -> u8 {
        match self {
            FraudVerdict::AmountMismatch => 1,
            FraudVerdict::StaleBlockHeight => 2,
            FraudVerdict::InvalidProof => 3,
        }
    }
}

/// Evaluates the paper's three fraud conditions against a request/response
/// pair and the trusted header for `res.m_B`.
///
/// `request_height` is the height of the block `req.h_B` refers to (the
/// light client knows it because it chose `h_B`; the on-chain module
/// resolves it through the `BLOCKHASH` window).
///
/// Returns `Ok(None)` when the response is consistent, `Ok(Some(verdict))`
/// when it is provably fraudulent.
///
/// # Errors
///
/// Returns a description when the response payload is too malformed to
/// judge (e.g. an unparsable transaction index) — such responses are
/// *invalid* rather than fraudulent in the §V-D classification.
pub fn fraud_conditions(
    req: &ParpRequest,
    res: &ParpResponse,
    header: &Header,
    request_height: u64,
) -> Result<Option<FraudVerdict>, String> {
    // Condition 1: payment amount mismatch.
    if req.amount != res.amount {
        return Ok(Some(FraudVerdict::AmountMismatch));
    }
    // Condition 2: stale block height. Historical-inclusion lookups are
    // exempt (see [`RpcCall::requires_fresh_height`]); everything else
    // must answer at or after the client's view.
    if req.call.requires_fresh_height() && res.block_number < request_height {
        return Ok(Some(FraudVerdict::StaleBlockHeight));
    }
    proof_condition(&req.call, &res.result, &res.proof, header)
}

/// Whether a claimed result equals the value a state proof binds (an
/// empty result claims a proven absence). Shared between the single-call
/// proof check and the batched multiproof's per-item checks so the two
/// paths cannot drift.
pub(crate) fn state_claim_matches(result: &[u8], proven: &Option<Vec<u8>>) -> bool {
    match proven {
        None => result.is_empty(),
        Some(value) => result == value.as_slice(),
    }
}

/// Condition 3 of the §V-D checks in isolation: does the call's Merkle
/// proof authenticate the claimed result under the trusted `header`?
///
/// # Errors
///
/// Returns a description when the result payload is too malformed to
/// judge (invalid rather than fraudulent in the §V-D classification).
pub(crate) fn proof_condition(
    call: &RpcCall,
    result: &[u8],
    proof: &[Vec<u8>],
    header: &Header,
) -> Result<Option<FraudVerdict>, String> {
    // An unproven empty result for an inclusion lookup means "not found"
    // — absence by hash is not provable in an index-keyed trie, so it is
    // unverifiable rather than fraudulent.
    if matches!(
        call.proof_kind(),
        ProofKind::Transaction | ProofKind::Receipt
    ) && result.is_empty()
        && proof.is_empty()
    {
        return Ok(None);
    }
    match call.proof_kind() {
        ProofKind::None => Ok(None),
        ProofKind::State => {
            let Some(address) = call.state_address() else {
                return Ok(None);
            };
            let key = keccak256(address.as_bytes());
            match verify_proof(header.state_root, key.as_bytes(), proof) {
                Err(_) => Ok(Some(FraudVerdict::InvalidProof)),
                Ok(proven) => {
                    if state_claim_matches(result, &proven) {
                        Ok(None)
                    } else {
                        Ok(Some(FraudVerdict::InvalidProof))
                    }
                }
            }
        }
        ProofKind::Transaction => {
            // result = rlp(index) of the included transaction.
            let index = parp_rlp::decode(result)
                .and_then(|i| i.as_u64())
                .map_err(|_| "malformed transaction index in result".to_string())?;
            let key = parp_rlp::encode_u64(index);
            match verify_proof(header.transactions_root, &key, proof) {
                Err(_) | Ok(None) => Ok(Some(FraudVerdict::InvalidProof)),
                Ok(Some(proven_tx)) => {
                    let consistent = match call {
                        RpcCall::SendRawTransaction { raw } => proven_tx == *raw,
                        RpcCall::GetTransactionByHash { hash } => keccak256(&proven_tx) == *hash,
                        _ => true,
                    };
                    if consistent {
                        Ok(None)
                    } else {
                        Ok(Some(FraudVerdict::InvalidProof))
                    }
                }
            }
        }
        ProofKind::Receipt => {
            // result = rlp([index, receipt]): the claimed receipt and its
            // position, provable under the header's receipts_root.
            let fields = parp_rlp::decode_list_of(result, 2)
                .map_err(|_| "malformed receipt result".to_string())?;
            let index = fields[0]
                .as_u64()
                .map_err(|_| "malformed receipt index".to_string())?;
            let claimed_receipt = fields[1]
                .as_bytes()
                .map_err(|_| "malformed receipt payload".to_string())?;
            let key = parp_rlp::encode_u64(index);
            match verify_proof(header.receipts_root, &key, proof) {
                Err(_) | Ok(None) => Ok(Some(FraudVerdict::InvalidProof)),
                Ok(Some(proven_receipt)) => {
                    if proven_receipt == claimed_receipt {
                        Ok(None)
                    } else {
                        Ok(Some(FraudVerdict::InvalidProof))
                    }
                }
            }
        }
    }
}

/// A processed fraud case (kept to prevent double reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FraudRecord {
    /// The condemned full node.
    pub offender: Address,
    /// The reporting light client.
    pub reporter: Address,
    /// The witness that relayed the proof.
    pub witness: Address,
    /// What the proof showed.
    pub verdict: FraudVerdict,
    /// The slashed collateral.
    pub slashed: U256,
    /// Block at which the proof was accepted.
    pub block: u64,
}

/// One slash in the order it was accepted — the observability view of
/// the fraud records. The keyed [`FraudRecord`] map answers "was this
/// request's case processed?"; this log answers "what happened, in
/// what order?" (the question telemetry and the report binary ask).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlashEvent {
    /// `h_req` of the condemned exchange.
    pub request_hash: H256,
    /// The slashed full node.
    pub offender: Address,
    /// The witness that relayed the proof.
    pub witness: Address,
    /// Which fraud condition held.
    pub verdict: FraudVerdict,
    /// Collateral taken.
    pub slashed: U256,
    /// Block at which the proof was accepted.
    pub block: u64,
}

/// The fraud detection module state.
#[derive(Debug, Clone, Default)]
pub struct FraudModule {
    /// Accepted proofs, keyed by `h_req` (one slash per request).
    records: BTreeMap<H256, FraudRecord>,
    /// The same accepted proofs in acceptance order. Deliberately
    /// excluded from [`FraudModule::commitment`]: it carries no
    /// information beyond the keyed records (which are committed), and
    /// keeping it out preserves every existing commitment value.
    slash_log: Vec<SlashEvent>,
}

/// The cheaply extracted fields an exchange presents to Algorithm 2,
/// identical between single and batched messages. The expensive values
/// (hash recomputation, signature recoveries) are passed to
/// [`FraudModule::authenticate_exchange`] as closures so submissions that
/// fail the early channel guards never pay for them.
struct ExchangeFields {
    req_channel_id: u64,
    res_channel_id: u64,
    request_hash: H256,
    res_request_hash: H256,
    request_sig: Signature,
    request_block_hash: H256,
    amounts_equal: bool,
}

impl FraudModule {
    /// Creates an empty module.
    pub fn new() -> Self {
        FraudModule::default()
    }

    /// Accepted fraud records, in request-hash order.
    pub fn records(&self) -> impl Iterator<Item = (&H256, &FraudRecord)> {
        self.records.iter()
    }

    /// Looks up the fraud record for a request hash.
    pub fn record(&self, request_hash: &H256) -> Option<&FraudRecord> {
        self.records.get(request_hash)
    }

    /// Every accepted slash, in chronological acceptance order.
    pub fn slash_events(&self) -> &[SlashEvent] {
        &self.slash_log
    }

    /// `submitFraudProof(req, res, addrWN, header)` — Algorithm 2.
    ///
    /// Returns `[verdict_byte]` on success.
    ///
    /// # Errors
    ///
    /// Reverts when the proof is malformed, refers to an unknown or closed
    /// channel, fails authentication, the header cannot be validated, the
    /// case was already processed — or when no fraud condition holds
    /// (submitting proofs against honest responses costs the submitter
    /// gas and achieves nothing).
    #[allow(clippy::too_many_arguments)]
    pub fn submit_fraud_proof(
        &mut self,
        request_bytes: &[u8],
        response_bytes: &[u8],
        witness: Address,
        header_bytes: &[u8],
        ctx: &BlockContext,
        cmm: &mut ChannelsModule,
        fndm: &mut DepositModule,
        state: &mut State,
        meter: &mut GasMeter,
    ) -> Result<(Vec<u8>, Vec<Log>), Revert> {
        // Solidity-style decode cost over every submitted byte.
        meter.process_bytes(request_bytes.len() + response_bytes.len() + header_bytes.len());
        let req = ParpRequest::decode(request_bytes)
            .map_err(|e| Revert::new(format!("malformed request: {e}")))?;
        let res = ParpResponse::decode(response_bytes)
            .map_err(|e| Revert::new(format!("malformed response: {e}")))?;

        let exchange = ExchangeFields {
            req_channel_id: req.channel_id,
            res_channel_id: res.channel_id,
            request_hash: req.request_hash,
            res_request_hash: res.request_hash,
            request_sig: req.request_sig,
            request_block_hash: req.block_hash,
            amounts_equal: req.amount == res.amount,
        };
        let (channel, request_height) = self.authenticate_exchange(
            &exchange,
            || req.expected_hash(),
            || res.signer(),
            request_bytes,
            response_bytes,
            ctx,
            cmm,
            meter,
        )?;
        let header = Self::validate_header(header_bytes, ctx, meter)?;
        if header.number != res.block_number {
            return Err(Revert::new("header height does not match response"));
        }

        // MPT walk cost: hash every proof node.
        for node in &res.proof {
            meter.keccak(node.len());
        }
        let verdict = fraud_conditions(&req, &res, &header, request_height).map_err(Revert::new)?;
        let Some(verdict) = verdict else {
            return Err(Revert::new("no fraud detected"));
        };
        self.slash_and_record(
            req.request_hash,
            verdict,
            witness,
            &channel,
            ctx,
            cmm,
            fndm,
            state,
            meter,
        )
    }

    /// `submitBatchFraudProof(req, res, addrWN, headers)`: Algorithm 2
    /// generalized to batched exchanges. The node's one signature covers
    /// every item, so a single provably wrong item — or a batch-level
    /// condition — condemns the whole response and slashes the node.
    ///
    /// The witness submits one RLP header per block the response binds
    /// proofs to (the snapshot block plus each inclusion item's
    /// containing block); every submitted header inside the `BLOCKHASH`
    /// window is validated before any item is judged. Headers whose
    /// blocks fell out of the window are skipped — the items bound to
    /// them go unjudged (§VI), but fraud in the rest of the batch stays
    /// slashable. The snapshot block's header must validate.
    ///
    /// Returns `[verdict_byte]` on success.
    ///
    /// # Errors
    ///
    /// Reverts under the same conditions as
    /// [`FraudModule::submit_fraud_proof`], plus when a submitted
    /// in-window header fails validation, when no valid header covers
    /// the snapshot block, or when no fraud condition holds on the
    /// judgeable items. An in-window referenced header the witness
    /// *omitted* leaves its item unjudged, so a proof resting on that
    /// item alone reverts with "no fraud detected" — resubmit with the
    /// missing header.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_batch_fraud_proof(
        &mut self,
        request_bytes: &[u8],
        response_bytes: &[u8],
        witness: Address,
        headers_bytes: &[Vec<u8>],
        ctx: &BlockContext,
        cmm: &mut ChannelsModule,
        fndm: &mut DepositModule,
        state: &mut State,
        meter: &mut GasMeter,
    ) -> Result<(Vec<u8>, Vec<Log>), Revert> {
        let headers_len: usize = headers_bytes.iter().map(Vec::len).sum();
        meter.process_bytes(request_bytes.len() + response_bytes.len() + headers_len);
        let req = crate::ParpBatchRequest::decode(request_bytes)
            .map_err(|e| Revert::new(format!("malformed batch request: {e}")))?;
        let res = crate::ParpBatchResponse::decode(response_bytes)
            .map_err(|e| Revert::new(format!("malformed batch response: {e}")))?;

        let exchange = ExchangeFields {
            req_channel_id: req.channel_id,
            res_channel_id: res.channel_id,
            request_hash: req.request_hash,
            res_request_hash: res.request_hash,
            request_sig: req.request_sig,
            request_block_hash: req.block_hash,
            amounts_equal: req.amount == res.amount,
        };
        let (channel, request_height) = self.authenticate_exchange(
            &exchange,
            || req.expected_hash(),
            || res.signer(),
            request_bytes,
            response_bytes,
            ctx,
            cmm,
            meter,
        )?;
        // Every submitted header inside the `BLOCKHASH` window must
        // hash to the chain's stored block hash; duplicates are
        // padding. A header whose height fell out of the window is
        // skipped rather than reverted on: it cannot be validated, so
        // items bound to it go unjudged (§VI freshness bound) — but an
        // old honest lookup never blocks condemning the fresh items
        // (or batch-level conditions) next to it.
        let mut trusted: BTreeMap<u64, Header> = BTreeMap::new();
        for header_bytes in headers_bytes {
            let header = Header::decode(header_bytes)
                .map_err(|e| Revert::new(format!("malformed header: {e}")))?;
            let Some(expected) = ctx.block_hash(header.number) else {
                continue;
            };
            meter.keccak(header_bytes.len());
            if keccak256(header_bytes) != expected {
                return Err(Revert::new("header hash does not match the chain"));
            }
            if trusted.insert(header.number, header).is_some() {
                return Err(Revert::new("duplicate header submitted"));
            }
        }
        if !trusted.contains_key(&res.block_number) {
            return Err(Revert::new("no valid header for the snapshot block"));
        }

        // MPT walk cost: hash every multiproof and inclusion-proof
        // node, plus the carried headers the structure check re-hashes.
        for node in &res.multiproof {
            meter.keccak(node.len());
        }
        for proof in &res.item_proofs {
            for node in proof {
                meter.keccak(node.len());
            }
        }
        for header in &res.headers {
            meter.keccak(header.len());
        }
        let fraud = crate::batch_fraud_conditions(&req, &res, &trusted, request_height)
            .map_err(Revert::new)?;
        let verdict = match fraud {
            None => return Err(Revert::new("no fraud detected")),
            Some(crate::BatchFraud::Batch(verdict)) => verdict,
            Some(crate::BatchFraud::Items(verdicts)) => verdicts
                .into_iter()
                .flatten()
                .next()
                .expect("Items only returned when some item is condemned"),
        };
        self.slash_and_record(
            req.request_hash,
            verdict,
            witness,
            &channel,
            ctx,
            cmm,
            fndm,
            state,
            meter,
        )
    }

    /// Decodes a submitted header and validates it against the
    /// `BLOCKHASH` window: the header must hash to the stored block hash
    /// for its height, which is only visible inside the 256-block window
    /// (paper §VI).
    fn validate_header(
        header_bytes: &[u8],
        ctx: &BlockContext,
        meter: &mut GasMeter,
    ) -> Result<Header, Revert> {
        let header = Header::decode(header_bytes)
            .map_err(|e| Revert::new(format!("malformed header: {e}")))?;
        meter.keccak(header_bytes.len());
        let expected = ctx
            .block_hash(header.number)
            .ok_or_else(|| Revert::new("header outside the blockhash window"))?;
        if keccak256(header_bytes) != expected {
            return Err(Revert::new("header hash does not match the chain"));
        }
        Ok(header)
    }

    /// The shared authentication sequence of Algorithm 2: channel lookup
    /// and status, double-report guard, request-hash consistency, both
    /// signature recoveries, and `req.h_B` height resolution. The hash
    /// recomputation and response-signer recovery run only after the
    /// cheap guards pass. Header validation is separate
    /// ([`FraudModule::validate_header`]) because single and batched
    /// submissions carry different header sets.
    #[allow(clippy::too_many_arguments)]
    fn authenticate_exchange(
        &self,
        exchange: &ExchangeFields,
        expected_request_hash: impl FnOnce() -> H256,
        response_signer: impl FnOnce() -> Option<Address>,
        request_bytes: &[u8],
        response_bytes: &[u8],
        ctx: &BlockContext,
        cmm: &ChannelsModule,
        meter: &mut GasMeter,
    ) -> Result<(crate::cmm::Channel, u64), Revert> {
        // The match of the identifier.
        if exchange.req_channel_id != exchange.res_channel_id {
            return Err(Revert::new("channel identifier mismatch"));
        }
        meter.sload_n(6);
        let channel = cmm
            .channel(exchange.req_channel_id)
            .ok_or_else(|| Revert::new("unknown channel"))?
            .clone();
        if channel.status == ChannelStatus::Closed {
            return Err(Revert::new("channel already closed"));
        }
        if self.records.contains_key(&exchange.request_hash) {
            return Err(Revert::new("fraud case already processed"));
        }

        // The origin of the request: recompute h_req, recover σ_req. The
        // hash equality just checked lets σ_req be recovered against the
        // carried hash directly, without re-encoding the request again.
        meter.keccak(request_bytes.len());
        if expected_request_hash() != exchange.request_hash {
            return Err(Revert::new("request hash does not match contents"));
        }
        if exchange.res_request_hash != exchange.request_hash {
            return Err(Revert::new("response references a different request"));
        }
        meter.ecrecover();
        let request_signer = recover_address(&exchange.request_hash, &exchange.request_sig)
            .map_err(|_| Revert::new("request signature invalid"))?;
        if request_signer != channel.light_client {
            return Err(Revert::new(
                "request not signed by the channel's light client",
            ));
        }

        // The origin of the response: recover σ_res.
        meter.keccak(response_bytes.len());
        meter.ecrecover();
        let response_signer =
            response_signer().ok_or_else(|| Revert::new("response signature invalid"))?;
        if response_signer != channel.full_node {
            return Err(Revert::new(
                "response not signed by the channel's full node",
            ));
        }

        // The height of req.h_B must be resolvable on-chain (unless the
        // amount condition already condemns and makes it irrelevant).
        let request_height = if !exchange.amounts_equal {
            0
        } else {
            ctx.block_height_by_hash(&exchange.request_block_hash)
                .ok_or_else(|| Revert::new("request block hash outside the window"))?
        };
        Ok((channel, request_height))
    }

    /// slashAndReward (Algorithm 2) plus the fraud record and event.
    #[allow(clippy::too_many_arguments)]
    fn slash_and_record(
        &mut self,
        request_hash: H256,
        verdict: FraudVerdict,
        witness: Address,
        channel: &crate::cmm::Channel,
        ctx: &BlockContext,
        cmm: &mut ChannelsModule,
        fndm: &mut DepositModule,
        state: &mut State,
        meter: &mut GasMeter,
    ) -> Result<(Vec<u8>, Vec<Log>), Revert> {
        let slashed = fndm.slash(
            channel.full_node,
            channel.light_client,
            witness,
            state,
            meter,
        )?;
        cmm.settle_for_fraud(channel.id, state, meter)?;
        self.records.insert(
            request_hash,
            FraudRecord {
                offender: channel.full_node,
                reporter: channel.light_client,
                witness,
                verdict,
                slashed,
                block: ctx.number,
            },
        );
        // parp-allow(W004): the slash log is the append-only audit trail fraud adjudication exists to produce
        self.slash_log.push(SlashEvent {
            request_hash,
            offender: channel.full_node,
            witness,
            verdict,
            slashed,
            block: ctx.number,
        });
        meter.sstore_set_n(3);
        let log = event_log(
            crate::calls::fdm_address(),
            "FraudProven(address,address,uint8)",
            &[address_topic(&channel.full_node), address_topic(&witness)],
            &[verdict.as_byte()],
        );
        meter.log(3, 1);
        Ok((vec![verdict.as_byte()], vec![log]))
    }

    /// Commitment to the module state.
    pub fn commitment(&self) -> H256 {
        let mut hasher = parp_crypto::Keccak256::new();
        hasher.update(b"fdm");
        for (hash, record) in &self.records {
            hasher.update(hash.as_bytes());
            hasher.update(record.offender.as_bytes());
            hasher.update(record.witness.as_bytes());
            hasher.update(&[record.verdict.as_byte()]);
            hasher.update(&record.slashed.to_be_bytes());
            hasher.update(&record.block.to_be_bytes());
        }
        hasher.finalize()
    }
}
