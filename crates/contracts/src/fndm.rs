//! The Full Nodes Deposit Module (FNDM): collateral staking, the serving
//! registry, and slashing (paper §IV-C, §IV-F).

use crate::gas::GasMeter;
use parp_chain::{Log, State};
use parp_crypto::{keccak256, Keccak256};
use parp_primitives::{Address, H256, U256};
use std::collections::BTreeMap;

/// Minimum collateral to become eligible to serve: 1 token (10^18 wei).
pub fn min_deposit() -> U256 {
    U256::from(1_000_000_000_000_000_000u64)
}

/// Share of a slashed deposit awarded to the reporting light client, in
/// percent (the remainder after the witness share stays in the module as
/// the serving-layer reward pool, §IV-F).
pub const SLASH_CLIENT_SHARE: u64 = 40;
/// Share of a slashed deposit awarded to the witness full node.
pub const SLASH_WITNESS_SHARE: u64 = 20;

/// Reasons a module call reverts. The executor maps these to failed
/// receipts and rolls back state, like an EVM `revert`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Revert(pub String);

impl Revert {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Revert(msg.into())
    }
}

impl std::fmt::Display for Revert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "reverted: {}", self.0)
    }
}

impl std::error::Error for Revert {}

/// One full node's standing in the deposit module.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeRecord {
    /// Locked collateral in wei.
    pub deposit: U256,
    /// Whether the node has flagged itself available to serve.
    pub serving: bool,
    /// Number of times this node has been slashed.
    pub slash_count: u64,
}

/// The deposit module state.
#[derive(Debug, Clone, Default)]
pub struct DepositModule {
    nodes: BTreeMap<Address, NodeRecord>,
    /// Undistributed slashed funds retained as the serving-layer pool.
    pool: U256,
}

impl DepositModule {
    /// Creates an empty module.
    pub fn new() -> Self {
        DepositModule::default()
    }

    /// `deposit()`: locks the transaction value as collateral.
    ///
    /// # Errors
    ///
    /// Reverts on a zero-value deposit.
    pub fn deposit(
        &mut self,
        sender: Address,
        value: U256,
        meter: &mut GasMeter,
    ) -> Result<(Vec<u8>, Vec<Log>), Revert> {
        if value.is_zero() {
            return Err(Revert::new("deposit value must be positive"));
        }
        meter.sload_n(1);
        let record = self.nodes.entry(sender).or_default();
        if record.deposit.is_zero() {
            meter.sstore_set();
        } else {
            meter.sstore_update();
        }
        record.deposit = record.deposit.saturating_add(value);
        let log = event_log(
            crate::calls::fndm_address(),
            "Deposited(address,uint256)",
            &[address_topic(&sender)],
            &value.to_be_bytes_minimal(),
        );
        meter.log(2, 32);
        Ok((Vec::new(), vec![log]))
    }

    /// `withdraw(amount)`: releases collateral back to the node.
    ///
    /// # Errors
    ///
    /// Reverts while the node is flagged as serving, or on insufficient
    /// collateral.
    pub fn withdraw(
        &mut self,
        sender: Address,
        amount: U256,
        state: &mut State,
        meter: &mut GasMeter,
    ) -> Result<(Vec<u8>, Vec<Log>), Revert> {
        meter.sload_n(2);
        let record = self
            .nodes
            .get_mut(&sender)
            .ok_or_else(|| Revert::new("no deposit on record"))?;
        if record.serving {
            return Err(Revert::new("cannot withdraw while serving"));
        }
        let rest = record
            .deposit
            .checked_sub(amount)
            .ok_or_else(|| Revert::new("insufficient deposit"))?;
        record.deposit = rest;
        meter.sstore_update();
        if !state.transfer(&crate::calls::fndm_address(), sender, amount) {
            return Err(Revert::new("module balance underflow"));
        }
        meter.value_transfer(false);
        Ok((Vec::new(), Vec::new()))
    }

    /// `setServing(bool)`: flags availability; requires the minimum
    /// deposit to enable.
    ///
    /// # Errors
    ///
    /// Reverts when enabling without sufficient collateral.
    pub fn set_serving(
        &mut self,
        sender: Address,
        serving: bool,
        meter: &mut GasMeter,
    ) -> Result<(Vec<u8>, Vec<Log>), Revert> {
        meter.sload_n(1);
        let record = self.nodes.entry(sender).or_default();
        if serving && record.deposit < min_deposit() {
            return Err(Revert::new("deposit below serving minimum"));
        }
        record.serving = serving;
        meter.sstore_update();
        Ok((Vec::new(), Vec::new()))
    }

    /// Whether a node can currently accept new PARP connections.
    pub fn is_eligible(&self, node: &Address) -> bool {
        self.nodes
            .get(node)
            .map(|r| r.serving && r.deposit >= min_deposit())
            .unwrap_or(false)
    }

    /// The collateral currently locked by a node.
    pub fn deposit_of(&self, node: &Address) -> U256 {
        self.nodes
            .get(node)
            .map(|r| r.deposit)
            .unwrap_or(U256::ZERO)
    }

    /// A node's full record.
    pub fn record(&self, node: &Address) -> Option<&NodeRecord> {
        self.nodes.get(node)
    }

    /// The on-chain registry of serving full nodes (paper §IV-A:
    /// "discoverable via an on-chain registry").
    ///
    /// Backed by an address-keyed map, so the returned list is sorted
    /// and duplicate-free by construction.
    pub fn registry(&self) -> Vec<Address> {
        self.nodes
            .iter()
            .filter(|(_, r)| r.serving && r.deposit >= min_deposit())
            .map(|(a, _)| *a)
            .collect()
    }

    /// The registry with each serving node's full standing (deposit,
    /// slash count) — the read surface a registry-driven client
    /// directory consumes in one call instead of N `record` lookups.
    /// Sorted by address, duplicate-free (same backing map as
    /// [`DepositModule::registry`]).
    pub fn registry_records(&self) -> Vec<(Address, NodeRecord)> {
        self.nodes
            .iter()
            .filter(|(_, r)| r.serving && r.deposit >= min_deposit())
            .map(|(a, r)| (*a, r.clone()))
            .collect()
    }

    /// Undistributed slashed funds held for the serving-layer pool.
    pub fn pool(&self) -> U256 {
        self.pool
    }

    /// Confiscates a misbehaving node's entire deposit and splits it
    /// between the reporting light client, the witness node and the
    /// serving-layer pool (§IV-F). Returns the slashed amount.
    pub(crate) fn slash(
        &mut self,
        offender: Address,
        light_client: Address,
        witness: Address,
        state: &mut State,
        meter: &mut GasMeter,
    ) -> Result<U256, Revert> {
        meter.sload_n(2);
        let record = self
            .nodes
            .get_mut(&offender)
            .ok_or_else(|| Revert::new("offender has no deposit"))?;
        let slashed = record.deposit;
        if slashed.is_zero() {
            return Err(Revert::new("offender deposit already empty"));
        }
        record.deposit = U256::ZERO;
        record.serving = false;
        record.slash_count += 1;
        meter.sstore_update();
        meter.sstore_update();
        let hundred = U256::from(100u64);
        let client_share = slashed * U256::from(SLASH_CLIENT_SHARE) / hundred;
        let witness_share = slashed * U256::from(SLASH_WITNESS_SHARE) / hundred;
        let pool_share = slashed - client_share - witness_share;
        let module = crate::calls::fndm_address();
        let client_new = state.account(&light_client).is_none();
        if !state.transfer(&module, light_client, client_share) {
            return Err(Revert::new("module balance underflow"));
        }
        meter.value_transfer(client_new);
        let witness_new = state.account(&witness).is_none();
        if !state.transfer(&module, witness, witness_share) {
            return Err(Revert::new("module balance underflow"));
        }
        meter.value_transfer(witness_new);
        self.pool = self.pool.saturating_add(pool_share);
        meter.sstore_update();
        Ok(slashed)
    }

    /// Commitment to the module state, stored as the module account's
    /// `storage_root` so the world-state root covers module state.
    pub fn commitment(&self) -> H256 {
        let mut hasher = Keccak256::new();
        hasher.update(b"fndm");
        for (address, record) in &self.nodes {
            hasher.update(address.as_bytes());
            hasher.update(&record.deposit.to_be_bytes());
            hasher.update(&[record.serving as u8]);
            hasher.update(&record.slash_count.to_be_bytes());
        }
        hasher.update(&self.pool.to_be_bytes());
        hasher.finalize()
    }
}

/// Builds a log with a name-derived topic0, like a Solidity event.
pub(crate) fn event_log(
    address: Address,
    signature: &str,
    extra_topics: &[H256],
    data: &[u8],
) -> Log {
    let mut topics = vec![keccak256(signature.as_bytes())];
    topics.extend_from_slice(extra_topics);
    Log {
        address,
        topics,
        data: data.to_vec(),
    }
}

/// Encodes an address as a 32-byte log topic.
pub(crate) fn address_topic(address: &Address) -> H256 {
    let mut bytes = [0u8; 32];
    bytes[12..].copy_from_slice(address.as_bytes());
    H256::new(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Address {
        Address::from_low_u64_be(0xff01)
    }

    fn meter() -> GasMeter {
        GasMeter::new()
    }

    #[test]
    fn deposit_accumulates() {
        let mut fndm = DepositModule::new();
        let mut m = meter();
        fndm.deposit(node(), U256::from(10u64), &mut m).unwrap();
        fndm.deposit(node(), U256::from(5u64), &mut m).unwrap();
        assert_eq!(fndm.deposit_of(&node()), U256::from(15u64));
        assert!(m.used() > 0);
    }

    #[test]
    fn zero_deposit_reverts() {
        let mut fndm = DepositModule::new();
        assert!(fndm.deposit(node(), U256::ZERO, &mut meter()).is_err());
    }

    #[test]
    fn serving_requires_minimum() {
        let mut fndm = DepositModule::new();
        fndm.deposit(node(), U256::from(10u64), &mut meter())
            .unwrap();
        assert!(fndm.set_serving(node(), true, &mut meter()).is_err());
        fndm.deposit(node(), min_deposit(), &mut meter()).unwrap();
        fndm.set_serving(node(), true, &mut meter()).unwrap();
        assert!(fndm.is_eligible(&node()));
        assert_eq!(fndm.registry(), vec![node()]);
    }

    #[test]
    fn withdraw_blocked_while_serving() {
        let mut fndm = DepositModule::new();
        let mut state = State::new();
        state.credit(crate::calls::fndm_address(), min_deposit());
        fndm.deposit(node(), min_deposit(), &mut meter()).unwrap();
        fndm.set_serving(node(), true, &mut meter()).unwrap();
        assert!(fndm
            .withdraw(node(), U256::ONE, &mut state, &mut meter())
            .is_err());
        fndm.set_serving(node(), false, &mut meter()).unwrap();
        fndm.withdraw(node(), min_deposit(), &mut state, &mut meter())
            .unwrap();
        assert_eq!(fndm.deposit_of(&node()), U256::ZERO);
        assert_eq!(state.balance(&node()), min_deposit());
    }

    #[test]
    fn slash_splits_three_ways() {
        let mut fndm = DepositModule::new();
        let mut state = State::new();
        let lc = Address::from_low_u64_be(0x1c);
        let witness = Address::from_low_u64_be(0x33);
        let stake = U256::from(1_000u64);
        state.credit(crate::calls::fndm_address(), stake);
        fndm.deposit(node(), stake, &mut meter()).unwrap();
        let slashed = fndm
            .slash(node(), lc, witness, &mut state, &mut meter())
            .unwrap();
        assert_eq!(slashed, stake);
        assert_eq!(state.balance(&lc), U256::from(400u64));
        assert_eq!(state.balance(&witness), U256::from(200u64));
        assert_eq!(fndm.pool(), U256::from(400u64));
        assert_eq!(fndm.deposit_of(&node()), U256::ZERO);
        assert!(!fndm.is_eligible(&node()));
        assert_eq!(fndm.record(&node()).unwrap().slash_count, 1);
    }

    #[test]
    fn double_slash_reverts() {
        let mut fndm = DepositModule::new();
        let mut state = State::new();
        state.credit(crate::calls::fndm_address(), U256::from(100u64));
        fndm.deposit(node(), U256::from(100u64), &mut meter())
            .unwrap();
        fndm.slash(
            node(),
            Address::ZERO,
            Address::ZERO,
            &mut state,
            &mut meter(),
        )
        .unwrap();
        assert!(fndm
            .slash(
                node(),
                Address::ZERO,
                Address::ZERO,
                &mut state,
                &mut meter()
            )
            .is_err());
    }

    #[test]
    fn commitment_tracks_state() {
        let mut fndm = DepositModule::new();
        let c0 = fndm.commitment();
        fndm.deposit(node(), U256::ONE, &mut meter()).unwrap();
        let c1 = fndm.commitment();
        assert_ne!(c0, c1);
    }
}
