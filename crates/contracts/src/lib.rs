//! The PARP on-chain modules, reproduced as native state-transition
//! contracts with EVM-style gas metering.
//!
//! The paper's prototype implements three Solidity contracts (1631 LoC,
//! solc 0.8.25): a Full Nodes Deposit Module, a Channels Management
//! Module and a Fraud Detection Module. This crate reproduces their exact
//! observable behaviour — the channel lifecycle of §V-B, Algorithm 2's
//! fraud verification, and the collateral/slashing economics of §IV-F —
//! as native modules executed by the simulated chain, metered with the
//! published EVM gas schedule (see [`gas`]).
//!
//! It also defines the canonical PARP wire messages ([`ParpRequest`],
//! [`ParpResponse`]): the on-chain fraud verifier is their authoritative
//! decoder, exactly as the Solidity contract is in the prototype.
//!
//! # Examples
//!
//! ```
//! use parp_contracts::{build_module_call, ModuleCall, ParpExecutor};
//! use parp_chain::Blockchain;
//! use parp_crypto::SecretKey;
//! use parp_primitives::U256;
//!
//! let node = SecretKey::from_seed(b"node-operator");
//! let stake = U256::from(10u64) * U256::from(1_000_000_000_000_000_000u64);
//! let mut chain = Blockchain::new(vec![(node.address(), stake)]);
//! let mut executor = ParpExecutor::new();
//!
//! // Stake collateral, then register as serving.
//! let deposit = build_module_call(&node, 0, ModuleCall::Deposit, stake / U256::from(2u64));
//! let serve = build_module_call(&node, 1, ModuleCall::SetServing { serving: true }, U256::ZERO);
//! chain.produce_block(vec![deposit, serve], &mut executor)?;
//! assert!(executor.fndm().is_eligible(&node.address()));
//! # Ok::<(), parp_chain::BlockError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod calls;
mod cmm;
mod executor;
mod fdm;
mod fndm;
pub mod gas;
mod message;

pub use batch::{
    batch_fraud_conditions, batch_request_hash, batch_response_hash, referenced_blocks, BatchFraud,
    BatchOutput, ParpBatchRequest, ParpBatchResponse,
};
pub use calls::{cmm_address, fdm_address, fndm_address, ModuleCall};
pub use cmm::{confirmation_digest, Channel, ChannelStatus, ChannelsModule, DISPUTE_WINDOW_BLOCKS};
pub use executor::ParpExecutor;
pub use fdm::{fraud_conditions, FraudModule, FraudRecord, FraudVerdict, SlashEvent};
pub use fndm::{
    min_deposit, DepositModule, NodeRecord, Revert, SLASH_CLIENT_SHARE, SLASH_WITNESS_SHARE,
};
pub use message::{
    payment_digest, request_hash, response_hash, MessageError, ParpRequest, ParpResponse,
    ProofKind, RpcCall,
};

use parp_chain::{SignedTransaction, Transaction};
use parp_crypto::SecretKey;
use parp_primitives::U256;

/// Gas limit generous enough for every module call, including large
/// fraud proofs.
pub const MODULE_CALL_GAS_LIMIT: u64 = 3_000_000;

/// Builds and signs a transaction invoking a module call.
///
/// Uses a zero gas price (the simulated network does not price gas;
/// benches meter gas separately) and a generous gas limit.
pub fn build_module_call(
    secret: &SecretKey,
    nonce: u64,
    call: ModuleCall,
    value: U256,
) -> SignedTransaction {
    Transaction {
        nonce,
        gas_price: U256::ZERO,
        gas_limit: MODULE_CALL_GAS_LIMIT,
        to: Some(call.target()),
        value,
        data: call.encode(),
    }
    .sign(secret)
}
