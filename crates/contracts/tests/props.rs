//! Property tests on the on-chain modules: channel fund conservation,
//! dispute monotonicity, and slashing arithmetic.

use parp_chain::{BlockContext, State};
use parp_contracts::gas::GasMeter;
use parp_contracts::{
    cmm_address, confirmation_digest, fndm_address, min_deposit, payment_digest, ChannelStatus,
    ChannelsModule, DepositModule, DISPUTE_WINDOW_BLOCKS,
};
use parp_crypto::{sign, SecretKey};
use parp_primitives::{Address, U256};
use proptest::prelude::*;

fn ctx_at(number: u64) -> BlockContext {
    BlockContext::bare(number, 1_700_000_000 + number * 12, Address::ZERO)
}

fn lc() -> SecretKey {
    SecretKey::from_seed(b"prop-cmm-lc")
}

fn fnode() -> SecretKey {
    SecretKey::from_seed(b"prop-cmm-fn")
}

fn eligible_fndm() -> DepositModule {
    let mut fndm = DepositModule::new();
    fndm.deposit(fnode().address(), min_deposit(), &mut GasMeter::new())
        .unwrap();
    fndm.set_serving(fnode().address(), true, &mut GasMeter::new())
        .unwrap();
    fndm
}

fn open_channel(cmm: &mut ChannelsModule, budget: u64) -> u64 {
    let fndm = eligible_fndm();
    let expiry = ctx_at(1).timestamp + 600;
    let sig = sign(&fnode(), &confirmation_digest(&lc().address(), expiry));
    let (out, _) = cmm
        .open_channel(
            lc().address(),
            U256::from(budget),
            fnode().address(),
            expiry,
            &sig,
            &ctx_at(1),
            &fndm,
            &mut GasMeter::new(),
        )
        .unwrap();
    parp_rlp::decode(&out).unwrap().as_u64().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Settlement conserves funds exactly: earned + refund == budget,
    /// for any sequence of escalating dispute states.
    #[test]
    fn settlement_conserves_budget(
        budget in 1_000u64..1_000_000,
        close_amount in 0u64..1_000_000,
        dispute_amounts in proptest::collection::vec(0u64..1_000_000, 0..4),
    ) {
        let close_amount = close_amount.min(budget);
        let mut cmm = ChannelsModule::new();
        let id = open_channel(&mut cmm, budget);
        let close_sig = sign(&lc(), &payment_digest(id, &U256::from(close_amount)));
        cmm.close_channel(
            fnode().address(), id, U256::from(close_amount), &close_sig,
            &ctx_at(10), &mut GasMeter::new(),
        ).unwrap();
        let mut block = 11u64;
        for raw in dispute_amounts {
            let amount = raw.min(budget);
            let sig = sign(&lc(), &payment_digest(id, &U256::from(amount)));
            // May fail (not newer / over budget); failures must not
            // change the recorded state.
            let before = cmm.channel(id).unwrap().latest_amount;
            let result = cmm.submit_state(
                id, U256::from(amount), &sig, &ctx_at(block), &mut GasMeter::new(),
            );
            let after = cmm.channel(id).unwrap().latest_amount;
            match result {
                Ok(_) => prop_assert!(after > before),
                Err(_) => prop_assert_eq!(after, before),
            }
            block += 1;
        }
        let final_amount = cmm.channel(id).unwrap().latest_amount;
        // Fast-forward past the (possibly reset) window and settle.
        let mut state = State::new();
        state.credit(cmm_address(), U256::from(budget));
        let deadline = block + DISPUTE_WINDOW_BLOCKS + 1;
        cmm.confirm_closure(id, &ctx_at(deadline), &mut state, &mut GasMeter::new())
            .unwrap();
        let earned = state.balance(&fnode().address());
        let refund = state.balance(&lc().address());
        prop_assert_eq!(earned, final_amount);
        prop_assert_eq!(earned + refund, U256::from(budget));
        prop_assert_eq!(state.balance(&cmm_address()), U256::ZERO);
        prop_assert_eq!(cmm.channel(id).unwrap().status, ChannelStatus::Closed);
    }

    /// The recorded channel state never decreases during disputes.
    #[test]
    fn dispute_state_is_monotone(amounts in proptest::collection::vec(1u64..10_000, 1..8)) {
        let budget = 10_000u64;
        let mut cmm = ChannelsModule::new();
        let id = open_channel(&mut cmm, budget);
        let first = amounts[0].min(budget);
        let sig = sign(&lc(), &payment_digest(id, &U256::from(first)));
        cmm.close_channel(
            lc().address(), id, U256::from(first), &sig, &ctx_at(5),
            &mut GasMeter::new(),
        ).unwrap();
        let mut watermark = U256::from(first);
        for (i, raw) in amounts.iter().enumerate().skip(1) {
            let amount = U256::from((*raw).min(budget));
            let sig = sign(&lc(), &payment_digest(id, &amount));
            let _ = cmm.submit_state(id, amount, &sig, &ctx_at(6 + i as u64), &mut GasMeter::new());
            let recorded = cmm.channel(id).unwrap().latest_amount;
            prop_assert!(recorded >= watermark, "state regressed");
            watermark = recorded;
        }
    }

    /// Slash splits add up exactly to the confiscated deposit.
    #[test]
    fn slash_is_exhaustive(stake in 1u64..u32::MAX as u64) {
        let mut fndm = DepositModule::new();
        let offender = Address::from_low_u64_be(1);
        let reporter = Address::from_low_u64_be(2);
        let witness = Address::from_low_u64_be(3);
        let mut state = State::new();
        state.credit(fndm_address(), U256::from(stake));
        fndm.deposit(offender, U256::from(stake), &mut GasMeter::new()).unwrap();
        // slash() is pub(crate); exercise it through the module's public
        // invariant instead: deposit_of + distributed == stake after a
        // fraud-driven slash is covered by integration tests. Here we
        // check the arithmetic primitive the split uses.
        let hundred = U256::from(100u64);
        let client_share = U256::from(stake) * U256::from(parp_contracts::SLASH_CLIENT_SHARE) / hundred;
        let witness_share = U256::from(stake) * U256::from(parp_contracts::SLASH_WITNESS_SHARE) / hundred;
        let pool = U256::from(stake) - client_share - witness_share;
        prop_assert_eq!(client_share + witness_share + pool, U256::from(stake));
        let _ = (reporter, witness);
    }

    /// Payment signatures only verify for the exact (channel, amount)
    /// pair they were issued for.
    #[test]
    fn payment_sig_binds_channel_and_amount(
        channel in any::<u64>(),
        amount in any::<u64>(),
        other_channel in any::<u64>(),
        other_amount in any::<u64>(),
    ) {
        prop_assume!(channel != other_channel || amount != other_amount);
        let sig = sign(&lc(), &payment_digest(channel, &U256::from(amount)));
        let right = parp_crypto::recover_address(
            &payment_digest(channel, &U256::from(amount)), &sig,
        ).unwrap();
        prop_assert_eq!(right, lc().address());
        let wrong = parp_crypto::recover_address(
            &payment_digest(other_channel, &U256::from(other_amount)), &sig,
        );
        prop_assert_ne!(wrong.ok(), Some(lc().address()));
    }
}
