//! End-to-end tests of the on-chain modules running on the simulated
//! chain: deposits, channel lifecycle, disputes and fraud proofs.

use parp_chain::{Blockchain, Header, TransferExecutor};
use parp_contracts::{
    build_module_call, confirmation_digest, fndm_address, min_deposit, payment_digest,
    ChannelStatus, FraudVerdict, ModuleCall, ParpExecutor, ParpRequest, ParpResponse, RpcCall,
    DISPUTE_WINDOW_BLOCKS, SLASH_CLIENT_SHARE, SLASH_WITNESS_SHARE,
};
use parp_crypto::{sign, SecretKey};
use parp_primitives::{Address, U256};

struct Env {
    chain: Blockchain,
    executor: ParpExecutor,
    node: SecretKey,
    client: SecretKey,
    node_nonce: u64,
    client_nonce: u64,
}

fn token(n: u64) -> U256 {
    U256::from(n) * U256::from(1_000_000_000_000_000_000u64)
}

impl Env {
    fn new() -> Self {
        let node = SecretKey::from_seed(b"env-full-node");
        let client = SecretKey::from_seed(b"env-light-client");
        let chain = Blockchain::new(vec![
            (node.address(), token(10)),
            (client.address(), token(10)),
        ]);
        Env {
            chain,
            executor: ParpExecutor::new(),
            node,
            client,
            node_nonce: 0,
            client_nonce: 0,
        }
    }

    fn node_call(&mut self, call: ModuleCall, value: U256) {
        let tx = build_module_call(&self.node, self.node_nonce, call, value);
        self.node_nonce += 1;
        self.chain
            .produce_block(vec![tx], &mut self.executor)
            .expect("node call block");
    }

    fn client_call(&mut self, call: ModuleCall, value: U256) {
        let tx = build_module_call(&self.client, self.client_nonce, call, value);
        self.client_nonce += 1;
        self.chain
            .produce_block(vec![tx], &mut self.executor)
            .expect("client call block");
    }

    fn last_receipt_status(&self) -> u64 {
        let receipts = self.chain.receipts(self.chain.height()).unwrap();
        receipts.last().unwrap().status
    }

    fn register_node(&mut self) {
        self.node_call(ModuleCall::Deposit, min_deposit());
        self.node_call(ModuleCall::SetServing { serving: true }, U256::ZERO);
        assert!(self.executor.fndm().is_eligible(&self.node.address()));
    }

    fn open_channel(&mut self, budget: U256) -> u64 {
        let expiry = self.chain.head().header.timestamp + 3600;
        let sig = sign(
            &self.node,
            &confirmation_digest(&self.client.address(), expiry),
        );
        self.client_call(
            ModuleCall::OpenChannel {
                full_node: self.node.address(),
                expiry,
                confirmation_sig: sig,
            },
            budget,
        );
        assert_eq!(self.last_receipt_status(), 1, "open channel must succeed");
        self.executor.cmm().channel_count() as u64 - 1
    }

    fn advance_blocks(&mut self, n: u64) {
        for _ in 0..n {
            self.chain
                .produce_block(Vec::new(), &mut TransferExecutor)
                .unwrap();
        }
    }

    fn payment_sig(&self, channel_id: u64, amount: U256) -> parp_crypto::Signature {
        sign(&self.client, &payment_digest(channel_id, &amount))
    }
}

#[test]
fn full_channel_lifecycle_without_dispute() {
    let mut env = Env::new();
    env.register_node();
    let budget = U256::from(1_000_000u64);
    let id = env.open_channel(budget);
    assert_eq!(
        env.executor.cmm().channel(id).unwrap().status,
        ChannelStatus::Open
    );

    // Off-chain, the client pays up to 400k; the node closes with σ_a.
    let final_amount = U256::from(400_000u64);
    let sig = env.payment_sig(id, final_amount);
    let node_balance_before = env.chain.balance(&env.node.address());
    env.node_call(
        ModuleCall::CloseChannel {
            channel_id: id,
            amount: final_amount,
            payment_sig: sig,
        },
        U256::ZERO,
    );
    assert_eq!(env.last_receipt_status(), 1);
    env.advance_blocks(DISPUTE_WINDOW_BLOCKS);
    env.node_call(ModuleCall::ConfirmClosure { channel_id: id }, U256::ZERO);
    assert_eq!(env.last_receipt_status(), 1);
    assert_eq!(
        env.executor.cmm().channel(id).unwrap().status,
        ChannelStatus::Closed
    );
    let node_balance_after = env.chain.balance(&env.node.address());
    assert_eq!(node_balance_after - node_balance_before, final_amount);
}

#[test]
fn stale_close_is_overridden_by_dispute() {
    let mut env = Env::new();
    env.register_node();
    let id = env.open_channel(U256::from(1_000_000u64));

    // Client closes with a stale (low) amount, trying to underpay.
    let stale = U256::from(10u64);
    let stale_sig = env.payment_sig(id, stale);
    env.client_call(
        ModuleCall::CloseChannel {
            channel_id: id,
            amount: stale,
            payment_sig: stale_sig,
        },
        U256::ZERO,
    );
    // Node answers with the newest signed state.
    let latest = U256::from(900_000u64);
    let latest_sig = env.payment_sig(id, latest);
    env.node_call(
        ModuleCall::SubmitState {
            channel_id: id,
            amount: latest,
            payment_sig: latest_sig,
        },
        U256::ZERO,
    );
    assert_eq!(env.last_receipt_status(), 1);
    assert_eq!(
        env.executor.cmm().channel(id).unwrap().latest_amount,
        latest
    );
    env.advance_blocks(DISPUTE_WINDOW_BLOCKS);
    let before = env.chain.balance(&env.node.address());
    env.node_call(ModuleCall::ConfirmClosure { channel_id: id }, U256::ZERO);
    assert_eq!(env.chain.balance(&env.node.address()) - before, latest);
}

#[test]
fn confirm_before_deadline_reverts() {
    let mut env = Env::new();
    env.register_node();
    let id = env.open_channel(U256::from(1000u64));
    let sig = env.payment_sig(id, U256::from(1u64));
    env.client_call(
        ModuleCall::CloseChannel {
            channel_id: id,
            amount: U256::from(1u64),
            payment_sig: sig,
        },
        U256::ZERO,
    );
    env.node_call(ModuleCall::ConfirmClosure { channel_id: id }, U256::ZERO);
    assert_eq!(env.last_receipt_status(), 0, "early confirm must revert");
    // The channel is still closing, not closed.
    assert!(matches!(
        env.executor.cmm().channel(id).unwrap().status,
        ChannelStatus::Closing { .. }
    ));
}

/// Builds a fraudulent response (amount mismatch) and the matching header,
/// then proves the fraud on-chain.
#[test]
fn fraud_proof_amount_mismatch_slashes_node() {
    let mut env = Env::new();
    env.register_node();
    let id = env.open_channel(U256::from(1_000_000u64));

    let witness = Address::from_low_u64_be(0x3317);
    let head = env.chain.head().header.clone();
    let request = ParpRequest::build(
        &env.client,
        id,
        head.hash(),
        U256::from(500u64),
        RpcCall::BlockNumber,
    );
    // The node echoes a *different* amount — fraud condition 1.
    let mut response = ParpResponse::build(
        &env.node,
        &request,
        head.number,
        parp_rlp::encode_u64(head.number),
        Vec::new(),
    );
    response.amount = U256::from(400u64);
    // Re-sign so the response authenticates as the node's.
    response = resign(&env.node, response);

    let stake_before = env.executor.fndm().deposit_of(&env.node.address());
    assert_eq!(stake_before, min_deposit());
    let client_before = env.chain.balance(&env.client.address());

    submit_fraud(&mut env, &request, &response, witness, &head);
    assert_eq!(env.last_receipt_status(), 1, "fraud proof must be accepted");

    // Slashed and rewarded.
    assert_eq!(
        env.executor.fndm().deposit_of(&env.node.address()),
        U256::ZERO
    );
    // The client receives its slash share plus the unspent channel budget
    // (the forced settlement refunds budget - cs, and cs is still zero).
    let client_after = env.chain.balance(&env.client.address());
    assert_eq!(
        client_after - client_before,
        min_deposit() * U256::from(SLASH_CLIENT_SHARE) / U256::from(100u64)
            + U256::from(1_000_000u64)
    );
    assert_eq!(
        env.chain.balance(&witness),
        min_deposit() * U256::from(SLASH_WITNESS_SHARE) / U256::from(100u64)
    );
    let record = env
        .executor
        .fdm()
        .record(&request.request_hash)
        .expect("fraud recorded");
    assert_eq!(record.verdict, FraudVerdict::AmountMismatch);
    assert_eq!(record.offender, env.node.address());
    // The channel was force-settled.
    assert_eq!(
        env.executor.cmm().channel(id).unwrap().status,
        ChannelStatus::Closed
    );
}

#[test]
fn fraud_proof_stale_height_slashes_node() {
    let mut env = Env::new();
    env.register_node();
    let id = env.open_channel(U256::from(1_000u64));
    env.advance_blocks(5);

    // Client references the current tip; node answers as of an older block.
    let tip = env.chain.head().header.clone();
    let old = env.chain.block(tip.number - 3).unwrap().header.clone();
    let request = ParpRequest::build(
        &env.client,
        id,
        tip.hash(),
        U256::from(10u64),
        RpcCall::BlockNumber,
    );
    let response = ParpResponse::build(
        &env.node,
        &request,
        old.number,
        parp_rlp::encode_u64(old.number),
        Vec::new(),
    );
    submit_fraud(
        &mut env,
        &request,
        &response,
        Address::from_low_u64_be(1),
        &old,
    );
    assert_eq!(env.last_receipt_status(), 1);
    let record = env.executor.fdm().record(&request.request_hash).unwrap();
    assert_eq!(record.verdict, FraudVerdict::StaleBlockHeight);
}

#[test]
fn fraud_proof_wrong_balance_slashes_node() {
    let mut env = Env::new();
    env.register_node();
    let id = env.open_channel(U256::from(1_000u64));
    env.advance_blocks(2);

    let head = env.chain.head().header.clone();
    let target = env.node.address(); // query the node's own balance
    let request = ParpRequest::build(
        &env.client,
        id,
        head.hash(),
        U256::from(10u64),
        RpcCall::GetBalance { address: target },
    );
    // Honest proof, but a *forged* account payload as the result.
    let proof = env.chain.account_proof_at(&target, head.number).unwrap();
    let forged_account = parp_chain::Account {
        nonce: 0,
        balance: U256::from(999_999_999u64),
        ..Default::default()
    };
    let response = ParpResponse::build(
        &env.node,
        &request,
        head.number,
        forged_account.encode(),
        proof,
    );
    submit_fraud(
        &mut env,
        &request,
        &response,
        Address::from_low_u64_be(2),
        &head,
    );
    assert_eq!(env.last_receipt_status(), 1);
    let record = env.executor.fdm().record(&request.request_hash).unwrap();
    assert_eq!(record.verdict, FraudVerdict::InvalidProof);
}

#[test]
fn honest_response_cannot_be_proven_fraudulent() {
    let mut env = Env::new();
    env.register_node();
    let id = env.open_channel(U256::from(1_000u64));
    env.advance_blocks(2);

    let head = env.chain.head().header.clone();
    let target = env.client.address();
    let request = ParpRequest::build(
        &env.client,
        id,
        head.hash(),
        U256::from(10u64),
        RpcCall::GetBalance { address: target },
    );
    // Fully honest response: correct account record + proof.
    let state = env.chain.state_at(head.number).unwrap();
    let account = state.account(&target).unwrap().clone();
    let proof = state.account_proof(&target);
    let response = ParpResponse::build(&env.node, &request, head.number, account.encode(), proof);
    submit_fraud(
        &mut env,
        &request,
        &response,
        Address::from_low_u64_be(3),
        &head,
    );
    assert_eq!(
        env.last_receipt_status(),
        0,
        "fraud proof against an honest response must revert"
    );
    assert_eq!(
        env.executor.fndm().deposit_of(&env.node.address()),
        min_deposit(),
        "honest node keeps its collateral"
    );
}

#[test]
fn header_outside_window_is_unverifiable() {
    let mut env = Env::new();
    env.register_node();
    let id = env.open_channel(U256::from(1_000u64));
    let old_header = env.chain.head().header.clone();
    env.advance_blocks(parp_chain::BLOCK_HASH_WINDOW + 5);

    let request = ParpRequest::build(
        &env.client,
        id,
        old_header.hash(),
        U256::from(1u64),
        RpcCall::BlockNumber,
    );
    let mut response = ParpResponse::build(
        &env.node,
        &request,
        old_header.number,
        parp_rlp::encode_u64(old_header.number),
        Vec::new(),
    );
    response.amount = U256::from(999u64); // would be fraud, if verifiable
    response = resign(&env.node, response);
    submit_fraud(
        &mut env,
        &request,
        &response,
        Address::from_low_u64_be(4),
        &old_header,
    );
    assert_eq!(env.last_receipt_status(), 0, "stale header must revert");
}

fn resign(node: &SecretKey, mut response: ParpResponse) -> ParpResponse {
    let digest = response.expected_hash();
    response.response_sig = sign(node, &digest);
    response
}

fn submit_fraud(
    env: &mut Env,
    request: &ParpRequest,
    response: &ParpResponse,
    witness: Address,
    header: &Header,
) {
    // Any funded account may relay; here the witness path is exercised via
    // the client's account for simplicity of nonce management.
    env.client_call(
        ModuleCall::SubmitFraudProof {
            request: request.encode(),
            response: response.encode(),
            witness,
            header: header.encode(),
        },
        U256::ZERO,
    );
}

#[test]
fn module_state_is_committed_into_state_root() {
    let mut env = Env::new();
    let root_before = env.chain.head().header.state_root;
    env.register_node();
    let root_after = env.chain.head().header.state_root;
    assert_ne!(root_before, root_after);
    // The FNDM account's storage root carries the module commitment.
    let account = env.chain.state().account(&fndm_address()).unwrap();
    assert_eq!(account.storage_root, env.executor.fndm().commitment());
    assert_eq!(account.balance, min_deposit());
}

#[test]
fn gas_costs_reproduce_table4_ordering() {
    // Table IV: fraud proof ≫ open > close > confirm > deposit.
    let mut env = Env::new();
    env.node_call(ModuleCall::Deposit, min_deposit());
    let deposit_gas = env.chain.head().header.gas_used;
    env.node_call(ModuleCall::SetServing { serving: true }, U256::ZERO);

    let expiry = env.chain.head().header.timestamp + 3600;
    let sig = sign(
        &env.node,
        &confirmation_digest(&env.client.address(), expiry),
    );
    env.client_call(
        ModuleCall::OpenChannel {
            full_node: env.node.address(),
            expiry,
            confirmation_sig: sig,
        },
        U256::from(1_000_000u64),
    );
    let open_gas = env.chain.head().header.gas_used;
    let id = env.executor.cmm().channel_count() as u64 - 1;

    let amount = U256::from(1_000u64);
    let pay_sig = env.payment_sig(id, amount);
    env.node_call(
        ModuleCall::CloseChannel {
            channel_id: id,
            amount,
            payment_sig: pay_sig,
        },
        U256::ZERO,
    );
    let close_gas = env.chain.head().header.gas_used;

    env.advance_blocks(DISPUTE_WINDOW_BLOCKS);
    env.node_call(ModuleCall::ConfirmClosure { channel_id: id }, U256::ZERO);
    let confirm_gas = env.chain.head().header.gas_used;

    // A second channel for the fraud path.
    let id2 = env.open_channel(U256::from(1_000u64));
    let head = env.chain.head().header.clone();
    let request = ParpRequest::build(
        &env.client,
        id2,
        head.hash(),
        U256::from(5u64),
        RpcCall::GetBalance {
            address: env.client.address(),
        },
    );
    let state = env.chain.state_at(head.number).unwrap();
    let proof = state.account_proof(&env.client.address());
    let forged = parp_chain::Account::with_balance(U256::from(1u64));
    let response = ParpResponse::build(&env.node, &request, head.number, forged.encode(), proof);
    submit_fraud(
        &mut env,
        &request,
        &response,
        Address::from_low_u64_be(7),
        &head,
    );
    assert_eq!(env.last_receipt_status(), 1);
    let fraud_gas = env.chain.head().header.gas_used;

    assert!(
        fraud_gas > open_gas
            && open_gas > close_gas
            && close_gas > confirm_gas
            && confirm_gas > deposit_gas,
        "Table IV ordering violated: fraud={fraud_gas} open={open_gas} \
         close={close_gas} confirm={confirm_gas} deposit={deposit_gas}"
    );
    // The paper reports 45 238 gas for a deposit; ours must be in range.
    assert!(
        (30_000..70_000).contains(&deposit_gas),
        "deposit gas {deposit_gas}"
    );
    assert!(
        (120_000..300_000).contains(&open_gas),
        "open gas {open_gas}"
    );
}
