//! The marketplace scenario: provider churn (joins, voluntary exits),
//! a cheapest-but-fraudulent provider that gets slashed mid-run, and a
//! gateway-driven client that must finish its workload with zero
//! invalid results accepted.
//!
//! This is the end-to-end exercise of everything the gateway exists
//! for: registry discovery over a changing serving set, price-driven
//! selection walking straight into the fraudster's trap, §V-D
//! classification catching the forgery, on-chain slashing through a
//! witness, live failover with replay, and periodic quorum reads
//! cross-checking the surviving providers.

use crate::gateway::{FailoverCause, Gateway, GatewayConfig};
use crate::policy::SelectionPolicy;
use parp_contracts::{ModuleCall, RpcCall};
use parp_core::Misbehavior;
use parp_net::{Network, ProviderAggregate};
use parp_primitives::{Address, U256};
use parp_telemetry::{MetricsSnapshot, Telemetry};

/// Tuning for [`run_marketplace`].
#[derive(Debug, Clone, Copy)]
pub struct MarketplaceConfig {
    /// Initial providers (price ladder: provider *i* advertises
    /// `10·(i+1)` wei per call, so provider 0 is the cheapest).
    pub providers: usize,
    /// Whether the cheapest provider forges results (the trap a
    /// price-driven policy walks into).
    pub fraudulent_cheapest: bool,
    /// Single-read workload length.
    pub calls: usize,
    /// Batched reads appended after the single-read workload.
    pub batches: usize,
    /// Calls per appended batch.
    pub batch_size: usize,
    /// Every `quorum_every`-th single read goes out as a quorum read
    /// (0 disables quorum reads).
    pub quorum_every: usize,
    /// Quorum fan-out width.
    pub quorum: usize,
    /// Provider-selection policy under test.
    pub policy: SelectionPolicy,
    /// Mid-run churn: one provider joins, the most expensive initial
    /// provider voluntarily exits.
    pub churn: bool,
}

impl Default for MarketplaceConfig {
    fn default() -> Self {
        MarketplaceConfig {
            providers: 4,
            fraudulent_cheapest: true,
            calls: 24,
            batches: 2,
            batch_size: 8,
            quorum_every: 8,
            quorum: 3,
            policy: SelectionPolicy::Cheapest,
            churn: true,
        }
    }
}

/// What a marketplace run produced.
#[derive(Debug, Clone)]
pub struct MarketplaceReport {
    /// Verified payloads returned to the application.
    pub results: usize,
    /// Returned payloads that did **not** match the chain's ground
    /// truth — must be 0: the gateway only surfaces verified results.
    pub wrong_payloads: usize,
    /// Workload items that could not be completed at all.
    pub errors: usize,
    /// Failovers triggered by a §V-D fraud classification.
    pub fraud_detected: usize,
    /// Fraud proofs accepted on-chain.
    pub fraud_proofs_accepted: u64,
    /// Whether the cheapest provider ended the run slashed on-chain.
    pub cheapest_slashed: bool,
    /// Total failovers (fraud + invalid + refusals + transient causes).
    pub failovers: usize,
    /// Failovers broken down by cause label, in a fixed order
    /// (refused / invalid / fraud / timeout / corruption / crash).
    pub failovers_by_cause: Vec<(&'static str, usize)>,
    /// Time-to-recover for each completed failover (µs of simulated
    /// clock between failure detection and the next verified response).
    pub recoveries_us: Vec<u64>,
    /// Quorum reads completed.
    pub quorum_reads: usize,
    /// Quorum reads whose verified votes disagreed.
    pub quorum_disagreements: usize,
    /// Whether every per-channel committed-payment sequence stayed
    /// monotone across the whole run, channel switches included.
    pub payments_monotone: bool,
    /// Providers that joined mid-run.
    pub providers_joined: usize,
    /// Providers that voluntarily exited mid-run.
    pub providers_exited: usize,
    /// Serving-registry size at the end of the run.
    pub final_registry_len: usize,
    /// Per-provider exchange aggregates (calls, failures, p50/p99).
    pub provider_stats: Vec<(Address, ProviderAggregate)>,
    /// End-of-run metrics snapshot from the run's unified telemetry
    /// registry (net, runtime and gateway series together).
    pub metrics: MetricsSnapshot,
    /// The run's telemetry handle: its tracer holds the full
    /// request-lifecycle trace (exchange spans, quorum legs, and the
    /// fraud → slash → reselect → replay failover sequence), ready for
    /// [`parp_telemetry::Tracer::export_chrome_json`].
    pub telemetry: Telemetry,
}

/// Runs the marketplace scenario and reports what happened.
///
/// # Panics
///
/// Panics when the simulation itself fails (chain errors); workload
/// failures are reported, not panicked.
pub fn run_marketplace(config: &MarketplaceConfig) -> MarketplaceReport {
    let telemetry = Telemetry::with_tracing();
    let mut net = Network::new();
    net.attach_telemetry(&telemetry);
    let providers = config.providers.max(2);
    let mut ids = Vec::with_capacity(providers);
    for i in 0..providers {
        let price = U256::from(10 * (i as u64 + 1));
        ids.push(net.spawn_node(format!("mkt-node-{i}").as_bytes(), price));
    }
    let cheapest_addr = net.node(ids[0]).address();
    if config.fraudulent_cheapest {
        net.node_mut(ids[0])
            .set_misbehavior(Misbehavior::ForgedResult);
    }

    // A funded account set for the read workload; their balances never
    // change after funding, so the chain is its own ground truth.
    let targets: Vec<Address> = (0..16)
        .map(|i| Address::from_low_u64_be(0xFEED_0000 + i))
        .collect();
    net.fund_many(&targets);
    let expected: Vec<Vec<u8>> = targets
        .iter()
        .map(|t| {
            net.chain()
                .state()
                .account(t)
                .map(parp_chain::Account::encode)
                .unwrap_or_default()
        })
        .collect();

    let client = net.spawn_client(b"mkt-client", U256::from(10u64));
    let mut gateway = Gateway::new(
        client,
        GatewayConfig {
            policy: config.policy,
            quorum: config.quorum,
            ..GatewayConfig::default()
        },
    );
    gateway.attach_telemetry(&telemetry);

    let mut report = MarketplaceReport {
        results: 0,
        wrong_payloads: 0,
        errors: 0,
        fraud_detected: 0,
        fraud_proofs_accepted: 0,
        cheapest_slashed: false,
        failovers: 0,
        failovers_by_cause: Vec::new(),
        recoveries_us: Vec::new(),
        quorum_reads: 0,
        quorum_disagreements: 0,
        payments_monotone: true,
        providers_joined: 0,
        providers_exited: 0,
        final_registry_len: 0,
        provider_stats: Vec::new(),
        metrics: MetricsSnapshot::default(),
        telemetry: telemetry.clone(),
    };

    for i in 0..config.calls {
        // Mid-run churn: a joiner undercuts most of the ladder, the most
        // expensive initial provider bows out. The gateway notices both
        // on its next directory refresh — no client restart.
        if config.churn && i == config.calls / 2 {
            net.spawn_node(b"mkt-node-joiner", U256::from(15u64));
            report.providers_joined += 1;
            let exiting = ids[providers - 1];
            let key = *net.node(exiting).secret();
            if net
                .submit_module_call(&key, ModuleCall::SetServing { serving: false }, U256::ZERO)
                .unwrap_or(false)
            {
                report.providers_exited += 1;
            }
        }
        let index = i % targets.len();
        let call = RpcCall::GetBalance {
            address: targets[index],
        };
        let quorum_turn =
            config.quorum_every > 0 && i % config.quorum_every == config.quorum_every - 1;
        let payload = if quorum_turn {
            // k = 0: use the gateway's configured quorum width.
            match gateway.quorum_call(&mut net, call, 0) {
                Ok(outcome) => {
                    report.quorum_reads += 1;
                    if !outcome.agreed {
                        report.quorum_disagreements += 1;
                    }
                    Some(outcome.result)
                }
                Err(_) => None,
            }
        } else {
            gateway.call(&mut net, call).ok()
        };
        match payload {
            Some(bytes) => {
                report.results += 1;
                if bytes != expected[index] {
                    report.wrong_payloads += 1;
                }
            }
            None => report.errors += 1,
        }
    }

    // Batched tail: the same marketplace guarantees hold for the batch
    // pipeline (a bad item condemns the batch; the batch replays whole).
    for _ in 0..config.batches {
        let calls: Vec<RpcCall> = (0..config.batch_size)
            .map(|j| RpcCall::GetBalance {
                address: targets[j % targets.len()],
            })
            .collect();
        match gateway.call_batch(&mut net, calls) {
            Ok(results) => {
                for (j, bytes) in results.iter().enumerate() {
                    report.results += 1;
                    if bytes != &expected[j % targets.len()] {
                        report.wrong_payloads += 1;
                    }
                }
            }
            Err(_) => report.errors += 1,
        }
    }

    report.fraud_detected = gateway
        .failovers()
        .iter()
        .filter(|f| matches!(f.cause, FailoverCause::Fraud(_)))
        .count();
    report.fraud_proofs_accepted = gateway.fraud_proofs_submitted();
    report.cheapest_slashed = net
        .executor()
        .fndm()
        .record(&cheapest_addr)
        .map(|r| r.slash_count > 0)
        .unwrap_or(false);
    report.failovers = gateway.failovers().len();
    report.failovers_by_cause = gateway.failovers_by_cause();
    report.recoveries_us = gateway
        .failovers()
        .iter()
        .filter_map(|f| f.time_to_recover_us())
        .collect();
    report.payments_monotone = gateway.payments_monotone();
    report.final_registry_len = net.registry().len();
    report.provider_stats = net.provider_stats_all();
    report.metrics = telemetry.registry.snapshot();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_marketplace_survives_the_fraudulent_cheapest() {
        let config = MarketplaceConfig::default();
        let report = run_marketplace(&config);
        // The whole workload finished, and nothing unverified leaked.
        let expected_results = config.calls + config.batches * config.batch_size;
        assert_eq!(report.results, expected_results);
        assert_eq!(report.errors, 0);
        assert_eq!(report.wrong_payloads, 0, "only verified payloads surface");
        // The cheapest provider's forgery was §V-D-classified, proven,
        // and slashed; the gateway recovered.
        assert!(report.fraud_detected >= 1);
        assert!(report.fraud_proofs_accepted >= 1);
        assert!(report.cheapest_slashed);
        assert!(report.failovers >= 1);
        assert!(!report.recoveries_us.is_empty());
        assert!(report.recoveries_us.iter().all(|&us| us > 0));
        // Payments stayed monotone across the channel switch.
        assert!(report.payments_monotone);
        // Churn happened and the registry reflects it: +1 joiner,
        // -1 voluntary exit, -1 slashed.
        assert_eq!(report.providers_joined, 1);
        assert_eq!(report.providers_exited, 1);
        assert_eq!(report.final_registry_len, config.providers - 1);
        assert!(report.quorum_reads > 0);
        assert_eq!(report.quorum_disagreements, 0);
        // The unified registry saw the run: gateway lifecycle counters
        // and the net exchange series are both present and non-zero.
        let served = report
            .metrics
            .counter("parp_gateway_calls_served_total", &[])
            .expect("gateway counter registered");
        assert!(served >= report.results as u64);
        assert!(
            report
                .metrics
                .counter("parp_gateway_fraud_proofs_total", &[])
                .unwrap_or(0)
                >= 1
        );
        // The tracer captured the failover lifecycle on the sim clock.
        let events = report.telemetry.tracer.events();
        for name in ["fraud_detected", "slash", "failover", "reselect", "replay"] {
            assert!(
                events.iter().any(|e| e.name == name),
                "trace must contain a {name:?} instant"
            );
        }
        assert!(events.iter().any(|e| e.name == "failover_recovery"));
    }

    #[test]
    fn honest_marketplace_never_fails_over() {
        let report = run_marketplace(&MarketplaceConfig {
            fraudulent_cheapest: false,
            churn: false,
            quorum_every: 4,
            ..MarketplaceConfig::default()
        });
        assert_eq!(report.errors, 0);
        assert_eq!(report.failovers, 0);
        assert_eq!(report.fraud_detected, 0);
        assert_eq!(report.wrong_payloads, 0);
        assert!(report.payments_monotone);
        assert_eq!(report.quorum_disagreements, 0);
    }

    #[test]
    fn all_policies_complete_the_workload() {
        for policy in [
            SelectionPolicy::Cheapest,
            SelectionPolicy::Fastest,
            SelectionPolicy::ReputationWeighted,
            SelectionPolicy::RoundRobin,
        ] {
            let report = run_marketplace(&MarketplaceConfig {
                policy,
                calls: 12,
                batches: 1,
                ..MarketplaceConfig::default()
            });
            assert_eq!(report.errors, 0, "{policy:?} must finish");
            assert_eq!(report.wrong_payloads, 0, "{policy:?} must stay honest");
            assert!(report.payments_monotone, "{policy:?} payments monotone");
        }
    }
}
