//! Registry-driven provider discovery: the client-side mirror of the
//! on-chain FNDM serving registry (paper §IV-A), annotated with each
//! provider's advertised price.

use parp_net::{Network, NodeId};
use parp_primitives::{Address, U256};

/// One serving provider as the client sees it: the on-chain standing
/// (deposit, slash history) plus the off-chain advertisement (price per
/// call) and the simulation endpoint to reach it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProviderInfo {
    /// The provider's registry address (its on-chain identity).
    pub address: Address,
    /// The simulation endpoint serving for this address.
    pub node_id: NodeId,
    /// Collateral currently locked in the FNDM.
    pub deposit: U256,
    /// Advertised price per call in wei.
    pub price_per_call: U256,
    /// Times this identity has been slashed (ever).
    pub slash_count: u64,
}

/// The client's view of the serving marketplace, refreshed from the
/// on-chain registry.
///
/// Entries are sorted by address (the registry's own order) and
/// duplicate-free — the FNDM keys records by address and the network
/// refuses address collisions at spawn, so each entry is one distinct
/// identity. Registry addresses with no reachable serving endpoint are
/// skipped: a deposit alone does not serve traffic.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    providers: Vec<ProviderInfo>,
}

impl Directory {
    /// An empty directory (call [`Directory::refresh`] to populate).
    pub fn new() -> Self {
        Directory::default()
    }

    /// Discovers the current serving set from `net`'s on-chain registry.
    pub fn discover(net: &Network) -> Self {
        let mut directory = Directory::new();
        directory.refresh(net);
        directory
    }

    /// Re-reads the registry: providers that joined appear, providers
    /// that exited (voluntarily or by slashing) disappear.
    pub fn refresh(&mut self, net: &Network) {
        self.providers = net
            .executor()
            .fndm()
            .registry_records()
            .into_iter()
            .filter_map(|(address, record)| {
                let node_id = net.node_id_by_address(&address)?;
                Some(ProviderInfo {
                    address,
                    node_id,
                    deposit: record.deposit,
                    price_per_call: net.node(node_id).price_per_call(),
                    slash_count: record.slash_count,
                })
            })
            .collect();
    }

    /// The discovered providers, sorted by address.
    pub fn providers(&self) -> &[ProviderInfo] {
        &self.providers
    }

    /// Lookup by registry address.
    pub fn get(&self, address: &Address) -> Option<&ProviderInfo> {
        self.providers.iter().find(|p| p.address == *address)
    }

    /// Number of discovered providers.
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// Whether the registry listed no reachable provider.
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_contracts::ModuleCall;

    #[test]
    fn discovers_and_tracks_churn() {
        let mut net = Network::new();
        let a = net.spawn_node(b"dir-a", U256::from(10u64));
        let _b = net.spawn_node(b"dir-b", U256::from(20u64));
        let mut directory = Directory::discover(&net);
        assert_eq!(directory.len(), 2);
        let a_addr = net.node(a).address();
        assert_eq!(
            directory.get(&a_addr).unwrap().price_per_call,
            U256::from(10u64)
        );
        assert_eq!(directory.get(&a_addr).unwrap().node_id, a);
        assert!(directory.get(&a_addr).unwrap().deposit >= parp_contracts::min_deposit());

        // A voluntary exit disappears on refresh.
        let a_key = *net.node(a).secret();
        assert!(net
            .submit_module_call(
                &a_key,
                ModuleCall::SetServing { serving: false },
                U256::ZERO
            )
            .unwrap());
        directory.refresh(&net);
        assert_eq!(directory.len(), 1);
        assert!(directory.get(&a_addr).is_none());

        // A join appears on refresh.
        net.spawn_node(b"dir-c", U256::from(30u64));
        directory.refresh(&net);
        assert_eq!(directory.len(), 2);
    }
}
