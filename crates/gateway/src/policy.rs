//! Pluggable provider-selection strategies over the directory and the
//! reputation book.

use crate::directory::ProviderInfo;
use crate::reputation::ReputationBook;
use parp_primitives::Address;

/// How the gateway picks the provider for the next exchange.
///
/// All strategies are deterministic given the same candidate set and
/// book — the simulations and tests depend on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Lowest advertised price per call (ties broken by address). The
    /// economically rational default — and the policy the marketplace
    /// scenario stresses, because the cheapest provider is exactly the
    /// one a fraudster would impersonate to attract traffic.
    Cheapest,
    /// Lowest latency EWMA. Untried providers have EWMA 0 and are
    /// explored first; once measured, traffic settles on the fastest.
    Fastest,
    /// Highest reputation score (ties broken by price, then address).
    #[default]
    ReputationWeighted,
    /// Rotate over the candidates in address order — the profiling
    /// countermeasure of "Time Tells All": no single provider observes
    /// the client's whole request stream.
    RoundRobin,
}

impl SelectionPolicy {
    /// Picks one provider out of `candidates` (already filtered to the
    /// eligible set). `cursor` is the round-robin rotation state, owned
    /// by the caller and advanced only by [`SelectionPolicy::RoundRobin`].
    pub fn select(
        &self,
        candidates: &[&ProviderInfo],
        book: &ReputationBook,
        cursor: &mut usize,
    ) -> Option<Address> {
        if candidates.is_empty() {
            return None;
        }
        match self {
            SelectionPolicy::Cheapest => candidates
                .iter()
                .min_by_key(|p| (p.price_per_call, p.address))
                .map(|p| p.address),
            SelectionPolicy::Fastest => candidates
                .iter()
                .min_by_key(|p| (book.get(&p.address).latency_ewma_us, p.address))
                .map(|p| p.address),
            SelectionPolicy::ReputationWeighted => candidates
                .iter()
                .max_by(|a, b| {
                    let (sa, sb) = (book.score(&a.address), book.score(&b.address));
                    sa.partial_cmp(&sb)
                        .expect("scores are finite")
                        // Prefer cheaper, then lower address, on equal
                        // score; max_by keeps the *last* maximal element,
                        // so order the comparison accordingly.
                        .then_with(|| b.price_per_call.cmp(&a.price_per_call))
                        .then_with(|| b.address.cmp(&a.address))
                })
                .map(|p| p.address),
            SelectionPolicy::RoundRobin => {
                let pick = candidates[*cursor % candidates.len()].address;
                *cursor = cursor.wrapping_add(1);
                Some(pick)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parp_net::NodeId;
    use parp_primitives::U256;

    fn provider(n: u64, price: u64) -> ProviderInfo {
        ProviderInfo {
            address: Address::from_low_u64_be(n),
            node_id: NodeId(n as usize),
            deposit: U256::from(1u64) << 60,
            price_per_call: U256::from(price),
            slash_count: 0,
        }
    }

    #[test]
    fn policies_pick_as_named() {
        let providers = [provider(1, 30), provider(2, 10), provider(3, 20)];
        let candidates: Vec<&ProviderInfo> = providers.iter().collect();
        let mut book = ReputationBook::new();
        // Provider 3 is measured fast and reliable; provider 2 flaky.
        for _ in 0..5 {
            book.entry(Address::from_low_u64_be(3)).record_valid(50);
        }
        book.entry(Address::from_low_u64_be(2)).record_valid(5_000);
        book.entry(Address::from_low_u64_be(2)).record_refused();
        book.entry(Address::from_low_u64_be(2)).record_refused();
        book.entry(Address::from_low_u64_be(1)).record_valid(9_000);
        let mut cursor = 0;

        assert_eq!(
            SelectionPolicy::Cheapest.select(&candidates, &book, &mut cursor),
            Some(Address::from_low_u64_be(2))
        );
        assert_eq!(
            SelectionPolicy::Fastest.select(&candidates, &book, &mut cursor),
            Some(Address::from_low_u64_be(3))
        );
        assert_eq!(
            SelectionPolicy::ReputationWeighted.select(&candidates, &book, &mut cursor),
            Some(Address::from_low_u64_be(3))
        );
        // Round-robin cycles all three.
        let mut seen = Vec::new();
        for _ in 0..3 {
            seen.push(
                SelectionPolicy::RoundRobin
                    .select(&candidates, &book, &mut cursor)
                    .unwrap(),
            );
        }
        seen.sort();
        assert_eq!(
            seen,
            vec![
                Address::from_low_u64_be(1),
                Address::from_low_u64_be(2),
                Address::from_low_u64_be(3)
            ]
        );
        assert_eq!(
            SelectionPolicy::Cheapest.select(&[], &book, &mut cursor),
            None
        );
    }
}
