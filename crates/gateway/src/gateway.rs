//! The gateway orchestrator: N concurrent channels, policy-driven
//! routing, live failover with fraud submission, and quorum reads.

use crate::directory::{Directory, ProviderInfo};
use crate::policy::SelectionPolicy;
use crate::reputation::ReputationBook;
use crate::resilience::{CircuitBreaker, ResilienceConfig};
use parp_contracts::{FraudVerdict, RpcCall};
use parp_core::{ClientState, InvalidReason, LightClient, ProcessBatchOutcome, ProcessOutcome};
use parp_net::{Network, NodeId, SimError};
use parp_primitives::{Address, U256};
use parp_telemetry::{ArgValue, Counter, Telemetry, Tracer};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// Tuning for a [`Gateway`].
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// How the next provider is chosen.
    pub policy: SelectionPolicy,
    /// Budget locked into each per-provider channel on connect.
    pub channel_budget: U256,
    /// Providers a single logical call may burn through before the
    /// gateway gives up.
    pub max_failovers: usize,
    /// Fan-out width [`Gateway::quorum_call`] uses when called with
    /// `k = 0`.
    pub quorum: usize,
    /// Fault-handling knobs: deadlines, retries, circuit breakers,
    /// hedged legs, and the degraded-read escape hatch.
    pub resilience: ResilienceConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            policy: SelectionPolicy::default(),
            channel_budget: U256::from(1u64) << 40,
            max_failovers: 8,
            quorum: 3,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Why a failover fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailoverCause {
    /// The provider refused to serve (or the exchange failed locally).
    Refused,
    /// The response was classified invalid (§V-D: walk away).
    Invalid(InvalidReason),
    /// The response was provably fraudulent.
    Fraud(FraudVerdict),
    /// The exchange exceeded its deadline (message dropped, provider
    /// partitioned, or response too slow). Transient: the provider may
    /// be re-selected once its circuit breaker re-admits it.
    Timeout,
    /// The response frame arrived corrupted (wire payload failed the
    /// signature check) — transport damage, not a provable lie.
    /// Transient, like [`FailoverCause::Timeout`].
    Corruption,
    /// The provider was down (connection refused mid-schedule).
    /// Transient — crashed providers restart.
    Crash,
}

/// One recorded failover: which provider failed, why, whether the fraud
/// evidence stuck on-chain, and how long until service resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverEvent {
    /// The abandoned provider.
    pub failed_provider: Address,
    /// What triggered the switch.
    pub cause: FailoverCause,
    /// Whether a fraud proof was submitted and accepted on-chain.
    pub slashed: bool,
    /// Simulated clock when the failure was detected (µs).
    pub detected_at_us: u64,
    /// Simulated clock when the next valid response completed (µs);
    /// `None` while recovery is still in progress.
    pub recovered_at_us: Option<u64>,
}

impl FailoverEvent {
    /// Time from failure detection to the next verified response (µs).
    pub fn time_to_recover_us(&self) -> Option<u64> {
        self.recovered_at_us
            .map(|r| r.saturating_sub(self.detected_at_us))
    }
}

/// One provider's vote in a quorum read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumVote {
    /// The provider that answered.
    pub provider: Address,
    /// Its verified `R(γ)` payload.
    pub result: Vec<u8>,
}

/// Outcome of a quorum read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumOutcome {
    /// The majority payload (every verified vote agrees when `agreed`).
    pub result: Vec<u8>,
    /// Whether all verified votes were byte-identical.
    pub agreed: bool,
    /// `true` when quorum `k` was unreachable and the gateway returned
    /// a best-effort read with fewer votes (only under
    /// [`ResilienceConfig::allow_degraded`]). Degraded results carry
    /// weaker cross-check guarantees — the caller must decide whether
    /// to trust them.
    pub degraded: bool,
    /// Every verified vote, in the order the providers were queried.
    pub votes: Vec<QuorumVote>,
}

/// Gateway-level failures.
#[derive(Debug)]
pub enum GatewayError {
    /// The registry lists no eligible provider.
    NoProviders,
    /// Every eligible provider failed for this call.
    FailoversExhausted {
        /// Providers tried before giving up.
        attempts: usize,
    },
    /// A quorum read could not reach `needed` distinct providers.
    QuorumUnreachable {
        /// Fan-out width requested.
        needed: usize,
        /// Verified votes actually collected.
        collected: usize,
    },
    /// The call's total simulated-time budget
    /// ([`ResilienceConfig::call_budget_us`]) ran out before a verified
    /// result was obtained — the bounded alternative to hanging.
    Deadline {
        /// The configured budget (µs, simulated).
        budget_us: u64,
        /// Simulated time actually burned before giving up (µs).
        waited_us: u64,
    },
    /// An unrecoverable simulation error.
    Sim(SimError),
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::NoProviders => write!(f, "no eligible serving provider in the registry"),
            GatewayError::FailoversExhausted { attempts } => {
                write!(f, "all {attempts} tried providers failed")
            }
            GatewayError::QuorumUnreachable { needed, collected } => {
                write!(
                    f,
                    "quorum of {needed} unreachable ({collected} verified votes)"
                )
            }
            GatewayError::Deadline {
                budget_us,
                waited_us,
            } => {
                write!(
                    f,
                    "call budget of {budget_us} µs exhausted after {waited_us} µs"
                )
            }
            GatewayError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl Error for GatewayError {}

impl From<SimError> for GatewayError {
    fn from(e: SimError) -> Self {
        GatewayError::Sim(e)
    }
}

/// A multi-provider PARP client: one [`LightClient`] identity, one
/// payment channel per provider, and the orchestration the paper's
/// accountability model makes safe — spread traffic over permissionless
/// providers, score them, and switch the moment one misbehaves.
///
/// The flow per logical call:
///
/// 1. refresh the [`Directory`] from the on-chain registry and the
///    [`ReputationBook`] from observed slash events;
/// 2. pick a provider via the configured [`SelectionPolicy`];
/// 3. open (or reuse) the channel with it and run the exchange;
/// 4. on a §V-D *fraud* classification: submit the evidence through a
///    witness (slashing the provider on-chain), abandon the channel,
///    re-select, and replay the call; on *invalid* or a refusal: abandon
///    and replay without the on-chain step.
///
/// Only verified results are ever returned — an invalid or fraudulent
/// response is never surfaced as data.
#[derive(Debug)]
pub struct Gateway {
    client: LightClient,
    config: GatewayConfig,
    directory: Directory,
    reputation: ReputationBook,
    rr_cursor: usize,
    banned: HashSet<Address>,
    /// Per-provider circuit breakers (transient-failure routing; a
    /// banned provider never reaches its breaker again).
    breakers: HashMap<Address, CircuitBreaker>,
    failovers: Vec<FailoverEvent>,
    /// Index into `failovers` of the event still awaiting recovery.
    pending_recovery: Option<usize>,
    /// Per-provider committed-payment trajectory (monotonicity
    /// witness). Entries are *cumulative across channels*: when a
    /// channel is abandoned its committed spend folds into
    /// `payment_epoch`, so reconnecting after a transient failure never
    /// looks like a payment regression.
    payments: HashMap<Address, Vec<U256>>,
    /// Committed spend of abandoned channels, per provider.
    payment_epoch: HashMap<Address, U256>,
    payments_monotone: bool,
    calls_served: u64,
    fraud_proofs_submitted: u64,
    retries: u64,
    hedges_fired: u64,
    degraded_reads: u64,
    telemetry: Option<Telemetry>,
    metrics: Option<GatewayMetrics>,
}

/// Registry-backed counters for the gateway's own lifecycle events.
#[derive(Debug, Clone)]
struct GatewayMetrics {
    calls_served: Counter,
    failovers: Counter,
    fraud_proofs: Counter,
    quorum_reads: Counter,
    retries: Counter,
    hedges: Counter,
    degraded_reads: Counter,
}

impl Gateway {
    /// Wraps a (typically fresh) client identity.
    pub fn new(client: LightClient, config: GatewayConfig) -> Self {
        Gateway {
            client,
            config,
            directory: Directory::new(),
            reputation: ReputationBook::new(),
            rr_cursor: 0,
            banned: HashSet::new(),
            breakers: HashMap::new(),
            failovers: Vec::new(),
            pending_recovery: None,
            payments: HashMap::new(),
            payment_epoch: HashMap::new(),
            payments_monotone: true,
            calls_served: 0,
            fraud_proofs_submitted: 0,
            retries: 0,
            hedges_fired: 0,
            degraded_reads: 0,
            telemetry: None,
            metrics: None,
        }
    }

    /// Wires the gateway's lifecycle counters into `telemetry`'s
    /// registry and its failover machinery into the tracer: every
    /// failover becomes `fraud_detected` → `slash` → `failover` →
    /// `reselect` → `replay` instants on the client track, and each
    /// completed [`FailoverEvent`] is emitted as a `failover_recovery`
    /// span whose duration is exactly
    /// [`FailoverEvent::time_to_recover_us`].
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let registry = &telemetry.registry;
        self.metrics = Some(GatewayMetrics {
            calls_served: registry.counter("parp_gateway_calls_served_total", &[]),
            failovers: registry.counter("parp_gateway_failovers_total", &[]),
            fraud_proofs: registry.counter("parp_gateway_fraud_proofs_total", &[]),
            quorum_reads: registry.counter("parp_gateway_quorum_reads_total", &[]),
            retries: registry.counter("parp_gateway_retries_total", &[]),
            hedges: registry.counter("parp_gateway_hedges_total", &[]),
            degraded_reads: registry.counter("parp_gateway_degraded_reads_total", &[]),
        });
        self.telemetry = Some(telemetry.clone());
    }

    /// The tracer, only when attached *and* live.
    fn tracer(&self) -> Option<&Tracer> {
        self.telemetry
            .as_ref()
            .map(|t| &t.tracer)
            .filter(|t| t.enabled())
    }

    /// The wrapped client.
    pub fn client(&self) -> &LightClient {
        &self.client
    }

    /// The current provider directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// The reputation book.
    pub fn reputation(&self) -> &ReputationBook {
        &self.reputation
    }

    /// Every failover recorded so far.
    pub fn failovers(&self) -> &[FailoverEvent] {
        &self.failovers
    }

    /// Verified results returned to the caller.
    pub fn calls_served(&self) -> u64 {
        self.calls_served
    }

    /// Fraud proofs submitted and accepted on-chain.
    pub fn fraud_proofs_submitted(&self) -> u64 {
        self.fraud_proofs_submitted
    }

    /// In-place retries after timeouts (same provider, deterministic
    /// jittered backoff applied between attempts).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Hedged quorum legs launched (a spare leg fired because an
    /// original leg failed or exceeded its EWMA-derived threshold).
    pub fn hedges_fired(&self) -> u64 {
        self.hedges_fired
    }

    /// Quorum reads that returned best-effort results below the
    /// requested width (only under
    /// [`ResilienceConfig::allow_degraded`]).
    pub fn degraded_reads(&self) -> u64 {
        self.degraded_reads
    }

    /// Circuit-breaker transitions accumulated across all providers:
    /// `(opens, half_opens)`.
    pub fn breaker_transitions(&self) -> (u64, u64) {
        let mut opens = 0u64;
        let mut half_opens = 0u64;
        for breaker in self.breakers.values() {
            opens += breaker.opens;
            half_opens += breaker.half_opens;
        }
        (opens, half_opens)
    }

    /// Failover counts broken down by cause, in a fixed label order
    /// (stable across runs, for reports and benches).
    pub fn failovers_by_cause(&self) -> Vec<(&'static str, usize)> {
        let mut counts = [0usize; 6];
        for event in &self.failovers {
            let index = match &event.cause {
                FailoverCause::Refused => 0,
                FailoverCause::Invalid(_) => 1,
                FailoverCause::Fraud(_) => 2,
                FailoverCause::Timeout => 3,
                FailoverCause::Corruption => 4,
                FailoverCause::Crash => 5,
            };
            counts[index] += 1;
        }
        [
            "refused",
            "invalid",
            "fraud",
            "timeout",
            "corruption",
            "crash",
        ]
        .into_iter()
        .zip(counts)
        .collect()
    }

    /// Whether every per-provider committed payment sequence has been
    /// non-decreasing across the gateway's whole life — including
    /// across channel switches (each new channel starts a fresh
    /// sequence; no sequence ever regressed).
    pub fn payments_monotone(&self) -> bool {
        self.payments_monotone
    }

    /// Per-provider committed-payment trajectories (final committed
    /// amount is the last element). Amounts are cumulative across
    /// channel switches: abandoned channels' spend stays counted.
    pub fn payment_trajectories(&self) -> &HashMap<Address, Vec<U256>> {
        &self.payments
    }

    /// Re-reads the registry and on-chain slash state.
    pub fn refresh(&mut self, net: &Network) {
        self.directory.refresh(net);
        let addresses: Vec<Address> = self
            .directory
            .providers()
            .iter()
            .map(|p| p.address)
            .collect();
        self.reputation
            .observe_chain(net.executor(), addresses.iter());
    }

    /// The currently selectable provider set: discovered, not banned by
    /// this gateway, never slashed on-chain, and trusted by the book.
    fn eligible(&self) -> Vec<&ProviderInfo> {
        self.directory
            .providers()
            .iter()
            .filter(|p| {
                !self.banned.contains(&p.address)
                    && p.slash_count == 0
                    && self.reputation.get(&p.address).trustworthy()
            })
            .collect()
    }

    /// Picks the next provider under the configured policy, excluding
    /// `skip` and anyone whose circuit breaker is open at simulated
    /// time `now_us` (an open breaker whose cooldown has elapsed
    /// half-opens here and admits one probe).
    fn select_excluding(&mut self, skip: &HashSet<Address>, now_us: u64) -> Option<Address> {
        let candidates: Vec<ProviderInfo> = self
            .eligible()
            .into_iter()
            .filter(|p| !skip.contains(&p.address))
            .cloned()
            .collect();
        let resilience = self.config.resilience;
        let candidates: Vec<ProviderInfo> = candidates
            .into_iter()
            .filter(|p| {
                self.breakers
                    .get_mut(&p.address)
                    .is_none_or(|b| b.allows(now_us, &resilience))
            })
            .collect();
        let refs: Vec<&ProviderInfo> = candidates.iter().collect();
        self.config
            .policy
            .select(&refs, &self.reputation, &mut self.rr_cursor)
    }

    /// Ensures a bonded channel with `provider`, connecting if needed.
    fn ensure_connected(
        &mut self,
        net: &mut Network,
        provider: Address,
    ) -> Result<NodeId, SimError> {
        let node_id = net
            .node_id_by_address(&provider)
            .ok_or(SimError::UnknownNode(usize::MAX))?;
        // Pay the provider's advertised registry rate on this channel.
        if let Some(info) = self.directory.get(&provider) {
            self.client.set_price_for(provider, info.price_per_call);
        }
        if self.client.state_with(&provider) == ClientState::Bonded {
            return Ok(node_id);
        }
        // Clear any half-open session left by an earlier failure.
        if self.client.state_with(&provider) != ClientState::Idle {
            self.client.abandon_provider(provider);
        }
        net.connect(&mut self.client, node_id, self.config.channel_budget)?;
        Ok(node_id)
    }

    /// Snapshots the provider's committed amount — the current
    /// channel's `spent` on top of the epoch base accumulated from
    /// abandoned channels — into the monotonicity trail (called after
    /// every exchange, before any abandon).
    fn note_payment(&mut self, provider: Address) {
        if let Some(channel) = self.client.channel_with(&provider) {
            let base = self
                .payment_epoch
                .get(&provider)
                .copied()
                .unwrap_or(U256::from(0u64));
            let committed = base.saturating_add(channel.spent);
            let trail = self.payments.entry(provider).or_default();
            if let Some(last) = trail.last() {
                if committed < *last {
                    self.payments_monotone = false;
                }
            }
            trail.push(committed);
        }
    }

    /// Records a failover and abandons the provider's channel. Fraud,
    /// invalid responses, and refusals ban the provider outright;
    /// transient causes (timeout, corruption, crash) leave it
    /// re-selectable once its circuit breaker re-admits it.
    fn fail_over(&mut self, net: &Network, provider: Address, cause: FailoverCause, slashed: bool) {
        // Fold the dying channel's committed spend into the epoch base
        // so the payment trail stays cumulative across reconnects.
        if let Some(channel) = self.client.channel_with(&provider) {
            let base = self
                .payment_epoch
                .entry(provider)
                .or_insert(U256::from(0u64));
            *base = base.saturating_add(channel.spent);
        }
        self.client.abandon_provider(provider);
        let transient = matches!(
            cause,
            FailoverCause::Timeout | FailoverCause::Corruption | FailoverCause::Crash
        );
        if !transient {
            self.banned.insert(provider);
        }
        let now_us = net.now_us();
        if let Some(tracer) = self.tracer() {
            let provider_arg = || ("provider".to_string(), ArgValue::Str(provider.to_string()));
            if matches!(cause, FailoverCause::Fraud(_)) {
                tracer.instant("fraud_detected", "gateway", now_us, 0, vec![provider_arg()]);
            }
            if slashed {
                tracer.instant("slash", "gateway", now_us, 0, vec![provider_arg()]);
            }
            let cause_label = match &cause {
                FailoverCause::Refused => "refused",
                FailoverCause::Invalid(_) => "invalid",
                FailoverCause::Fraud(_) => "fraud",
                FailoverCause::Timeout => "timeout",
                FailoverCause::Corruption => "corruption",
                FailoverCause::Crash => "crash",
            };
            tracer.instant(
                "failover",
                "gateway",
                now_us,
                0,
                vec![
                    provider_arg(),
                    ("cause".to_string(), cause_label.into()),
                    ("slashed".to_string(), ArgValue::U64(slashed as u64)),
                ],
            );
        }
        if let Some(metrics) = &self.metrics {
            metrics.failovers.inc();
        }
        // Only the first failure of an outage window starts the
        // recovery stopwatch; later failures during the same outage
        // keep the original detection time.
        let event = FailoverEvent {
            failed_provider: provider,
            cause,
            slashed,
            detected_at_us: now_us,
            recovered_at_us: None,
        };
        self.failovers.push(event);
        if self.pending_recovery.is_none() {
            self.pending_recovery = Some(self.failovers.len() - 1);
        }
    }

    /// Stamps the pending failover (if any) as recovered now, emitting
    /// the outage window as a `failover_recovery` span.
    fn mark_recovered(&mut self, now_us: u64) {
        if let Some(index) = self.pending_recovery.take() {
            self.failovers[index].recovered_at_us = Some(now_us);
            if let Some(tracer) = self.tracer() {
                let event = &self.failovers[index];
                tracer.span(
                    "failover_recovery",
                    "gateway",
                    event.detected_at_us,
                    now_us.saturating_sub(event.detected_at_us),
                    0,
                    vec![
                        (
                            "failed_provider".to_string(),
                            ArgValue::Str(event.failed_provider.to_string()),
                        ),
                        ("slashed".to_string(), ArgValue::U64(event.slashed as u64)),
                    ],
                );
            }
        }
    }

    /// Advances `provider`'s circuit breaker on a transport-level
    /// failure at simulated time `now_us`.
    fn breaker_failure(&mut self, provider: Address, now_us: u64) {
        let resilience = self.config.resilience;
        self.breakers
            .entry(provider)
            .or_default()
            .record_failure(now_us, &resilience);
    }

    /// Closes `provider`'s circuit breaker after a verified exchange.
    fn breaker_success(&mut self, provider: Address) {
        self.breakers.entry(provider).or_default().record_success();
    }

    /// Emits the re-selection instants of a failover replay: the
    /// gateway picked `provider` to retry a call a previous provider
    /// failed.
    fn trace_reselect(&self, now_us: u64, provider: Address) {
        if let Some(tracer) = self.tracer() {
            tracer.instant(
                "reselect",
                "gateway",
                now_us,
                0,
                vec![("provider".to_string(), ArgValue::Str(provider.to_string()))],
            );
            tracer.instant("replay", "gateway", now_us, 0, vec![]);
        }
    }

    /// Submits fraud evidence through a witness node (§IV-F). Returns
    /// whether the proof was accepted on-chain.
    fn submit_fraud(
        &mut self,
        net: &mut Network,
        offender: Address,
        evidence: &parp_core::FraudEvidence,
    ) -> bool {
        let Some(witness_id) = self.pick_witness(net, offender) else {
            return false;
        };
        let accepted = net.report_fraud(evidence, witness_id).unwrap_or(false);
        if accepted {
            self.fraud_proofs_submitted += 1;
            if let Some(metrics) = &self.metrics {
                metrics.fraud_proofs.inc();
            }
        }
        accepted
    }

    /// Batch analogue of [`Gateway::submit_fraud`].
    fn submit_batch_fraud(
        &mut self,
        net: &mut Network,
        offender: Address,
        evidence: &parp_core::BatchFraudEvidence,
    ) -> bool {
        let Some(witness_id) = self.pick_witness(net, offender) else {
            return false;
        };
        let accepted = net
            .report_batch_fraud(evidence, witness_id)
            .unwrap_or(false);
        if accepted {
            self.fraud_proofs_submitted += 1;
            if let Some(metrics) = &self.metrics {
                metrics.fraud_proofs.inc();
            }
        }
        accepted
    }

    /// Any reachable registered node other than the offender — fraud
    /// proofs are relayed through a witness full node.
    fn pick_witness(&self, net: &Network, offender: Address) -> Option<NodeId> {
        self.directory
            .providers()
            .iter()
            .find(|p| p.address != offender)
            .map(|p| p.node_id)
            .or_else(|| {
                net.registry()
                    .into_iter()
                    .filter(|a| *a != offender)
                    .find_map(|a| net.node_id_by_address(&a))
            })
    }

    /// One verified read through the marketplace: select, exchange,
    /// and — on fraud, an invalid response, or a refusal — slash (when
    /// provable), fail over, and replay until a provider answers
    /// honestly.
    ///
    /// # Errors
    ///
    /// Fails when no eligible provider remains, the failover budget is
    /// exhausted, or the call's simulated-time budget runs out
    /// ([`GatewayError::Deadline`] — bounded, never a hang). Never
    /// returns an unverified payload.
    pub fn call(&mut self, net: &mut Network, call: RpcCall) -> Result<Vec<u8>, GatewayError> {
        self.refresh(net);
        let budget_us = self.config.resilience.call_budget_us;
        let started_us = net.now_us();
        let mut attempts = 0usize;
        loop {
            let waited_us = net.now_us().saturating_sub(started_us);
            if waited_us > budget_us {
                return Err(GatewayError::Deadline {
                    budget_us,
                    waited_us,
                });
            }
            let provider = self
                .select_excluding(&HashSet::new(), net.now_us())
                .ok_or(GatewayError::NoProviders)?;
            if attempts > 0 {
                self.trace_reselect(net.now_us(), provider);
            }
            match self.try_call_on(net, provider, call.clone()) {
                Ok(Some(result)) => return Ok(result),
                Ok(None) => {
                    attempts += 1;
                    if attempts > self.config.max_failovers {
                        return Err(GatewayError::FailoversExhausted { attempts });
                    }
                    self.refresh(net);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One exchange attempt against `provider`. `Ok(Some)` is a
    /// verified result; `Ok(None)` means the provider failed and a
    /// failover was recorded; `Err` is unrecoverable.
    fn try_call_on(
        &mut self,
        net: &mut Network,
        provider: Address,
        call: RpcCall,
    ) -> Result<Option<Vec<u8>>, GatewayError> {
        if let Err(e) = self.ensure_connected(net, provider) {
            match e {
                SimError::Chain(_) => return Err(GatewayError::Sim(e)),
                _ => {
                    self.reputation.entry(provider).record_refused();
                    self.fail_over(net, provider, FailoverCause::Refused, false);
                    return Ok(None);
                }
            }
        }
        let node_id = net.node_id_by_address(&provider).expect("connected");
        let resilience = self.config.resilience;
        let started_us = net.now_us();
        let mut attempt = 0u32;
        loop {
            let outcome = net.parp_call(&mut self.client, node_id, call.clone());
            // Retry the same provider in place on a timeout: the
            // channel is intact and the lost exchange was never paid
            // for, so the retry re-presents the same cumulative amount
            // after a deterministic jittered backoff.
            if matches!(outcome, Err(SimError::Timeout { .. }))
                && attempt < resilience.max_retries
                && net.now_us().saturating_sub(started_us) < resilience.call_budget_us
            {
                attempt += 1;
                net.advance_clock(resilience.backoff_us(attempt, addr_salt(&provider)));
                self.retries += 1;
                if let Some(metrics) = &self.metrics {
                    metrics.retries.inc();
                }
                continue;
            }
            return self.apply_exchange_outcome(net, provider, outcome);
        }
    }

    /// Scores one finished exchange and routes its failure modes —
    /// shared by the serial failover path ([`Gateway::try_call_on`]) and
    /// the parallel quorum fan-out, so both react identically to fraud,
    /// invalid responses and refusals.
    fn apply_exchange_outcome(
        &mut self,
        net: &mut Network,
        provider: Address,
        outcome: Result<(ProcessOutcome, parp_net::ExchangeStats), SimError>,
    ) -> Result<Option<Vec<u8>>, GatewayError> {
        match outcome {
            Ok((ProcessOutcome::Valid { result, .. }, stats)) => {
                self.reputation
                    .entry(provider)
                    .record_valid(stats.latency_us());
                self.breaker_success(provider);
                self.note_payment(provider);
                self.mark_recovered(net.now_us());
                self.calls_served += 1;
                if let Some(metrics) = &self.metrics {
                    metrics.calls_served.inc();
                }
                Ok(Some(result))
            }
            // A bad response signature on an otherwise well-formed
            // frame is transport corruption, not a §V-D lie — a
            // re-signing provider would produce a *valid* signature
            // over wrong data and land in the fraud arm instead.
            Ok((ProcessOutcome::Invalid(InvalidReason::ResponseSignatureInvalid), _)) => {
                self.reputation.entry(provider).record_corruption();
                self.breaker_failure(provider, net.now_us());
                self.note_payment(provider);
                self.fail_over(net, provider, FailoverCause::Corruption, false);
                Ok(None)
            }
            Ok((ProcessOutcome::Invalid(reason), _)) => {
                self.reputation.entry(provider).record_invalid();
                self.note_payment(provider);
                self.fail_over(net, provider, FailoverCause::Invalid(reason), false);
                Ok(None)
            }
            Ok((ProcessOutcome::Fraud(evidence), _)) => {
                self.reputation.entry(provider).record_fraud();
                self.note_payment(provider);
                let verdict = evidence.verdict;
                let slashed = self.submit_fraud(net, provider, &evidence);
                self.fail_over(net, provider, FailoverCause::Fraud(verdict), slashed);
                Ok(None)
            }
            Err(SimError::Serve(_)) | Err(SimError::Client(_)) => {
                self.reputation.entry(provider).record_refused();
                self.fail_over(net, provider, FailoverCause::Refused, false);
                Ok(None)
            }
            Err(SimError::Timeout { .. }) => {
                self.reputation.entry(provider).record_timeout();
                self.breaker_failure(provider, net.now_us());
                self.fail_over(net, provider, FailoverCause::Timeout, false);
                Ok(None)
            }
            Err(SimError::Crashed(_)) => {
                self.reputation.entry(provider).record_refused();
                self.breaker_failure(provider, net.now_us());
                self.fail_over(net, provider, FailoverCause::Crash, false);
                Ok(None)
            }
            Err(e) => Err(GatewayError::Sim(e)),
        }
    }

    /// One verified **batched** read (the whole batch is the unit of
    /// failover: a batch with even one provably bad item is replayed in
    /// full against the next provider, so no partial results leak).
    ///
    /// # Errors
    ///
    /// As [`Gateway::call`].
    pub fn call_batch(
        &mut self,
        net: &mut Network,
        calls: Vec<RpcCall>,
    ) -> Result<Vec<Vec<u8>>, GatewayError> {
        self.refresh(net);
        let budget_us = self.config.resilience.call_budget_us;
        let started_us = net.now_us();
        let mut attempts = 0usize;
        loop {
            let waited_us = net.now_us().saturating_sub(started_us);
            if waited_us > budget_us {
                return Err(GatewayError::Deadline {
                    budget_us,
                    waited_us,
                });
            }
            let provider = self
                .select_excluding(&HashSet::new(), net.now_us())
                .ok_or(GatewayError::NoProviders)?;
            if attempts > 0 {
                self.trace_reselect(net.now_us(), provider);
            }
            if let Err(e) = self.ensure_connected(net, provider) {
                match e {
                    SimError::Chain(_) => return Err(GatewayError::Sim(e)),
                    _ => {
                        self.reputation.entry(provider).record_refused();
                        self.fail_over(net, provider, FailoverCause::Refused, false);
                        attempts += 1;
                        if attempts > self.config.max_failovers {
                            return Err(GatewayError::FailoversExhausted { attempts });
                        }
                        self.refresh(net);
                        continue;
                    }
                }
            }
            let node_id = net.node_id_by_address(&provider).expect("connected");
            let outcome = net.parp_batch_call(&mut self.client, node_id, calls.clone());
            match outcome {
                Ok((ProcessBatchOutcome::Valid { results, .. }, stats)) => {
                    self.reputation
                        .entry(provider)
                        .record_valid(stats.latency_us());
                    self.breaker_success(provider);
                    self.note_payment(provider);
                    self.mark_recovered(net.now_us());
                    self.calls_served += results.len() as u64;
                    if let Some(metrics) = &self.metrics {
                        metrics.calls_served.add(results.len() as u64);
                    }
                    return Ok(results);
                }
                // Corrupted batch frame: transport damage, not a lie
                // (same reasoning as the single-call path).
                Ok((ProcessBatchOutcome::Invalid(InvalidReason::ResponseSignatureInvalid), _)) => {
                    self.reputation.entry(provider).record_corruption();
                    self.breaker_failure(provider, net.now_us());
                    self.note_payment(provider);
                    self.fail_over(net, provider, FailoverCause::Corruption, false);
                }
                Ok((ProcessBatchOutcome::Invalid(reason), _)) => {
                    self.reputation.entry(provider).record_invalid();
                    self.note_payment(provider);
                    self.fail_over(net, provider, FailoverCause::Invalid(reason), false);
                }
                Ok((ProcessBatchOutcome::Fraud { evidence, .. }, _)) => {
                    self.reputation.entry(provider).record_fraud();
                    self.note_payment(provider);
                    let verdict = evidence.verdict;
                    let slashed = self.submit_batch_fraud(net, provider, &evidence);
                    self.fail_over(net, provider, FailoverCause::Fraud(verdict), slashed);
                }
                Err(SimError::Serve(_)) | Err(SimError::Client(_)) => {
                    self.reputation.entry(provider).record_refused();
                    self.fail_over(net, provider, FailoverCause::Refused, false);
                }
                // Batches fail over rather than retry in place: one
                // batch already burns a whole serve quantum, so the
                // in-place backoff loop is reserved for single calls.
                Err(SimError::Timeout { .. }) => {
                    self.reputation.entry(provider).record_timeout();
                    self.breaker_failure(provider, net.now_us());
                    self.fail_over(net, provider, FailoverCause::Timeout, false);
                }
                Err(SimError::Crashed(_)) => {
                    self.reputation.entry(provider).record_refused();
                    self.breaker_failure(provider, net.now_us());
                    self.fail_over(net, provider, FailoverCause::Crash, false);
                }
                Err(e) => return Err(GatewayError::Sim(e)),
            }
            attempts += 1;
            if attempts > self.config.max_failovers {
                return Err(GatewayError::FailoversExhausted { attempts });
            }
            self.refresh(net);
        }
    }

    /// Fans one call out to `k` distinct providers and cross-checks the
    /// verified results byte-for-byte.
    ///
    /// All `k` channels are opened **before** the first exchange, so
    /// every leg is served at the same chain height and honest verified
    /// results must be byte-identical. A leg that fails verification
    /// goes through the normal failover path (including fraud
    /// submission) and a replacement provider is drafted when one is
    /// available.
    ///
    /// Quorum reads are the belt-and-suspenders mode: Merkle-proven
    /// calls are already individually verified, but *unproven* results
    /// (e.g. `BlockNumber`) and the residual risk of an equivocating
    /// header source are caught by cross-provider agreement.
    ///
    /// Pass `k = 0` to use the configured default width
    /// ([`GatewayConfig::quorum`]).
    ///
    /// # Errors
    ///
    /// Fails when fewer than `k` verified votes could be collected.
    pub fn quorum_call(
        &mut self,
        net: &mut Network,
        call: RpcCall,
        k: usize,
    ) -> Result<QuorumOutcome, GatewayError> {
        let k = if k == 0 { self.config.quorum } else { k }.max(1);
        if let Some(metrics) = &self.metrics {
            metrics.quorum_reads.inc();
        }
        self.refresh(net);
        // Phase 1: draft k distinct providers, channels open, before any
        // exchange (keeps all legs at one chain height).
        let mut drafted: Vec<Address> = Vec::new();
        let mut skip: HashSet<Address> = HashSet::new();
        while drafted.len() < k {
            let Some(provider) = self.select_excluding(&skip, net.now_us()) else {
                break;
            };
            skip.insert(provider);
            match self.ensure_connected(net, provider) {
                Ok(_) => drafted.push(provider),
                Err(SimError::Chain(e)) => return Err(GatewayError::Sim(SimError::Chain(e))),
                Err(_) => {
                    self.reputation.entry(provider).record_refused();
                    self.fail_over(net, provider, FailoverCause::Refused, false);
                }
            }
        }
        let resilience = self.config.resilience;
        if drafted.len() < k {
            // Under a partition the full width may be unreachable; with
            // degradation enabled the read proceeds best-effort on the
            // legs that exist and the outcome carries `degraded = true`.
            if !resilience.allow_degraded || drafted.is_empty() {
                // Report how many providers were actually drafted — this
                // used to hard-code 0, hiding partial progress from the
                // caller's error handling.
                return Err(GatewayError::QuorumUnreachable {
                    needed: k,
                    collected: drafted.len(),
                });
            }
        }
        // Phase 2: fan the k legs out **concurrently** over the
        // network's scoped-worker transport (serving and §V-D
        // verification run in parallel per leg; the simulated clock
        // advances by the slowest leg instead of the sum). Failed legs
        // go through the normal failover scoring, then replacements are
        // drafted serially.
        let mut votes: Vec<QuorumVote> = Vec::new();
        let legs: Vec<(parp_net::NodeId, RpcCall)> = drafted
            .iter()
            .map(|provider| {
                let node_id = net
                    .node_id_by_address(provider)
                    .expect("drafted ⇒ connected");
                (node_id, call.clone())
            })
            .collect();
        let outcomes = net.parp_call_fanout(&mut self.client, &legs);
        let mut any_leg_failed = false;
        let mut hedge_due = false;
        for (provider, outcome) in drafted.iter().zip(outcomes) {
            // Hedge trigger is judged against the EWMA *before* this
            // leg's own sample lands in it.
            let prior_ewma = self.reputation.get(provider).latency_ewma_us;
            if let Ok((_, stats)) = &outcome {
                let threshold = (prior_ewma.saturating_mul(resilience.hedge_factor_pct) / 100)
                    .max(resilience.hedge_min_us);
                if prior_ewma > 0 && stats.latency_us() > threshold {
                    hedge_due = true;
                }
            } else {
                hedge_due = true;
            }
            match self.apply_exchange_outcome(net, *provider, outcome)? {
                Some(result) => votes.push(QuorumVote {
                    provider: *provider,
                    result,
                }),
                None => any_leg_failed = true,
            }
        }
        if any_leg_failed {
            self.refresh(net);
        }
        // Hedged (k+1)-th leg: when a leg failed or straggled past its
        // EWMA-derived threshold, fire one spare leg from a fresh
        // provider rather than waiting on replacements alone.
        if hedge_due {
            if let Some(provider) = self.select_excluding(&skip, net.now_us()) {
                skip.insert(provider);
                self.hedges_fired += 1;
                if let Some(metrics) = &self.metrics {
                    metrics.hedges.inc();
                }
                match self.try_call_on(net, provider, call.clone())? {
                    Some(result) => votes.push(QuorumVote { provider, result }),
                    None => self.refresh(net),
                }
            }
        }
        // Replacement legs (rare path): serial failover until the
        // quorum fills or candidates run out.
        while votes.len() < k {
            let provider = match self.select_excluding(&skip, net.now_us()) {
                Some(p) => {
                    skip.insert(p);
                    p
                }
                None => break,
            };
            match self.try_call_on(net, provider, call.clone())? {
                Some(result) => votes.push(QuorumVote { provider, result }),
                None => self.refresh(net),
            }
        }
        if votes.len() < k {
            if resilience.allow_degraded && !votes.is_empty() {
                self.degraded_reads += 1;
                if let Some(metrics) = &self.metrics {
                    metrics.degraded_reads.inc();
                }
                return Ok(Self::tally_votes(votes, true));
            }
            return Err(GatewayError::QuorumUnreachable {
                needed: k,
                collected: votes.len(),
            });
        }
        Ok(Self::tally_votes(votes, false))
    }

    /// Majority payload over `votes` (deterministic: ties broken by
    /// first seen — `counts` is in first-seen order and only a strictly
    /// greater count displaces the current best).
    fn tally_votes(votes: Vec<QuorumVote>, degraded: bool) -> QuorumOutcome {
        let (result, agreed) = {
            let mut counts: Vec<(&Vec<u8>, usize)> = Vec::new();
            for vote in &votes {
                match counts.iter_mut().find(|(r, _)| *r == &vote.result) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((&vote.result, 1)),
                }
            }
            let mut best = 0usize;
            for (i, (_, n)) in counts.iter().enumerate().skip(1) {
                if *n > counts[best].1 {
                    best = i;
                }
            }
            let result = counts
                .get(best)
                .map(|(r, _)| (*r).clone())
                .unwrap_or_default();
            (result, counts.len() == 1)
        };
        QuorumOutcome {
            result,
            agreed,
            degraded,
            votes,
        }
    }
}

/// A deterministic per-provider salt for the backoff-jitter stream,
/// folded from the address bytes (no hashing dependency needed).
fn addr_salt(provider: &Address) -> u64 {
    provider.as_bytes().iter().fold(0u64, |acc, b| {
        acc.wrapping_mul(31).wrapping_add(u64::from(*b))
    })
}
