//! `parp-gateway`: client-side multi-provider orchestration for PARP.
//!
//! The paper's accountability machinery (collateral, Merkle-proven
//! responses, on-chain fraud proofs) makes *any* permissionless
//! provider safe to consume — but a client wired to a single full node
//! still reproduces the §VIII single-node-dependence risk: one outage
//! or one liar and service stops until a human intervenes. This crate
//! is the layer that turns one-channel accountability into an actual
//! marketplace, the way Relay Mining assumes a priced market of RPC
//! nodes and "Time Tells All" argues against pinning a request stream
//! to one endpoint:
//!
//! * [`Directory`] — registry-driven discovery: the FNDM's on-chain
//!   serving set (address, deposit, slash history) joined with each
//!   provider's advertised price, refreshed across joins, voluntary
//!   exits and slashes.
//! * [`Reputation`] / [`ReputationBook`] — per-provider measurement
//!   from *verified* outcomes only (valid/invalid/refused/fraud counts,
//!   latency EWMA + p50/p99, slash events observed on-chain), so a
//!   provider cannot inflate its own score.
//! * [`SelectionPolicy`] — pluggable routing: cheapest, fastest,
//!   reputation-weighted, or round-robin (the profiling
//!   countermeasure).
//! * [`Gateway`] — N concurrent payment channels (one per provider,
//!   over the multi-session [`parp_core::LightClient`]), live failover
//!   — a §V-D fraud classification submits the proof through a witness,
//!   abandons the channel, re-selects and replays the in-flight call —
//!   and [`Gateway::quorum_call`] fan-out reads cross-checking `k`
//!   providers' verified results byte-for-byte.
//! * [`run_marketplace`] — the end-to-end churn scenario: a
//!   cheapest-but-fraudulent provider slashed mid-run, a join and a
//!   voluntary exit, zero invalid results accepted.
//! * [`ResilienceConfig`] / [`CircuitBreaker`] — the machinery for the
//!   *boring* failures accountability cannot classify: per-call
//!   deadlines and call budgets, bounded retries with deterministic
//!   jittered backoff, hedged quorum legs off the latency EWMA, and a
//!   per-provider closed → open → half-open breaker. Transient causes
//!   ([`FailoverCause::Timeout`] / `Corruption` / `Crash`) fail over
//!   without banning, and committed payments stay monotone across the
//!   reconnects.
//! * [`run_chaos`] — the marketplace under a seeded
//!   [`parp_net::FaultPlane`] schedule (drops, delays, corruption,
//!   crashes, partitions): zero accepted wrong payloads, every call
//!   classified (no hangs), byte-identical same-seed replay.
//!
//! ```
//! use parp_gateway::{Gateway, GatewayConfig, SelectionPolicy};
//! use parp_contracts::RpcCall;
//! use parp_net::Network;
//! use parp_primitives::U256;
//!
//! let mut net = Network::new();
//! for (seed, price) in [(b"gw-a", 10u64), (b"gw-b", 20u64)] {
//!     net.spawn_node(seed, U256::from(price));
//! }
//! let client = net.spawn_client(b"gw-client", U256::from(10u64));
//! let mut gateway = Gateway::new(client, GatewayConfig {
//!     policy: SelectionPolicy::Cheapest,
//!     ..GatewayConfig::default()
//! });
//! let me = gateway.client().address();
//! let result = gateway
//!     .call(&mut net, RpcCall::GetBalance { address: me })
//!     .unwrap();
//! assert!(!result.is_empty());
//! assert_eq!(gateway.directory().len(), 2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod chaos;
mod directory;
mod gateway;
mod marketplace;
mod policy;
mod reputation;
mod resilience;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use directory::{Directory, ProviderInfo};
pub use gateway::{
    FailoverCause, FailoverEvent, Gateway, GatewayConfig, GatewayError, QuorumOutcome, QuorumVote,
};
pub use marketplace::{run_marketplace, MarketplaceConfig, MarketplaceReport};
pub use policy::SelectionPolicy;
pub use reputation::{Reputation, ReputationBook};
pub use resilience::{BreakerState, CircuitBreaker, ResilienceConfig};
