//! The chaos scenario: a marketplace run under a seeded fault schedule
//! — a provider crash, a partition of a provider subset, a steady
//! message-drop rate, delay spikes, and corruption bursts — that the
//! gateway's resilience machinery (deadlines, retries, circuit
//! breakers, hedged legs, degraded reads) must survive.
//!
//! The invariants under test are the robustness analogue of the
//! marketplace's accountability story: **zero** accepted wrong
//! payloads whatever the transport does, **every** issued call ends
//! served, explicitly degraded, or deadline-errored (no hangs), and
//! the whole run — fault schedule, telemetry, payments, clock — is
//! byte-identical when replayed from the same seed.

use crate::gateway::{Gateway, GatewayConfig};
use crate::policy::SelectionPolicy;
use crate::resilience::ResilienceConfig;
use parp_contracts::RpcCall;
use parp_net::{
    CorruptionBurst, CrashWindow, FaultConfig, Network, PartitionWindow, ProviderFaultRates,
};
use parp_primitives::{Address, U256};
use parp_telemetry::{MetricsSnapshot, Telemetry};

/// Tuning for [`run_chaos`].
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed of the fault schedule (and, XOR-folded, of the gateway's
    /// backoff jitter) — the whole run replays from it.
    pub seed: u64,
    /// Providers on the price ladder (`10·(i+1)` wei per call).
    pub providers: usize,
    /// Single-read workload length.
    pub calls: usize,
    /// Every `quorum_every`-th read goes out as a quorum read (0
    /// disables them).
    pub quorum_every: usize,
    /// Quorum fan-out width.
    pub quorum: usize,
    /// Steady message-drop probability (ppm).
    pub drop_ppm: u32,
    /// Steady payload-corruption probability (ppm).
    pub corrupt_ppm: u32,
    /// Steady added-delay probability (ppm).
    pub delay_ppm: u32,
    /// Ordinary added delay (µs) — survivable under the deadline.
    pub delay_base_us: u64,
    /// Spiked added delay (µs) — past the deadline, so spikes become
    /// timeouts.
    pub delay_spike_us: u64,
    /// Whether two corruption bursts are layered mid-run.
    pub corruption_bursts: bool,
    /// Whether provider 1 crashes (down for a step window, then back).
    pub crash: bool,
    /// Whether providers 2 and 3 are partitioned away for a window.
    pub partition: bool,
    /// Per-exchange deadline against the simulated clock (µs).
    pub call_deadline_us: u64,
    /// Whether unreachable quorums degrade to best-effort reads
    /// instead of erroring.
    pub allow_degraded: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A05,
            providers: 5,
            calls: 48,
            quorum_every: 6,
            quorum: 3,
            drop_ppm: 100_000, // 10% — the tentpole's headline rate
            corrupt_ppm: 20_000,
            delay_ppm: 150_000,
            delay_base_us: 2_000,
            delay_spike_us: 40_000,
            corruption_bursts: true,
            crash: true,
            partition: true,
            call_deadline_us: 25_000,
            allow_degraded: true,
        }
    }
}

impl ChaosConfig {
    /// The [`FaultConfig`] this scenario installs: steady rates plus
    /// the configured crash / partition / burst windows, all indexed by
    /// the plane's step counter so the schedule replays exactly.
    pub fn fault_config(&self) -> FaultConfig {
        let mut fault = FaultConfig {
            seed: self.seed,
            drop_ppm: self.drop_ppm,
            corrupt_ppm: self.corrupt_ppm,
            delay_ppm: self.delay_ppm,
            delay_base_us: self.delay_base_us,
            delay_spike_us: self.delay_spike_us,
            ..FaultConfig::default()
        };
        if self.crash {
            fault.crashes.push(CrashWindow {
                provider_index: 1,
                from_step: 30,
                until_step: 90,
            });
        }
        if self.partition {
            fault.partitions.push(PartitionWindow {
                provider_indices: vec![2, 3],
                from_step: 60,
                until_step: 110,
            });
        }
        if self.corruption_bursts {
            fault.bursts.push(CorruptionBurst {
                from_step: 40,
                until_step: 70,
                corrupt_ppm: 400_000,
            });
            fault.bursts.push(CorruptionBurst {
                from_step: 120,
                until_step: 150,
                corrupt_ppm: 400_000,
            });
        }
        fault
    }

    /// One provider made pathologically flaky (90% drop), everyone else
    /// clean — the schedule the `ReputationWeighted` avoidance
    /// regression runs under.
    pub fn flaky_override(provider_index: usize) -> FaultConfig {
        FaultConfig {
            seed: 0xF1A,
            overrides: vec![ProviderFaultRates {
                provider_index,
                drop_ppm: 900_000,
                corrupt_ppm: 0,
                delay_ppm: 0,
            }],
            ..FaultConfig::default()
        }
    }
}

/// What a chaos run produced. Every surface is deterministic: vectors
/// are in issue order, maps are flattened in sorted order, and all
/// counts come from seeded draws against the simulated clock — two
/// same-seed runs produce byte-identical reports (minus the live
/// telemetry handle, whose *snapshot JSON* is also byte-identical).
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Logical calls issued by the workload.
    pub issued: usize,
    /// Calls that returned a fully verified (quorum-checked when a
    /// quorum turn) payload.
    pub served: usize,
    /// Quorum turns that returned a best-effort result below width `k`
    /// with the explicit `degraded` marker.
    pub degraded: usize,
    /// Calls that ended in a classified gateway error (deadline,
    /// failovers exhausted, quorum unreachable, no providers).
    pub errored: usize,
    /// Calls that ended in any *other* way — must be 0: every issued
    /// call is accounted for (no hangs, no mystery errors).
    pub unclassified: usize,
    /// Returned payloads that did not match the chain's ground truth —
    /// must be 0 under any schedule.
    pub wrong_payloads: usize,
    /// Errors that were deadline burns ([`crate::GatewayError::Deadline`]).
    pub errors_deadline: usize,
    /// Errors from an exhausted failover budget.
    pub errors_exhausted: usize,
    /// Errors from an unreachable quorum (only when degradation is
    /// disabled or no vote at all was collected).
    pub errors_quorum: usize,
    /// Errors from an empty eligible-provider set (everyone banned,
    /// broken, or partitioned at once).
    pub errors_no_providers: usize,
    /// In-place retries the gateway fired after timeouts.
    pub retries: u64,
    /// Hedged quorum legs launched.
    pub hedges_fired: u64,
    /// Circuit-breaker closed/half-open → open transitions.
    pub breaker_opens: u64,
    /// Circuit-breaker open → half-open transitions.
    pub breaker_half_opens: u64,
    /// Total failovers recorded.
    pub failovers: usize,
    /// Failovers by cause label, fixed order.
    pub failovers_by_cause: Vec<(&'static str, usize)>,
    /// Time-to-recover for each completed failover (µs, simulated).
    pub recoveries_us: Vec<u64>,
    /// Messages the fault plane dropped.
    pub fault_drops: u64,
    /// Responses the fault plane corrupted.
    pub fault_corruptions: u64,
    /// Responses the fault plane delayed.
    pub fault_delays: u64,
    /// Connections refused by the crash window.
    pub fault_crashes: u64,
    /// Requests swallowed by the partition window.
    pub fault_partitions: u64,
    /// Exchanges that burned the per-call deadline.
    pub fault_timeouts: u64,
    /// Whether every per-provider committed-payment trajectory stayed
    /// monotone (cumulative across channel switches).
    pub payments_monotone: bool,
    /// The full payment trajectory, flattened in provider-address
    /// order — the replay test compares this string byte-for-byte.
    pub payment_digest: String,
    /// Fault-plane decision steps consumed.
    pub steps: u64,
    /// Final simulated clock (µs).
    pub clock_us: u64,
    /// End-of-run metrics snapshot (net fault counters + gateway
    /// resilience counters together).
    pub metrics: MetricsSnapshot,
}

/// Runs the chaos scenario and reports what happened.
///
/// # Panics
///
/// Panics when the simulation itself cannot be set up (chain errors at
/// funding/spawn time); workload failures are classified, not panicked.
pub fn run_chaos(config: &ChaosConfig) -> ChaosReport {
    let telemetry = Telemetry::new();
    let mut net = Network::new();
    net.set_call_deadline_us(config.call_deadline_us);
    net.attach_telemetry(&telemetry);
    let providers = config.providers.max(2);
    for i in 0..providers {
        let price = U256::from(10 * (i as u64 + 1));
        net.spawn_node(format!("chaos-node-{i}").as_bytes(), price);
    }

    let targets: Vec<Address> = (0..16)
        .map(|i| Address::from_low_u64_be(0xC4A0_0000 + i))
        .collect();
    net.fund_many(&targets);
    let expected: Vec<Vec<u8>> = targets
        .iter()
        .map(|t| {
            net.chain()
                .state()
                .account(t)
                .map(parp_chain::Account::encode)
                .unwrap_or_default()
        })
        .collect();

    // Faults start only once the workload does: setup above consumed no
    // schedule steps (the plane is installed after it).
    net.install_fault_plane(config.fault_config());

    let client = net.spawn_client(b"chaos-client", U256::from(10u64));
    let mut gateway = Gateway::new(
        client,
        GatewayConfig {
            policy: SelectionPolicy::ReputationWeighted,
            quorum: config.quorum,
            resilience: ResilienceConfig {
                allow_degraded: config.allow_degraded,
                jitter_seed: config.seed ^ 0x5EED,
                call_budget_us: 400_000,
                breaker_cooldown_us: 100_000,
                ..ResilienceConfig::default()
            },
            ..GatewayConfig::default()
        },
    );
    gateway.attach_telemetry(&telemetry);

    let mut report = ChaosReport {
        issued: 0,
        served: 0,
        degraded: 0,
        errored: 0,
        unclassified: 0,
        wrong_payloads: 0,
        errors_deadline: 0,
        errors_exhausted: 0,
        errors_quorum: 0,
        errors_no_providers: 0,
        retries: 0,
        hedges_fired: 0,
        breaker_opens: 0,
        breaker_half_opens: 0,
        failovers: 0,
        failovers_by_cause: Vec::new(),
        recoveries_us: Vec::new(),
        fault_drops: 0,
        fault_corruptions: 0,
        fault_delays: 0,
        fault_crashes: 0,
        fault_partitions: 0,
        fault_timeouts: 0,
        payments_monotone: true,
        payment_digest: String::new(),
        steps: 0,
        clock_us: 0,
        metrics: MetricsSnapshot::default(),
    };

    for i in 0..config.calls {
        report.issued += 1;
        let index = i % targets.len();
        let call = RpcCall::GetBalance {
            address: targets[index],
        };
        let quorum_turn =
            config.quorum_every > 0 && i % config.quorum_every == config.quorum_every - 1;
        let outcome: Result<(Vec<u8>, bool), crate::GatewayError> = if quorum_turn {
            gateway
                .quorum_call(&mut net, call, 0)
                .map(|o| (o.result, o.degraded))
        } else {
            gateway.call(&mut net, call).map(|bytes| (bytes, false))
        };
        match outcome {
            Ok((bytes, degraded)) => {
                if degraded {
                    report.degraded += 1;
                } else {
                    report.served += 1;
                }
                // Degraded reads are still individually verified
                // (signature + proof) — they too must match the chain.
                if bytes != expected[index] {
                    report.wrong_payloads += 1;
                }
            }
            Err(crate::GatewayError::Deadline { .. }) => {
                report.errored += 1;
                report.errors_deadline += 1;
            }
            Err(crate::GatewayError::FailoversExhausted { .. }) => {
                report.errored += 1;
                report.errors_exhausted += 1;
            }
            Err(crate::GatewayError::QuorumUnreachable { .. }) => {
                report.errored += 1;
                report.errors_quorum += 1;
            }
            Err(crate::GatewayError::NoProviders) => {
                report.errored += 1;
                report.errors_no_providers += 1;
            }
            Err(crate::GatewayError::Sim(_)) => {
                report.unclassified += 1;
            }
        }
    }

    report.retries = gateway.retries();
    report.hedges_fired = gateway.hedges_fired();
    let (opens, half_opens) = gateway.breaker_transitions();
    report.breaker_opens = opens;
    report.breaker_half_opens = half_opens;
    report.failovers = gateway.failovers().len();
    report.failovers_by_cause = gateway.failovers_by_cause();
    report.recoveries_us = gateway
        .failovers()
        .iter()
        .filter_map(|f| f.time_to_recover_us())
        .collect();
    report.payments_monotone = gateway.payments_monotone();
    let mut trails: Vec<(&Address, &Vec<U256>)> = gateway.payment_trajectories().iter().collect();
    trails.sort_by_key(|(address, _)| **address);
    let mut digest = String::new();
    for (address, trail) in trails {
        digest.push_str(&format!("{address}:"));
        for (j, amount) in trail.iter().enumerate() {
            if j > 0 {
                digest.push(',');
            }
            digest.push_str(&format!("{amount}"));
        }
        digest.push(';');
    }
    report.payment_digest = digest;
    if let Some(plane) = net.fault_plane() {
        report.steps = plane.step();
        let counters = plane.counters();
        report.fault_drops = counters.drops.get();
        report.fault_corruptions = counters.corruptions.get();
        report.fault_delays = counters.delays.get();
        report.fault_crashes = counters.crashes.get();
        report.fault_partitions = counters.partitions.get();
        report.fault_timeouts = counters.timeouts.get();
    }
    report.clock_us = net.now_us();
    report.metrics = telemetry.registry.snapshot();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_run_upholds_the_core_invariants() {
        let config = ChaosConfig::default();
        let report = run_chaos(&config);
        // Accounting: every issued call classified, nothing else.
        assert_eq!(report.issued, config.calls);
        assert_eq!(
            report.served + report.degraded + report.errored + report.unclassified,
            report.issued,
            "every call must be served, degraded, or errored"
        );
        assert_eq!(report.unclassified, 0, "no unclassified outcomes");
        // Zero wrong payloads under the full fault cocktail.
        assert_eq!(report.wrong_payloads, 0);
        // The schedule actually bit: every fault class fired.
        assert!(report.fault_drops > 0, "drops: {}", report.fault_drops);
        assert!(report.fault_corruptions > 0);
        assert!(report.fault_crashes > 0);
        assert!(report.fault_partitions > 0);
        assert!(report.fault_timeouts > 0);
        // And the machinery reacted.
        assert!(report.served > 0, "the run must make progress");
        assert!(report.failovers > 0);
        assert!(report.payments_monotone);
        // Bounded recovery: p99 time-to-recover under 2.5 simulated
        // seconds (the partition window plus breaker cooldowns).
        let mut recoveries = report.recoveries_us.clone();
        recoveries.sort_unstable();
        if !recoveries.is_empty() {
            let p99 = recoveries[(recoveries.len() - 1) * 99 / 100];
            assert!(p99 < 2_500_000, "p99 time-to-recover {p99} µs");
        }
        // Transient causes appear in the breakdown.
        let by_cause: std::collections::HashMap<&str, usize> =
            report.failovers_by_cause.iter().copied().collect();
        assert!(by_cause["timeout"] + by_cause["crash"] + by_cause["corruption"] > 0);
    }

    #[test]
    fn same_seed_replays_byte_identically() {
        let config = ChaosConfig::default();
        let a = run_chaos(&config);
        let b = run_chaos(&config);
        assert_eq!(a.metrics.to_json(), b.metrics.to_json());
        assert_eq!(a.payment_digest, b.payment_digest);
        assert_eq!(a.clock_us, b.clock_us);
        assert_eq!(a.steps, b.steps);
        assert_eq!(
            (a.served, a.degraded, a.errored, a.retries, a.hedges_fired),
            (b.served, b.degraded, b.errored, b.retries, b.hedges_fired)
        );
        assert_eq!(a.failovers_by_cause, b.failovers_by_cause);
        assert_eq!(a.recoveries_us, b.recoveries_us);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_chaos(&ChaosConfig {
            seed: 1,
            ..ChaosConfig::default()
        });
        let b = run_chaos(&ChaosConfig {
            seed: 2,
            ..ChaosConfig::default()
        });
        assert!(
            a.fault_drops != b.fault_drops
                || a.fault_corruptions != b.fault_corruptions
                || a.clock_us != b.clock_us
                || a.payment_digest != b.payment_digest,
            "two seeds should not shadow each other"
        );
    }

    #[test]
    fn quiet_schedule_serves_everything() {
        let report = run_chaos(&ChaosConfig {
            drop_ppm: 0,
            corrupt_ppm: 0,
            delay_ppm: 0,
            corruption_bursts: false,
            crash: false,
            partition: false,
            ..ChaosConfig::default()
        });
        assert_eq!(report.served, report.issued);
        assert_eq!(report.errored, 0);
        assert_eq!(report.degraded, 0);
        assert_eq!(report.wrong_payloads, 0);
        assert_eq!(report.fault_timeouts, 0);
        assert_eq!(report.failovers, 0);
    }
}
