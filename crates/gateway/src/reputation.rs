//! Per-provider reputation: outcome counts, latency EWMA and
//! percentiles, and on-chain slash observation — the signal the
//! selection policies rank providers by.
//!
//! "Time Tells All" (Wang et al.) shows that pinning traffic to one RPC
//! endpoint both concentrates trust and leaks the client's behaviour to
//! that endpoint; Relay Mining prices a marketplace of providers per
//! relay. Both need the client to *measure* providers. This module is
//! that measurement: purely local, updated from verified exchange
//! outcomes (§V-D classifications, so a provider cannot inflate its own
//! score) plus slash events read from the chain.

use parp_contracts::ParpExecutor;
use parp_primitives::Address;
use parp_telemetry::Histogram;
use std::collections::HashMap;

/// One provider's measured standing.
///
/// Latency percentiles come from a fixed-memory log-linear
/// [`Histogram`] (~30 KiB once touched, constant in the sample count)
/// rather than a retained `Vec` of every sample — a gateway that runs
/// for weeks against a hot provider must not grow its reputation book
/// without bound. Quantiles carry the histogram's documented one-sided
/// relative error ([`parp_telemetry::RELATIVE_ERROR`], 2⁻⁶ ≈ 1.56%,
/// never *above* the exact nearest-rank value).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Reputation {
    /// Exchanges whose responses verified (§V-D *valid*).
    pub valid: u64,
    /// Exchanges classified *invalid* (untrusted, unprovable).
    pub invalid: u64,
    /// Exchanges the provider refused or failed to complete.
    pub refused: u64,
    /// Exchanges classified *fraudulent* (provable on-chain).
    pub fraud: u64,
    /// Exchanges that timed out (dropped, partitioned, or too slow) —
    /// a provider that hangs 90% of the time must score down even
    /// though it never provably lied.
    pub timeouts: u64,
    /// Responses whose frames arrived corrupted (signature check
    /// failed on the wire payload).
    pub corruptions: u64,
    /// Slash events observed on-chain against this identity.
    pub slash_events: u64,
    /// Exponentially weighted moving average of exchange latency (µs),
    /// α = 1/4 in integer arithmetic; 0 until the first valid exchange.
    pub latency_ewma_us: u64,
    /// Valid-exchange latency distribution (µs), fixed memory.
    latency: Histogram,
}

impl Reputation {
    /// Records a verified exchange and its end-to-end latency.
    pub fn record_valid(&mut self, latency_us: u64) {
        self.valid += 1;
        self.latency_ewma_us = if self.latency.count() == 0 {
            latency_us
        } else {
            (3 * self.latency_ewma_us + latency_us) / 4
        };
        self.latency.record(latency_us);
    }

    /// Records an invalid (untrusted but unprovable) response.
    pub fn record_invalid(&mut self) {
        self.invalid += 1;
    }

    /// Records a refusal / failed exchange.
    pub fn record_refused(&mut self) {
        self.refused += 1;
    }

    /// Records a provably fraudulent response.
    pub fn record_fraud(&mut self) {
        self.fraud += 1;
    }

    /// Records a timed-out exchange (drop, partition, or over-deadline
    /// delay — the client saw no verifiable response at all).
    pub fn record_timeout(&mut self) {
        self.timeouts += 1;
    }

    /// Records a corrupted frame (wire payload failed the signature
    /// check — transport damage, not a provable provider lie).
    pub fn record_corruption(&mut self) {
        self.corruptions += 1;
    }

    /// Median latency over valid exchanges (µs), within the histogram's
    /// documented relative error of the exact nearest-rank median.
    pub fn latency_p50_us(&self) -> u64 {
        self.latency.quantile(0.50)
    }

    /// 99th-percentile latency over valid exchanges (µs), within the
    /// histogram's documented relative error of exact nearest-rank.
    pub fn latency_p99_us(&self) -> u64 {
        self.latency.quantile(0.99)
    }

    /// Arbitrary latency quantile over valid exchanges (µs).
    pub fn latency_quantile(&self, q: f64) -> u64 {
        self.latency.quantile(q)
    }

    /// Number of latency samples recorded (equals `valid`).
    pub fn latency_samples(&self) -> u64 {
        self.latency.count()
    }

    /// Memory footprint of this entry in bytes — constant in the
    /// number of recorded exchanges (the regression tests assert this).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<Histogram>() + self.latency.mem_bytes()
    }

    /// Whether this provider may be selected at all. Fraud and slashes
    /// are disqualifying — accountability means never going back to a
    /// provider that provably lied.
    pub fn trustworthy(&self) -> bool {
        self.fraud == 0 && self.slash_events == 0
    }

    /// A score in (0, 1]: the smoothed success ratio, discounted by
    /// latency (1 per second of EWMA). Untried providers score the
    /// optimistic prior 0.5 so exploration happens naturally; provably
    /// misbehaving providers score 0. Corrupted frames weigh like
    /// invalid responses and timeouts like refusals: a
    /// flaky-but-honest provider drifts down instead of keeping its
    /// rating.
    pub fn score(&self) -> f64 {
        if !self.trustworthy() {
            return 0.0;
        }
        let bad = 4 * (self.invalid + self.corruptions) + 2 * (self.refused + self.timeouts);
        let success = (self.valid + 1) as f64 / (self.valid + bad + 2) as f64;
        success / (1.0 + self.latency_ewma_us as f64 / 1_000_000.0)
    }
}

/// The reputation book: one [`Reputation`] per provider ever observed.
#[derive(Debug, Clone, Default)]
pub struct ReputationBook {
    entries: HashMap<Address, Reputation>,
}

impl ReputationBook {
    /// An empty book.
    pub fn new() -> Self {
        ReputationBook::default()
    }

    /// The entry for `provider` (default when never observed).
    pub fn get(&self, provider: &Address) -> Reputation {
        self.entries.get(provider).cloned().unwrap_or_default()
    }

    /// Mutable entry, created on first touch.
    pub fn entry(&mut self, provider: Address) -> &mut Reputation {
        self.entries.entry(provider).or_default()
    }

    /// Convenience: the provider's current score.
    pub fn score(&self, provider: &Address) -> f64 {
        self.entries
            .get(provider)
            .map(Reputation::score)
            .unwrap_or_else(|| Reputation::default().score())
    }

    /// Reads slash counts for `providers` off the chain's deposit
    /// module — the on-chain signal that condemns a provider even when
    /// *this* client never exchanged with it (someone else proved the
    /// fraud).
    pub fn observe_chain<'a, I: IntoIterator<Item = &'a Address>>(
        &mut self,
        executor: &ParpExecutor,
        providers: I,
    ) {
        for provider in providers {
            let slashes = executor
                .fndm()
                .record(provider)
                .map(|r| r.slash_count)
                .unwrap_or(0);
            if slashes > 0 {
                self.entry(*provider).slash_events = slashes;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_orders_sanely() {
        let mut good = Reputation::default();
        for _ in 0..10 {
            good.record_valid(1_000);
        }
        let mut flaky = Reputation::default();
        for _ in 0..5 {
            flaky.record_valid(1_000);
        }
        for _ in 0..5 {
            flaky.record_refused();
        }
        let untried = Reputation::default();
        assert!(good.score() > flaky.score());
        assert!(good.score() > untried.score());
        assert!(untried.score() > 0.0);

        let mut fraudster = Reputation::default();
        fraudster.record_valid(10);
        fraudster.record_fraud();
        assert_eq!(fraudster.score(), 0.0);
        assert!(!fraudster.trustworthy());
    }

    #[test]
    fn timeouts_and_corruptions_drag_the_score_down() {
        let mut flaky = Reputation::default();
        let mut solid = Reputation::default();
        for _ in 0..5 {
            flaky.record_valid(1_000);
            solid.record_valid(1_000);
        }
        for _ in 0..10 {
            flaky.record_timeout();
        }
        assert!(flaky.trustworthy(), "timeouts are not disqualifying");
        assert!(flaky.score() < solid.score());

        let mut corrupted = Reputation::default();
        for _ in 0..5 {
            corrupted.record_valid(1_000);
        }
        for _ in 0..10 {
            corrupted.record_corruption();
        }
        // Corrupted frames weigh heavier than timeouts, like invalid
        // responses weigh heavier than refusals.
        assert!(corrupted.score() < flaky.score());
    }

    #[test]
    fn latency_tracking() {
        let mut r = Reputation::default();
        for us in [100u64, 200, 300, 400, 10_000] {
            r.record_valid(us);
        }
        assert_eq!(r.latency_samples(), 5);
        // p50 falls in the exact linear region of small bucket widths
        // relative to the value, and 300's bucket lower bound is 300.
        assert_eq!(r.latency_p50_us(), 300);
        // p99 carries the histogram's one-sided relative error: at or
        // below the exact nearest-rank value (10_000), within 2⁻⁶ of it.
        let p99 = r.latency_p99_us();
        assert!(p99 <= 10_000);
        assert!(p99 as f64 >= 10_000.0 * (1.0 - parp_telemetry::RELATIVE_ERROR));
        assert!(r.latency_ewma_us > 0);
        // A slow provider scores below an equally reliable fast one.
        let mut fast = Reputation::default();
        for _ in 0..5 {
            fast.record_valid(100);
        }
        assert!(fast.score() > r.score());
        // Fixed memory: the footprint does not grow with more samples.
        let before = r.mem_bytes();
        for _ in 0..10_000 {
            r.record_valid(123);
        }
        assert_eq!(r.mem_bytes(), before);
    }
}
