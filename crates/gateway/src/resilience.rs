//! Resilience knobs and the per-provider circuit breaker.
//!
//! Everything here is deterministic: backoff jitter is drawn from a
//! seeded splitmix64 stream (never a wall clock or thread-local RNG),
//! and the breaker advances only on the simulated clock the caller
//! passes in — two runs from the same seed take identical decisions.

use parp_net::splitmix64;

/// Tuning for the gateway's fault-handling machinery: retry budget and
/// backoff shape, per-call deadline, circuit-breaker thresholds, hedged
/// quorum legs, and the degraded-read escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Extra attempts on the *same* provider after a timeout before the
    /// gateway fails over (0 disables retries).
    pub max_retries: u32,
    /// First-retry backoff (µs, simulated); doubles every attempt.
    pub backoff_base_us: u64,
    /// Backoff ceiling (µs) — the exponential curve is clamped here.
    pub backoff_cap_us: u64,
    /// Total simulated-time budget for one gateway call, failovers and
    /// backoffs included; exceeding it yields `GatewayError::Deadline`.
    pub call_budget_us: u64,
    /// Consecutive timeouts/corruptions that trip a closed breaker.
    pub breaker_threshold: u32,
    /// Simulated µs an open breaker waits before allowing a half-open
    /// probe.
    pub breaker_cooldown_us: u64,
    /// Hedge threshold as a percentage of the provider's latency EWMA:
    /// a quorum leg slower than `ewma * hedge_factor_pct / 100` fires a
    /// spare leg. 300 = 3× the expected latency.
    pub hedge_factor_pct: u64,
    /// Floor for the hedge threshold (µs), so a fast EWMA can't make
    /// hedging hair-triggered.
    pub hedge_min_us: u64,
    /// When quorum `k` is unreachable (e.g. under partition), return
    /// the best-effort votes collected with `degraded = true` instead
    /// of `GatewayError::QuorumUnreachable`.
    pub allow_degraded: bool,
    /// Seed of the backoff-jitter stream.
    pub jitter_seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_retries: 2,
            backoff_base_us: 2_000,
            backoff_cap_us: 50_000,
            call_budget_us: 30_000_000,
            breaker_threshold: 3,
            breaker_cooldown_us: 200_000,
            hedge_factor_pct: 300,
            hedge_min_us: 5_000,
            allow_degraded: false,
            jitter_seed: 0,
        }
    }
}

impl ResilienceConfig {
    /// Deterministic jittered exponential backoff before retry
    /// `attempt` (1-based): the exponential step `base << (attempt-1)`
    /// is clamped to the cap, then full-jittered into
    /// `[step/2, step]` by a splitmix64 draw keyed on
    /// `(jitter_seed, salt, attempt)` — same inputs, same wait.
    pub fn backoff_us(&self, attempt: u32, salt: u64) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        let step = self
            .backoff_base_us
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_us)
            .max(1);
        let low = step / 2;
        let span = step - low + 1;
        low + splitmix64(self.jitter_seed ^ salt ^ u64::from(attempt)) % span
    }
}

/// Circuit-breaker states, the classic three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow, consecutive failures are counted.
    Closed,
    /// Tripped: the provider is skipped until the cooldown elapses.
    Open,
    /// Probing: one call is allowed through; success closes the
    /// breaker, failure re-opens it immediately.
    HalfOpen,
}

/// Per-provider circuit breaker driven by consecutive transport-level
/// failures (timeouts, corruptions, crashes — not fraud, which bans
/// outright).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_us: u64,
    /// Closed/half-open → open transitions taken so far.
    pub opens: u64,
    /// Open → half-open transitions taken so far.
    pub half_opens: u64,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_us: 0,
            opens: 0,
            half_opens: 0,
        }
    }
}

impl CircuitBreaker {
    /// Current state (open breakers stay `Open` here; they move to
    /// half-open only through [`CircuitBreaker::allows`]).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether a call may be routed to this provider at simulated time
    /// `now_us`. An open breaker whose cooldown has elapsed transitions
    /// to half-open (counted) and admits the probe.
    pub fn allows(&mut self, now_us: u64, config: &ResilienceConfig) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now_us.saturating_sub(self.opened_at_us) >= config.breaker_cooldown_us {
                    self.state = BreakerState::HalfOpen;
                    self.half_opens += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A verified-good exchange: the breaker closes and the failure
    /// streak resets.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// A transport-level failure at simulated time `now_us`. Trips to
    /// open when the streak reaches the threshold, or immediately when
    /// a half-open probe fails.
    pub fn record_failure(&mut self, now_us: u64, config: &ResilienceConfig) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = self.state == BreakerState::HalfOpen
            || self.consecutive_failures >= config.breaker_threshold;
        if trip && self.state != BreakerState::Open {
            self.state = BreakerState::Open;
            self.opened_at_us = now_us;
            self.opens += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_after_threshold() {
        let config = ResilienceConfig::default();
        let mut breaker = CircuitBreaker::default();
        for _ in 0..config.breaker_threshold - 1 {
            breaker.record_failure(100, &config);
            assert_eq!(breaker.state(), BreakerState::Closed);
        }
        breaker.record_failure(100, &config);
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.opens, 1);
        assert!(!breaker.allows(100, &config));
    }

    #[test]
    fn open_breaker_half_opens_after_cooldown() {
        let config = ResilienceConfig::default();
        let mut breaker = CircuitBreaker::default();
        for _ in 0..config.breaker_threshold {
            breaker.record_failure(1_000, &config);
        }
        assert!(!breaker.allows(1_000 + config.breaker_cooldown_us - 1, &config));
        assert!(breaker.allows(1_000 + config.breaker_cooldown_us, &config));
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert_eq!(breaker.half_opens, 1);
    }

    #[test]
    fn half_open_probe_failure_reopens_immediately() {
        let config = ResilienceConfig::default();
        let mut breaker = CircuitBreaker::default();
        for _ in 0..config.breaker_threshold {
            breaker.record_failure(0, &config);
        }
        assert!(breaker.allows(config.breaker_cooldown_us, &config));
        breaker.record_failure(config.breaker_cooldown_us + 10, &config);
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.opens, 2);
    }

    #[test]
    fn success_closes_and_resets_streak() {
        let config = ResilienceConfig::default();
        let mut breaker = CircuitBreaker::default();
        breaker.record_failure(0, &config);
        breaker.record_failure(0, &config);
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        // The streak restarted: threshold more failures are needed.
        for _ in 0..config.breaker_threshold - 1 {
            breaker.record_failure(0, &config);
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let config = ResilienceConfig {
            jitter_seed: 7,
            ..ResilienceConfig::default()
        };
        for attempt in 1..=8 {
            let a = config.backoff_us(attempt, 0xABCD);
            let b = config.backoff_us(attempt, 0xABCD);
            assert_eq!(a, b, "same inputs must give the same wait");
            let step = (config.backoff_base_us << (attempt - 1).min(16)).min(config.backoff_cap_us);
            assert!(
                a >= step / 2 && a <= step,
                "attempt {attempt}: {a} vs step {step}"
            );
        }
        // Different salts decorrelate concurrent callers.
        assert_ne!(config.backoff_us(1, 1), config.backoff_us(1, 2));
    }
}
