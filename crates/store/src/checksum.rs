//! CRC-32 (IEEE 802.3 polynomial), table-driven, dependency-free.
//!
//! Segment records carry a CRC per payload so torn or bit-flipped
//! tails are detected on open and truncated away instead of being
//! served. CRC-32 is the right strength here: the threat model is
//! crash corruption, not an adversary forging records on the
//! provider's own disk.

/// Reflected IEEE polynomial, as used by zlib/ethernet.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (IEEE, reflected, init/xorout `0xFFFF_FFFF`) —
/// bit-compatible with zlib's `crc32`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let index = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[index];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = vec![0xA5u8; 1024];
        let base = crc32(&data);
        for i in [0usize, 511, 1023] {
            let mut corrupted = data.clone();
            corrupted[i] ^= 0x01;
            assert_ne!(crc32(&corrupted), base, "flip at {i} undetected");
        }
    }
}
