//! Append-only segment files: framed, checksummed records with an
//! offset index rebuilt by scan on open and torn-write recovery.

use crate::checksum::crc32;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Bytes of framing per record: `[len: u32 LE][crc32: u32 LE]`.
const FRAME_HEADER: u64 = 8;

/// One append-only file of framed records.
///
/// On-disk layout is a back-to-back sequence of
/// `[len u32 LE][crc32(payload) u32 LE][payload]` frames. Opening
/// scans the file front to back, rebuilding the in-memory offset
/// index; the scan stops at the first frame that is truncated or
/// whose checksum fails, and the file is truncated back to the end
/// of the last valid record — a torn tail from a crash is dropped,
/// never served.
///
/// Appends go through the OS page cache; [`SegmentFile::sync`]
/// fsyncs the tail. Reads re-verify the stored checksum so a record
/// that rots after open surfaces as an error, not as wrong bytes.
#[derive(Debug)]
pub struct SegmentFile {
    file: File,
    /// Per-record `(payload offset, payload len, crc)`; the index is
    /// bounded by construction — one entry per record on disk, and
    /// [`SegmentFile::truncate_records`] shrinks it in lockstep with
    /// the file (see also `len()`).
    offsets: Vec<(u64, u32, u32)>,
    /// Logical end of file: offset of the next frame to append.
    tail: u64,
    /// Bytes dropped by torn-write recovery at open.
    dropped_bytes: u64,
}

impl SegmentFile {
    /// Opens (creating if absent) the segment at `path`, scanning it
    /// to rebuild the record index and truncating any torn tail.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be
    /// opened, read, or truncated.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut data = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut data)?;

        let mut offsets = Vec::new();
        let mut pos = 0usize;
        while let Some(header) = data.get(pos..pos + FRAME_HEADER as usize) {
            let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
            let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
            let start = pos + FRAME_HEADER as usize;
            let Some(payload) = data.get(start..start + len as usize) else {
                break;
            };
            if crc32(payload) != crc {
                break;
            }
            offsets.push((start as u64, len, crc));
            pos = start + len as usize;
        }
        let dropped_bytes = (data.len() - pos) as u64;
        if dropped_bytes > 0 {
            file.set_len(pos as u64)?;
            file.sync_data()?;
        }
        Ok(SegmentFile {
            file,
            offsets,
            tail: pos as u64,
            dropped_bytes,
        })
    }

    /// Appends one record and returns its index. The write lands in
    /// the OS page cache; call [`SegmentFile::sync`] to make it
    /// durable.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` when the payload exceeds `u32::MAX`
    /// bytes, or the underlying I/O error on write failure.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let len = u32::try_from(payload.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "record exceeds u32 bytes"))?;
        let crc = crc32(payload);
        let mut frame = Vec::with_capacity(FRAME_HEADER as usize + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.seek(SeekFrom::Start(self.tail))?;
        self.file.write_all(&frame)?;
        let index = self.offsets.len() as u64;
        self.offsets.push((self.tail + FRAME_HEADER, len, crc));
        self.tail += frame.len() as u64;
        Ok(index)
    }

    /// Reads record `index`, re-verifying its checksum.
    ///
    /// Returns `Ok(None)` when no such record exists.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the stored bytes no longer match
    /// their checksum, or the underlying I/O error on read failure.
    pub fn get(&mut self, index: u64) -> io::Result<Option<Vec<u8>>> {
        let slot = usize::try_from(index)
            .ok()
            .and_then(|i| self.offsets.get(i).copied());
        let Some((offset, len, crc)) = slot else {
            return Ok(None);
        };
        self.file.seek(SeekFrom::Start(offset))?;
        let mut payload = vec![0u8; len as usize];
        self.file.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "segment record failed checksum on read",
            ));
        }
        Ok(Some(payload))
    }

    /// Truncates the segment to its first `keep` records (no-op when
    /// it already holds that many or fewer).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be
    /// truncated.
    pub fn truncate_records(&mut self, keep: u64) -> io::Result<()> {
        let keep = usize::try_from(keep).unwrap_or(usize::MAX);
        if keep >= self.offsets.len() {
            return Ok(());
        }
        let end = self.offsets[keep].0 - FRAME_HEADER;
        self.file.set_len(end)?;
        self.offsets.truncate(keep);
        self.tail = end;
        Ok(())
    }

    /// Fsyncs appended records to disk.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on fsync failure.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Number of valid records.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Logical file size in bytes (frames plus payloads).
    pub fn file_bytes(&self) -> u64 {
        self.tail
    }

    /// Bytes dropped by torn-write recovery when this handle opened
    /// the file.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }
}

/// Packs a list of byte items into one record payload
/// (`[len u32 LE][bytes]` per item), the inverse of [`decode_items`].
pub fn encode_items<I, A>(items: I) -> Vec<u8>
where
    I: IntoIterator<Item = A>,
    A: AsRef<[u8]>,
{
    let mut out = Vec::new();
    for item in items {
        let bytes = item.as_ref();
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    out
}

/// Unpacks a record payload produced by [`encode_items`].
///
/// Returns `None` when the payload is malformed (an item length
/// overruns the record) — callers treat that as a missing record, not
/// a panic.
pub fn decode_items(record: &[u8]) -> Option<Vec<Vec<u8>>> {
    let mut items = Vec::new();
    let mut pos = 0usize;
    while pos < record.len() {
        let header = record.get(pos..pos + 4)?;
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let item = record.get(pos + 4..pos + 4 + len)?;
        items.push(item.to_vec());
        pos += 4 + len;
    }
    Some(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scratch_segment(tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = crate::scratch_dir(tag).unwrap();
        let path = dir.join("seg.bin");
        (dir, path)
    }

    #[test]
    fn round_trip_and_reopen() {
        let (dir, path) = scratch_segment("roundtrip");
        let records: Vec<Vec<u8>> = (0..50u32)
            .map(|i| vec![i as u8; (i as usize * 7) % 97])
            .collect();
        {
            let mut seg = SegmentFile::open(&path).unwrap();
            for (i, record) in records.iter().enumerate() {
                assert_eq!(seg.append(record).unwrap(), i as u64);
            }
            seg.sync().unwrap();
        }
        let mut seg = SegmentFile::open(&path).unwrap();
        assert_eq!(seg.len(), records.len());
        assert_eq!(seg.dropped_bytes(), 0);
        for (i, record) in records.iter().enumerate() {
            assert_eq!(
                seg.get(i as u64).unwrap().as_deref(),
                Some(record.as_slice())
            );
        }
        assert_eq!(seg.get(records.len() as u64).unwrap(), None);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn empty_records_are_valid() {
        let (dir, path) = scratch_segment("empty");
        let mut seg = SegmentFile::open(&path).unwrap();
        seg.append(b"").unwrap();
        seg.append(b"x").unwrap();
        drop(seg);
        let mut seg = SegmentFile::open(&path).unwrap();
        assert_eq!(seg.len(), 2);
        assert_eq!(seg.get(0).unwrap(), Some(Vec::new()));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn truncate_records_drops_tail() {
        let (dir, path) = scratch_segment("trunc");
        let mut seg = SegmentFile::open(&path).unwrap();
        for i in 0..10u8 {
            seg.append(&[i; 16]).unwrap();
        }
        seg.truncate_records(4).unwrap();
        assert_eq!(seg.len(), 4);
        assert_eq!(seg.get(3).unwrap(), Some(vec![3u8; 16]));
        assert_eq!(seg.get(4).unwrap(), None);
        // Appends continue cleanly after a truncation.
        seg.append(b"new").unwrap();
        drop(seg);
        let mut seg = SegmentFile::open(&path).unwrap();
        assert_eq!(seg.len(), 5);
        assert_eq!(seg.get(4).unwrap(), Some(b"new".to_vec()));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn item_packing_round_trips() {
        let items: Vec<Vec<u8>> = vec![vec![], vec![1], vec![2; 300]];
        let packed = encode_items(&items);
        assert_eq!(decode_items(&packed), Some(items));
        assert_eq!(decode_items(&[]), Some(Vec::new()));
        // Truncated item length overruns the record: malformed, not a panic.
        assert_eq!(decode_items(&[5, 0, 0, 0, 1]), None);
        assert_eq!(decode_items(&[1, 0, 0]), None);
    }

    /// Writes `records` to a fresh segment file and returns its path.
    fn written_segment(dir: &std::path::Path, records: &[Vec<u8>]) -> std::path::PathBuf {
        let path = dir.join("seg.bin");
        let mut seg = SegmentFile::open(&path).unwrap();
        for record in records {
            seg.append(record).unwrap();
        }
        seg.sync().unwrap();
        path
    }

    /// Asserts the segment at `path` opens to a valid prefix of
    /// `records` and returns the recovered count.
    fn assert_recovers_prefix(path: &std::path::Path, records: &[Vec<u8>]) -> usize {
        let mut seg = SegmentFile::open(path).unwrap();
        let recovered = seg.len();
        assert!(recovered <= records.len());
        for (i, record) in records.iter().take(recovered).enumerate() {
            assert_eq!(
                seg.get(i as u64).unwrap().as_deref(),
                Some(record.as_slice()),
                "recovered record {i} diverged"
            );
        }
        recovered
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Torn write: chopping the file at any byte recovers a valid
        /// prefix — every surviving record byte-identical, tail dropped,
        /// no panic.
        #[test]
        fn prefix_truncation_recovers(
            sizes in proptest::collection::vec(0usize..40, 1..12),
            cut_frac in 0u64..1000,
        ) {
            let dir = crate::scratch_dir("torn").unwrap();
            let records: Vec<Vec<u8>> = sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| vec![(i as u8).wrapping_mul(37); n])
                .collect();
            let path = written_segment(&dir, &records);
            let total = std::fs::metadata(&path).unwrap().len();
            let cut = total * cut_frac / 1000;
            OpenOptions::new()
                .write(true)
                .open(&path)
                .unwrap()
                .set_len(cut)
                .unwrap();
            let recovered = assert_recovers_prefix(&path, &records);
            if cut == total {
                prop_assert_eq!(recovered, records.len());
            }
            // Recovery is stable: a second open drops nothing further.
            let seg = SegmentFile::open(&path).unwrap();
            prop_assert_eq!(seg.len(), recovered);
            prop_assert_eq!(seg.dropped_bytes(), 0);
            let _ = std::fs::remove_dir_all(dir);
        }

        /// Flipping any single byte anywhere in the file recovers a
        /// valid prefix on open: records before the damaged frame are
        /// served byte-identical, the checksummed tail is dropped.
        #[test]
        fn single_byte_corruption_recovers(
            sizes in proptest::collection::vec(1usize..40, 1..12),
            pos_frac in 0u64..1000,
            flip in 1u8..255,
        ) {
            let dir = crate::scratch_dir("flip").unwrap();
            let records: Vec<Vec<u8>> = sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| vec![(i as u8).wrapping_mul(59).wrapping_add(1); n])
                .collect();
            let path = written_segment(&dir, &records);
            let total = std::fs::metadata(&path).unwrap().len();
            let pos = (total - 1) * pos_frac / 1000;
            let mut file = OpenOptions::new().read(true).write(true).open(&path).unwrap();
            let mut byte = [0u8; 1];
            file.seek(SeekFrom::Start(pos)).unwrap();
            file.read_exact(&mut byte).unwrap();
            byte[0] ^= flip;
            file.seek(SeekFrom::Start(pos)).unwrap();
            file.write_all(&byte).unwrap();
            drop(file);
            let recovered = assert_recovers_prefix(&path, &records);
            prop_assert!(recovered < records.len(), "corruption must drop the damaged tail");
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}
