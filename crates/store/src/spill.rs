//! Content-addressed spill segment: serialized pages keyed by a
//! 32-byte root hash, rebuilt by scan on open.

use crate::segment::SegmentFile;
use parp_primitives::H256;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// An append-only spill store for pages addressed by root hash.
///
/// Each record is `[root: 32 bytes][page bytes]`, so the key → record
/// index map is rebuilt by the same open scan that validates
/// checksums — there is no separate index file to keep consistent.
/// Pages are immutable (content-addressed by trie root): putting the
/// same root twice is a no-op.
///
/// Handles are cheaply cloneable and share one underlying file; this
/// is what lets the runtime's warm tier and its telemetry exporter
/// hold the same store.
#[derive(Debug, Clone)]
pub struct SpillStore {
    inner: Arc<Mutex<Spill>>,
}

#[derive(Debug)]
struct Spill {
    segment: SegmentFile,
    index: BTreeMap<H256, u64>,
}

impl SpillStore {
    /// Opens (creating if needed) the spill store at `dir/spill.seg`,
    /// recovering the segment and rebuilding the root → record index.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory or segment
    /// cannot be opened.
    pub fn open<P: AsRef<Path>>(dir: P) -> io::Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut segment = SegmentFile::open(dir.join("spill.seg"))?;
        let mut index = BTreeMap::new();
        for record in 0..segment.len() as u64 {
            let Some(payload) = segment.get(record)? else {
                break;
            };
            if let Some(root) = H256::from_slice(payload.get(..32).unwrap_or_default()) {
                index.entry(root).or_insert(record);
            }
        }
        Ok(SpillStore {
            inner: Arc::new(Mutex::new(Spill { segment, index })),
        })
    }

    /// Recover from poisoning rather than propagate it — appends are
    /// atomic at the record level, so a panicked peer cannot leave
    /// the index half-updated in a way reads would misinterpret.
    fn locked(&self) -> MutexGuard<'_, Spill> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Spills `page` under `root`. No-op when the root is already
    /// stored (pages are content-addressed and immutable).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on write failure.
    pub fn put(&self, root: H256, page: &[u8]) -> io::Result<()> {
        let mut inner = self.locked();
        if inner.index.contains_key(&root) {
            return Ok(());
        }
        let mut record = Vec::with_capacity(32 + page.len());
        record.extend_from_slice(root.as_bytes());
        record.extend_from_slice(page);
        let index = inner.segment.append(&record)?;
        inner.index.insert(root, index);
        Ok(())
    }

    /// Reads back the page spilled under `root`, byte-identical to
    /// what was stored.
    ///
    /// Returns `Ok(None)` when the root was never spilled.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (including checksum failure)
    /// on read failure.
    pub fn get(&self, root: &H256) -> io::Result<Option<Vec<u8>>> {
        let mut inner = self.locked();
        let Some(&record) = inner.index.get(root) else {
            return Ok(None);
        };
        let payload = inner.segment.get(record)?;
        Ok(payload.map(|mut bytes| {
            bytes.drain(..32);
            bytes
        }))
    }

    /// Whether a page is stored under `root`.
    pub fn contains(&self, root: &H256) -> bool {
        self.locked().index.contains_key(root)
    }

    /// Number of spilled pages.
    pub fn len(&self) -> usize {
        self.locked().index.len()
    }

    /// Whether no pages have been spilled.
    pub fn is_empty(&self) -> bool {
        self.locked().index.is_empty()
    }

    /// Bytes on disk (frames, keys and pages).
    pub fn disk_bytes(&self) -> u64 {
        self.locked().segment.file_bytes()
    }

    /// Fsyncs spilled pages to disk.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on fsync failure.
    pub fn sync(&self) -> io::Result<()> {
        self.locked().segment.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root(n: u8) -> H256 {
        H256::new([n; 32])
    }

    #[test]
    fn spill_and_rehydrate() {
        let dir = crate::scratch_dir("spill").unwrap();
        let store = SpillStore::open(&dir).unwrap();
        store.put(root(1), b"page-one").unwrap();
        store.put(root(2), b"").unwrap();
        assert_eq!(store.get(&root(1)).unwrap(), Some(b"page-one".to_vec()));
        assert_eq!(store.get(&root(2)).unwrap(), Some(Vec::new()));
        assert_eq!(store.get(&root(3)).unwrap(), None);
        assert_eq!(store.len(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn duplicate_put_is_noop() {
        let dir = crate::scratch_dir("dup").unwrap();
        let store = SpillStore::open(&dir).unwrap();
        store.put(root(9), b"first").unwrap();
        let bytes = store.disk_bytes();
        store.put(root(9), b"second-ignored").unwrap();
        assert_eq!(store.disk_bytes(), bytes);
        assert_eq!(store.get(&root(9)).unwrap(), Some(b"first".to_vec()));
        let _ = std::fs::remove_dir_all(dir);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// Arbitrary pages round-trip byte-identical through spill,
        /// reopen, and a torn-tail crash: every record the recovered
        /// index still knows reads back exactly as stored.
        #[test]
        fn pages_round_trip_and_survive_torn_tails(
            pages in proptest::collection::vec(
                // Seeds stay below the 0xfe probe root used after the crash.
                (0u8..0xf0, proptest::collection::vec(proptest::prelude::any::<u8>(), 0..200)),
                1..12,
            ),
            cut_frac in 0u64..1000,
        ) {
            use proptest::prelude::{prop_assert, prop_assert_eq};
            let dir = crate::scratch_dir("spill-props").unwrap();
            // Dedup by root: content addressing makes later duplicates no-ops.
            let mut expected: Vec<(H256, Vec<u8>)> = Vec::new();
            {
                let store = SpillStore::open(&dir).unwrap();
                for (seed, page) in &pages {
                    store.put(root(*seed), page).unwrap();
                    if !expected.iter().any(|(r, _)| *r == root(*seed)) {
                        expected.push((root(*seed), page.clone()));
                    }
                }
                store.sync().unwrap();
                for (r, page) in &expected {
                    prop_assert_eq!(store.get(r).unwrap().as_deref(), Some(page.as_slice()));
                }
            }
            // Clean reopen: the scan-rebuilt index serves the same bytes.
            {
                let store = SpillStore::open(&dir).unwrap();
                prop_assert_eq!(store.len(), expected.len());
                for (r, page) in &expected {
                    prop_assert_eq!(store.get(r).unwrap().as_deref(), Some(page.as_slice()));
                }
            }
            // Crash: chop the segment at an arbitrary byte. Recovery
            // keeps a prefix of the puts, each still byte-identical;
            // the rest read as absent, never as wrong bytes.
            let path = dir.join("spill.seg");
            let total = std::fs::metadata(&path).unwrap().len();
            let cut = total * cut_frac / 1000;
            std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .unwrap()
                .set_len(cut)
                .unwrap();
            let store = SpillStore::open(&dir).unwrap();
            prop_assert!(store.len() <= expected.len());
            let survivors = store.len();
            for (i, (r, page)) in expected.iter().enumerate() {
                let read = store.get(r).unwrap();
                if i < survivors {
                    prop_assert_eq!(read.as_deref(), Some(page.as_slice()));
                } else {
                    prop_assert_eq!(read, None);
                }
            }
            // The store stays writable after recovery.
            store.put(root(0xfe), b"post-crash").unwrap();
            prop_assert_eq!(store.get(&root(0xfe)).unwrap(), Some(b"post-crash".to_vec()));
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn reopen_rebuilds_index() {
        let dir = crate::scratch_dir("reopen").unwrap();
        {
            let store = SpillStore::open(&dir).unwrap();
            for n in 0..10u8 {
                store.put(root(n), &[n; 100]).unwrap();
            }
            store.sync().unwrap();
        }
        let store = SpillStore::open(&dir).unwrap();
        assert_eq!(store.len(), 10);
        assert_eq!(store.get(&root(7)).unwrap(), Some(vec![7u8; 100]));
        assert!(store.contains(&root(0)));
        let _ = std::fs::remove_dir_all(dir);
    }
}
