//! Embedded cold/warm storage for the PARP reproduction: append-only
//! checksummed segment files plus content-addressed spill storage, with
//! zero external dependencies.
//!
//! Every other crate in the workspace keeps its serving state in RAM;
//! this crate converts chain depth from a memory bound into a disk
//! bound. It deliberately knows nothing about headers, transactions or
//! tries — records are opaque byte payloads, framed and checksummed, so
//! the dependency arrow points *from* `parp-chain`/`parp-runtime`
//! *into* here and never back.
//!
//! Three layers:
//!
//! * [`SegmentFile`] — one append-only file of framed records
//!   (`[len u32][crc32 u32][payload]`), an in-memory offset index
//!   rebuilt by scan on open, and torn-write recovery that truncates
//!   the file back to the last record whose checksum verifies.
//! * [`BlockStore`] — three segments (headers, transactions, receipts)
//!   advancing in lockstep, one record per block number starting at
//!   genesis. Opening after a crash trims all three to the shortest
//!   fully-recovered prefix so the block store is always consistent as
//!   a unit.
//! * [`SpillStore`] — a content-addressed segment keyed by 32-byte
//!   root hash, used by the runtime's warm tier to spill serialized
//!   frozen-trie pages and rehydrate them on demand.
//!
//! Durability boundary: appends are buffered by the OS; [`BlockStore::sync`]
//! / [`SpillStore::sync`] / [`SegmentFile::sync`] fsync the tail.
//! Recovery never panics — a corrupt or truncated tail is dropped, a
//! valid prefix is kept.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod blockstore;
mod checksum;
mod segment;
mod spill;

pub use blockstore::BlockStore;
pub use checksum::crc32;
pub use segment::{decode_items, encode_items, SegmentFile};
pub use spill::SpillStore;

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide sequence for scratch directory names, so two stores
/// opened in the same process never collide without consulting the
/// wall clock (the workspace is deterministic by contract).
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Creates a fresh private directory under the system temp dir,
/// namespaced by `tag`, the process id and a process-wide counter.
///
/// # Errors
///
/// Returns the underlying I/O error when the directory cannot be
/// created.
pub fn scratch_dir(tag: &str) -> io::Result<PathBuf> {
    let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!("parp-store-{tag}-{}-{seq}", std::process::id()));
    std::fs::create_dir_all(&path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_dirs_are_distinct() {
        let a = scratch_dir("t").unwrap();
        let b = scratch_dir("t").unwrap();
        assert_ne!(a, b);
        assert!(a.is_dir() && b.is_dir());
        let _ = std::fs::remove_dir_all(a);
        let _ = std::fs::remove_dir_all(b);
    }
}
