//! Per-block history segments: headers, transactions and receipts
//! advancing in lockstep, one record per block number from genesis.

use crate::segment::{decode_items, encode_items, SegmentFile};
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The three append-only segments backing a chain's cold history.
///
/// Record `n` of every segment belongs to block `n`: the header
/// segment holds the block's encoded header verbatim, the transaction
/// and receipt segments hold the block's encoded items packed with
/// [`encode_items`]. Blocks must be appended contiguously from the
/// store's current [`BlockStore::next_number`].
///
/// Opening after a crash trims all three segments to the shortest
/// fully-recovered prefix, so the store is always consistent as a
/// unit: a block either has its header, transactions *and* receipts,
/// or none of them.
///
/// Handles are cheaply cloneable and share one underlying store
/// (reads seek, so access is serialized internally); this is what
/// lets a [`Clone`]d chain share its history files.
#[derive(Debug, Clone)]
pub struct BlockStore {
    inner: Arc<Mutex<Segments>>,
}

#[derive(Debug)]
struct Segments {
    headers: SegmentFile,
    transactions: SegmentFile,
    receipts: SegmentFile,
    dropped_bytes: u64,
}

impl BlockStore {
    /// Opens (creating if needed) the block store in directory `dir`,
    /// recovering each segment and trimming all three to the shortest
    /// consistent prefix.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory or a
    /// segment cannot be opened.
    pub fn open<P: AsRef<Path>>(dir: P) -> io::Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut headers = SegmentFile::open(dir.join("headers.seg"))?;
        let mut transactions = SegmentFile::open(dir.join("transactions.seg"))?;
        let mut receipts = SegmentFile::open(dir.join("receipts.seg"))?;
        let dropped_bytes =
            headers.dropped_bytes() + transactions.dropped_bytes() + receipts.dropped_bytes();
        let keep = headers.len().min(transactions.len()).min(receipts.len()) as u64;
        headers.truncate_records(keep)?;
        transactions.truncate_records(keep)?;
        receipts.truncate_records(keep)?;
        Ok(BlockStore {
            inner: Arc::new(Mutex::new(Segments {
                headers,
                transactions,
                receipts,
                dropped_bytes,
            })),
        })
    }

    /// A poisoned mutex only means another handle panicked mid-read;
    /// the segments themselves stay consistent (writes are single
    /// appends), so recover the guard instead of propagating.
    fn locked(&self) -> MutexGuard<'_, Segments> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The next block number this store expects (== number of blocks
    /// archived so far, since archiving starts at genesis).
    pub fn next_number(&self) -> u64 {
        self.locked().headers.len() as u64
    }

    /// Whether no blocks have been archived.
    pub fn is_empty(&self) -> bool {
        self.locked().headers.is_empty()
    }

    /// Archives one block: its encoded header plus per-item encoded
    /// transactions and receipts.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` when `number` is not the store's next
    /// expected block (history must be contiguous), or the underlying
    /// I/O error on write failure.
    pub fn append_block(
        &self,
        number: u64,
        header: &[u8],
        transactions: &[Vec<u8>],
        receipts: &[Vec<u8>],
    ) -> io::Result<()> {
        let mut inner = self.locked();
        let expected = inner.headers.len() as u64;
        if number != expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("non-contiguous archive: expected block {expected}, got {number}"),
            ));
        }
        inner.headers.append(header)?;
        inner.transactions.append(&encode_items(transactions))?;
        inner.receipts.append(&encode_items(receipts))?;
        Ok(())
    }

    /// The encoded header of block `number`, byte-identical to what
    /// was archived.
    ///
    /// Returns `Ok(None)` when the block is not in the store.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on read failure.
    pub fn header(&self, number: u64) -> io::Result<Option<Vec<u8>>> {
        self.locked().headers.get(number)
    }

    /// The encoded transactions of block `number`, in block order.
    ///
    /// Returns `Ok(None)` when the block is not in the store.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the packed record is malformed, or
    /// the underlying I/O error on read failure.
    pub fn transactions(&self, number: u64) -> io::Result<Option<Vec<Vec<u8>>>> {
        let record = self.locked().transactions.get(number)?;
        record.map(|bytes| unpack(&bytes)).transpose()
    }

    /// The encoded receipts of block `number`, in block order.
    ///
    /// Returns `Ok(None)` when the block is not in the store.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when the packed record is malformed, or
    /// the underlying I/O error on read failure.
    pub fn receipts(&self, number: u64) -> io::Result<Option<Vec<Vec<u8>>>> {
        let record = self.locked().receipts.get(number)?;
        record.map(|bytes| unpack(&bytes)).transpose()
    }

    /// Fsyncs all three segment tails.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on fsync failure.
    pub fn sync(&self) -> io::Result<()> {
        let mut inner = self.locked();
        inner.headers.sync()?;
        inner.transactions.sync()?;
        inner.receipts.sync()
    }

    /// Total bytes on disk across the three segments.
    pub fn disk_bytes(&self) -> u64 {
        let inner = self.locked();
        inner.headers.file_bytes() + inner.transactions.file_bytes() + inner.receipts.file_bytes()
    }

    /// Bytes dropped by torn-write recovery when this store opened.
    pub fn dropped_bytes(&self) -> u64 {
        self.locked().dropped_bytes
    }
}

fn unpack(record: &[u8]) -> io::Result<Vec<Vec<u8>>> {
    decode_items(record).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed packed record in block store",
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_and_read_back() {
        let dir = crate::scratch_dir("blockstore").unwrap();
        let store = BlockStore::open(&dir).unwrap();
        assert!(store.is_empty());
        for n in 0..20u64 {
            let header = vec![n as u8; 40];
            let txs: Vec<Vec<u8>> = (0..n % 4).map(|i| vec![i as u8, n as u8]).collect();
            let receipts: Vec<Vec<u8>> = (0..n % 4).map(|i| vec![0xee, i as u8]).collect();
            store.append_block(n, &header, &txs, &receipts).unwrap();
        }
        store.sync().unwrap();
        assert_eq!(store.next_number(), 20);
        assert_eq!(store.header(7).unwrap(), Some(vec![7u8; 40]));
        assert_eq!(
            store.transactions(7).unwrap().unwrap(),
            vec![vec![0u8, 7], vec![1, 7], vec![2, 7]]
        );
        assert_eq!(store.receipts(3).unwrap().unwrap().len(), 3);
        assert_eq!(store.header(20).unwrap(), None);
        assert!(store.disk_bytes() > 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn non_contiguous_append_rejected() {
        let dir = crate::scratch_dir("contig").unwrap();
        let store = BlockStore::open(&dir).unwrap();
        store.append_block(0, b"genesis", &[], &[]).unwrap();
        let err = store.append_block(5, b"skip", &[], &[]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn reopen_trims_to_consistent_prefix() {
        let dir = crate::scratch_dir("lockstep").unwrap();
        {
            let store = BlockStore::open(&dir).unwrap();
            for n in 0..5u64 {
                store
                    .append_block(n, &[n as u8; 8], &[vec![n as u8]], &[vec![n as u8, 2]])
                    .unwrap();
            }
            store.sync().unwrap();
        }
        // Simulate a crash that tore the receipts segment mid-record:
        // drop its last 3 bytes.
        let receipts_path = dir.join("receipts.seg");
        let len = std::fs::metadata(&receipts_path).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&receipts_path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let store = BlockStore::open(&dir).unwrap();
        // Block 4's receipts were torn, so block 4 is gone from all
        // three segments.
        assert_eq!(store.next_number(), 4);
        assert_eq!(store.header(4).unwrap(), None);
        assert_eq!(store.transactions(4).unwrap(), None);
        assert_eq!(store.header(3).unwrap(), Some(vec![3u8; 8]));
        assert!(store.dropped_bytes() > 0);
        // Appending continues from the trimmed height.
        store.append_block(4, b"again", &[], &[]).unwrap();
        assert_eq!(store.header(4).unwrap(), Some(b"again".to_vec()));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn clones_share_the_store() {
        let dir = crate::scratch_dir("clone").unwrap();
        let store = BlockStore::open(&dir).unwrap();
        let alias = store.clone();
        store.append_block(0, b"h", &[], &[]).unwrap();
        assert_eq!(alias.next_number(), 1);
        assert_eq!(alias.header(0).unwrap(), Some(b"h".to_vec()));
        let _ = std::fs::remove_dir_all(dir);
    }
}
