//! W005 fixture: nested lock acquisitions inside one function versus
//! one acquisition per function.

use std::sync::Mutex;

pub struct Shared {
    ledger: Mutex<Vec<u64>>,
    index: Mutex<Vec<u64>>,
}

impl Shared {
    pub fn transfer(&self) -> u64 {
        // Fires on the second acquisition: two guards in one body.
        let ledger = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        let index = self.index.lock().unwrap_or_else(|e| e.into_inner());
        ledger.len() as u64 + index.len() as u64
    }

    pub fn read_ledger(&self) -> usize {
        self.ledger.lock().map(|g| g.len()).unwrap_or(0)
    }

    pub fn read_index(&self) -> usize {
        self.index.lock().map(|g| g.len()).unwrap_or(0)
    }
}
