//! W004 fixture: one unbounded push, one len-guarded push, one
//! drain-bounded queue, and a test-only push that must not fire.

use std::collections::VecDeque;

pub struct Node {
    log: Vec<u64>,
    samples: Vec<u64>,
    queue: VecDeque<u64>,
}

impl Node {
    pub fn record(&mut self, v: u64) {
        // Fires: nothing in this file ever shrinks or checks `log`.
        self.log.push(v);
    }

    pub fn sample(&mut self, v: u64) {
        if self.samples.len() < 1024 {
            self.samples.push(v);
        }
    }

    pub fn enqueue(&mut self, v: u64) {
        self.queue.push_back(v);
        while self.queue.len() > 16 {
            self.queue.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pushes_in_tests_are_fine() {
        struct T {
            buf: Vec<u8>,
        }
        let mut t = T { buf: Vec::new() };
        t.buf.push(1);
        assert_eq!(t.buf.len(), 1);
    }
}
