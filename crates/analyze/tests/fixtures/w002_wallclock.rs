//! W002 fixture: host-clock reads in sim-ruled code, plus the
//! `Instant`-named enum variant that must not fire.

use std::time::{Instant, SystemTime};

pub enum TracePhase {
    Span,
    // A variant *named* Instant is not a clock read: only the token
    // sequence `Instant :: now` fires.
    Instant,
}

pub fn measure() -> u64 {
    let started = Instant::now();
    work();
    started.elapsed().as_micros() as u64
}

pub fn stamp() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

pub fn phase_of() -> TracePhase {
    TracePhase::Instant
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_in_tests_is_fine() {
        let t = Instant::now();
        assert!(t.elapsed().as_nanos() < u128::MAX);
    }
}
