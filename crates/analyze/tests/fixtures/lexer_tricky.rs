//! Lexer-adversarial fixture: every lint trigger below is inside a
//! string, raw string, byte string, char sequence, or comment — a
//! regex-based scanner would drown in false positives here. The
//! analyzer must report ZERO findings for this file.

pub fn strings() -> Vec<String> {
    vec![
        "x.unwrap() and y.expect(\"boom\") and panic!(\"no\")".to_string(),
        String::from("Instant::now() SystemTime HashMap HashSet"),
        r#"raw: self.log.push(1); a.lock(); b.lock(); unreachable!()"#.to_string(),
        r##"nested r#"quotes"# with .unwrap() inside"##.to_string(),
    ]
}

pub fn bytes() -> (&'static [u8], u8, char) {
    let raw = br#".expect("inside a raw byte string")"#;
    let byte = b'"';
    let quote = '\'';
    (raw, byte, quote)
}

// Comment mentioning Instant::now(), .unwrap(), panic!() and HashMap.
/* Block comment: SystemTime, .expect("x"), .lock() then .lock().
   /* nested: self.buf.push(1) forever */
   still inside the outer comment: unreachable!() */
pub fn lifetimes<'a>(x: &'a str) -> &'a str {
    // 'a above must lex as a lifetime, not an unterminated char.
    let _not_a_char = 'b';
    x
}

pub fn numbers() -> (f64, u64, u64) {
    let range_sum: u64 = (0u64..10).sum();
    (1.5e-3, 0xFFu64, range_sum)
}
