//! W003 fixture: hash collections in a byte-commitment module.

use std::collections::{BTreeMap, HashMap, HashSet};

pub struct Commitments {
    // Both hash-based fields fire; the BTreeMap does not.
    by_channel: HashMap<u64, Vec<u8>>,
    seen: HashSet<u64>,
    ordered: BTreeMap<u64, Vec<u8>>,
}

pub fn encode(c: &Commitments) -> Vec<u8> {
    let mut out = Vec::new();
    for (k, v) in &c.ordered {
        out.extend_from_slice(&k.to_be_bytes());
        out.extend_from_slice(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn scratch_maps_in_tests_are_fine() {
        let mut m: HashMap<u8, u8> = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.len(), 1);
    }
}
