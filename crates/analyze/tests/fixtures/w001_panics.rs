//! W001 fixture: panics in serving code, exemptions in test code, and
//! the `expect`-method lookalike that must not fire.

pub fn serving_path(input: &[u8]) -> Vec<u8> {
    let first = input.first().unwrap();
    let parsed = decode(input).expect("decode failed");
    if *first == 0xff {
        panic!("bad tag");
    }
    match parsed {
        0 => unreachable!("tag zero is filtered earlier"),
        n => vec![n],
    }
}

pub fn parser_lookalike(p: &mut Parser) -> Result<(), Error> {
    // A domain method named `expect` taking a non-string argument is
    // not the Option/Result panic idiom and must not be flagged.
    p.expect(b'{')?;
    p.expect(b'}')?;
    Ok(())
}

pub fn suppressed_site(input: &[u8]) -> u8 {
    // parp-allow(W001): fixture demonstrating a justified suppression
    *input.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Option<u8> = None;
        v.unwrap();
        panic!("fine in tests");
    }
}
