//! Suppression-semantics fixture: justified, reasonless, wrong-lint
//! and unknown-lint markers.

pub fn justified(input: &[u8]) -> u8 {
    // parp-allow(W001): fixture — the caller guarantees non-empty input
    *input.first().unwrap()
}

pub fn trailing(input: &[u8]) -> u8 {
    *input.first().unwrap() // parp-allow(W001): same-line suppression form
}

pub fn reasonless(input: &[u8]) -> u8 {
    // parp-allow(W001)
    *input.first().unwrap()
}

pub fn wrong_lint(input: &[u8]) -> u8 {
    // parp-allow(W002): names the wrong lint, so W001 still fires
    *input.first().unwrap()
}

// parp-allow(W042): no such lint id
pub fn unknown_lint() {}
